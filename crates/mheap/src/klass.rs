//! Class metadata ("klass" meta-objects) and field-layout computation.
//!
//! Every object header's klass word names a [`Klass`] in the owning VM's
//! [`KlassTable`]. A klass knows its flattened field list with computed
//! offsets (HotSpot-style size-descending packing, superclass fields first),
//! which is exactly the information the baseline serializers consult
//! "reflectively" (by string lookup) and that Skyway never needs to touch.
//!
//! Klasses also carry the Skyway global type id (`tID`, §4.1) once the
//! distributed type registry has assigned one — the paper adds "an extra
//! field in each klass to accommodate its ID".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::layout::{align8, LayoutSpec};
use crate::{Error, Result};

/// Index of a klass in its VM's [`KlassTable`].
///
/// Klass ids are VM-local (the same class has different ids on different
/// nodes) — that is the whole reason Skyway needs global type numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KlassId(pub u32);

/// Sentinel for "no Skyway type id assigned yet".
pub const TID_UNSET: u32 = u32::MAX;

/// Process-wide unique klass id counter (see [`Klass::uid`]).
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// A primitive field/element type with its Java size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimType {
    /// 1-byte boolean.
    Bool,
    /// 1-byte signed integer.
    Byte,
    /// 2-byte unsigned UTF-16 code unit.
    Char,
    /// 2-byte signed integer.
    Short,
    /// 4-byte signed integer.
    Int,
    /// 4-byte IEEE float.
    Float,
    /// 8-byte signed integer.
    Long,
    /// 8-byte IEEE float.
    Double,
}

impl PrimType {
    /// Size in bytes.
    #[inline]
    pub fn size(self) -> u8 {
        match self {
            PrimType::Bool | PrimType::Byte => 1,
            PrimType::Char | PrimType::Short => 2,
            PrimType::Int | PrimType::Float => 4,
            PrimType::Long | PrimType::Double => 8,
        }
    }

    /// JVM descriptor character (`Z`, `B`, `C`, `S`, `I`, `F`, `J`, `D`).
    pub fn descriptor(self) -> char {
        match self {
            PrimType::Bool => 'Z',
            PrimType::Byte => 'B',
            PrimType::Char => 'C',
            PrimType::Short => 'S',
            PrimType::Int => 'I',
            PrimType::Float => 'F',
            PrimType::Long => 'J',
            PrimType::Double => 'D',
        }
    }

    /// All primitive types, in descriptor order.
    pub const ALL: [PrimType; 8] = [
        PrimType::Bool,
        PrimType::Byte,
        PrimType::Char,
        PrimType::Short,
        PrimType::Int,
        PrimType::Float,
        PrimType::Long,
        PrimType::Double,
    ];
}

/// The declared type of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// A primitive-typed field (object data, in the paper's terms).
    Prim(PrimType),
    /// A reference-typed field (an object reference that Skyway must
    /// relativize/absolutize).
    Ref,
}

impl FieldType {
    /// Field slot size in bytes (references are 8).
    #[inline]
    pub fn size(self) -> u8 {
        match self {
            FieldType::Prim(p) => p.size(),
            FieldType::Ref => 8,
        }
    }
}

/// What kind of objects a klass describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KlassKind {
    /// Ordinary instance with named fields.
    Instance,
    /// Array of primitives.
    PrimArray(PrimType),
    /// Array of references.
    RefArray,
}

/// A class definition as it would appear "on the classpath": name, super
/// class, and declared fields. Layout is computed when a VM loads it.
#[derive(Debug, Clone)]
pub struct KlassDef {
    /// Fully qualified class name, e.g. `"media.MediaContent"`.
    pub name: String,
    /// Super class name (`None` only for `java.lang.Object`).
    pub super_name: Option<String>,
    /// Declared fields (name, type), excluding inherited ones.
    pub fields: Vec<(String, FieldType)>,
}

impl KlassDef {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        super_name: Option<&str>,
        fields: Vec<(&str, FieldType)>,
    ) -> Self {
        KlassDef {
            name: name.into(),
            super_name: super_name.map(str::to_owned),
            fields: fields.into_iter().map(|(n, t)| (n.to_owned(), t)).collect(),
        }
    }
}

/// A field with its computed offset inside the object.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: FieldType,
    /// Byte offset from the object start.
    pub offset: u64,
    /// Name of the class that declared this field (for descriptor strings).
    pub declared_in: String,
}

/// Loaded class metadata with computed layout.
#[derive(Debug)]
pub struct Klass {
    /// VM-local id (index in the [`KlassTable`]).
    pub id: KlassId,
    /// Fully qualified name.
    pub name: String,
    /// Super klass, if any.
    pub super_id: Option<KlassId>,
    /// Kind (instance or array).
    pub kind: KlassKind,
    /// Flattened fields (super-class fields first), with offsets.
    pub fields: Vec<Field>,
    /// Name → index into `fields` (the "reflection" lookup surface).
    field_index: HashMap<String, usize>,
    /// Total object size in bytes for instances (8-aligned). Zero for
    /// arrays, whose size depends on the length.
    pub instance_size: u64,
    /// Names of this class and all super classes, most-derived first —
    /// what the Java serializer writes out per object (§2.1).
    pub descriptor_chain: Vec<String>,
    /// Skyway global type id (§4.1), [`TID_UNSET`] until registered.
    tid: AtomicU32,
    /// Process-wide unique id, never reused — a sound cache key for
    /// compiled per-class serializer plans (unlike `Arc` pointers, which
    /// the allocator recycles once a VM is dropped).
    pub uid: u64,
}

impl Klass {
    /// Looks a field up by name — the operation whose per-object, per-field
    /// repetition makes reflective serialization expensive.
    pub fn field_by_name(&self, name: &str) -> Option<&Field> {
        self.field_index.get(name).map(|&i| &self.fields[i])
    }

    /// Reflective field lookup: linear scan with string comparison over the
    /// declared-field lists of the class and its supers, the way
    /// `Class.getDeclaredField` walks `Field[]` arrays. Baseline
    /// serializers use this; compiled plans and Skyway never do.
    pub fn field_by_name_reflective(&self, name: &str) -> Option<&Field> {
        // Walk per-declaring-class, most-derived first, as reflection does.
        for cname in &self.descriptor_chain {
            for f in self.fields.iter().filter(|f| &f.declared_in == cname) {
                if f.name == name {
                    return Some(f);
                }
            }
        }
        None
    }

    /// The Skyway global type id, if assigned.
    pub fn tid(&self) -> Option<u32> {
        // ORDER: Acquire — pairs with the Release store in `set_tid`, so a
        // reader that sees the tid also sees the directory registration
        // writes ordered before publication.
        match self.tid.load(Ordering::Acquire) {
            TID_UNSET => None,
            t => Some(t),
        }
    }

    /// Writes the Skyway global type id into the klass meta-object
    /// (Algorithm 1, `WRITETID`).
    pub fn set_tid(&self, tid: u32) {
        // ORDER: Release — publishes the tid after the directory has
        // recorded the name mapping; pairs with the Acquire load in `tid`.
        self.tid.store(tid, Ordering::Release);
    }

    /// True if objects of this klass are arrays.
    #[inline]
    pub fn is_array(&self) -> bool {
        !matches!(self.kind, KlassKind::Instance)
    }

    /// Array element size in bytes.
    ///
    /// # Errors
    /// [`Error::NotAnArray`] for instance klasses.
    pub fn elem_size(&self) -> Result<u8> {
        match self.kind {
            KlassKind::PrimArray(p) => Ok(p.size()),
            KlassKind::RefArray => Ok(8),
            KlassKind::Instance => Err(Error::NotAnArray(self.name.clone())),
        }
    }
}

/// Name of the root class.
pub const OBJECT: &str = "java.lang.Object";

/// Synthesizes the array-class name for a primitive, e.g. `"[I"`.
pub fn prim_array_name(p: PrimType) -> String {
    format!("[{}", p.descriptor())
}

/// Synthesizes the array-class name for references to `elem`, e.g.
/// `"[Ljava.lang.String;"`.
pub fn ref_array_name(elem: &str) -> String {
    format!("[L{elem};")
}

/// A shared "classpath": class definitions by name, shared between all VMs
/// of a cluster so that a receiving VM can load a class on demand when it
/// encounters an unloaded type id (§4.1: "Skyway instructs the class loader
/// to load the missing class since the type registry knows the full class
/// name").
#[derive(Debug, Default)]
pub struct ClassPath {
    defs: RwLock<HashMap<String, KlassDef>>,
}

impl ClassPath {
    /// Creates an empty classpath.
    pub fn new() -> Arc<Self> {
        Arc::new(ClassPath::default())
    }

    /// Adds (or replaces) a class definition.
    pub fn define(&self, def: KlassDef) {
        self.defs.write().insert(def.name.clone(), def);
    }

    /// Adds many definitions.
    pub fn define_all(&self, defs: impl IntoIterator<Item = KlassDef>) {
        let mut map = self.defs.write();
        for def in defs {
            map.insert(def.name.clone(), def);
        }
    }

    /// Fetches a definition by name.
    pub fn lookup(&self, name: &str) -> Option<KlassDef> {
        self.defs.read().get(name).cloned()
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.read().len()
    }

    /// True if no classes are defined.
    pub fn is_empty(&self) -> bool {
        self.defs.read().is_empty()
    }

    /// All defined class names (sorted, for deterministic iteration).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.defs.read().keys().cloned().collect();
        v.sort();
        v
    }
}

/// Per-VM table of loaded klasses.
///
/// Append-only under a read-write lock so that concurrent Skyway sender
/// threads can resolve klass metadata while the VM occasionally loads a new
/// class.
#[derive(Debug, Default)]
pub struct KlassTable {
    inner: RwLock<TableInner>,
}

#[derive(Debug, Default)]
struct TableInner {
    klasses: Vec<Arc<Klass>>,
    by_name: HashMap<String, KlassId>,
}

impl KlassTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        KlassTable::default()
    }

    /// Number of loaded klasses.
    pub fn len(&self) -> usize {
        self.inner.read().klasses.len()
    }

    /// True if no klass is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves a klass by id.
    ///
    /// # Errors
    /// [`Error::UnknownKlass`] for ids never issued by this table.
    pub fn get(&self, id: KlassId) -> Result<Arc<Klass>> {
        self.inner.read().klasses.get(id.0 as usize).cloned().ok_or(Error::UnknownKlass(id.0))
    }

    /// Resolves a klass by name, if loaded.
    pub fn by_name(&self, name: &str) -> Option<Arc<Klass>> {
        let inner = self.inner.read();
        inner.by_name.get(name).map(|&id| Arc::clone(&inner.klasses[id.0 as usize]))
    }

    /// All loaded klasses in load order.
    pub fn all(&self) -> Vec<Arc<Klass>> {
        self.inner.read().klasses.clone()
    }

    /// Loads `name` (and, recursively, its supers) from `classpath` with the
    /// given object format, returning its id. Loading an already-loaded
    /// class is a cheap lookup. Array classes (`[I`, `[Lfoo;`) are
    /// synthesized without a classpath entry.
    ///
    /// # Errors
    /// [`Error::ClassNotFound`] if the classpath has no such definition;
    /// [`Error::DuplicateField`] for ill-formed definitions.
    pub fn load(&self, name: &str, classpath: &ClassPath, spec: LayoutSpec) -> Result<KlassId> {
        if let Some(k) = self.by_name(name) {
            return Ok(k.id);
        }
        // Array classes are synthesized.
        if let Some(rest) = name.strip_prefix('[') {
            let kind = match rest.chars().next() {
                Some('L') => KlassKind::RefArray,
                Some(c) => {
                    let p = PrimType::ALL
                        .into_iter()
                        .find(|p| p.descriptor() == c)
                        .ok_or_else(|| Error::ClassNotFound(name.to_owned()))?;
                    KlassKind::PrimArray(p)
                }
                None => return Err(Error::ClassNotFound(name.to_owned())),
            };
            // Ensure element class of ref arrays is loadable too (matches
            // JVM behaviour and keeps descriptor chains meaningful).
            if let KlassKind::RefArray = kind {
                let elem = &rest[1..rest.len() - 1];
                if elem != OBJECT {
                    self.load(elem, classpath, spec)?;
                }
            }
            let object_id = self.ensure_object(classpath, spec)?;
            return self.insert(name.to_owned(), Some(object_id), kind, Vec::new(), spec);
        }

        let def = classpath.lookup(name).ok_or_else(|| Error::ClassNotFound(name.to_owned()))?;
        let super_id = match &def.super_name {
            Some(s) => Some(self.load(s, classpath, spec)?),
            None => {
                if name == OBJECT {
                    None
                } else {
                    Some(self.ensure_object(classpath, spec)?)
                }
            }
        };
        let fields: Vec<(String, FieldType)> = def.fields.clone();
        self.insert_instance(name.to_owned(), super_id, fields, spec)
    }

    fn ensure_object(&self, classpath: &ClassPath, spec: LayoutSpec) -> Result<KlassId> {
        if let Some(k) = self.by_name(OBJECT) {
            return Ok(k.id);
        }
        if classpath.lookup(OBJECT).is_none() {
            classpath.define(KlassDef::new(OBJECT, None, vec![]));
        }
        self.load(OBJECT, classpath, spec)
    }

    fn insert_instance(
        &self,
        name: String,
        super_id: Option<KlassId>,
        own_fields: Vec<(String, FieldType)>,
        spec: LayoutSpec,
    ) -> Result<KlassId> {
        // Super fields (already laid out) come first; own fields are packed
        // size-descending after the super's payload end (HotSpot-style).
        let (mut fields, mut cursor, mut chain) = match super_id {
            Some(sid) => {
                let sk = self.get(sid)?;
                let end = sk
                    .fields
                    .iter()
                    .map(|f| f.offset + u64::from(f.ty.size()))
                    .max()
                    .unwrap_or(spec.instance_header());
                (sk.fields.clone(), end, sk.descriptor_chain.clone())
            }
            None => (Vec::new(), spec.instance_header(), Vec::new()),
        };
        chain.insert(0, name.clone());

        let mut own: Vec<(String, FieldType)> = own_fields;
        own.sort_by(|a, b| b.1.size().cmp(&a.1.size()).then_with(|| a.0.cmp(&b.0)));
        for (fname, ty) in own {
            let size = u64::from(ty.size());
            cursor = (cursor + size - 1) & !(size - 1); // align to field size
            fields.push(Field { name: fname, ty, offset: cursor, declared_in: name.clone() });
            cursor += size;
        }
        let instance_size = align8(cursor);

        let mut field_index = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if field_index.insert(f.name.clone(), i).is_some() {
                return Err(Error::DuplicateField { class: name, field: f.name.clone() });
            }
        }

        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_name.get(&name) {
            return Ok(id); // lost a benign race
        }
        let id = KlassId(inner.klasses.len() as u32);
        inner.klasses.push(Arc::new(Klass {
            id,
            name: name.clone(),
            super_id,
            kind: KlassKind::Instance,
            fields,
            field_index,
            instance_size,
            descriptor_chain: chain,
            tid: AtomicU32::new(TID_UNSET),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
        }));
        inner.by_name.insert(name, id);
        Ok(id)
    }

    fn insert(
        &self,
        name: String,
        super_id: Option<KlassId>,
        kind: KlassKind,
        fields: Vec<Field>,
        _spec: LayoutSpec,
    ) -> Result<KlassId> {
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_name.get(&name) {
            return Ok(id);
        }
        let id = KlassId(inner.klasses.len() as u32);
        let chain = vec![name.clone(), OBJECT.to_owned()];
        inner.klasses.push(Arc::new(Klass {
            id,
            name: name.clone(),
            super_id,
            kind,
            fields,
            field_index: HashMap::new(),
            instance_size: 0,
            descriptor_chain: chain,
            tid: AtomicU32::new(TID_UNSET),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
        }));
        inner.by_name.insert(name, id);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp() -> Arc<ClassPath> {
        let cp = ClassPath::new();
        cp.define(KlassDef::new(
            "Point",
            None,
            vec![("x", FieldType::Prim(PrimType::Int)), ("y", FieldType::Prim(PrimType::Int))],
        ));
        cp.define(KlassDef::new(
            "Point3D",
            Some("Point"),
            vec![("z", FieldType::Prim(PrimType::Int))],
        ));
        cp.define(KlassDef::new(
            "Mixed",
            None,
            vec![
                ("flag", FieldType::Prim(PrimType::Bool)),
                ("big", FieldType::Prim(PrimType::Long)),
                ("small", FieldType::Prim(PrimType::Short)),
                ("next", FieldType::Ref),
                ("val", FieldType::Prim(PrimType::Int)),
            ],
        ));
        cp
    }

    #[test]
    fn loads_with_implicit_object_super() {
        let cp = cp();
        let t = KlassTable::new();
        let id = t.load("Point", &cp, LayoutSpec::SKYWAY).unwrap();
        let k = t.get(id).unwrap();
        assert_eq!(k.super_id, Some(t.by_name(OBJECT).unwrap().id));
        assert_eq!(k.descriptor_chain, vec!["Point".to_owned(), OBJECT.to_owned()]);
    }

    #[test]
    fn packs_fields_size_descending() {
        let cp = cp();
        let t = KlassTable::new();
        let id = t.load("Mixed", &cp, LayoutSpec::SKYWAY).unwrap();
        let k = t.get(id).unwrap();
        // header = 24; 8-byte fields first (big, next by name), then int,
        // short, bool.
        let off = |n: &str| k.field_by_name(n).unwrap().offset;
        assert_eq!(off("big"), 24);
        assert_eq!(off("next"), 32);
        assert_eq!(off("val"), 40);
        assert_eq!(off("small"), 44);
        assert_eq!(off("flag"), 46);
        assert_eq!(k.instance_size, 48);
    }

    #[test]
    fn subclass_layout_appends_after_super() {
        let cp = cp();
        let t = KlassTable::new();
        let id = t.load("Point3D", &cp, LayoutSpec::SKYWAY).unwrap();
        let k = t.get(id).unwrap();
        assert_eq!(k.field_by_name("x").unwrap().offset, 24);
        assert_eq!(k.field_by_name("y").unwrap().offset, 28);
        assert_eq!(k.field_by_name("z").unwrap().offset, 32);
        assert_eq!(k.instance_size, 40);
        assert_eq!(
            k.descriptor_chain,
            vec!["Point3D".to_owned(), "Point".to_owned(), OBJECT.to_owned()]
        );
    }

    #[test]
    fn stock_layout_is_8_bytes_smaller() {
        let cp = cp();
        let t = KlassTable::new();
        let id = t.load("Point", &cp, LayoutSpec::STOCK).unwrap();
        let k = t.get(id).unwrap();
        assert_eq!(k.field_by_name("x").unwrap().offset, 16);
        assert_eq!(k.instance_size, 24);
    }

    #[test]
    fn array_classes_synthesized() {
        let cp = cp();
        let t = KlassTable::new();
        let ia = t.load("[I", &cp, LayoutSpec::SKYWAY).unwrap();
        assert_eq!(t.get(ia).unwrap().kind, KlassKind::PrimArray(PrimType::Int));
        assert_eq!(t.get(ia).unwrap().elem_size().unwrap(), 4);
        let ra = t.load("[LPoint;", &cp, LayoutSpec::SKYWAY).unwrap();
        assert_eq!(t.get(ra).unwrap().kind, KlassKind::RefArray);
        // Element class got loaded too.
        assert!(t.by_name("Point").is_some());
    }

    #[test]
    fn unknown_class_errors() {
        let cp = cp();
        let t = KlassTable::new();
        assert!(matches!(t.load("NoSuch", &cp, LayoutSpec::SKYWAY), Err(Error::ClassNotFound(_))));
    }

    #[test]
    fn tid_roundtrip() {
        let cp = cp();
        let t = KlassTable::new();
        let id = t.load("Point", &cp, LayoutSpec::SKYWAY).unwrap();
        let k = t.get(id).unwrap();
        assert_eq!(k.tid(), None);
        k.set_tid(42);
        assert_eq!(k.tid(), Some(42));
    }

    #[test]
    fn reload_is_idempotent() {
        let cp = cp();
        let t = KlassTable::new();
        let a = t.load("Point3D", &cp, LayoutSpec::SKYWAY).unwrap();
        let b = t.load("Point3D", &cp, LayoutSpec::SKYWAY).unwrap();
        assert_eq!(a, b);
    }
}
