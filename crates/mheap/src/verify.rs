//! Heap verification and statistics: structural invariant checking and
//! per-class histograms.
//!
//! The verifier is the debugging backstop for everything that writes raw
//! memory (the GC, Skyway's receiver): it walks every allocated space and
//! checks that each object parses, that every reference lands on a valid
//! object header, and that no GC forwarding state leaks out of a
//! collection. The histogram is the `jmap -histo` analogue used by the
//! memory-overhead experiment and by tests asserting what a transfer
//! actually materialized.

use std::collections::HashMap;

use crate::heap::Gen;
use crate::layout::{mark, Addr};
use crate::vm::Vm;
use crate::{Error, Result};

/// One structural problem found by [`Vm::verify_heap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapFault {
    /// An object's klass word does not name a loaded klass.
    BadKlassWord {
        /// Object address.
        obj: u64,
        /// The bogus klass word.
        word: u64,
    },
    /// A reference field points outside every allocated region.
    DanglingRef {
        /// Referencing object.
        obj: u64,
        /// Slot offset within the object.
        offset: u64,
        /// The dangling target.
        target: u64,
    },
    /// A reference points into an allocated region but not at an object
    /// header.
    MisalignedRef {
        /// Referencing object.
        obj: u64,
        /// Slot offset.
        offset: u64,
        /// The misaligned target.
        target: u64,
    },
    /// A mark word still carries a GC forwarding pointer outside a
    /// collection.
    StrayForwarding {
        /// Object address.
        obj: u64,
    },
    /// An old-generation object holds a young-generation reference but
    /// overlaps no dirty card — a minor GC would miss the reference and
    /// collect (or move) its target. This is what a skipped write barrier
    /// or a skipped [`crate::heap::Heap::dirty_card_batch`] after bulk
    /// absorption looks like.
    StaleCard {
        /// The old-generation object.
        obj: u64,
        /// The young-generation target the remembered set is missing.
        target: u64,
    },
    /// An attached sealed segment's bytes no longer match its seal-time
    /// checksum — something wrote into memory that every attacher relies
    /// on being immutable (the arena mapping rejects in-heap stores, so
    /// this means out-of-band tampering through a raw handle).
    TamperedSegment {
        /// Base of the tampered segment.
        base: u64,
    },
    /// A reference inside a sealed segment escapes the segment. Segments
    /// must be self-contained: an outbound reference would go stale the
    /// moment the owning heap's GC moved the referent, because no GC ever
    /// scans or patches sealed segment memory.
    SegmentEscapingRef {
        /// The segment-resident object.
        obj: u64,
        /// Slot offset within the object.
        offset: u64,
        /// The out-of-segment target.
        target: u64,
    },
}

impl std::fmt::Display for HeapFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapFault::BadKlassWord { obj, word } => {
                write!(f, "object {obj:#x} has bogus klass word {word:#x}")
            }
            HeapFault::DanglingRef { obj, offset, target } => {
                write!(f, "object {obj:#x}+{offset} references unallocated {target:#x}")
            }
            HeapFault::MisalignedRef { obj, offset, target } => {
                write!(f, "object {obj:#x}+{offset} references non-header address {target:#x}")
            }
            HeapFault::StrayForwarding { obj } => {
                write!(f, "object {obj:#x} carries a stray GC forwarding pointer")
            }
            HeapFault::StaleCard { obj, target } => {
                write!(
                    f,
                    "old-gen object {obj:#x} references young-gen {target:#x} but lies on no \
                     dirty card"
                )
            }
            HeapFault::TamperedSegment { base } => {
                write!(f, "sealed segment {base:#x} fails its seal-time checksum")
            }
            HeapFault::SegmentEscapingRef { obj, offset, target } => {
                write!(
                    f,
                    "segment object {obj:#x}+{offset} references {target:#x} outside its sealed \
                     segment"
                )
            }
        }
    }
}

/// Per-class allocation statistics (one row of [`Vm::class_histogram`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStat {
    /// Class name.
    pub class: String,
    /// Live instances found.
    pub instances: u64,
    /// Total bytes (headers + payload + padding).
    pub bytes: u64,
}

impl Vm {
    /// Walks every allocated region and returns all structural faults
    /// found (empty = heap is well-formed).
    ///
    /// # Errors
    /// Only on arena access failures — faults are *returned*, not raised,
    /// so tests can assert on them.
    pub fn verify_heap(&self) -> Result<Vec<HeapFault>> {
        let mut faults = Vec::new();
        // First pass: collect every valid object start.
        let mut starts: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut objs: Vec<Addr> = Vec::new();
        let walk = self.walk_heap(|_, a, _| {
            starts.insert(a.0);
            objs.push(a);
            Ok(())
        });
        if walk.is_err() {
            // A parse failure means a corrupt klass word somewhere; report
            // the first object whose klass fails to resolve below.
            objs.clear();
            starts.clear();
            let mut spaces = Vec::new();
            {
                let (eden, from, _, old) = self.heap().spaces();
                spaces.push((eden.start, eden.top));
                spaces.push((from.start, from.top));
                spaces.push((old.start, old.top));
            }
            for (start, top) in spaces {
                let mut at = start;
                while at < top {
                    let w = self.heap().arena().load_word(at)?;
                    if w == crate::heap::FILLER_WORD {
                        at += 8;
                        continue;
                    }
                    match self.klass_of(Addr(at)) {
                        Ok(_) => {
                            let size = self.obj_size(Addr(at))?;
                            starts.insert(at);
                            objs.push(Addr(at));
                            at += size;
                        }
                        Err(_) => {
                            let kw = self.heap().arena().load_word(at + self.spec().klass_off())?;
                            faults.push(HeapFault::BadKlassWord { obj: at, word: kw });
                            // Cannot size an unknown object; stop this space.
                            break;
                        }
                    }
                }
            }
        }
        // Attached segments: walk each linearly so references into them
        // resolve to valid headers, and check the first sharing invariant
        // (immutability) against the seal-time checksum. The second
        // invariant (self-containment) is checked per reference below.
        for seg in self.heap().attached_segments() {
            if !seg.verify_checksum() {
                faults.push(HeapFault::TamperedSegment { base: seg.base() });
            }
            let end = seg.base() + seg.len();
            let mut at = seg.base();
            while at < end {
                let w = self.heap().arena().load_word(at)?;
                if w == crate::heap::FILLER_WORD {
                    at += 8;
                    continue;
                }
                match self.klass_of(Addr(at)).and_then(|_| self.obj_size(Addr(at))) {
                    Ok(size) => {
                        starts.insert(at);
                        objs.push(Addr(at));
                        at += size;
                    }
                    Err(_) => {
                        let kw = self.heap().arena().load_word(at + self.spec().klass_off())?;
                        faults.push(HeapFault::BadKlassWord { obj: at, word: kw });
                        // Cannot size an unknown object; stop this segment.
                        break;
                    }
                }
            }
        }
        // Second pass: check marks and references.
        for &obj in &objs {
            let m = self.heap().arena().load_word(obj.0)?;
            if mark::is_forwarded(m) {
                faults.push(HeapFault::StrayForwarding { obj: obj.0 });
                continue;
            }
            let home_seg = self.heap().segment_for(obj);
            let mut young_target: Option<Addr> = None;
            for off in self.ref_slots(obj)? {
                let tgt = self.read_ref_at(obj, off)?;
                if tgt.is_null() {
                    continue;
                }
                if self.heap().gen_of(tgt).is_err() {
                    faults.push(HeapFault::DanglingRef { obj: obj.0, offset: off, target: tgt.0 });
                } else if let Some(seg) = home_seg {
                    // Self-containment: a segment-resident reference must
                    // stay inside its own sealed segment.
                    if !seg.contains(tgt) {
                        faults.push(HeapFault::SegmentEscapingRef {
                            obj: obj.0,
                            offset: off,
                            target: tgt.0,
                        });
                    } else if !starts.contains(&tgt.0) {
                        faults.push(HeapFault::MisalignedRef {
                            obj: obj.0,
                            offset: off,
                            target: tgt.0,
                        });
                    }
                } else if !starts.contains(&tgt.0) {
                    faults.push(HeapFault::MisalignedRef {
                        obj: obj.0,
                        offset: off,
                        target: tgt.0,
                    });
                } else if young_target.is_none() && self.heap().in_young(tgt) {
                    young_target = Some(tgt);
                }
            }
            // Card-table consistency: an old-gen object with a young-gen
            // reference must overlap at least one dirty card, or the next
            // minor GC will miss it. Same overlap predicate the minor-GC
            // card scan uses.
            if let Some(tgt) = young_target {
                if self.heap().in_old(obj) {
                    let size = self.obj_size(obj)?;
                    let mut card = obj.0 & !(crate::heap::CARD_SIZE - 1);
                    let end = obj.0 + size;
                    let mut remembered = false;
                    while card < end {
                        if self.heap().is_card_dirty(Addr(card.max(obj.0))) {
                            remembered = true;
                            break;
                        }
                        card += crate::heap::CARD_SIZE;
                    }
                    if !remembered {
                        faults.push(HeapFault::StaleCard { obj: obj.0, target: tgt.0 });
                    }
                }
            }
        }
        Ok(faults)
    }

    /// `jmap -histo` analogue: per-class instance counts and byte totals
    /// over all allocated objects (live or not — allocation order, like a
    /// heap dump), sorted by bytes descending.
    ///
    /// # Errors
    /// Heap walking errors.
    pub fn class_histogram(&self) -> Result<Vec<ClassStat>> {
        let mut m: HashMap<String, (u64, u64)> = HashMap::new();
        self.walk_heap(|vm, a, size| {
            let k = vm.klass_of(a)?;
            let e = m.entry(k.name.clone()).or_insert((0, 0));
            e.0 += 1;
            e.1 += size;
            Ok(())
        })?;
        let mut out: Vec<ClassStat> = m
            .into_iter()
            .map(|(class, (instances, bytes))| ClassStat { class, instances, bytes })
            .collect();
        out.sort_by(|a, b| b.bytes.cmp(&a.bytes).then_with(|| a.class.cmp(&b.class)));
        Ok(out)
    }

    /// Bytes of live data per generation `(young, old)` (diagnostics for
    /// input-buffer placement assertions).
    ///
    /// # Errors
    /// Heap walking errors.
    pub fn bytes_per_gen(&self) -> Result<(u64, u64)> {
        let mut young = 0;
        let mut old = 0;
        self.walk_heap(|vm, a, size| {
            match vm.heap().gen_of(a)? {
                Gen::Young => young += size,
                Gen::Old => old += size,
                // walk_heap never enters attached segments.
                Gen::Segment => {}
            }
            Ok(())
        })?;
        Ok((young, old))
    }
}

/// Convenience: asserts a well-formed heap, panicking with the fault list
/// otherwise (test helper).
///
/// # Panics
/// Panics if any fault is found or the walk fails.
pub fn assert_heap_ok(vm: &Vm) {
    let faults = vm.verify_heap().expect("heap walk failed"); // tidy:allow(panic, documented test helper; panicking is its API)
    assert!(faults.is_empty(), "heap faults: {faults:?}");
}

/// Suppresses the unused-import lint for Error in this module's signature
/// position (kept for future fault-raising verifier variants).
#[allow(dead_code)]
fn _error_is_used(e: Error) -> Error {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use crate::klass::{ClassPath, FieldType, KlassDef, PrimType};
    use crate::segment::{Segment, SegmentBuilder};
    use crate::stdlib::define_core_classes;
    use crate::HeapConfig;

    fn vm() -> Vm {
        let cp = ClassPath::new();
        define_core_classes(&cp);
        cp.define(KlassDef::new(
            "VNode",
            None,
            vec![("id", FieldType::Prim(PrimType::Int)), ("next", FieldType::Ref)],
        ));
        Vm::new("verify", &HeapConfig::small(), cp).unwrap()
    }

    #[test]
    fn clean_heap_verifies() {
        let mut v = vm();
        let s = v.new_string("ok").unwrap();
        let _h = v.handle(s);
        let list = v.new_list(4).unwrap();
        let lh = v.handle(list);
        let s2 = v.new_string("two").unwrap();
        let list = v.resolve(lh).unwrap();
        v.list_push(list, s2).unwrap();
        assert_heap_ok(&v);
        v.minor_gc().unwrap();
        assert_heap_ok(&v);
        v.full_gc().unwrap();
        assert_heap_ok(&v);
    }

    #[test]
    fn dangling_ref_detected() {
        let mut v = vm();
        let k = v.load_class("VNode").unwrap();
        let n = v.alloc_instance(k).unwrap();
        let _h = v.handle(n);
        // Forge a reference beyond the heap.
        let f = v.klasses().get(k).unwrap().field_by_name("next").unwrap().clone();
        v.heap().arena().store_word(n.0 + f.offset, v.heap().capacity() + 64).unwrap();
        let faults = v.verify_heap().unwrap();
        assert!(matches!(faults.as_slice(), [HeapFault::DanglingRef { .. }]));
    }

    #[test]
    fn misaligned_ref_detected() {
        let mut v = vm();
        let k = v.load_class("VNode").unwrap();
        let a = v.alloc_instance(k).unwrap();
        let ah = v.handle(a);
        let b = v.alloc_instance(k).unwrap();
        let a = v.resolve(ah).unwrap();
        // Point at b's interior rather than its header.
        let f = v.klasses().get(k).unwrap().field_by_name("next").unwrap().clone();
        v.heap().arena().store_word(a.0 + f.offset, b.0 + 8).unwrap();
        let faults = v.verify_heap().unwrap();
        assert!(matches!(faults.as_slice(), [HeapFault::MisalignedRef { .. }]));
    }

    #[test]
    fn bad_klass_word_detected() {
        let mut v = vm();
        let k = v.load_class("VNode").unwrap();
        let n = v.alloc_instance(k).unwrap();
        let _h = v.handle(n);
        // Forge a klass word that names no loaded klass.
        let off = v.spec().klass_off();
        v.heap().arena().store_word(n.0 + off, 0xdead_beef).unwrap();
        let faults = v.verify_heap().unwrap();
        assert!(matches!(faults.as_slice(), [HeapFault::BadKlassWord { word: 0xdead_beef, .. }]));
    }

    #[test]
    fn stray_forwarding_detected() {
        let mut v = vm();
        let k = v.load_class("VNode").unwrap();
        let a = v.alloc_instance(k).unwrap();
        let _ha = v.handle(a);
        let b = v.alloc_instance(k).unwrap();
        let _hb = v.handle(b);
        // Leak a GC forwarding pointer outside a collection.
        v.heap().arena().store_word(a.0, mark::forward_to(b.0)).unwrap();
        let faults = v.verify_heap().unwrap();
        assert!(matches!(faults.as_slice(), [HeapFault::StrayForwarding { obj }] if *obj == a.0));
    }

    #[test]
    fn stale_card_detected_and_cured_by_dirty_card_batch() {
        let mut v = vm();
        let k = v.load_class("VNode").unwrap();
        // Tenure one node into the old generation; after the collections
        // its cards are clean (it holds no young refs).
        let a = v.alloc_instance(k).unwrap();
        let ha = v.handle(a);
        for _ in 0..10 {
            v.minor_gc().unwrap();
        }
        let a = v.resolve(ha).unwrap();
        assert!(v.heap().in_old(a));
        // A young node, referenced from the old one via a raw store that
        // bypasses the write barrier — exactly the corruption a skipped
        // Heap::dirty_card_batch after bulk absorption would leave behind.
        let b = v.alloc_instance(k).unwrap();
        let _hb = v.handle(b);
        assert!(v.heap().in_young(b));
        let f = v.klasses().get(k).unwrap().field_by_name("next").unwrap().clone();
        v.heap().arena().store_word(a.0 + f.offset, b.0).unwrap();
        let faults = v.verify_heap().unwrap();
        assert!(
            matches!(faults.as_slice(),
                     [HeapFault::StaleCard { obj, target }] if *obj == a.0 && *target == b.0),
            "expected StaleCard, got {faults:?}"
        );
        // Batch-dirtying the absorbed range (what the receiver does in
        // finish()) restores the remembered-set invariant.
        let size = v.obj_size(a).unwrap();
        v.heap_mut().dirty_card_batch(&[(a, size)]);
        assert_heap_ok(&v);
        // And the next minor GC must now see (and keep) the young target.
        v.minor_gc().unwrap();
        assert_heap_ok(&v);
    }

    /// Seals a one-`VNode` segment by copying a freshly allocated VNode's
    /// bytes into store-owned memory, rewriting its klass word to a Skyway
    /// global tid (77) and its `next` slot to `next` (a global address).
    fn seal_one_vnode(v: &mut Vm, next: Addr) -> Arc<Segment> {
        let k = v.load_class("VNode").unwrap();
        let n = v.alloc_instance(k).unwrap();
        let size = v.obj_size(n).unwrap();
        let mut bytes = vec![0u8; size as usize];
        v.heap().arena().read_bytes(n.0, &mut bytes).unwrap();
        let mut b = SegmentBuilder::new(size).unwrap();
        b.write_bytes(0, &bytes).unwrap();
        b.store_word(v.spec().klass_off(), 77).unwrap();
        b.record_tid(77, "VNode");
        let f = v.klasses().get(k).unwrap().field_by_name("next").unwrap().clone();
        b.store_word(f.offset, next.0).unwrap();
        let root = Addr(b.base());
        b.push_root(root);
        b.seal().unwrap()
    }

    #[test]
    fn attached_segment_verifies_reads_and_rejects_writes() {
        let mut v = vm();
        let seg = seal_one_vnode(&mut v, Addr(0));
        let base = seg.base();
        v.heap_mut().attach_segment(seg).unwrap();
        assert_heap_ok(&v);
        let root = Addr(base);
        assert!(matches!(v.gen_of(root), Ok(Gen::Segment)));
        // Reads resolve through the mapping; the klass word resolves via
        // the seal-time tid map.
        assert_eq!(v.klass_of(root).unwrap().name, "VNode");
        assert!(v.read_ref_at(root, 8).is_ok());
        // Writes into sealed memory are rejected by the arena routing.
        let k = v.load_class("VNode").unwrap();
        let f = v.klasses().get(k).unwrap().field_by_name("next").unwrap().clone();
        assert!(matches!(
            v.write_ref_at(root, f.offset, Addr(0)),
            Err(Error::SegmentReadOnly { .. })
        ));
        assert_heap_ok(&v);
        // After detach the addresses are gone.
        v.heap_mut().detach_segment(base).unwrap();
        assert!(v.gen_of(root).is_err());
        assert_heap_ok(&v);
    }

    #[test]
    fn tampered_segment_detected() {
        let mut v = vm();
        let seg = seal_one_vnode(&mut v, Addr(0));
        let base = seg.base();
        let raw = Arc::clone(&seg);
        v.heap_mut().attach_segment(seg).unwrap();
        assert_heap_ok(&v);
        // Forge a write through the store's raw handle — the attacher-side
        // mapping would have rejected it, so only the checksum catches it.
        let k = v.load_class("VNode").unwrap();
        let f = v.klasses().get(k).unwrap().field_by_name("id").unwrap().clone();
        raw.raw_mem().store_u32(f.offset, 999).unwrap();
        let faults = v.verify_heap().unwrap();
        assert!(
            matches!(faults.as_slice(), [HeapFault::TamperedSegment { base: b }] if *b == base),
            "expected TamperedSegment, got {faults:?}"
        );
    }

    #[test]
    fn segment_escaping_ref_detected() {
        let mut v = vm();
        let k = v.load_class("VNode").unwrap();
        let owned = v.alloc_instance(k).unwrap();
        let _h = v.handle(owned);
        // Seal a segment whose `next` escapes into the owned heap — the
        // self-containment invariant every GC relies on is broken.
        let seg = seal_one_vnode(&mut v, owned);
        v.heap_mut().attach_segment(seg).unwrap();
        let faults = v.verify_heap().unwrap();
        assert!(
            matches!(
                faults.as_slice(),
                [HeapFault::SegmentEscapingRef { target, .. }] if *target == owned.0
            ),
            "expected SegmentEscapingRef, got {faults:?}"
        );
    }

    #[test]
    fn histogram_counts_classes() {
        let mut v = vm();
        for i in 0..10 {
            let s = v.new_string(&format!("s{i}")).unwrap();
            let _ = v.handle(s);
        }
        let hist = v.class_histogram().unwrap();
        let strings = hist.iter().find(|c| c.class == "java.lang.String").unwrap();
        assert_eq!(strings.instances, 10);
        let chars = hist.iter().find(|c| c.class == "[C").unwrap();
        assert_eq!(chars.instances, 10);
        assert!(chars.bytes >= 10 * 32);
    }

    #[test]
    fn bytes_per_gen_tracks_tenuring() {
        let mut v = vm();
        let s = v.new_string("tenure me").unwrap();
        let _h = v.handle(s);
        let (y0, o0) = v.bytes_per_gen().unwrap();
        assert!(y0 > 0);
        assert_eq!(o0, 0);
        for _ in 0..10 {
            v.minor_gc().unwrap();
        }
        let (y1, o1) = v.bytes_per_gen().unwrap();
        assert_eq!(y1, 0);
        assert!(o1 > 0);
    }
}
