//! An in-heap "java.lang / java.util" core: strings, boxed primitives,
//! pairs, growable lists, and an identity-hash `HashMap`.
//!
//! The `HashMap` matters to the evaluation: its bucket placement is keyed by
//! the identity hashcode *cached in each key's mark word*. A conventional
//! deserializer creates brand-new key objects with brand-new hashcodes, so
//! the map must be rebuilt (rehashed) on the receiver; Skyway preserves mark
//! words, so the received map is usable as-is (§1, §4.2 "Header Update").
//! The ablation benchmark quantifies exactly that difference.

use std::sync::Arc;

use crate::klass::{ClassPath, FieldType, KlassDef, PrimType};
use crate::layout::Addr;
use crate::vm::Vm;
use crate::{Error, Result};

/// Class name of the in-heap string.
pub const STRING: &str = "java.lang.String";
/// Class name of the boxed 32-bit integer.
pub const INTEGER: &str = "java.lang.Integer";
/// Class name of the boxed 64-bit integer.
pub const LONG: &str = "java.lang.Long";
/// Class name of the boxed double.
pub const DOUBLE: &str = "java.lang.Double";
/// Class name of the generic pair.
pub const PAIR: &str = "util.Pair";
/// Class name of the growable list.
pub const ARRAY_LIST: &str = "java.util.ArrayList";
/// Class name of the identity-hash map.
pub const HASH_MAP: &str = "java.util.HashMap";
/// Class name of a hash-map chain node.
pub const HASH_NODE: &str = "java.util.HashMap$Node";

/// Registers all core class definitions on a classpath. Idempotent.
pub fn define_core_classes(cp: &Arc<ClassPath>) {
    cp.define_all([
        KlassDef::new(
            STRING,
            None,
            vec![("value", FieldType::Ref), ("hash", FieldType::Prim(PrimType::Int))],
        ),
        KlassDef::new(INTEGER, None, vec![("value", FieldType::Prim(PrimType::Int))]),
        KlassDef::new(LONG, None, vec![("value", FieldType::Prim(PrimType::Long))]),
        KlassDef::new(DOUBLE, None, vec![("value", FieldType::Prim(PrimType::Double))]),
        KlassDef::new(PAIR, None, vec![("first", FieldType::Ref), ("second", FieldType::Ref)]),
        KlassDef::new(
            ARRAY_LIST,
            None,
            vec![("elementData", FieldType::Ref), ("size", FieldType::Prim(PrimType::Int))],
        ),
        KlassDef::new(
            HASH_MAP,
            None,
            vec![("table", FieldType::Ref), ("size", FieldType::Prim(PrimType::Int))],
        ),
        KlassDef::new(
            HASH_NODE,
            None,
            vec![
                ("hash", FieldType::Prim(PrimType::Int)),
                ("key", FieldType::Ref),
                ("value", FieldType::Ref),
                ("next", FieldType::Ref),
            ],
        ),
    ]);
}

impl Vm {
    // ----- strings ------------------------------------------------------

    /// Allocates an in-heap string with a value-based cached hash (Java's
    /// `String.hashCode` formula over UTF-16 units).
    ///
    /// # Errors
    /// Allocation / class errors.
    pub fn new_string(&mut self, s: &str) -> Result<Addr> {
        let char_klass = self.load_class("[C")?;
        let units: Vec<u16> = s.encode_utf16().collect();
        let arr = self.alloc_array(char_klass, units.len() as u64)?;
        for (i, u) in units.iter().enumerate() {
            self.array_set_raw(arr, i as u64, u64::from(*u))?;
        }
        let t = self.push_temp_root(arr);
        let str_klass = self.load_class(STRING)?;
        let obj = self.alloc_instance(str_klass)?;
        let arr = self.temp_root(t);
        self.pop_temp_root();
        self.set_ref(obj, "value", arr)?;
        let mut h: i32 = 0;
        for u in &units {
            h = h.wrapping_mul(31).wrapping_add(i32::from(*u as i16));
        }
        self.set_int(obj, "hash", h)?;
        Ok(obj)
    }

    /// Reads an in-heap string back into a Rust `String`.
    ///
    /// # Errors
    /// Address / class errors; lossy for unpaired surrogates (replacement
    /// character), mirroring `String::from_utf16_lossy`.
    pub fn read_string(&self, obj: Addr) -> Result<String> {
        let arr = self.get_ref(obj, "value")?;
        if arr.is_null() {
            return Err(Error::BadAddress(0));
        }
        let len = self.array_len(arr)?;
        let mut units = Vec::with_capacity(len as usize);
        for i in 0..len {
            units.push(self.array_get_raw(arr, i)? as u16);
        }
        Ok(String::from_utf16_lossy(&units))
    }

    /// The value-based hash cached in a string object.
    ///
    /// # Errors
    /// Address / field errors.
    pub fn string_hash(&self, obj: Addr) -> Result<i32> {
        self.get_int(obj, "hash")
    }

    // ----- boxed primitives ----------------------------------------------

    /// Boxes an `i32`.
    ///
    /// # Errors
    /// Allocation errors.
    pub fn new_integer(&mut self, v: i32) -> Result<Addr> {
        let k = self.load_class(INTEGER)?;
        let obj = self.alloc_instance(k)?;
        self.set_int(obj, "value", v)?;
        Ok(obj)
    }

    /// Boxes an `i64`.
    ///
    /// # Errors
    /// Allocation errors.
    pub fn new_long(&mut self, v: i64) -> Result<Addr> {
        let k = self.load_class(LONG)?;
        let obj = self.alloc_instance(k)?;
        self.set_long(obj, "value", v)?;
        Ok(obj)
    }

    /// Boxes an `f64`.
    ///
    /// # Errors
    /// Allocation errors.
    pub fn new_double(&mut self, v: f64) -> Result<Addr> {
        let k = self.load_class(DOUBLE)?;
        let obj = self.alloc_instance(k)?;
        self.set_double(obj, "value", v)?;
        Ok(obj)
    }

    /// Allocates a pair of references.
    ///
    /// # Errors
    /// Allocation errors.
    pub fn new_pair(&mut self, first: Addr, second: Addr) -> Result<Addr> {
        let tf = self.push_temp_root(first);
        let ts = self.push_temp_root(second);
        let k = self.load_class(PAIR)?;
        let obj = self.alloc_instance(k)?;
        let second = self.temp_root(ts);
        let first = self.temp_root(tf);
        self.pop_temp_root();
        self.pop_temp_root();
        self.set_ref(obj, "first", first)?;
        self.set_ref(obj, "second", second)?;
        Ok(obj)
    }

    // ----- ArrayList ------------------------------------------------------

    /// Allocates an empty list with the given capacity.
    ///
    /// # Errors
    /// Allocation errors.
    pub fn new_list(&mut self, capacity: u64) -> Result<Addr> {
        let arr_k = self.load_class("[Ljava.lang.Object;")?;
        let data = self.alloc_array(arr_k, capacity.max(4))?;
        let t = self.push_temp_root(data);
        let k = self.load_class(ARRAY_LIST)?;
        let list = self.alloc_instance(k)?;
        let data = self.temp_root(t);
        self.pop_temp_root();
        self.set_ref(list, "elementData", data)?;
        self.set_int(list, "size", 0)?;
        Ok(list)
    }

    /// Appends `elem`, growing the backing array if needed. Returns the
    /// (possibly unchanged) list address; note a GC during growth may move
    /// objects, so callers must hold the list in a handle or temp root.
    ///
    /// # Errors
    /// Allocation errors.
    pub fn list_push(&mut self, list: Addr, elem: Addr) -> Result<()> {
        let size = self.get_int(list, "size")? as u64;
        let data = self.get_ref(list, "elementData")?;
        let cap = self.array_len(data)?;
        if size == cap {
            let tl = self.push_temp_root(list);
            let te = self.push_temp_root(elem);
            let td = self.push_temp_root(data);
            let arr_k = self.load_class("[Ljava.lang.Object;")?;
            let bigger = self.alloc_array(arr_k, cap * 2)?;
            let data = self.temp_root(td);
            for i in 0..size {
                let v = self.array_get_ref(data, i)?;
                self.array_set_ref(bigger, i, v)?;
            }
            let list2 = self.temp_root(tl);
            let elem2 = self.temp_root(te);
            self.pop_temp_root();
            self.pop_temp_root();
            self.pop_temp_root();
            self.set_ref(list2, "elementData", bigger)?;
            self.array_set_ref(bigger, size, elem2)?;
            self.set_int(list2, "size", (size + 1) as i32)?;
            return Ok(());
        }
        self.array_set_ref(data, size, elem)?;
        self.set_int(list, "size", (size + 1) as i32)?;
        Ok(())
    }

    /// Number of elements in the list.
    ///
    /// # Errors
    /// Field errors.
    pub fn list_len(&self, list: Addr) -> Result<u64> {
        Ok(self.get_int(list, "size")? as u64)
    }

    /// Element at `idx`.
    ///
    /// # Errors
    /// [`Error::IndexOutOfBounds`].
    pub fn list_get(&self, list: Addr, idx: u64) -> Result<Addr> {
        let size = self.list_len(list)?;
        if idx >= size {
            return Err(Error::IndexOutOfBounds { index: idx, len: size });
        }
        let data = self.get_ref(list, "elementData")?;
        self.array_get_ref(data, idx)
    }

    // ----- identity-hash HashMap -----------------------------------------

    /// Allocates an empty hash map with `buckets` chains.
    ///
    /// # Errors
    /// Allocation errors.
    pub fn new_hash_map(&mut self, buckets: u64) -> Result<Addr> {
        let arr_k = self.load_class("[Ljava.lang.Object;")?;
        let table = self.alloc_array(arr_k, buckets.max(4))?;
        let t = self.push_temp_root(table);
        let k = self.load_class(HASH_MAP)?;
        let map = self.alloc_instance(k)?;
        let table = self.temp_root(t);
        self.pop_temp_root();
        self.set_ref(map, "table", table)?;
        self.set_int(map, "size", 0)?;
        Ok(map)
    }

    /// Inserts `key → value` using the key's identity hashcode (cached in
    /// the key's mark word). Replaces the value if the identical key object
    /// is already present. Returns `true` if a new entry was created.
    ///
    /// # Errors
    /// Allocation errors.
    pub fn map_put(&mut self, map: Addr, key: Addr, value: Addr) -> Result<bool> {
        let h = self.identity_hash(key)?;
        let table = self.get_ref(map, "table")?;
        let nbuckets = self.array_len(table)?;
        let b = u64::from(h) % nbuckets;
        // Search the chain for the identical key object.
        let mut node = self.array_get_ref(table, b)?;
        while !node.is_null() {
            let k = self.get_ref(node, "key")?;
            if k == key {
                self.set_ref(node, "value", value)?;
                return Ok(false);
            }
            node = self.get_ref(node, "next")?;
        }
        let tm = self.push_temp_root(map);
        let tk = self.push_temp_root(key);
        let tv = self.push_temp_root(value);
        let node_k = self.load_class(HASH_NODE)?;
        let node = self.alloc_instance(node_k)?;
        let value = self.temp_root(tv);
        let key = self.temp_root(tk);
        let map = self.temp_root(tm);
        self.pop_temp_root();
        self.pop_temp_root();
        self.pop_temp_root();
        let table = self.get_ref(map, "table")?;
        let head = self.array_get_ref(table, b)?;
        self.set_int(node, "hash", h as i32)?;
        self.set_ref(node, "key", key)?;
        self.set_ref(node, "value", value)?;
        self.set_ref(node, "next", head)?;
        self.array_set_ref(table, b, node)?;
        let size = self.get_int(map, "size")?;
        self.set_int(map, "size", size + 1)?;
        Ok(true)
    }

    /// Looks a key up by identity.
    ///
    /// # Errors
    /// Address errors.
    pub fn map_get(&self, map: Addr, key: Addr) -> Result<Option<Addr>> {
        let h = match self.cached_hash(key)? {
            0 => return Ok(None), // never hashed → never inserted
            h => h,
        };
        let table = self.get_ref(map, "table")?;
        let nbuckets = self.array_len(table)?;
        let mut node = self.array_get_ref(table, u64::from(h) % nbuckets)?;
        while !node.is_null() {
            if self.get_ref(node, "key")? == key {
                return Ok(Some(self.get_ref(node, "value")?));
            }
            node = self.get_ref(node, "next")?;
        }
        Ok(None)
    }

    /// Number of entries.
    ///
    /// # Errors
    /// Field errors.
    pub fn map_len(&self, map: Addr) -> Result<u64> {
        Ok(self.get_int(map, "size")? as u64)
    }

    /// Verifies that every node sits in the bucket its *current* mark-word
    /// hash selects — true for a map Skyway transferred (hashcodes
    /// preserved), generally false for one whose keys were recreated by a
    /// conventional deserializer until it is rehashed.
    ///
    /// # Errors
    /// Address errors.
    pub fn map_is_consistent(&self, map: Addr) -> Result<bool> {
        let table = self.get_ref(map, "table")?;
        let nbuckets = self.array_len(table)?;
        for b in 0..nbuckets {
            let mut node = self.array_get_ref(table, b)?;
            while !node.is_null() {
                let key = self.get_ref(node, "key")?;
                let h = self.cached_hash(key)?;
                if h == 0 || u64::from(h) % nbuckets != b {
                    return Ok(false);
                }
                node = self.get_ref(node, "next")?;
            }
        }
        Ok(true)
    }

    /// Rebuilds the bucket structure from the keys' current identity
    /// hashes — what a conventional deserializer must do after recreating
    /// key objects ("additionally reshuffle key/value pairs", §1).
    /// Returns the number of entries rehashed.
    ///
    /// # Errors
    /// Allocation errors.
    pub fn map_rehash(&mut self, map: Addr) -> Result<u64> {
        let table = self.get_ref(map, "table")?;
        let nbuckets = self.array_len(table)?;
        // Collect all nodes.
        let mut nodes = Vec::new();
        for b in 0..nbuckets {
            let mut node = self.array_get_ref(table, b)?;
            while !node.is_null() {
                nodes.push(node);
                node = self.get_ref(node, "next")?;
            }
        }
        // Clear buckets.
        for b in 0..nbuckets {
            self.array_set_ref(table, b, Addr::NULL)?;
        }
        // Re-insert by current identity hash.
        for &node in &nodes {
            let key = self.get_ref(node, "key")?;
            let h = self.identity_hash(key)?;
            self.set_int(node, "hash", h as i32)?;
            let b = u64::from(h) % nbuckets;
            let head = self.array_get_ref(table, b)?;
            self.set_ref(node, "next", head)?;
            self.array_set_ref(table, b, node)?;
        }
        Ok(nodes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;

    fn vm() -> Vm {
        let cp = ClassPath::new();
        define_core_classes(&cp);
        Vm::new("test", &HeapConfig::small(), cp).unwrap()
    }

    #[test]
    fn string_roundtrip_and_hash() {
        let mut vm = vm();
        let s = vm.new_string("hello skyway").unwrap();
        assert_eq!(vm.read_string(s).unwrap(), "hello skyway");
        // Java's "hello skyway".hashCode() analogue is deterministic.
        let h1 = vm.string_hash(s).unwrap();
        let s2 = vm.new_string("hello skyway").unwrap();
        assert_eq!(h1, vm.string_hash(s2).unwrap());
    }

    #[test]
    fn unicode_string_roundtrip() {
        let mut vm = vm();
        let s = vm.new_string("héllo — 細かい ✓").unwrap();
        assert_eq!(vm.read_string(s).unwrap(), "héllo — 細かい ✓");
    }

    #[test]
    fn boxed_values() {
        let mut vm = vm();
        let i = vm.new_integer(-42).unwrap();
        assert_eq!(vm.get_int(i, "value").unwrap(), -42);
        let l = vm.new_long(i64::MIN).unwrap();
        assert_eq!(vm.get_long(l, "value").unwrap(), i64::MIN);
        let d = vm.new_double(3.25).unwrap();
        assert_eq!(vm.get_double(d, "value").unwrap(), 3.25);
    }

    #[test]
    fn list_grows() {
        let mut vm = vm();
        let list = vm.new_list(2).unwrap();
        let h = vm.handle(list);
        for i in 0..50 {
            let e = vm.new_integer(i).unwrap();
            let list = vm.resolve(h).unwrap();
            vm.list_push(list, e).unwrap();
        }
        let list = vm.resolve(h).unwrap();
        assert_eq!(vm.list_len(list).unwrap(), 50);
        for i in 0..50 {
            let e = vm.list_get(list, i).unwrap();
            assert_eq!(vm.get_int(e, "value").unwrap(), i as i32);
        }
        assert!(vm.list_get(list, 50).is_err());
    }

    #[test]
    fn map_put_get_replace() {
        let mut vm = vm();
        let map = vm.new_hash_map(8).unwrap();
        let mh = vm.handle(map);
        let k1 = vm.new_string("k1").unwrap();
        let k1h = vm.handle(k1);
        let v1 = vm.new_integer(1).unwrap();
        let map = vm.resolve(mh).unwrap();
        let k1 = vm.resolve(k1h).unwrap();
        assert!(vm.map_put(map, k1, v1).unwrap());
        assert_eq!(vm.map_len(map).unwrap(), 1);
        let got = vm.map_get(map, k1).unwrap().unwrap();
        assert_eq!(vm.get_int(got, "value").unwrap(), 1);
        // Replace by identical key.
        let v2 = vm.new_integer(2).unwrap();
        let map = vm.resolve(mh).unwrap();
        let k1 = vm.resolve(k1h).unwrap();
        assert!(!vm.map_put(map, k1, v2).unwrap());
        assert_eq!(vm.map_len(map).unwrap(), 1);
        // A *different* string object with equal content is a different
        // identity key.
        let k1b = vm.new_string("k1").unwrap();
        let map = vm.resolve(mh).unwrap();
        assert!(vm.map_get(map, k1b).unwrap().is_none());
    }

    #[test]
    fn map_consistency_and_rehash() {
        let mut vm = vm();
        let map = vm.new_hash_map(16).unwrap();
        let mh = vm.handle(map);
        let mut keys = Vec::new();
        for i in 0..20 {
            let k = vm.new_integer(i).unwrap();
            keys.push(vm.handle(k));
            let v = vm.new_integer(i * 10).unwrap();
            let map = vm.resolve(mh).unwrap();
            let k = vm.resolve(*keys.last().unwrap()).unwrap();
            vm.map_put(map, k, v).unwrap();
        }
        let map = vm.resolve(mh).unwrap();
        assert!(vm.map_is_consistent(map).unwrap());
        // Simulate a conventional deserializer scrambling identity hashes:
        // zero out the cached hash of one key and give it a fresh one.
        let k0 = vm.resolve(keys[0]).unwrap();
        let m = vm.heap().arena().load_word(k0.0).unwrap();
        vm.heap().arena().store_word(k0.0, crate::layout::mark::with_hash(m, 0)).unwrap();
        vm.identity_hash(k0).unwrap();
        let map = vm.resolve(mh).unwrap();
        // Very likely inconsistent now (hash changed); rehash must fix it.
        vm.map_rehash(map).unwrap();
        assert!(vm.map_is_consistent(map).unwrap());
        assert_eq!(vm.map_len(map).unwrap(), 20);
    }
}
