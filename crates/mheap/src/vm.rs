//! The simulated JVM process: heap + klass table + GC roots.
//!
//! A [`Vm`] owns one managed [`Heap`], one [`KlassTable`], a handle table of
//! GC roots, and a reference to the cluster-shared [`ClassPath`]. All object
//! allocation and field access go through it; collections are triggered
//! automatically when an allocation fails.

use std::sync::Arc;

use crate::heap::{Gen, Heap, HeapConfig, FILLER_WORD};
use crate::klass::{ClassPath, Klass, KlassId, KlassKind, KlassTable};
use crate::layout::{align8, mark, Addr, LayoutSpec};
use crate::{Error, Result};

/// A stable GC root: the handle table is updated when objects move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(pub u32);

#[derive(Debug, Default)]
pub(crate) struct HandleTable {
    pub(crate) slots: Vec<Option<Addr>>,
    free: Vec<u32>,
}

impl HandleTable {
    fn create(&mut self, addr: Addr) -> Handle {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(addr);
            Handle(i)
        } else {
            self.slots.push(Some(addr));
            Handle((self.slots.len() - 1) as u32)
        }
    }

    fn get(&self, h: Handle) -> Result<Addr> {
        self.slots.get(h.0 as usize).copied().flatten().ok_or(Error::BadHandle(h.0))
    }

    fn set(&mut self, h: Handle, addr: Addr) -> Result<()> {
        let slot = self.slots.get_mut(h.0 as usize).ok_or(Error::BadHandle(h.0))?;
        if slot.is_none() {
            return Err(Error::BadHandle(h.0));
        }
        *slot = Some(addr);
        Ok(())
    }

    fn drop_handle(&mut self, h: Handle) -> Result<()> {
        let slot = self.slots.get_mut(h.0 as usize).ok_or(Error::BadHandle(h.0))?;
        if slot.take().is_none() {
            return Err(Error::BadHandle(h.0));
        }
        self.free.push(h.0);
        Ok(())
    }
}

/// GC and allocation statistics of one VM.
#[derive(Debug, Default, Clone, Copy)]
pub struct VmStats {
    /// Completed minor (young) collections.
    pub minor_gcs: u64,
    /// Completed full collections.
    pub full_gcs: u64,
    /// Objects allocated (excluding GC copies).
    pub objects_allocated: u64,
    /// Bytes allocated (excluding GC copies).
    pub bytes_allocated: u64,
    /// Bytes promoted from young to old.
    pub bytes_promoted: u64,
    /// Nanoseconds spent inside collections (the paper's Fig. 3 note: "the
    /// garbage collection cost is less than 2% and thus not shown").
    pub gc_ns: u64,
}

/// A simulated JVM process.
pub struct Vm {
    /// Human-readable node name (e.g. `"worker-2"`).
    pub name: String,
    pub(crate) heap: Heap,
    pub(crate) klasses: KlassTable,
    classpath: Arc<ClassPath>,
    pub(crate) handles: HandleTable,
    pub(crate) temp_roots: Vec<Addr>,
    /// Statistics (public for reporting).
    pub stats: VmStats,
    /// Where GC metrics and flight-recorder events are reported.
    pub(crate) metrics: Arc<obs::Registry>,
    /// Trace context of the transfer that last touched this heap, so GC
    /// pauses can be attributed to the task that caused the allocation
    /// (the Yak/Broom diagnostic). Left in place after a transfer
    /// finishes: a later pause is still that transfer's garbage.
    pub(crate) trace_ctx: obs::TraceCtxCell,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("name", &self.name)
            .field("used", &self.heap.used())
            .field("capacity", &self.heap.capacity())
            .field("klasses", &self.klasses.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Vm {
    /// Boots a VM with the given heap configuration and classpath.
    ///
    /// # Errors
    /// Propagates arena/config errors from [`Heap::new`].
    pub fn new(
        name: impl Into<String>,
        config: &HeapConfig,
        classpath: Arc<ClassPath>,
    ) -> Result<Self> {
        Ok(Vm {
            name: name.into(),
            heap: Heap::new(config)?,
            klasses: KlassTable::new(),
            classpath,
            handles: HandleTable::default(),
            temp_roots: Vec::new(),
            stats: VmStats::default(),
            metrics: Arc::clone(obs::global()),
            trace_ctx: obs::TraceCtxCell::default(),
        })
    }

    /// Reports GC metrics into `registry` instead of the process-wide
    /// default (scoped observation, e.g. in tests).
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<obs::Registry>) -> Self {
        self.metrics = registry;
        self
    }

    /// Attributes subsequent GC pauses to `ctx` (the transfer currently
    /// allocating into this heap). See [`Vm::trace_ctx`].
    pub fn set_trace_ctx(&self, ctx: obs::TraceCtx) {
        self.trace_ctx.set(ctx);
    }

    /// The trace context GC pauses are currently attributed to.
    pub fn trace_ctx(&self) -> obs::TraceCtx {
        self.trace_ctx.get()
    }

    /// Boots a VM with a default-sized heap.
    ///
    /// # Errors
    /// Propagates arena errors from [`Heap::new`].
    pub fn with_defaults(name: impl Into<String>, classpath: Arc<ClassPath>) -> Result<Self> {
        Vm::new(name, &HeapConfig::default(), classpath)
    }

    /// The heap (read access for Skyway and serializers).
    #[inline]
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable heap access (Skyway receiver, card dirtying).
    #[inline]
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// The klass table.
    #[inline]
    pub fn klasses(&self) -> &KlassTable {
        &self.klasses
    }

    /// The shared classpath.
    #[inline]
    pub fn classpath(&self) -> &Arc<ClassPath> {
        &self.classpath
    }

    /// The object format of this VM.
    #[inline]
    pub fn spec(&self) -> LayoutSpec {
        self.heap.spec()
    }

    /// Loads a class (and its supers) by name, returning its VM-local id.
    ///
    /// # Errors
    /// [`Error::ClassNotFound`] when the classpath lacks a definition.
    pub fn load_class(&self, name: &str) -> Result<KlassId> {
        self.klasses.load(name, &self.classpath, self.heap.spec())
    }

    /// Resolves the klass of an object.
    ///
    /// For objects inside an attached segment the klass word holds a Skyway
    /// *global type id* (the sealing VM's local klass id would be
    /// meaningless here); it is resolved through the segment's seal-time
    /// name map and loaded into this VM's klass table on first touch.
    ///
    /// # Errors
    /// [`Error::BadAddress`] for null/invalid addresses.
    pub fn klass_of(&self, obj: Addr) -> Result<Arc<Klass>> {
        if obj.is_null() {
            return Err(Error::BadAddress(0));
        }
        let kw = self.heap.arena().load_word(obj.0 + self.spec().klass_off())?;
        if let Some(seg) = self.heap.segment_for(obj) {
            let tid = kw as u32;
            let name = seg.name_for_tid(tid).ok_or(Error::UnknownKlass(tid))?;
            if let Some(k) = self.klasses.by_name(name) {
                return Ok(k);
            }
            let id = self.klasses.load(name, &self.classpath, self.heap.spec())?;
            return self.klasses.get(id);
        }
        self.klasses.get(KlassId(kw as u32))
    }

    // ----- handles ------------------------------------------------------

    /// Registers `addr` as a GC root and returns a stable handle.
    ///
    /// ```
    /// use mheap::{ClassPath, HeapConfig, Vm};
    /// use mheap::stdlib::define_core_classes;
    /// # fn main() -> mheap::Result<()> {
    /// let cp = ClassPath::new();
    /// define_core_classes(&cp);
    /// let mut vm = Vm::new("doc", &HeapConfig::small(), cp)?;
    /// let s = vm.new_string("rooted")?;
    /// let h = vm.handle(s);
    /// vm.full_gc()?; // the object may move…
    /// let s = vm.resolve(h)?; // …the handle follows it
    /// assert_eq!(vm.read_string(s)?, "rooted");
    /// # Ok(())
    /// # }
    /// ```
    pub fn handle(&mut self, addr: Addr) -> Handle {
        self.handles.create(addr)
    }

    /// Current address behind a handle (objects move during GC).
    ///
    /// # Errors
    /// [`Error::BadHandle`] for stale handles.
    pub fn resolve(&self, h: Handle) -> Result<Addr> {
        self.handles.get(h)
    }

    /// Re-points a handle.
    ///
    /// # Errors
    /// [`Error::BadHandle`] for stale handles.
    pub fn set_handle(&mut self, h: Handle, addr: Addr) -> Result<()> {
        self.handles.set(h, addr)
    }

    /// Releases a handle (the object becomes collectible unless otherwise
    /// reachable).
    ///
    /// # Errors
    /// [`Error::BadHandle`] for stale handles.
    pub fn release(&mut self, h: Handle) -> Result<()> {
        self.handles.drop_handle(h)
    }

    /// Pushes a temporary GC root (updated on GC). Pair with
    /// [`Vm::pop_temp_root`]; use [`Vm::temp_root`] to re-read after
    /// allocations.
    pub fn push_temp_root(&mut self, addr: Addr) -> usize {
        self.temp_roots.push(addr);
        self.temp_roots.len() - 1
    }

    /// Reads back a temporary root (it may have moved).
    ///
    /// # Panics
    /// Panics if `idx` is not a live temp-root index (programming error).
    pub fn temp_root(&self, idx: usize) -> Addr {
        self.temp_roots[idx]
    }

    /// Pops the most recent temporary root, returning its current address.
    ///
    /// # Panics
    /// Panics if the temp-root stack is empty (programming error).
    pub fn pop_temp_root(&mut self) -> Addr {
        self.temp_roots.pop().expect("temp root stack underflow") // tidy:allow(panic, documented programming-error panic)
    }

    // ----- allocation -----------------------------------------------------

    /// Size in bytes of the object at `obj`.
    ///
    /// # Errors
    /// [`Error::BadAddress`] / [`Error::UnknownKlass`] for invalid objects.
    pub fn obj_size(&self, obj: Addr) -> Result<u64> {
        let k = self.klass_of(obj)?;
        self.obj_size_with(&k, obj)
    }

    pub(crate) fn obj_size_with(&self, k: &Klass, obj: Addr) -> Result<u64> {
        match k.kind {
            KlassKind::Instance => Ok(k.instance_size),
            _ => {
                let len = self.array_len(obj)?;
                let es = u64::from(k.elem_size()?);
                Ok(align8(self.spec().array_header() + len * es))
            }
        }
    }

    /// Allocates an instance of `klass` with zeroed fields.
    ///
    /// Runs minor/full collections as needed.
    ///
    /// ```
    /// use mheap::{ClassPath, FieldType, HeapConfig, KlassDef, PrimType, Vm};
    /// # fn main() -> mheap::Result<()> {
    /// let cp = ClassPath::new();
    /// cp.define(KlassDef::new("P", None, vec![("x", FieldType::Prim(PrimType::Int))]));
    /// let mut vm = Vm::new("doc", &HeapConfig::small(), cp)?;
    /// let k = vm.load_class("P")?;
    /// let p = vm.alloc_instance(k)?;
    /// vm.set_int(p, "x", 7)?;
    /// assert_eq!(vm.get_int(p, "x")?, 7);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    /// [`Error::OutOfMemory`] when even a full GC cannot free enough space.
    pub fn alloc_instance(&mut self, klass: KlassId) -> Result<Addr> {
        let k = self.klasses.get(klass)?;
        if k.is_array() {
            return Err(Error::NotAnInstanceKlass(k.name.clone()));
        }
        let size = k.instance_size;
        let addr = self.alloc_raw(size)?;
        self.heap.arena().store_word(addr.0 + self.spec().klass_off(), u64::from(klass.0))?;
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += size;
        Ok(addr)
    }

    /// Allocates an array of `len` elements with zeroed contents.
    ///
    /// # Errors
    /// [`Error::OutOfMemory`]; [`Error::NotAnArray`] if `klass` is an
    /// instance klass.
    pub fn alloc_array(&mut self, klass: KlassId, len: u64) -> Result<Addr> {
        let k = self.klasses.get(klass)?;
        let es = u64::from(k.elem_size()?);
        let size = align8(self.spec().array_header() + len * es);
        let addr = self.alloc_raw(size)?;
        let spec = self.spec();
        self.heap.arena().store_word(addr.0 + spec.klass_off(), u64::from(klass.0))?;
        match spec.array_len_size {
            8 => self.heap.arena().store_word(addr.0 + spec.array_len_off(), len)?,
            4 => self.heap.arena().store_u32(addr.0 + spec.array_len_off(), len as u32)?,
            n => return Err(Error::BadConfig(format!("array_len_size {n}"))),
        }
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += size;
        Ok(addr)
    }

    /// True when the old generation could absorb a worst-case promotion of
    /// everything live in the young generation — the precondition that makes
    /// a minor collection infallible.
    fn minor_gc_is_safe(&self) -> bool {
        let young_used = self.heap.eden.used() + self.heap.from_space().used();
        self.heap.old.free() >= young_used
    }

    fn alloc_raw(&mut self, size: u64) -> Result<Addr> {
        // Large objects go straight to the old generation.
        let large = size > self.heap.eden.size() / 4;
        if !large {
            if let Some(a) = self.heap.bump_young(size) {
                return Ok(a);
            }
            // A minor GC can promote at most the live young bytes; when the
            // old generation cannot guarantee that, collect it first so the
            // minor pass cannot fail halfway through evacuation.
            if self.minor_gc_is_safe() {
                self.minor_gc()?;
            } else {
                self.full_gc()?;
            }
            if let Some(a) = self.heap.bump_young(size) {
                return Ok(a);
            }
        }
        if let Some(a) = self.heap.bump_old(size) {
            return Ok(a);
        }
        self.full_gc()?;
        if let Some(a) = self.heap.bump_old(size) {
            return Ok(a);
        }
        Err(Error::OutOfMemory { requested: size, capacity: self.heap.capacity() })
    }

    // ----- object access ---------------------------------------------------

    /// Length of the array at `obj`.
    ///
    /// # Errors
    /// [`Error::NotAnArray`] for instances; address errors otherwise.
    pub fn array_len(&self, obj: Addr) -> Result<u64> {
        let spec = self.spec();
        match spec.array_len_size {
            8 => self.heap.arena().load_word(obj.0 + spec.array_len_off()),
            4 => Ok(u64::from(self.heap.arena().load_u32(obj.0 + spec.array_len_off())?)),
            n => Err(Error::BadConfig(format!("array_len_size {n}"))),
        }
    }

    fn elem_off(&self, obj: Addr, k: &Klass, idx: u64) -> Result<u64> {
        let len = self.array_len(obj)?;
        if idx >= len {
            return Err(Error::IndexOutOfBounds { index: idx, len });
        }
        Ok(obj.0 + self.spec().array_header() + idx * u64::from(k.elem_size()?))
    }

    /// Reads a primitive field as raw 64-bit payload (sign-extended for
    /// signed types by the typed wrappers in [`crate::object`]).
    ///
    /// # Errors
    /// Address errors; [`Error::NoSuchField`] via the named variants.
    pub fn read_prim_raw(&self, obj: Addr, offset: u64, size: u8) -> Result<u64> {
        let a = self.heap.arena();
        match size {
            1 => Ok(u64::from(a.load_u8(obj.0 + offset)?)),
            2 => Ok(u64::from(a.load_u16(obj.0 + offset)?)),
            4 => Ok(u64::from(a.load_u32(obj.0 + offset)?)),
            8 => a.load_word(obj.0 + offset),
            n => Err(Error::BadConfig(format!("field size {n}"))),
        }
    }

    /// Writes a primitive field from raw 64-bit payload (truncating).
    ///
    /// # Errors
    /// Address errors.
    pub fn write_prim_raw(&mut self, obj: Addr, offset: u64, size: u8, val: u64) -> Result<()> {
        let a = self.heap.arena();
        match size {
            1 => a.store_u8(obj.0 + offset, val as u8),
            2 => a.store_u16(obj.0 + offset, val as u16),
            4 => a.store_u32(obj.0 + offset, val as u32),
            8 => a.store_word(obj.0 + offset, val),
            n => Err(Error::BadConfig(format!("field size {n}"))),
        }
    }

    /// Reads a reference slot at `offset` within `obj`.
    ///
    /// # Errors
    /// Address errors.
    pub fn read_ref_at(&self, obj: Addr, offset: u64) -> Result<Addr> {
        Ok(Addr(self.heap.arena().load_word(obj.0 + offset)?))
    }

    /// Writes a reference slot with the generational write barrier (dirties
    /// the card when an old-generation object gains a pointer).
    ///
    /// # Errors
    /// Address errors.
    pub fn write_ref_at(&mut self, obj: Addr, offset: u64, val: Addr) -> Result<()> {
        self.heap.arena().store_word(obj.0 + offset, val.0)?;
        if self.heap.in_old(obj) {
            self.heap.dirty_card(obj);
        }
        Ok(())
    }

    /// Reads a primitive array element (raw bits).
    ///
    /// # Errors
    /// [`Error::IndexOutOfBounds`], address errors.
    pub fn array_get_raw(&self, obj: Addr, idx: u64) -> Result<u64> {
        let k = self.klass_of(obj)?;
        let off = self.elem_off(obj, &k, idx)?;
        self.read_prim_raw(Addr(0), off, k.elem_size()?)
    }

    /// Writes a primitive array element (raw bits, truncating).
    ///
    /// # Errors
    /// [`Error::IndexOutOfBounds`], address errors.
    pub fn array_set_raw(&mut self, obj: Addr, idx: u64, val: u64) -> Result<()> {
        let k = self.klass_of(obj)?;
        let off = self.elem_off(obj, &k, idx)?;
        self.write_prim_raw(Addr(0), off, k.elem_size()?, val)
    }

    /// Reads a reference array element.
    ///
    /// # Errors
    /// [`Error::IndexOutOfBounds`], [`Error::NotAnArray`], address errors.
    pub fn array_get_ref(&self, obj: Addr, idx: u64) -> Result<Addr> {
        let k = self.klass_of(obj)?;
        if k.kind != KlassKind::RefArray {
            return Err(Error::NotAnArray(k.name.clone()));
        }
        let off = self.elem_off(obj, &k, idx)?;
        Ok(Addr(self.heap.arena().load_word(off)?))
    }

    /// Writes a reference array element (with write barrier).
    ///
    /// # Errors
    /// [`Error::IndexOutOfBounds`], [`Error::NotAnArray`], address errors.
    pub fn array_set_ref(&mut self, obj: Addr, idx: u64, val: Addr) -> Result<()> {
        let k = self.klass_of(obj)?;
        if k.kind != KlassKind::RefArray {
            return Err(Error::NotAnArray(k.name.clone()));
        }
        let off = self.elem_off(obj, &k, idx)?;
        self.heap.arena().store_word(off, val.0)?;
        if self.heap.in_old(obj) {
            self.heap.dirty_card(obj);
        }
        Ok(())
    }

    /// The identity hashcode, materializing (and caching in the mark word)
    /// on first use — the cache Skyway preserves across transfers.
    ///
    /// # Errors
    /// Address errors.
    pub fn identity_hash(&mut self, obj: Addr) -> Result<u32> {
        let moff = obj.0 + self.spec().mark_off();
        let m = self.heap.arena().load_word(moff)?;
        let h = mark::hash_of(m);
        if h != 0 {
            return Ok(h);
        }
        let h = self.heap.next_hash();
        self.heap.arena().store_word(moff, mark::with_hash(m, h))?;
        Ok(h)
    }

    /// Reads the cached identity hashcode without materializing (0 = none).
    ///
    /// # Errors
    /// Address errors.
    pub fn cached_hash(&self, obj: Addr) -> Result<u32> {
        let m = self.heap.arena().load_word(obj.0 + self.spec().mark_off())?;
        Ok(mark::hash_of(m))
    }

    // ----- ref-slot iteration (used by GC and Skyway) ---------------------

    /// Byte offsets (object-relative) of every reference slot in `obj`.
    ///
    /// # Errors
    /// Address errors.
    pub fn ref_slots(&self, obj: Addr) -> Result<Vec<u64>> {
        let k = self.klass_of(obj)?;
        self.ref_slots_with(&k, obj)
    }

    pub(crate) fn ref_slots_with(&self, k: &Klass, obj: Addr) -> Result<Vec<u64>> {
        match k.kind {
            KlassKind::Instance => Ok(k
                .fields
                .iter()
                .filter(|f| matches!(f.ty, crate::klass::FieldType::Ref))
                .map(|f| f.offset)
                .collect()),
            KlassKind::RefArray => {
                let len = self.array_len(obj)?;
                let base = self.spec().array_header();
                Ok((0..len).map(|i| base + i * 8).collect())
            }
            KlassKind::PrimArray(_) => Ok(Vec::new()),
        }
    }

    // ----- space walking ---------------------------------------------------

    /// Walks objects in `[start, end)` in address order, skipping filler
    /// words, invoking `f(addr, size)`.
    ///
    /// # Errors
    /// Propagates the first error from `f` or from object parsing.
    pub fn walk_range(
        &self,
        start: u64,
        end: u64,
        mut f: impl FnMut(&Vm, Addr, u64) -> Result<()>,
    ) -> Result<()> {
        let mut at = start;
        while at < end {
            let w = self.heap.arena().load_word(at)?;
            if w == FILLER_WORD {
                at += 8;
                continue;
            }
            let addr = Addr(at);
            let size = self.obj_size(addr)?;
            f(self, addr, size)?;
            at += size;
        }
        Ok(())
    }

    /// Walks every live-allocated region (eden, from-survivor, old).
    ///
    /// # Errors
    /// Propagates errors from `f`.
    pub fn walk_heap(&self, mut f: impl FnMut(&Vm, Addr, u64) -> Result<()>) -> Result<()> {
        let (eden, from, _, old) = self.heap.spaces();
        self.walk_range(eden.start, eden.top, &mut f)?;
        self.walk_range(from.start, from.top, &mut f)?;
        self.walk_range(old.start, old.top, &mut f)
    }

    /// Generation of an object (convenience re-export).
    ///
    /// # Errors
    /// [`Error::BadAddress`].
    pub fn gen_of(&self, obj: Addr) -> Result<Gen> {
        self.heap.gen_of(obj)
    }
}
