//! `mheap` — a simulated managed heap (the JVM substrate of the Skyway
//! reproduction).
//!
//! Skyway (ASPLOS 2018) is a JVM modification: it transfers object graphs
//! between managed heaps *without changing object formats*. Reproducing it
//! in Rust therefore starts by building the managed heap itself. This crate
//! provides:
//!
//! * a byte-addressable, fixed-capacity [`heap::Heap`] split into
//!   HotSpot-style generations (eden, two survivors, old);
//! * object layout per the paper's Figure 6 — `mark | klass | baddr |
//!   [array length] | payload` — in [`layout`], including the Skyway
//!   `baddr` word used for reference relativization;
//! * class metadata ("klass" meta-objects) with computed field offsets in
//!   [`klass`], plus a shared [`klass::ClassPath`] for on-demand loading;
//! * a generational collector with a card table in [`gc`];
//! * typed object accessors in [`object`] and an in-heap core library
//!   (strings, lists, an identity-hash map) in [`stdlib`];
//! * the [`vm::Vm`] facade tying one simulated JVM process together.
//!
//! # Example
//!
//! ```
//! use mheap::{ClassPath, HeapConfig, Vm};
//! use mheap::stdlib::define_core_classes;
//!
//! # fn main() -> mheap::Result<()> {
//! let classpath = ClassPath::new();
//! define_core_classes(&classpath);
//! let mut vm = Vm::new("worker-0", &HeapConfig::small(), classpath)?;
//! let s = vm.new_string("hello heap")?;
//! assert_eq!(vm.read_string(s)?, "hello heap");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod gc;
pub mod heap;
pub mod klass;
pub mod layout;
pub mod mem;
pub mod object;
pub mod segment;
pub mod stdlib;
pub mod verify;
pub mod vm;

pub use heap::{Gen, Heap, HeapConfig, Space, CARD_SIZE, FILLER_WORD};
pub use klass::{
    ClassPath, Field, FieldType, Klass, KlassDef, KlassId, KlassKind, KlassTable, PrimType,
};
pub use layout::{Addr, LayoutSpec};
pub use object::Value;
pub use segment::{Segment, SegmentBuilder, SEGMENT_BASE};
pub use verify::{ClassStat, HeapFault};
pub use vm::{Handle, Vm, VmStats};

/// Errors produced by the managed-heap substrate.
#[derive(Debug)]
pub enum Error {
    /// The backing arena could not be allocated.
    ArenaAlloc(usize),
    /// An access fell outside the arena.
    OutOfBounds {
        /// Offending offset.
        off: u64,
        /// Access size in bytes.
        size: usize,
    },
    /// An access was not aligned to its size.
    Misaligned {
        /// Offending offset.
        off: u64,
        /// Required alignment.
        align: usize,
    },
    /// This object format has no Skyway `baddr` header word.
    NoBaddr,
    /// Heap configuration was out of range.
    BadConfig(String),
    /// An address was null or outside every space.
    BadAddress(u64),
    /// A klass id was never issued.
    UnknownKlass(u32),
    /// The classpath has no definition for this name.
    ClassNotFound(String),
    /// A class declared (or inherited) two fields with the same name.
    DuplicateField {
        /// Class name.
        class: String,
        /// Field name.
        field: String,
    },
    /// Field lookup by name failed.
    NoSuchField {
        /// Class name.
        class: String,
        /// Field name.
        field: String,
    },
    /// Field access used the wrong type (prim vs ref, or wrong prim).
    FieldTypeMismatch {
        /// Class name.
        class: String,
        /// Field name.
        field: String,
    },
    /// An array operation was applied to a non-array object.
    NotAnArray(String),
    /// `alloc_instance` was called with an array klass.
    NotAnInstanceKlass(String),
    /// Array index out of range.
    IndexOutOfBounds {
        /// Requested index.
        index: u64,
        /// Array length.
        len: u64,
    },
    /// A handle was stale or never issued.
    BadHandle(u32),
    /// The old generation could not fit an input-buffer chunk.
    OldGenFull {
        /// Requested bytes.
        requested: u64,
    },
    /// A minor collection could not promote into the old generation.
    PromotionFailed {
        /// Size of the object being promoted.
        requested: u64,
    },
    /// The global segment base region is exhausted (bases are never
    /// recycled); claiming another would wrap into live address space.
    SegmentSpaceExhausted {
        /// Span of base-region bytes the claim needed.
        requested: u64,
    },
    /// Allocation failed even after a full collection.
    OutOfMemory {
        /// Requested bytes.
        requested: u64,
        /// Heap capacity.
        capacity: u64,
    },
    /// A store targeted read-only attached-segment memory.
    SegmentReadOnly {
        /// Offending offset (in the attacher's global address space).
        off: u64,
    },
    /// No segment with this base is attached to (or known by) the heap.
    UnknownSegment(u64),
    /// A segment with this base is already attached to the heap.
    SegmentAlreadyAttached(u64),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::ArenaAlloc(n) => write!(f, "failed to allocate {n}-byte arena"),
            Error::OutOfBounds { off, size } => {
                write!(f, "access of {size} bytes at offset {off:#x} is out of bounds")
            }
            Error::Misaligned { off, align } => {
                write!(f, "offset {off:#x} is not aligned to {align}")
            }
            Error::NoBaddr => write!(f, "object format has no baddr header word"),
            Error::BadConfig(s) => write!(f, "invalid heap configuration: {s}"),
            Error::BadAddress(a) => write!(f, "invalid object address {a:#x}"),
            Error::UnknownKlass(id) => write!(f, "unknown klass id {id}"),
            Error::ClassNotFound(n) => write!(f, "class not found on classpath: {n}"),
            Error::DuplicateField { class, field } => {
                write!(f, "duplicate field {field} in class {class}")
            }
            Error::NoSuchField { class, field } => {
                write!(f, "no field {field} in class {class}")
            }
            Error::FieldTypeMismatch { class, field } => {
                write!(f, "field type mismatch accessing {class}.{field}")
            }
            Error::NotAnArray(n) => write!(f, "object of class {n} is not an array"),
            Error::NotAnInstanceKlass(n) => write!(f, "klass {n} is not an instance klass"),
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            Error::BadHandle(h) => write!(f, "stale or unknown handle {h}"),
            Error::OldGenFull { requested } => {
                write!(f, "old generation cannot fit {requested} bytes")
            }
            Error::PromotionFailed { requested } => {
                write!(f, "promotion of {requested} bytes failed; full GC required")
            }
            Error::SegmentSpaceExhausted { requested } => {
                write!(f, "segment base region exhausted: cannot claim {requested} more bytes")
            }
            Error::OutOfMemory { requested, capacity } => {
                write!(f, "out of memory: requested {requested} bytes of {capacity}-byte heap")
            }
            Error::SegmentReadOnly { off } => {
                write!(f, "write into read-only sealed segment memory at {off:#x}")
            }
            Error::UnknownSegment(base) => {
                write!(f, "no attached segment with base {base:#x}")
            }
            Error::SegmentAlreadyAttached(base) => {
                write!(f, "segment {base:#x} is already attached")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
