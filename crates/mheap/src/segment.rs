//! Sealed, immutable, shareable heap segments.
//!
//! A *segment* is a self-contained object graph laid out in store-owned
//! memory, in exactly the managed-heap object format (Skyway's central
//! invariant). It is built once — written through a [`SegmentBuilder`] —
//! then *sealed*, after which its bytes never change. Any number of
//! co-located heaps can then **attach** it: a metadata-only operation that
//! maps the segment's memory into the heap's address space (see
//! [`crate::mem::Arena`]'s mapped windows) without cloning a byte or
//! dirtying a card.
//!
//! Segments occupy a global address region disjoint from every heap's
//! owned range: bases are bump-allocated from [`SEGMENT_BASE`] (1 TiB),
//! far above any arena capacity, so the *same* absolute addresses are
//! valid in every attacher and reference slots inside the segment need no
//! per-attacher fixup.
//!
//! Two invariants make sharing sound, and [`crate::verify`] checks both:
//!
//! 1. **Immutability** — nobody writes a sealed segment. The attacher-side
//!    arena mapping already rejects writes; a seal-time checksum catches
//!    out-of-band tampering through a retained raw handle.
//! 2. **Self-containment** — every reference inside a segment points into
//!    the same segment. A ref out into some heap's generations would go
//!    stale the moment that heap's GC moved the referent (segments are
//!    never scanned or patched by any GC).
//!
//! Klass words inside a segment hold Skyway *global type ids* (`tID`), not
//! VM-local klass ids — a VM-local id would only be meaningful to the
//! sealing VM. Each attacher resolves `tID → class name → local klass` on
//! first touch via the name map recorded at seal time
//! ([`Segment::name_for_tid`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::layout::{align8, Addr};
use crate::mem::Arena;
use crate::{Error, Result};

/// Base of the global segment address region: 1 TiB, far above any arena
/// capacity, so segment addresses never collide with owned-heap offsets.
pub const SEGMENT_BASE: u64 = 1 << 40;

/// Spacing granularity between consecutive segment bases (1 MiB). A
/// coarse granule keeps bases readable in dumps and leaves a guard gap so
/// an out-of-range access off one segment's end cannot silently land in
/// the next.
const BASE_GRANULE: u64 = 1 << 20;

/// Exclusive upper bound of the segment base region (256 TiB). Bases are
/// never recycled, so a long-lived process *can* exhaust the region; the
/// claim must then fail with a typed error rather than wrap into live
/// address space (heap offsets live below [`SEGMENT_BASE`], and a u64
/// wrap would eventually land there).
pub const SEGMENT_LIMIT: u64 = 1 << 48;

/// Process-wide bump allocator for segment bases.
static NEXT_BASE: AtomicU64 = AtomicU64::new(SEGMENT_BASE);

fn claim_base(len: u64) -> Result<u64> {
    claim_base_from(&NEXT_BASE, len)
}

/// Claims a `len`-byte (plus guard granule) base from `cursor`. A CAS loop
/// instead of `fetch_add`: an unconditional add would push the cursor past
/// [`SEGMENT_LIMIT`] — or wrap u64 entirely — even on the *failing* call,
/// poisoning every later claim. Factored over the cursor so tests can
/// drive a private one to the edge.
///
/// # Errors
/// [`Error::SegmentSpaceExhausted`] once the region cannot fit the span.
fn claim_base_from(cursor: &AtomicU64, len: u64) -> Result<u64> {
    let span = (len / BASE_GRANULE + 2) * BASE_GRANULE;
    // The seed may be stale — the CAS revalidates it, so Relaxed is fine.
    let mut cur = cursor.load(Ordering::Relaxed);
    loop {
        let end = cur
            .checked_add(span)
            .filter(|&end| end <= SEGMENT_LIMIT)
            .ok_or(Error::SegmentSpaceExhausted { requested: span })?;
        // A base claim is a pure address-space reservation: no memory is
        // published through it (segment bytes travel via seal/attach), so
        // Relaxed on both sides is sufficient — only atomicity matters.
        match cursor.compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return Ok(cur),
            Err(now) => cur = now,
        }
    }
}

/// A sealed, immutable object-graph segment. Only a [`SegmentBuilder`] can
/// produce one, so every `Segment` in existence is sealed — immutability
/// is enforced by construction, not by a runtime flag.
#[derive(Debug)]
pub struct Segment {
    mem: Arc<Arena>,
    base: u64,
    len: u64,
    roots: Vec<Addr>,
    tid_names: HashMap<u32, String>,
    checksum: u64,
}

impl Segment {
    /// Base of this segment in the global segment address space.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Used bytes (8-aligned).
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the segment holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `addr` falls inside this segment.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr.raw() >= self.base && addr.raw() < self.base + self.len
    }

    /// The graph roots, as global (attacher-valid) addresses, in the order
    /// the sealing traversal emitted them.
    pub fn roots(&self) -> &[Addr] {
        &self.roots
    }

    /// Resolves a Skyway global type id recorded at seal time to its class
    /// name, for attacher-local klass loading.
    pub fn name_for_tid(&self, tid: u32) -> Option<&str> {
        self.tid_names.get(&tid).map(String::as_str)
    }

    /// The seal-time content checksum.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recomputes the content checksum and compares it with the seal-time
    /// value — `false` means the sealed bytes were tampered with.
    pub fn verify_checksum(&self) -> bool {
        checksum_arena(&self.mem, self.len).map(|c| c == self.checksum).unwrap_or(false)
    }

    /// The backing memory (for mapping into an attacher's arena).
    pub(crate) fn mem(&self) -> &Arc<Arena> {
        &self.mem
    }

    /// The backing memory as a raw arena handle. Tests use this to forge
    /// post-seal corruption; production code has no reason to touch it.
    pub fn raw_mem(&self) -> &Arc<Arena> {
        &self.mem
    }
}

/// FNV-1a over the first `len` bytes of `mem`, word at a time (`len` is
/// 8-aligned by construction).
fn checksum_arena(mem: &Arena, len: u64) -> Result<u64> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut off = 0u64;
    while off < len {
        let w = mem.load_word(off)?;
        h ^= w;
        h = h.wrapping_mul(0x1_0000_01b3);
        off += 8;
    }
    Ok(h)
}

/// Write-side of a segment: store-owned memory being filled with a parsed
/// object graph. Consumed by [`SegmentBuilder::seal`], which computes the
/// content checksum and yields the immutable [`Segment`].
#[derive(Debug)]
pub struct SegmentBuilder {
    mem: Arc<Arena>,
    base: u64,
    cap: u64,
    len: u64,
    roots: Vec<Addr>,
    tid_names: HashMap<u32, String>,
}

impl SegmentBuilder {
    /// Claims a base in the global segment address space and allocates
    /// `cap` bytes (rounded up to 8) of store-owned memory.
    ///
    /// # Errors
    /// [`crate::Error::ArenaAlloc`] if the backing allocation fails;
    /// [`crate::Error::SegmentSpaceExhausted`] if the global base region
    /// is used up.
    pub fn new(cap: u64) -> Result<Self> {
        let cap = align8(cap.max(8));
        let base = claim_base(cap)?;
        let mem = Arena::new(cap as usize)?;
        Ok(SegmentBuilder {
            mem: Arc::new(mem),
            base,
            cap,
            len: 0,
            roots: Vec::new(),
            tid_names: HashMap::new(),
        })
    }

    /// Base of the segment under construction (needed while absolutizing
    /// references during the fill).
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.cap
    }

    /// Writes a word at a segment-relative offset, growing the used length.
    ///
    /// # Errors
    /// [`crate::Error::OutOfBounds`] / [`crate::Error::Misaligned`] past `cap`.
    pub fn store_word(&mut self, rel: u64, val: u64) -> Result<()> {
        self.mem.store_word(rel, val)?;
        self.len = self.len.max(align8(rel + 8));
        Ok(())
    }

    /// Reads back a word at a segment-relative offset.
    ///
    /// # Errors
    /// [`crate::Error::OutOfBounds`] / [`crate::Error::Misaligned`].
    pub fn load_word(&self, rel: u64) -> Result<u64> {
        self.mem.load_word(rel)
    }

    /// Copies raw bytes to a segment-relative offset, growing the used
    /// length.
    ///
    /// # Errors
    /// [`crate::Error::OutOfBounds`] past `cap`.
    pub fn write_bytes(&mut self, rel: u64, src: &[u8]) -> Result<()> {
        self.mem.write_bytes(rel, src)?;
        self.len = self.len.max(align8(rel + src.len() as u64));
        Ok(())
    }

    /// Records a graph root (as a global, attacher-valid address).
    pub fn push_root(&mut self, root: Addr) {
        self.roots.push(root);
    }

    /// Records the class name behind a Skyway global type id so attachers
    /// can resolve klass words without the sealing VM.
    pub fn record_tid(&mut self, tid: u32, name: impl Into<String>) {
        self.tid_names.entry(tid).or_insert_with(|| name.into());
    }

    /// Seals the segment: computes the content checksum over the used
    /// bytes and yields the immutable, shareable [`Segment`].
    ///
    /// # Errors
    /// Propagates arena read errors from the checksum pass.
    pub fn seal(self) -> Result<Arc<Segment>> {
        let len = align8(self.len);
        let checksum = checksum_arena(&self.mem, len)?;
        Ok(Arc::new(Segment {
            mem: self.mem,
            base: self.base,
            len,
            roots: self.roots,
            tid_names: self.tid_names,
            checksum,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bases_are_disjoint_and_above_segment_base() {
        let a = SegmentBuilder::new(64).unwrap();
        let b = SegmentBuilder::new(64).unwrap();
        assert!(a.base() >= SEGMENT_BASE);
        assert!(b.base() >= SEGMENT_BASE);
        assert_ne!(a.base(), b.base());
        // Guard gap: capacity never reaches the next base.
        assert!(a.base() + a.capacity() < b.base() || b.base() + b.capacity() < a.base());
    }

    #[test]
    fn base_claim_fails_typed_at_region_limit() {
        // A private cursor near the limit: the claim that would cross it
        // must fail with the typed error and leave the cursor unmoved so
        // later (smaller) claims still work.
        let cursor = AtomicU64::new(SEGMENT_LIMIT - 3 * BASE_GRANULE);
        let first = claim_base_from(&cursor, BASE_GRANULE).unwrap();
        assert_eq!(first, SEGMENT_LIMIT - 3 * BASE_GRANULE);
        let err = claim_base_from(&cursor, 4 * BASE_GRANULE).unwrap_err();
        assert!(
            matches!(err, Error::SegmentSpaceExhausted { requested } if requested == 6 * BASE_GRANULE),
            "unexpected error: {err}"
        );
        // The failed claim did not advance the cursor past the limit.
        assert_eq!(cursor.load(Ordering::Relaxed), SEGMENT_LIMIT);
    }

    #[test]
    fn base_claim_never_wraps_u64() {
        let cursor = AtomicU64::new(u64::MAX - BASE_GRANULE);
        let err = claim_base_from(&cursor, BASE_GRANULE).unwrap_err();
        assert!(matches!(err, Error::SegmentSpaceExhausted { .. }), "unexpected error: {err}");
        assert_eq!(cursor.load(Ordering::Relaxed), u64::MAX - BASE_GRANULE);
    }

    #[test]
    fn seal_checksum_detects_tampering() {
        let mut b = SegmentBuilder::new(64).unwrap();
        b.store_word(0, 0xfeed).unwrap();
        b.store_word(8, 0xbeef).unwrap();
        let seg = b.seal().unwrap();
        assert!(seg.verify_checksum());
        // Forge a write through the raw handle (the attacher-side mapping
        // would reject this; the checksum is the second line of defense).
        seg.raw_mem().store_word(8, 0xdead).unwrap();
        assert!(!seg.verify_checksum());
    }

    #[test]
    fn roots_and_tid_names_survive_seal() {
        let mut b = SegmentBuilder::new(32).unwrap();
        let base = b.base();
        b.store_word(0, 1).unwrap();
        b.push_root(Addr::from_raw(base));
        b.record_tid(7, "java.lang.String");
        b.record_tid(7, "shadowed");
        let seg = b.seal().unwrap();
        assert_eq!(seg.roots(), &[Addr::from_raw(base)]);
        assert_eq!(seg.name_for_tid(7), Some("java.lang.String"));
        assert_eq!(seg.name_for_tid(8), None);
        assert!(seg.contains(Addr::from_raw(base)));
        assert!(!seg.contains(Addr::from_raw(base + seg.len())));
    }
}
