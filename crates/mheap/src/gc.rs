//! Generational garbage collection: minor copying collection of the young
//! generation and full mark-compact collection.
//!
//! The collector is a deliberately straightforward rendition of the Parallel
//! Scavenge structure the paper modifies (§4, "we have modified ... the
//! Parallel Scavenge garbage collector, which is the default GC in OpenJDK
//! 8"): eden + two survivor semispaces, tenuring by age, a card table for
//! old→young references, and sliding compaction of the old generation.
//!
//! Skyway interacts with the collector in two ways this module must honor:
//!
//! 1. input buffers are raw old-generation regions that become parseable
//!    objects after absolutization, padded with filler words the walkers
//!    skip, and
//! 2. the receiver dirties cards for transferred buffers so a minor GC
//!    discovers any young objects they come to reference.

use std::collections::HashMap;

use crate::heap::Gen;
use crate::klass::KlassKind;
use crate::layout::{mark, Addr};
use crate::vm::Vm;
use crate::{Error, Result};

impl Vm {
    /// Writes a reference slot of `obj` without the generational write
    /// barrier — the collector manages card state explicitly (it re-checks
    /// slot targets after evacuation, so an unconditional dirty would
    /// over-mark). `obj` must come from a root set or a live-object walk;
    /// everything else goes through [`Vm::write_ref_at`].
    fn write_ref_raw(&self, obj: Addr, offset: u64, val: Addr) -> Result<()> {
        self.heap.arena().store_word(obj.0 + offset, val.0)
    }

    /// Runs a minor (young-generation) collection.
    ///
    /// Live young objects move to the to-survivor space, or are promoted to
    /// the old generation once their age reaches the tenuring threshold (or
    /// when the survivor space overflows).
    ///
    /// # Errors
    /// [`Error::PromotionFailed`] when the old generation cannot absorb
    /// promoted objects — the caller ([`Vm::alloc_instance`] etc.) responds
    /// with a full collection.
    pub fn minor_gc(&mut self) -> Result<()> {
        let gc_start = std::time::Instant::now();
        let promoted_before = self.stats.bytes_promoted;
        let mut cards_scanned: u64 = 0;
        let mut copied: Vec<Addr> = Vec::new();

        // 1. Evacuate handle and temp roots.
        for i in 0..self.handles.slots.len() {
            if let Some(a) = self.handles.slots[i] {
                if !a.is_null() {
                    let n = self.evacuate(a, &mut copied)?;
                    self.handles.slots[i] = Some(n);
                }
            }
        }
        for i in 0..self.temp_roots.len() {
            let a = self.temp_roots[i];
            if !a.is_null() {
                self.temp_roots[i] = self.evacuate(a, &mut copied)?;
            }
        }

        // 2. Old→young references found through dirty cards.
        let (_, _, _, old) = self.heap.spaces();
        let mut dirty_objs: Vec<Addr> = Vec::new();
        self.walk_range(old.start, old.top, |vm, addr, size| {
            // An object is relevant if any card it overlaps is dirty.
            let mut a = addr.0 & !(crate::heap::CARD_SIZE - 1);
            let end = addr.0 + size;
            while a < end {
                cards_scanned += 1;
                if vm.heap().is_card_dirty(Addr(a.max(addr.0))) {
                    dirty_objs.push(addr);
                    break;
                }
                a += crate::heap::CARD_SIZE;
            }
            Ok(())
        })?;
        self.heap.clear_cards();
        for obj in dirty_objs {
            for off in self.ref_slots(obj)? {
                let tgt = self.read_ref_at(obj, off)?;
                if !tgt.is_null() && self.heap.in_young(tgt) {
                    let n = self.evacuate(tgt, &mut copied)?;
                    self.write_ref_raw(obj, off, n)?;
                }
                let tgt = self.read_ref_at(obj, off)?;
                if !tgt.is_null() && self.heap.in_young(tgt) {
                    self.heap.dirty_card(obj); // survivor target: keep remembered
                }
            }
        }

        // 3. Transitive closure over the copied objects.
        let mut i = 0;
        while i < copied.len() {
            let obj = copied[i];
            i += 1;
            for off in self.ref_slots(obj)? {
                let tgt = self.read_ref_at(obj, off)?;
                if !tgt.is_null() && self.heap.in_young(tgt) {
                    let n = self.evacuate(tgt, &mut copied)?;
                    self.write_ref_raw(obj, off, n)?;
                    if self.heap.in_old(obj) && self.heap.in_young(n) {
                        self.heap.dirty_card(obj);
                    }
                }
            }
        }

        // 4. Reset eden and the (now dead) from-space; swap survivors.
        self.heap.reset_young_after_minor()?;
        self.stats.minor_gcs += 1;
        let pause_ns = gc_start.elapsed().as_nanos() as u64;
        self.stats.gc_ns += pause_ns;
        self.note_gc(false, pause_ns, self.stats.bytes_promoted - promoted_before, cards_scanned);
        Ok(())
    }

    /// Reports one completed collection to the metrics registry.
    fn note_gc(&self, full: bool, pause_ns: u64, promoted_bytes: u64, cards_scanned: u64) {
        let reg = &self.metrics;
        reg.counter(if full { obs::names::GC_FULL_GCS } else { obs::names::GC_MINOR_GCS }).inc();
        reg.histogram(obs::names::GC_PAUSE_NS).record(pause_ns);
        reg.counter(obs::names::GC_PROMOTED_BYTES).add(promoted_bytes);
        reg.counter(obs::names::GC_CARDS_SCANNED).add(cards_scanned);
        reg.record(obs::Event::GcPause {
            vm: self.name.clone(),
            full,
            ns: pause_ns,
            promoted_bytes,
        });
        // Attribute the pause to the transfer that last touched this
        // heap (inert unless tracing is on and a context was attached).
        reg.tracer().record_closed(
            obs::names::TRACE_GC_PAUSE,
            self.trace_ctx.get(),
            &self.name,
            pause_ns,
            &[("full", u64::from(full)), ("promoted_bytes", promoted_bytes)],
        );
    }

    /// Copies one young object out of the collected region, leaving a
    /// forwarding pointer; idempotent for already-forwarded objects.
    fn evacuate(&mut self, obj: Addr, copied: &mut Vec<Addr>) -> Result<Addr> {
        match self.heap.gen_of(obj)? {
            Gen::Old => return Ok(obj),
            // Attached segments are immutable and never move.
            Gen::Segment => return Ok(obj),
            Gen::Young => {}
        }
        // Only evacuate from eden/from-space; to-space objects already moved
        // this cycle.
        if self.heap.to_space().contains(obj) {
            return Ok(obj);
        }
        let moff = obj.0;
        let m = self.heap.arena().load_word(moff)?;
        if mark::is_forwarded(m) {
            return Ok(Addr(mark::forwarded_addr(m)));
        }
        let k = self.klass_of(obj)?;
        let size = self.obj_size_with(&k, obj)?;
        let age = mark::age_of(m).saturating_add(1);
        let tenure = age >= self.tenure_threshold();
        let dest = if tenure { None } else { self.heap.bump_to_space(size) };
        let (dest, promoted) = match dest {
            Some(d) => (d, false),
            None => {
                let d =
                    self.heap.bump_old(size).ok_or(Error::PromotionFailed { requested: size })?;
                (d, true)
            }
        };
        self.heap.arena().copy_within(obj.0, dest.0, size as usize)?;
        // Stamp the new age; clear age if promoted (it no longer matters).
        let new_mark = mark::with_age(m, if promoted { 0 } else { age });
        self.heap.arena().store_word(dest.0, new_mark)?;
        self.heap.arena().store_word(moff, mark::forward_to(dest.0))?;
        if promoted {
            self.stats.bytes_promoted += size;
        }
        copied.push(dest);
        Ok(dest)
    }

    fn tenure_threshold(&self) -> u8 {
        self.heap.tenure_threshold
    }

    /// Runs a full collection: marks the whole heap from the roots, slides
    /// the live old generation down (compaction), updates every reference,
    /// then runs a minor collection to clean the young generation.
    ///
    /// # Errors
    /// Propagates heap access errors; [`Error::PromotionFailed`] only if the
    /// heap is genuinely too full.
    pub fn full_gc(&mut self) -> Result<()> {
        let gc_start = std::time::Instant::now();
        // ---- mark ----
        let mut live: HashMap<u64, u64> = HashMap::new(); // addr -> size
        let mut stack: Vec<Addr> = Vec::new();
        for slot in self.handles.slots.iter().flatten() {
            if !slot.is_null() {
                stack.push(*slot);
            }
        }
        stack.extend(self.temp_roots.iter().copied().filter(|a| !a.is_null()));
        while let Some(obj) = stack.pop() {
            if live.contains_key(&obj.0) {
                continue;
            }
            // Attached segments are marking boundaries: they are immutable,
            // self-contained (no refs back into owned generations), never
            // move, and are kept alive by the attach refcount — nothing to
            // mark, forward, or compact.
            if self.heap.in_segment(obj) {
                continue;
            }
            let size = self.obj_size(obj)?;
            live.insert(obj.0, size);
            for off in self.ref_slots(obj)? {
                let tgt = self.read_ref_at(obj, off)?;
                if !tgt.is_null() && !live.contains_key(&tgt.0) {
                    stack.push(tgt);
                }
            }
        }

        // ---- compute sliding forwarding for live old objects ----
        let (_, _, _, old) = self.heap.spaces();
        let mut old_live: Vec<(u64, u64)> = live
            .iter()
            .filter(|(&a, _)| a >= old.start && a < old.end)
            .map(|(&a, &s)| (a, s))
            .collect();
        old_live.sort_unstable();
        let mut fwd: HashMap<u64, u64> = HashMap::with_capacity(old_live.len());
        let mut cursor = old.start;
        for &(a, s) in &old_live {
            fwd.insert(a, cursor);
            cursor += s;
        }

        // ---- update references everywhere (live objects + roots) ----
        let translate = |fwd: &HashMap<u64, u64>, a: Addr| -> Addr {
            match fwd.get(&a.0) {
                Some(&n) => Addr(n),
                None => a,
            }
        };
        let live_addrs: Vec<u64> = live.keys().copied().collect();
        for &a in &live_addrs {
            let obj = Addr(a);
            for off in self.ref_slots(obj)? {
                let tgt = self.read_ref_at(obj, off)?;
                if !tgt.is_null() {
                    let n = translate(&fwd, tgt);
                    if n != tgt {
                        self.write_ref_raw(obj, off, n)?;
                    }
                }
            }
        }
        for slot in self.handles.slots.iter_mut().flatten() {
            *slot = translate(&fwd, *slot);
        }
        for r in &mut self.temp_roots {
            *r = translate(&fwd, *r);
        }

        // ---- move (slide down, address order keeps copies safe) ----
        for &(a, s) in &old_live {
            let dest = fwd[&a];
            if dest != a {
                self.heap.arena().copy_within(a, dest, s as usize)?;
            }
        }
        self.heap.set_old_top(cursor)?;

        // ---- rebuild the card table (old objects with young refs) ----
        self.heap.clear_cards();
        let old_now = {
            let (_, _, _, o) = self.heap.spaces();
            o
        };
        let mut to_dirty: Vec<Addr> = Vec::new();
        self.walk_range(old_now.start, old_now.top, |vm, addr, _| {
            for off in vm.ref_slots(addr)? {
                let tgt = vm.read_ref_at(addr, off)?;
                if !tgt.is_null() && vm.heap().in_young(tgt) {
                    to_dirty.push(addr);
                    break;
                }
            }
            Ok(())
        })?;
        for a in to_dirty {
            self.heap.dirty_card(a);
        }

        self.stats.full_gcs += 1;
        let pause_ns = gc_start.elapsed().as_nanos() as u64;
        self.stats.gc_ns += pause_ns;
        // The sliding compaction promotes nothing and scans no cards — it
        // rebuilds the card table from scratch instead.
        self.note_gc(true, pause_ns, 0, 0);

        // ---- clean the young generation with a minor pass ----
        // Only when the compacted old generation can absorb a worst-case
        // promotion; otherwise leave the young generation as is — the
        // caller's allocation retry will surface a clean OutOfMemory.
        let young_used = {
            let (eden, from, _, _) = self.heap.spaces();
            eden.used() + from.used()
        };
        let (_, _, _, old_now) = self.heap.spaces();
        if old_now.free() >= young_used {
            self.minor_gc()
        } else {
            Ok(())
        }
    }

    /// Counts live objects reachable from the roots (diagnostic; used by
    /// tests to assert collection behaviour).
    ///
    /// # Errors
    /// Propagates heap access errors.
    pub fn live_object_count(&self) -> Result<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<Addr> = Vec::new();
        for slot in self.handles.slots.iter().flatten() {
            if !slot.is_null() {
                stack.push(*slot);
            }
        }
        stack.extend(self.temp_roots.iter().copied().filter(|a| !a.is_null()));
        while let Some(obj) = stack.pop() {
            if !seen.insert(obj.0) || self.heap.in_segment(obj) {
                continue; // segment residents are store-owned, not heap-live
            }
            for off in self.ref_slots(obj)? {
                let tgt = self.read_ref_at(obj, off)?;
                if !tgt.is_null() && !seen.contains(&tgt.0) {
                    stack.push(tgt);
                }
            }
        }
        Ok(seen.iter().filter(|&&a| !self.heap.in_segment(Addr(a))).count())
    }

    /// Total bytes of live data reachable from the roots (diagnostic).
    ///
    /// # Errors
    /// Propagates heap access errors.
    pub fn live_bytes(&self) -> Result<u64> {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<Addr> = Vec::new();
        let mut total = 0;
        for slot in self.handles.slots.iter().flatten() {
            if !slot.is_null() {
                stack.push(*slot);
            }
        }
        stack.extend(self.temp_roots.iter().copied().filter(|a| !a.is_null()));
        while let Some(obj) = stack.pop() {
            if !seen.insert(obj.0) || self.heap.in_segment(obj) {
                continue; // segment residents are store-owned, not heap-live
            }
            total += self.obj_size(obj)?;
            for off in self.ref_slots(obj)? {
                let tgt = self.read_ref_at(obj, off)?;
                if !tgt.is_null() && !seen.contains(&tgt.0) {
                    stack.push(tgt);
                }
            }
        }
        Ok(total)
    }
}

/// True if a klass kind holds references the collector must trace.
pub fn traces_refs(kind: KlassKind) -> bool {
    !matches!(kind, KlassKind::PrimArray(_))
}
