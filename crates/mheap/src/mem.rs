//! Raw arena memory backing a simulated managed heap.
//!
//! This is the only module in the workspace that contains `unsafe` code. It
//! provides a fixed-capacity, zero-initialized, 8-byte-aligned memory region
//! with bounds-checked typed accessors and *atomic* word operations.
//!
//! Atomic word access matters because Skyway's multi-threaded sender
//! (paper §4.2, "Support for Threads") claims the `baddr` header word of a
//! shared object with a compare-and-swap while several transfer threads
//! traverse the same heap concurrently. The arena therefore exposes
//! [`Arena::load_word_atomic`] and [`Arena::cas_word`] that take `&self`.
//!
//! Every non-atomic accessor also takes `&self`: the arena behaves like one
//! large `UnsafeCell`. Callers above this layer (the [`crate::heap::Heap`])
//! restore single-writer discipline through `&mut` methods; the narrow
//! `&self` write surface exists only for the sender paths that the paper
//! defines to be data-race-free by construction (application threads are
//! quiesced during a shuffle, and each non-`baddr` word is read-only then).

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{Error, Result};

/// A read-only window of another arena mapped into this arena's offset
/// space at `base` (attached-segment memory; see [`crate::segment`]).
/// Mapped ranges sit far above the owned capacity — segment bases start at
/// [`crate::segment::SEGMENT_BASE`] — so routing only runs on the
/// bounds-check failure path and costs the owned-memory hot path nothing.
#[derive(Clone)]
struct SegMap {
    base: u64,
    len: u64,
    mem: Arc<Arena>,
}

/// Fixed-capacity, zeroed, 8-byte-aligned raw memory region.
///
/// Offsets are `u64` byte offsets from the start of the region. Offset `0`
/// is a valid byte but the managed heap never allocates an object there, so
/// address `0` can represent `null` one layer up.
///
/// Beyond its owned capacity an arena may carry *mapped* read-only windows
/// onto other arenas (attached segments). Reads resolve through the
/// mapping; any store, CAS, or zero into a mapped range fails with
/// [`Error::SegmentReadOnly`].
pub struct Arena {
    ptr: *mut u8,
    len: usize,
    maps: Vec<SegMap>,
}

// SAFETY: the arena itself is just memory; synchronization discipline is the
// responsibility of the owning heap (single mutator, or the documented
// race-free Skyway sender protocol using the atomic accessors).
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

impl Arena {
    /// Allocates a zeroed arena of `len` bytes (rounded up to 8).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArenaAlloc`] if the allocation fails or `len` is 0.
    pub fn new(len: usize) -> Result<Self> {
        let len = len.checked_add(7).ok_or(Error::ArenaAlloc(len))? & !7usize;
        if len == 0 {
            return Err(Error::ArenaAlloc(len));
        }
        let layout = Layout::from_size_align(len, 8).map_err(|_| Error::ArenaAlloc(len))?;
        // SAFETY: layout has non-zero size (checked above).
        let ptr = unsafe { alloc_zeroed(layout) };
        if ptr.is_null() {
            return Err(Error::ArenaAlloc(len));
        }
        Ok(Arena { ptr, len, maps: Vec::new() })
    }

    /// Maps `len` bytes of `mem` into this arena's offset space at `base`,
    /// read-only. Reads at `[base, base + len)` resolve into `mem`; writes
    /// there fail with [`Error::SegmentReadOnly`]. The caller (the heap's
    /// attach path) guarantees `base` is disjoint from the owned range and
    /// from every existing mapping.
    pub(crate) fn map_range(&mut self, base: u64, len: u64, mem: Arc<Arena>) {
        self.maps.push(SegMap { base, len, mem });
    }

    /// Removes the mapping at `base`, returning whether one existed.
    pub(crate) fn unmap_range(&mut self, base: u64) -> bool {
        let before = self.maps.len();
        self.maps.retain(|m| m.base != base);
        self.maps.len() != before
    }

    /// Resolves an access that missed the owned range into a mapped
    /// window: the backing arena plus the window-relative offset.
    #[inline]
    fn route(&self, off: u64, size: usize) -> Option<(&Arena, u64)> {
        for m in &self.maps {
            let end = off.checked_add(size as u64)?;
            if off >= m.base && end <= m.base.checked_add(m.len)? {
                return Some((&m.mem, off - m.base));
            }
        }
        None
    }

    /// True if `off` lands in a mapped (read-only) window.
    #[inline]
    fn routed_write(&self, off: u64, size: usize) -> Option<Error> {
        self.route(off, size).map(|_| Error::SegmentReadOnly { off })
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the arena has zero capacity (never true for a live arena).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, off: u64, size: usize) -> Result<usize> {
        let off = off as usize;
        let end = off.checked_add(size).ok_or(Error::OutOfBounds { off: off as u64, size })?;
        if end > self.len {
            return Err(Error::OutOfBounds { off: off as u64, size });
        }
        Ok(off)
    }

    #[inline]
    fn check_aligned(&self, off: u64, size: usize) -> Result<usize> {
        let o = self.check(off, size)?;
        if o % size != 0 {
            return Err(Error::Misaligned { off, align: size });
        }
        Ok(o)
    }

    /// Reads an 8-byte word at an 8-aligned offset.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] / [`Error::Misaligned`].
    #[inline]
    pub fn load_word(&self, off: u64) -> Result<u64> {
        match self.check_aligned(off, 8) {
            // SAFETY: bounds and alignment checked.
            Ok(o) => Ok(unsafe { (self.ptr.add(o) as *const u64).read() }),
            Err(e) => match self.route(off, 8) {
                Some((mem, rel)) => mem.load_word(rel),
                None => Err(e),
            },
        }
    }

    /// Writes an 8-byte word at an 8-aligned offset.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] / [`Error::Misaligned`].
    #[inline]
    pub fn store_word(&self, off: u64, val: u64) -> Result<()> {
        match self.check_aligned(off, 8) {
            Ok(o) => {
                // SAFETY: bounds and alignment checked.
                unsafe { (self.ptr.add(o) as *mut u64).write(val) };
                Ok(())
            }
            Err(e) => Err(self.routed_write(off, 8).unwrap_or(e)),
        }
    }

    /// Atomically reads an 8-byte word (Acquire).
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] / [`Error::Misaligned`].
    #[inline]
    pub fn load_word_atomic(&self, off: u64) -> Result<u64> {
        match self.check_aligned(off, 8) {
            Ok(o) => {
                // SAFETY: bounds and alignment checked; AtomicU64 has the
                // same layout as u64.
                let a = unsafe { &*(self.ptr.add(o) as *const AtomicU64) };
                // ORDER: Acquire — pairs with the AcqRel CAS in `cas_word`
                // (the `baddr` claim protocol): a reader that observes a
                // claimed word also observes the claimer's earlier writes.
                Ok(a.load(Ordering::Acquire))
            }
            // Sealed segment words never change, so a plain read has
            // acquire semantics trivially.
            Err(e) => match self.route(off, 8) {
                Some((mem, rel)) => mem.load_word(rel),
                None => Err(e),
            },
        }
    }

    /// Atomically compare-and-swaps an 8-byte word (AcqRel on success).
    ///
    /// Returns `Ok(Ok(old))` on success and `Ok(Err(current))` if the word
    /// did not match `expected`.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] / [`Error::Misaligned`].
    #[inline]
    pub fn cas_word(
        &self,
        off: u64,
        expected: u64,
        new: u64,
    ) -> Result<std::result::Result<u64, u64>> {
        match self.check_aligned(off, 8) {
            Ok(o) => {
                // SAFETY: bounds and alignment checked.
                let a = unsafe { &*(self.ptr.add(o) as *const AtomicU64) };
                // ORDER: AcqRel on success — the winning claim publishes
                // the claimer's prior writes to `load_word_atomic` readers
                // and orders it after the claims it contends with. Acquire
                // on failure: the loser reads the winner's value and must
                // see the writes it covers before reacting.
                Ok(a.compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire))
            }
            Err(e) => Err(self.routed_write(off, 8).unwrap_or(e)),
        }
    }

    /// Reads a 4-byte value at a 4-aligned offset.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] / [`Error::Misaligned`].
    #[inline]
    pub fn load_u32(&self, off: u64) -> Result<u32> {
        match self.check_aligned(off, 4) {
            // SAFETY: bounds and alignment checked.
            Ok(o) => Ok(unsafe { (self.ptr.add(o) as *const u32).read() }),
            Err(e) => match self.route(off, 4) {
                Some((mem, rel)) => mem.load_u32(rel),
                None => Err(e),
            },
        }
    }

    /// Writes a 4-byte value at a 4-aligned offset.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] / [`Error::Misaligned`].
    #[inline]
    pub fn store_u32(&self, off: u64, val: u32) -> Result<()> {
        match self.check_aligned(off, 4) {
            Ok(o) => {
                // SAFETY: bounds and alignment checked.
                unsafe { (self.ptr.add(o) as *mut u32).write(val) };
                Ok(())
            }
            Err(e) => Err(self.routed_write(off, 4).unwrap_or(e)),
        }
    }

    /// Reads a 2-byte value at a 2-aligned offset.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] / [`Error::Misaligned`].
    #[inline]
    pub fn load_u16(&self, off: u64) -> Result<u16> {
        match self.check_aligned(off, 2) {
            // SAFETY: bounds and alignment checked.
            Ok(o) => Ok(unsafe { (self.ptr.add(o) as *const u16).read() }),
            Err(e) => match self.route(off, 2) {
                Some((mem, rel)) => mem.load_u16(rel),
                None => Err(e),
            },
        }
    }

    /// Writes a 2-byte value at a 2-aligned offset.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] / [`Error::Misaligned`].
    #[inline]
    pub fn store_u16(&self, off: u64, val: u16) -> Result<()> {
        match self.check_aligned(off, 2) {
            Ok(o) => {
                // SAFETY: bounds and alignment checked.
                unsafe { (self.ptr.add(o) as *mut u16).write(val) };
                Ok(())
            }
            Err(e) => Err(self.routed_write(off, 2).unwrap_or(e)),
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`].
    #[inline]
    pub fn load_u8(&self, off: u64) -> Result<u8> {
        match self.check(off, 1) {
            // SAFETY: bounds checked.
            Ok(o) => Ok(unsafe { self.ptr.add(o).read() }),
            Err(e) => match self.route(off, 1) {
                Some((mem, rel)) => mem.load_u8(rel),
                None => Err(e),
            },
        }
    }

    /// Writes one byte.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`].
    #[inline]
    pub fn store_u8(&self, off: u64, val: u8) -> Result<()> {
        match self.check(off, 1) {
            Ok(o) => {
                // SAFETY: bounds checked.
                unsafe { self.ptr.add(o).write(val) };
                Ok(())
            }
            Err(e) => Err(self.routed_write(off, 1).unwrap_or(e)),
        }
    }

    /// Copies `len` bytes out of the arena into `dst`.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`].
    pub fn read_bytes(&self, off: u64, dst: &mut [u8]) -> Result<()> {
        match self.check(off, dst.len()) {
            Ok(o) => {
                // SAFETY: bounds checked; dst is a distinct Rust allocation.
                unsafe {
                    std::ptr::copy_nonoverlapping(self.ptr.add(o), dst.as_mut_ptr(), dst.len())
                };
                Ok(())
            }
            Err(e) => match self.route(off, dst.len()) {
                Some((mem, rel)) => mem.read_bytes(rel, dst),
                None => Err(e),
            },
        }
    }

    /// Copies `src` into the arena at `off`.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`].
    pub fn write_bytes(&self, off: u64, src: &[u8]) -> Result<()> {
        match self.check(off, src.len()) {
            Ok(o) => {
                // SAFETY: bounds checked; src is a distinct Rust allocation.
                unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(o), src.len()) };
                Ok(())
            }
            Err(e) => Err(self.routed_write(off, src.len()).unwrap_or(e)),
        }
    }

    /// Copies `len` bytes within the arena (regions may overlap). The
    /// source may lie in a mapped segment window; the destination must be
    /// owned, writable memory.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] / [`Error::SegmentReadOnly`].
    pub fn copy_within(&self, src: u64, dst: u64, len: usize) -> Result<()> {
        let d = match self.check(dst, len) {
            Ok(d) => d,
            Err(e) => return Err(self.routed_write(dst, len).unwrap_or(e)),
        };
        match self.check(src, len) {
            Ok(s) => {
                // SAFETY: both ranges bounds checked; copy handles overlap.
                unsafe { std::ptr::copy(self.ptr.add(s), self.ptr.add(d), len) };
                Ok(())
            }
            Err(e) => match self.route(src, len) {
                Some((mem, rel)) => {
                    // Mapped source and owned destination never overlap.
                    let mut tmp = vec![0u8; len];
                    mem.read_bytes(rel, &mut tmp)?;
                    self.write_bytes(dst, &tmp)
                }
                None => Err(e),
            },
        }
    }

    /// Zeroes `len` bytes starting at `off`.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] / [`Error::SegmentReadOnly`].
    pub fn zero(&self, off: u64, len: usize) -> Result<()> {
        match self.check(off, len) {
            Ok(o) => {
                // SAFETY: bounds checked.
                unsafe { std::ptr::write_bytes(self.ptr.add(o), 0, len) };
                Ok(())
            }
            Err(e) => Err(self.routed_write(off, len).unwrap_or(e)),
        }
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        if !self.ptr.is_null() && self.len > 0 {
            // SAFETY: allocated with the identical layout in `new`.
            unsafe {
                dealloc(self.ptr, Layout::from_size_align_unchecked(self.len, 8));
            }
        }
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_on_alloc() {
        let a = Arena::new(1024).unwrap();
        for off in (0..1024).step_by(8) {
            assert_eq!(a.load_word(off as u64).unwrap(), 0);
        }
    }

    #[test]
    fn word_roundtrip() {
        let a = Arena::new(64).unwrap();
        a.store_word(8, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(a.load_word(8).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let a = Arena::new(64).unwrap();
        assert!(matches!(a.load_word(64), Err(Error::OutOfBounds { .. })));
        assert!(matches!(a.store_word(60, 1), Err(Error::OutOfBounds { .. })));
        assert!(matches!(a.load_u8(64), Err(Error::OutOfBounds { .. })));
    }

    #[test]
    fn rejects_misaligned() {
        let a = Arena::new(64).unwrap();
        assert!(matches!(a.load_word(4), Err(Error::Misaligned { .. })));
        assert!(matches!(a.load_u32(2), Err(Error::Misaligned { .. })));
        assert!(matches!(a.load_u16(1), Err(Error::Misaligned { .. })));
    }

    #[test]
    fn bytes_roundtrip() {
        let a = Arena::new(64).unwrap();
        a.write_bytes(3, b"skyway").unwrap();
        let mut buf = [0u8; 6];
        a.read_bytes(3, &mut buf).unwrap();
        assert_eq!(&buf, b"skyway");
    }

    #[test]
    fn overlapping_copy_within() {
        let a = Arena::new(64).unwrap();
        a.write_bytes(0, b"abcdef").unwrap();
        a.copy_within(0, 2, 6).unwrap();
        let mut buf = [0u8; 8];
        a.read_bytes(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ababcdef");
    }

    #[test]
    fn cas_success_and_failure() {
        let a = Arena::new(64).unwrap();
        a.store_word(16, 7).unwrap();
        assert_eq!(a.cas_word(16, 7, 9).unwrap(), Ok(7));
        assert_eq!(a.cas_word(16, 7, 11).unwrap(), Err(9));
        assert_eq!(a.load_word_atomic(16).unwrap(), 9);
    }

    #[test]
    fn zero_range() {
        let a = Arena::new(64).unwrap();
        a.store_word(8, u64::MAX).unwrap();
        a.zero(8, 8).unwrap();
        assert_eq!(a.load_word(8).unwrap(), 0);
    }

    #[test]
    fn concurrent_cas_claims_once() {
        use std::sync::Arc;
        let a = Arc::new(Arena::new(64).unwrap());
        let winners: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let a = Arc::clone(&a);
                    s.spawn(move || a.cas_word(32, 0, i + 1).unwrap().is_ok() as usize)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(winners, 1);
        assert_ne!(a.load_word_atomic(32).unwrap(), 0);
    }
}
