//! Heap spaces, bump allocation, the card table, and filler words.
//!
//! The heap is one fixed-capacity arena split into HotSpot-style spaces:
//! eden + two survivor semispaces (the young generation) and a tenured old
//! generation. Skyway's receiver allocates its *input buffers* directly in
//! the old generation (§4.3 "Interaction with GC") and dirties card-table
//! entries so the collector notices pointers created by a transfer.
//!
//! Partially-filled input-buffer chunks leave gaps in the otherwise linearly
//! parseable old space; gaps are filled with [`FILLER_WORD`]s, which the
//! space walkers skip (the moral equivalent of HotSpot's filler arrays).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::layout::{align8, Addr, LayoutSpec};
use crate::mem::Arena;
use crate::segment::Segment;
use crate::{Error, Result};

/// Bit pattern marking an unused 8-byte slot in a parseable space. Chosen so
/// it can never collide with a real mark word (real marks never have all of
/// bits 48..=62 set).
pub const FILLER_WORD: u64 = u64::MAX;

/// Card size in bytes (HotSpot uses 512).
pub const CARD_SIZE: u64 = 512;

/// Configuration of a managed heap.
#[derive(Debug, Clone, Copy)]
pub struct HeapConfig {
    /// Total capacity in bytes (the `-Xmx` of this simulated JVM).
    pub capacity: usize,
    /// Fraction of the capacity given to the young generation.
    pub young_fraction: f64,
    /// Fraction of the young generation given to *each* survivor space.
    pub survivor_fraction: f64,
    /// Number of minor collections an object survives before tenuring.
    pub tenure_threshold: u8,
    /// Object format (Skyway `baddr` word present or not).
    pub spec: LayoutSpec,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            capacity: 64 << 20,
            young_fraction: 0.3,
            survivor_fraction: 0.1,
            tenure_threshold: 6,
            spec: LayoutSpec::SKYWAY,
        }
    }
}

impl HeapConfig {
    /// A small heap for unit tests.
    pub fn small() -> Self {
        HeapConfig { capacity: 1 << 20, ..HeapConfig::default() }
    }

    /// Sets the capacity, builder-style.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the object format, builder-style.
    pub fn with_spec(mut self, spec: LayoutSpec) -> Self {
        self.spec = spec;
        self
    }
}

/// A contiguous bump-allocated region of the arena.
#[derive(Debug, Clone, Copy)]
pub struct Space {
    /// First usable byte.
    pub start: u64,
    /// One past the last usable byte.
    pub end: u64,
    /// Allocation cursor.
    pub top: u64,
}

impl Space {
    fn new(start: u64, end: u64) -> Self {
        Space { start, end, top: start }
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn used(&self) -> u64 {
        self.top - self.start
    }

    /// Bytes remaining.
    #[inline]
    pub fn free(&self) -> u64 {
        self.end - self.top
    }

    /// Total size.
    #[inline]
    pub fn size(&self) -> u64 {
        self.end - self.start
    }

    /// True if `addr` falls inside this space.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.start && addr.0 < self.end
    }

    fn bump(&mut self, size: u64) -> Option<u64> {
        if self.top + size <= self.end {
            let at = self.top;
            self.top += size;
            Some(at)
        } else {
            None
        }
    }
}

/// Which generation an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gen {
    /// Eden or a survivor space.
    Young,
    /// The tenured generation.
    Old,
    /// An attached immutable segment (never collected, never moved; see
    /// [`crate::segment`]).
    Segment,
}

/// The heap: arena + spaces + card table.
#[derive(Debug)]
pub struct Heap {
    pub(crate) arena: Arena,
    spec: LayoutSpec,
    pub(crate) eden: Space,
    pub(crate) s0: Space,
    pub(crate) s1: Space,
    pub(crate) from_is_s0: bool,
    pub(crate) old: Space,
    cards: Vec<u8>,
    hash_state: u64,
    peak_used: u64,
    pub(crate) tenure_threshold: u8,
    /// Atomic old-gen allocation cursor, live only inside a
    /// [`Heap::begin_shared_old_alloc`] window (see
    /// [`Heap::shared_alloc_raw_old`]).
    shared_top: AtomicU64,
    shared_active: bool,
    /// Attached immutable segments, in attach order. Their memory is
    /// mapped read-only into `arena`; the GC treats them as roots and
    /// never moves or scans into them.
    attached: Vec<Arc<Segment>>,
}

impl Heap {
    /// Builds a heap from a configuration.
    ///
    /// # Errors
    /// [`Error::ArenaAlloc`] if the arena cannot be allocated, or
    /// [`Error::BadConfig`] for nonsensical fractions.
    pub fn new(config: &HeapConfig) -> Result<Self> {
        if !(0.05..=0.9).contains(&config.young_fraction)
            || !(0.01..=0.4).contains(&config.survivor_fraction)
        {
            return Err(Error::BadConfig(format!(
                "young_fraction {} / survivor_fraction {} out of range",
                config.young_fraction, config.survivor_fraction
            )));
        }
        let capacity = align8(config.capacity as u64);
        let arena = Arena::new(capacity as usize)?;
        let young = align8((capacity as f64 * config.young_fraction) as u64);
        let survivor = align8((young as f64 * config.survivor_fraction) as u64);
        let eden_size = young - 2 * survivor;
        // Reserve the first 16 bytes so no object lives at address 0 (null).
        let eden = Space::new(16, 16 + eden_size);
        let s0 = Space::new(eden.end, eden.end + survivor);
        let s1 = Space::new(s0.end, s0.end + survivor);
        let old = Space::new(s1.end, capacity);
        let n_cards = old.size().div_ceil(CARD_SIZE);
        Ok(Heap {
            arena,
            spec: config.spec,
            eden,
            s0,
            s1,
            from_is_s0: true,
            old,
            cards: vec![0; n_cards as usize],
            hash_state: 0x9e37_79b9_7f4a_7c15,
            peak_used: 0,
            tenure_threshold: config.tenure_threshold,
            shared_top: AtomicU64::new(0),
            shared_active: false,
            attached: Vec::new(),
        })
    }

    /// The object format of this heap.
    #[inline]
    pub fn spec(&self) -> LayoutSpec {
        self.spec
    }

    /// Raw memory access (used by the object layer and Skyway).
    #[inline]
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// The survivor space objects are currently evacuated *from*.
    #[allow(clippy::wrong_self_convention)] // GC "from-space", not a conversion
    pub(crate) fn from_space(&self) -> Space {
        if self.from_is_s0 {
            self.s0
        } else {
            self.s1
        }
    }

    /// The survivor space objects are evacuated *to* during a minor GC.
    pub(crate) fn to_space(&self) -> Space {
        if self.from_is_s0 {
            self.s1
        } else {
            self.s0
        }
    }

    /// Generation containing `addr`.
    ///
    /// # Errors
    /// [`Error::BadAddress`] if `addr` is null or outside every space.
    pub fn gen_of(&self, addr: Addr) -> Result<Gen> {
        if self.eden.contains(addr) || self.s0.contains(addr) || self.s1.contains(addr) {
            Ok(Gen::Young)
        } else if self.old.contains(addr) {
            Ok(Gen::Old)
        } else if self.in_segment(addr) {
            Ok(Gen::Segment)
        } else {
            Err(Error::BadAddress(addr.0))
        }
    }

    /// True if `addr` is in the young generation.
    pub fn in_young(&self, addr: Addr) -> bool {
        self.eden.contains(addr) || self.s0.contains(addr) || self.s1.contains(addr)
    }

    /// True if `addr` is in the old generation.
    pub fn in_old(&self, addr: Addr) -> bool {
        self.old.contains(addr)
    }

    /// True if `addr` falls inside an attached segment.
    pub fn in_segment(&self, addr: Addr) -> bool {
        // Segment bases start at `SEGMENT_BASE`, far above the owned
        // capacity, so the cheap range test short-circuits the scan for
        // every ordinary heap address.
        addr.raw() >= crate::segment::SEGMENT_BASE && self.attached.iter().any(|s| s.contains(addr))
    }

    /// The attached segment containing `addr`, if any.
    pub fn segment_for(&self, addr: Addr) -> Option<&Arc<Segment>> {
        if addr.raw() < crate::segment::SEGMENT_BASE {
            return None;
        }
        self.attached.iter().find(|s| s.contains(addr))
    }

    /// All attached segments, in attach order.
    pub fn attached_segments(&self) -> &[Arc<Segment>] {
        &self.attached
    }

    /// Attaches a sealed segment: maps its memory read-only into this
    /// heap's address space. Metadata-only — nothing is cloned, no cards
    /// are dirtied; after this call every address in the segment resolves
    /// through ordinary heap reads and [`Heap::gen_of`] reports
    /// [`Gen::Segment`].
    ///
    /// # Errors
    /// [`Error::SegmentAlreadyAttached`] if a segment with the same base
    /// is already attached.
    pub fn attach_segment(&mut self, seg: Arc<Segment>) -> Result<()> {
        if self.attached.iter().any(|s| s.base() == seg.base()) {
            return Err(Error::SegmentAlreadyAttached(seg.base()));
        }
        self.arena.map_range(seg.base(), seg.len(), Arc::clone(seg.mem()));
        self.attached.push(seg);
        Ok(())
    }

    /// Detaches the segment with the given base, unmapping its memory.
    /// The heap must no longer hold references into the segment (the
    /// verifier reports any survivor as a dangling ref). Returns the
    /// detached segment so the caller's store can run refcount/epoch
    /// reclamation.
    ///
    /// # Errors
    /// [`Error::UnknownSegment`] if no such segment is attached.
    pub fn detach_segment(&mut self, base: u64) -> Result<Arc<Segment>> {
        let idx = self
            .attached
            .iter()
            .position(|s| s.base() == base)
            .ok_or(Error::UnknownSegment(base))?;
        self.arena.unmap_range(base);
        Ok(self.attached.remove(idx))
    }

    /// Bytes in use across all spaces.
    pub fn used(&self) -> u64 {
        self.eden.used() + self.from_space().used() + self.old.used()
    }

    /// High-water mark of [`Heap::used`] (the §5.2 peak-consumption metric).
    pub fn peak_used(&self) -> u64 {
        self.peak_used
    }

    pub(crate) fn note_usage(&mut self) {
        let u = self.used();
        if u > self.peak_used {
            self.peak_used = u;
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.arena.len() as u64
    }

    /// Bump-allocates `size` bytes in eden (young generation).
    pub(crate) fn bump_young(&mut self, size: u64) -> Option<Addr> {
        let at = self.eden.bump(size)?;
        self.note_usage();
        Some(Addr(at))
    }

    /// Bump-allocates `size` bytes in the old generation.
    pub(crate) fn bump_old(&mut self, size: u64) -> Option<Addr> {
        let at = self.old.bump(size)?;
        self.note_usage();
        Some(Addr(at))
    }

    /// Allocates a raw, contiguous old-generation region for a Skyway input
    /// buffer chunk. The caller must leave the region linearly parseable
    /// (real objects plus [`FILLER_WORD`] padding).
    ///
    /// # Errors
    /// [`Error::OldGenFull`] when the old generation cannot fit `len` bytes.
    pub fn alloc_raw_old(&mut self, len: u64) -> Result<Addr> {
        let len = align8(len);
        let addr = self.old.bump(len).map(Addr).ok_or(Error::OldGenFull { requested: len })?;
        // Regions from a previous GC epoch may contain stale bytes.
        self.arena.zero(addr.0, len as usize)?;
        // Until the caller writes real objects, keep the region parseable.
        self.fill_filler(addr, len)?;
        self.note_usage();
        Ok(addr)
    }

    /// Opens a *shared* old-generation allocation window: seeds the atomic
    /// cursor from `old.top` so concurrent absorb workers can carve
    /// disjoint input-buffer regions via [`Heap::shared_alloc_raw_old`]
    /// through a shared `&Heap`. No GC can run during the window (the
    /// parallel receiver holds the only `&mut Vm` access path), so the
    /// bump cursor is the only mutable space state in play.
    pub fn begin_shared_old_alloc(&mut self) {
        debug_assert!(!self.shared_active, "shared old-gen window already open");
        // ORDER: Release — publishes the seeded cursor (and every heap
        // write program-ordered before opening the window) to workers
        // whose first sight of it is the Acquire side of the CAS in
        // `shared_alloc_raw_old`.
        self.shared_top.store(self.old.top, Ordering::Release);
        self.shared_active = true;
    }

    /// Closes the shared window: publishes the atomic cursor back into
    /// `old.top` and refreshes the peak-usage high-water mark.
    pub fn end_shared_old_alloc(&mut self) {
        debug_assert!(self.shared_active, "shared old-gen window not open");
        // ORDER: Acquire — pairs with the Release half of each worker's
        // claiming CAS: every region claim (and the zero/filler writes the
        // claimer made before returning) is ordered before the window
        // close folds the cursor back into exclusive state.
        self.old.top = self.shared_top.load(Ordering::Acquire);
        self.shared_active = false;
        self.note_usage();
    }

    /// [`Heap::alloc_raw_old`] through a shared reference, for concurrent
    /// absorb workers inside a [`Heap::begin_shared_old_alloc`] window.
    /// Regions are claimed with a CAS loop on the shared cursor, then
    /// zeroed and filler-filled exactly like the exclusive path.
    ///
    /// # Errors
    /// [`Error::OldGenFull`] when the old generation cannot fit `len`
    /// bytes, plus the arena errors of the exclusive path.
    pub fn shared_alloc_raw_old(&self, len: u64) -> Result<Addr> {
        debug_assert!(self.shared_active, "shared old-gen window not open");
        let len = align8(len);
        // The seed load may be stale — the CAS below revalidates it, so
        // Relaxed is enough here.
        let mut cur = self.shared_top.load(Ordering::Relaxed);
        loop {
            let end = cur.checked_add(len).ok_or(Error::OldGenFull { requested: len })?;
            if end > self.old.end {
                return Err(Error::OldGenFull { requested: len });
            }
            // ORDER: AcqRel on success — Acquire pairs with the window
            // opener's Release store (the claimed region's bounds are only
            // meaningful after the seed publish) and with prior claimers'
            // Release halves; Release orders this claim before the window
            // close's Acquire load in `end_shared_old_alloc`. Failure is
            // Relaxed: a lost race only reseeds the loop.
            match self.shared_top.compare_exchange_weak(
                cur,
                end,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let addr = Addr(cur);
                    // The CAS win proves `[cur, end)` sits inside the old
                    // generation and no other worker can claim it.
                    debug_assert!(addr.0 >= self.old.start && end <= self.old.end);
                    self.arena.zero(addr.0, len as usize)?;
                    self.fill_filler(addr, len)?;
                    return Ok(addr);
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Fills `[addr, addr+len)` with filler words so space walkers skip it.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] / [`Error::Misaligned`] for bad ranges.
    pub fn fill_filler(&self, addr: Addr, len: u64) -> Result<()> {
        let mut off = addr.0;
        let end = addr.0 + len;
        while off < end {
            self.arena.store_word(off, FILLER_WORD)?;
            off += 8;
        }
        Ok(())
    }

    /// Generates a fresh nonzero 31-bit identity hashcode (xorshift64*).
    pub(crate) fn next_hash(&mut self) -> u32 {
        loop {
            let mut x = self.hash_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.hash_state = x;
            let h = ((x.wrapping_mul(0x2545_f491_4f6c_dd1d)) >> 33) as u32 & 0x7fff_ffff;
            if h != 0 {
                return h;
            }
        }
    }

    // ----- card table -------------------------------------------------

    fn card_index(&self, addr: Addr) -> Option<usize> {
        if self.old.contains(addr) {
            Some(((addr.0 - self.old.start) / CARD_SIZE) as usize)
        } else {
            None
        }
    }

    /// Dirties the card covering `addr` (no-op outside the old generation).
    /// This is the write barrier, also invoked by Skyway's receiver after
    /// absolutizing an input buffer.
    pub fn dirty_card(&mut self, addr: Addr) {
        if let Some(i) = self.card_index(addr) {
            self.cards[i] = 1;
        }
    }

    /// Dirties every card overlapping `[addr, addr+len)`.
    pub fn dirty_card_range(&mut self, addr: Addr, len: u64) {
        self.dirty_card_span(addr, len);
    }

    /// Dirties every card overlapping `[addr, addr+len)` in one slice fill,
    /// returning how many of those cards were *newly* dirtied. The index
    /// range is computed once instead of re-checking old-generation bounds
    /// per card, so absorbing a chunk costs one memset-like pass.
    fn dirty_card_span(&mut self, addr: Addr, len: u64) -> u64 {
        let end = Addr(addr.0 + len.max(1) - 1);
        let (Some(first), Some(last)) = (self.card_index(addr), self.card_index(end)) else {
            // Partially outside the old generation: fall back to the
            // per-card barrier for whatever part is covered.
            let mut newly = 0;
            let mut a = addr.0;
            while a < addr.0 + len.max(1) {
                if let Some(i) = self.card_index(Addr(a)) {
                    newly += u64::from(self.cards[i] == 0);
                    self.cards[i] = 1;
                }
                a += CARD_SIZE;
            }
            return newly;
        };
        let span = &mut self.cards[first..=last];
        let newly = span.iter().filter(|&&c| c == 0).count() as u64;
        span.fill(1);
        newly
    }

    /// Dirties the cards covering a batch of ranges in one pass, returning
    /// how many cards went from clean to dirty across the whole batch.
    /// Skyway's incremental receiver collects one range per absorbed chunk
    /// and applies them all here instead of dirtying object by object.
    pub fn dirty_card_batch(&mut self, ranges: &[(Addr, u64)]) -> u64 {
        ranges.iter().map(|&(a, l)| self.dirty_card_span(a, l)).sum()
    }

    /// True if the card covering `addr` is dirty.
    pub fn is_card_dirty(&self, addr: Addr) -> bool {
        self.card_index(addr).map(|i| self.cards[i] == 1).unwrap_or(false)
    }

    pub(crate) fn clear_cards(&mut self) {
        self.cards.iter_mut().for_each(|c| *c = 0);
    }

    /// Number of dirty cards (diagnostics).
    pub fn dirty_card_count(&self) -> usize {
        self.cards.iter().filter(|&&c| c == 1).count()
    }

    // ----- GC-internal space management --------------------------------

    pub(crate) fn reset_young_after_minor(&mut self) -> Result<()> {
        self.arena.zero(self.eden.start, self.eden.used() as usize)?;
        let from = self.from_space();
        self.arena.zero(from.start, from.used() as usize)?;
        self.eden.top = self.eden.start;
        if self.from_is_s0 {
            self.s0.top = self.s0.start;
        } else {
            self.s1.top = self.s1.start;
        }
        self.from_is_s0 = !self.from_is_s0;
        Ok(())
    }

    pub(crate) fn bump_to_space(&mut self, size: u64) -> Option<Addr> {
        let sp = if self.from_is_s0 { &mut self.s1 } else { &mut self.s0 };
        sp.bump(size).map(Addr)
    }

    pub(crate) fn set_old_top(&mut self, top: u64) -> Result<()> {
        let old_top = self.old.top;
        self.old.top = top;
        if top < old_top {
            self.arena.zero(top, (old_top - top) as usize)?;
        }
        Ok(())
    }

    /// Snapshot of (eden, from-survivor, to-survivor, old) for reporting.
    pub fn spaces(&self) -> (Space, Space, Space, Space) {
        (self.eden, self.from_space(), self.to_space(), self.old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaces_partition_capacity() {
        let h = Heap::new(&HeapConfig::small()).unwrap();
        let (eden, from, to, old) = h.spaces();
        assert_eq!(eden.start, 16);
        assert!(eden.end <= from.start || from.start <= eden.end); // contiguous chain
        assert_eq!(old.end, h.capacity());
        assert!(eden.size() > 0 && from.size() > 0 && to.size() > 0 && old.size() > 0);
        assert_eq!(from.size(), to.size());
    }

    #[test]
    fn rejects_bad_config() {
        let cfg = HeapConfig { young_fraction: 0.99, ..HeapConfig::small() };
        assert!(matches!(Heap::new(&cfg), Err(Error::BadConfig(_))));
    }

    #[test]
    fn raw_old_region_is_filler_filled() {
        let mut h = Heap::new(&HeapConfig::small()).unwrap();
        let a = h.alloc_raw_old(64).unwrap();
        for i in 0..8 {
            assert_eq!(h.arena().load_word(a.0 + i * 8).unwrap(), FILLER_WORD);
        }
    }

    #[test]
    fn old_gen_full_errors() {
        let mut h = Heap::new(&HeapConfig::small()).unwrap();
        let huge = h.old.size() + 8;
        assert!(matches!(h.alloc_raw_old(huge), Err(Error::OldGenFull { .. })));
    }

    #[test]
    fn shared_old_alloc_carves_disjoint_filler_regions() {
        let mut h = Heap::new(&HeapConfig::small()).unwrap();
        let before = h.old.top;
        h.begin_shared_old_alloc();
        let addrs: Vec<Addr> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let h = &h;
                    s.spawn(move || {
                        (0..8).map(|_| h.shared_alloc_raw_old(56).unwrap()).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|j| j.join().unwrap()).collect()
        });
        h.end_shared_old_alloc();
        // 32 allocations of align8(56) = 56 bytes, all disjoint, all filler.
        let mut sorted: Vec<u64> = addrs.iter().map(|a| a.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32);
        for w in sorted.windows(2) {
            assert!(w[1] - w[0] >= 56, "overlapping regions {w:?}");
        }
        assert_eq!(h.old.top, before + 32 * 56, "cursor published back to old.top");
        for a in &addrs {
            assert_eq!(h.arena().load_word(a.0).unwrap(), FILLER_WORD);
        }
        assert!(h.peak_used() >= 32 * 56);
    }

    #[test]
    fn shared_old_alloc_full_errors_and_keeps_cursor_sane() {
        let mut h = Heap::new(&HeapConfig::small()).unwrap();
        h.begin_shared_old_alloc();
        let huge = h.old.size() + 8;
        assert!(matches!(h.shared_alloc_raw_old(huge), Err(Error::OldGenFull { .. })));
        let ok = h.shared_alloc_raw_old(64).unwrap();
        h.end_shared_old_alloc();
        assert!(h.old.contains(ok));
        // The exclusive path picks up right after the shared window.
        let next = h.alloc_raw_old(8).unwrap();
        assert_eq!(next.0, ok.0 + 64);
    }

    #[test]
    fn card_dirtying() {
        let mut h = Heap::new(&HeapConfig::small()).unwrap();
        let a = h.alloc_raw_old(CARD_SIZE * 3).unwrap();
        assert!(!h.is_card_dirty(a));
        h.dirty_card(a);
        assert!(h.is_card_dirty(a));
        h.dirty_card_range(a, CARD_SIZE * 3);
        assert!(h.is_card_dirty(Addr(a.0 + CARD_SIZE)));
        assert!(h.is_card_dirty(Addr(a.0 + 2 * CARD_SIZE)));
        h.clear_cards();
        assert_eq!(h.dirty_card_count(), 0);
    }

    #[test]
    fn card_batch_counts_newly_dirtied_once() {
        let mut h = Heap::new(&HeapConfig::small()).unwrap();
        let a = h.alloc_raw_old(CARD_SIZE * 4).unwrap();
        // Two ranges sharing a card: the shared card counts once, so the
        // reported count equals the number of dirty cards in the table.
        let newly =
            h.dirty_card_batch(&[(a, CARD_SIZE + 8), (Addr(a.0 + CARD_SIZE), CARD_SIZE * 2)]);
        assert_eq!(newly as usize, h.dirty_card_count());
        // Re-dirtying the same span reports zero new cards.
        assert_eq!(h.dirty_card_batch(&[(a, CARD_SIZE * 3)]), 0);
        assert!(h.is_card_dirty(Addr(a.0 + 2 * CARD_SIZE)));
        // Ranges outside the old generation are a no-op, not a panic.
        assert_eq!(h.dirty_card_batch(&[(Addr(8), 64)]), 0);
    }

    #[test]
    fn young_gen_membership() {
        let mut h = Heap::new(&HeapConfig::small()).unwrap();
        let y = h.bump_young(32).unwrap();
        assert_eq!(h.gen_of(y).unwrap(), Gen::Young);
        let o = h.bump_old(32).unwrap();
        assert_eq!(h.gen_of(o).unwrap(), Gen::Old);
        assert!(h.gen_of(Addr(0)).is_err());
        assert!(h.gen_of(Addr(h.capacity() + 8)).is_err());
    }

    #[test]
    fn hashes_nonzero_31bit_and_distinct() {
        let mut h = Heap::new(&HeapConfig::small()).unwrap();
        let a = h.next_hash();
        let b = h.next_hash();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
        assert!(a <= 0x7fff_ffff);
    }

    #[test]
    fn peak_usage_tracks_high_water() {
        let mut h = Heap::new(&HeapConfig::small()).unwrap();
        h.bump_young(1024).unwrap();
        let p = h.peak_used();
        assert!(p >= 1024);
        h.reset_young_after_minor().unwrap();
        assert_eq!(h.peak_used(), p); // peak survives resets
        assert!(h.used() < p);
    }
}
