//! Object layout: headers, mark-word packing, and Skyway's `baddr` word.
//!
//! The layout follows Figure 6 of the paper (64-bit HotSpot-style):
//!
//! ```text
//! offset  0        8        16       24            32
//!         +--------+--------+--------+-------------+----------------+
//!         | mark   | klass  | baddr  | [array len] | payload ... pad|
//!         +--------+--------+--------+-------------+----------------+
//! ```
//!
//! * `mark` packs lock bits, GC age, the cached identity **hashcode** (whose
//!   preservation lets hash-based collections be reused on the receiver
//!   without rehashing — §4.2 "Header Update"), and a forwarding pointer
//!   during GC.
//! * `klass` holds the klass id in the heap; Skyway replaces it with the
//!   global type id (`tID`) inside a transfer buffer.
//! * `baddr` is the extra word Skyway adds to every object (§4.2): it caches
//!   the object's relative position in an output buffer, tagged with the
//!   shuffle-phase id (`sID`, highest byte) and the sending stream/thread id
//!   (next two bytes), leaving five bytes for the relative address.
//!
//! A [`LayoutSpec`] makes the `baddr` word optional so the memory-overhead
//! experiment (paper §5.2) can compare heaps with and without it, and so
//! heterogeneous clusters (paper §3.1) can mix object formats.

use crate::{Error, Result};

/// A heap address: byte offset of an object header inside a VM's arena.
///
/// Address 0 is reserved and plays the role of `null` (see [`Addr::NULL`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u64);

impl Addr {
    /// The null reference.
    pub const NULL: Addr = Addr(0);

    /// True if this is the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    // The typed conversion helpers below are the only sanctioned way to
    // move between `Addr` and raw integers outside this module and `mem`
    // (enforced by skyway-tidy's `addr-cast` rule). Keeping the
    // conversions named makes absolute-vs-relative mixups — the paper's
    // §3.3 bug class — grep-able and reviewable.

    /// Wraps a raw arena offset as an address.
    #[inline]
    pub fn from_raw(raw: u64) -> Addr {
        Addr(raw)
    }

    /// The raw arena offset.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The address `bytes` further into the arena.
    ///
    /// # Panics
    /// In debug builds, if the addition overflows (it wraps in release —
    /// out-of-arena addresses fault at `translate()` time, not here).
    #[inline]
    #[must_use]
    pub fn byte_add(self, bytes: u64) -> Addr {
        debug_assert!(self.0.checked_add(bytes).is_some(), "byte_add: {self} + {bytes} overflows");
        Addr(self.0.wrapping_add(bytes))
    }

    /// Byte distance from `base` up to `self`.
    ///
    /// # Panics
    /// In debug builds, if `base` lies above `self` (the subtraction
    /// wraps in release — callers own the ordering invariant).
    #[inline]
    pub fn offset_from(self, base: Addr) -> u64 {
        debug_assert!(base.0 <= self.0, "offset_from: base {base} above {self}");
        self.0.wrapping_sub(base.0)
    }
}

impl std::fmt::Debug for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "Addr(null)")
        } else {
            write!(f, "Addr({:#x})", self.0)
        }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

/// Mark-word bit assignments.
///
/// ```text
/// bits  0..=2   lock bits
/// bits  3..=6   GC age (tenuring counter)
/// bits  8..=38  identity hashcode (31 bits; 0 = not yet computed)
/// bit   63      forwarding flag (GC-internal; bits 0..=47 then hold the
///               forwarded-to address)
/// ```
pub mod mark {
    /// Mask of the lock bits.
    pub const LOCK_MASK: u64 = 0b111;
    /// Shift of the GC-age field.
    pub const AGE_SHIFT: u32 = 3;
    /// Mask of the GC-age field (after shifting).
    pub const AGE_MASK: u64 = 0b1111;
    /// Shift of the identity-hashcode field.
    pub const HASH_SHIFT: u32 = 8;
    /// Mask of the identity-hashcode field (after shifting).
    pub const HASH_MASK: u64 = 0x7fff_ffff;
    /// Forwarding flag used during copying/compacting GC.
    pub const FORWARD_FLAG: u64 = 1 << 63;
    /// Mask of the forwarded-to address when [`FORWARD_FLAG`] is set.
    pub const FORWARD_ADDR_MASK: u64 = (1 << 48) - 1;

    /// Extracts the cached identity hashcode (0 = not computed).
    #[inline]
    pub fn hash_of(mark: u64) -> u32 {
        ((mark >> HASH_SHIFT) & HASH_MASK) as u32
    }

    /// Stores an identity hashcode into a mark word.
    #[inline]
    pub fn with_hash(mark: u64, hash: u32) -> u64 {
        (mark & !(HASH_MASK << HASH_SHIFT)) | ((u64::from(hash) & HASH_MASK) << HASH_SHIFT)
    }

    /// Extracts the GC age.
    #[inline]
    pub fn age_of(mark: u64) -> u8 {
        ((mark >> AGE_SHIFT) & AGE_MASK) as u8
    }

    /// Stores a GC age into a mark word.
    #[inline]
    pub fn with_age(mark: u64, age: u8) -> u64 {
        (mark & !(AGE_MASK << AGE_SHIFT)) | ((u64::from(age) & AGE_MASK) << AGE_SHIFT)
    }

    /// Clears the machine-specific bits Skyway must reset when an object
    /// leaves a VM (§3.1: "GC bits and lock bits need to be reset"), while
    /// preserving the identity hashcode.
    #[inline]
    pub fn sanitized_for_transfer(mark: u64) -> u64 {
        mark & (HASH_MASK << HASH_SHIFT)
    }

    /// True if the word is a GC forwarding pointer.
    #[inline]
    pub fn is_forwarded(mark: u64) -> bool {
        mark & FORWARD_FLAG != 0
    }

    /// Builds a forwarding pointer to `to`.
    #[inline]
    pub fn forward_to(to: u64) -> u64 {
        FORWARD_FLAG | (to & FORWARD_ADDR_MASK)
    }

    /// Extracts the forwarded-to address.
    #[inline]
    pub fn forwarded_addr(mark: u64) -> u64 {
        mark & FORWARD_ADDR_MASK
    }
}

/// Skyway `baddr` word packing (§4.2 "Support for Threads"):
/// `sID` in the highest byte, the sending stream/thread id in the next two
/// bytes, and the relative buffer address in the lowest five bytes.
pub mod baddr {
    /// Shift of the shuffle-phase id (highest byte).
    pub const SID_SHIFT: u32 = 56;
    /// Shift of the stream/thread id (two bytes below `sID`).
    pub const STREAM_SHIFT: u32 = 40;
    /// Mask of the stream/thread id after shifting.
    pub const STREAM_MASK: u64 = 0xffff;
    /// Mask of the relative buffer address (lowest five bytes).
    pub const REL_MASK: u64 = (1 << 40) - 1;

    /// Packs a `baddr` word from phase id, stream id and relative address.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `rel` fits in five bytes (1 TiB of buffer), which
    /// is orders of magnitude above any buffer this simulation produces.
    #[inline]
    pub fn compose(sid: u8, stream: u16, rel: u64) -> u64 {
        debug_assert!(rel <= REL_MASK, "relative buffer address overflows 5 bytes");
        (u64::from(sid) << SID_SHIFT) | (u64::from(stream) << STREAM_SHIFT) | (rel & REL_MASK)
    }

    /// Extracts the shuffle-phase id (highest byte).
    #[inline]
    pub fn sid_of(word: u64) -> u8 {
        (word >> SID_SHIFT) as u8
    }

    /// Extracts the stream/thread id.
    #[inline]
    pub fn stream_of(word: u64) -> u16 {
        ((word >> STREAM_SHIFT) & STREAM_MASK) as u16
    }

    /// Extracts the relative buffer address (lowest five bytes; the paper's
    /// "lowest seven bytes" before thread support splits them).
    #[inline]
    pub fn rel_of(word: u64) -> u64 {
        word & REL_MASK
    }
}

/// Object-format specification for one VM (or one side of a transfer).
///
/// The paper's heterogeneous-cluster support (§3.1) adjusts "header size,
/// pointer size, or header format" on the sender; this struct is the value
/// such adjustments translate between. References are always 8 bytes in this
/// simulation; the variable parts are the presence of the Skyway `baddr`
/// header word and compressed (4-byte) array-length slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayoutSpec {
    /// Whether every object carries the extra Skyway `baddr` header word.
    pub with_baddr: bool,
    /// Array-length slot size in bytes (8 for the default format, 4 for a
    /// "compact" format used to exercise heterogeneous transfer).
    pub array_len_size: u8,
}

impl Default for LayoutSpec {
    fn default() -> Self {
        LayoutSpec { with_baddr: true, array_len_size: 8 }
    }
}

impl LayoutSpec {
    /// The default Skyway-enabled format.
    pub const SKYWAY: LayoutSpec = LayoutSpec { with_baddr: true, array_len_size: 8 };

    /// A format without the `baddr` word — a stock JVM, used as the baseline
    /// of the §5.2 memory-overhead experiment.
    pub const STOCK: LayoutSpec = LayoutSpec { with_baddr: false, array_len_size: 8 };

    /// A compact format (no `baddr`, 4-byte array length) used to exercise
    /// heterogeneous-cluster format adjustment.
    pub const COMPACT: LayoutSpec = LayoutSpec { with_baddr: false, array_len_size: 4 };

    /// Offset of the mark word.
    #[inline]
    pub fn mark_off(&self) -> u64 {
        0
    }

    /// Offset of the klass word.
    #[inline]
    pub fn klass_off(&self) -> u64 {
        8
    }

    /// Offset of the `baddr` word.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoBaddr`] if this format has no `baddr` word.
    #[inline]
    pub fn baddr_off(&self) -> Result<u64> {
        if self.with_baddr {
            Ok(16)
        } else {
            Err(Error::NoBaddr)
        }
    }

    /// Header size in bytes for a non-array instance.
    #[inline]
    pub fn instance_header(&self) -> u64 {
        if self.with_baddr {
            24
        } else {
            16
        }
    }

    /// Offset of the array-length slot.
    #[inline]
    pub fn array_len_off(&self) -> u64 {
        self.instance_header()
    }

    /// Header size in bytes for an array (length slot included, padded so
    /// the element area starts 8-aligned).
    #[inline]
    pub fn array_header(&self) -> u64 {
        // Both terms are single-digit byte counts; wrapping is unreachable.
        align8(self.instance_header().wrapping_add(u64::from(self.array_len_size)))
    }
}

/// Rounds `n` up to a multiple of 8 (object alignment).
///
/// # Panics
/// In debug builds, if `n` is within 7 of `u64::MAX` (wraps in release).
#[inline]
pub fn align8(n: u64) -> u64 {
    debug_assert!(n <= u64::MAX - 7, "align8: {n} overflows");
    n.wrapping_add(7) & !7
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_hash_roundtrip() {
        let m = mark::with_hash(0, 0x7fff_ffff);
        assert_eq!(mark::hash_of(m), 0x7fff_ffff);
        let m2 = mark::with_age(m, 5);
        assert_eq!(mark::hash_of(m2), 0x7fff_ffff);
        assert_eq!(mark::age_of(m2), 5);
    }

    #[test]
    fn sanitize_preserves_hash_only() {
        let m = mark::with_age(mark::with_hash(0b101, 1234), 7);
        let s = mark::sanitized_for_transfer(m);
        assert_eq!(mark::hash_of(s), 1234);
        assert_eq!(mark::age_of(s), 0);
        assert_eq!(s & mark::LOCK_MASK, 0);
    }

    #[test]
    fn forwarding_roundtrip() {
        let f = mark::forward_to(0xabcdef);
        assert!(mark::is_forwarded(f));
        assert_eq!(mark::forwarded_addr(f), 0xabcdef);
        assert!(!mark::is_forwarded(mark::with_hash(0, 99)));
    }

    #[test]
    fn baddr_roundtrip() {
        let w = baddr::compose(3, 512, 0xff_1234_5678);
        assert_eq!(baddr::sid_of(w), 3);
        assert_eq!(baddr::stream_of(w), 512);
        assert_eq!(baddr::rel_of(w), 0xff_1234_5678);
    }

    #[test]
    fn layout_offsets() {
        let sky = LayoutSpec::SKYWAY;
        assert_eq!(sky.instance_header(), 24);
        assert_eq!(sky.array_header(), 32);
        assert_eq!(sky.baddr_off().unwrap(), 16);

        let stock = LayoutSpec::STOCK;
        assert_eq!(stock.instance_header(), 16);
        assert_eq!(stock.array_header(), 24);
        assert!(matches!(stock.baddr_off(), Err(Error::NoBaddr)));

        let compact = LayoutSpec::COMPACT;
        assert_eq!(compact.array_header(), 24); // 16 + 4 → aligned to 24
    }

    #[test]
    fn align8_works() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(17), 24);
    }
}
