//! Typed, named-field object accessors.
//!
//! These wrap the raw offset-based primitives on [`Vm`] with the
//! by-field-name API application code (workloads, serializers) uses. The
//! name-based lookups intentionally go through the klass field index —
//! applications in the engines use cached [`Field`] offsets instead, just as
//! compiled Java bytecode uses resolved field offsets while *reflection*
//! resolves names at run time.

use std::sync::Arc;

use crate::klass::{Field, FieldType, Klass, PrimType};
use crate::layout::Addr;
use crate::vm::Vm;
use crate::{Error, Result};

/// A typed primitive value read from / written to a field or array element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// 8-bit signed.
    Byte(i8),
    /// UTF-16 code unit.
    Char(u16),
    /// 16-bit signed.
    Short(i16),
    /// 32-bit signed.
    Int(i32),
    /// 32-bit float.
    Float(f32),
    /// 64-bit signed.
    Long(i64),
    /// 64-bit float.
    Double(f64),
}

impl Value {
    /// Raw bit pattern stored in the heap.
    pub fn to_bits(self) -> u64 {
        match self {
            Value::Bool(b) => u64::from(b),
            Value::Byte(v) => v as u8 as u64,
            Value::Char(v) => u64::from(v),
            Value::Short(v) => v as u16 as u64,
            Value::Int(v) => v as u32 as u64,
            Value::Float(v) => u64::from(v.to_bits()),
            Value::Long(v) => v as u64,
            Value::Double(v) => v.to_bits(),
        }
    }

    /// Decodes a raw bit pattern as `ty`.
    pub fn from_bits(ty: PrimType, bits: u64) -> Value {
        match ty {
            PrimType::Bool => Value::Bool(bits & 1 != 0),
            PrimType::Byte => Value::Byte(bits as u8 as i8),
            PrimType::Char => Value::Char(bits as u16),
            PrimType::Short => Value::Short(bits as u16 as i16),
            PrimType::Int => Value::Int(bits as u32 as i32),
            PrimType::Float => Value::Float(f32::from_bits(bits as u32)),
            PrimType::Long => Value::Long(bits as i64),
            PrimType::Double => Value::Double(f64::from_bits(bits)),
        }
    }

    /// The primitive type of this value.
    pub fn prim_type(self) -> PrimType {
        match self {
            Value::Bool(_) => PrimType::Bool,
            Value::Byte(_) => PrimType::Byte,
            Value::Char(_) => PrimType::Char,
            Value::Short(_) => PrimType::Short,
            Value::Int(_) => PrimType::Int,
            Value::Float(_) => PrimType::Float,
            Value::Long(_) => PrimType::Long,
            Value::Double(_) => PrimType::Double,
        }
    }
}

impl Vm {
    fn named_field(&self, obj: Addr, name: &str) -> Result<(Arc<Klass>, Field)> {
        let k = self.klass_of(obj)?;
        let f = k
            .field_by_name(name)
            .cloned()
            .ok_or_else(|| Error::NoSuchField { class: k.name.clone(), field: name.to_owned() })?;
        Ok((k, f))
    }

    /// Reads a primitive field by name.
    ///
    /// # Errors
    /// [`Error::NoSuchField`]; [`Error::FieldTypeMismatch`] for ref fields.
    pub fn get_prim(&self, obj: Addr, name: &str) -> Result<Value> {
        let (k, f) = self.named_field(obj, name)?;
        match f.ty {
            FieldType::Prim(p) => {
                let bits = self.read_prim_raw(obj, f.offset, p.size())?;
                Ok(Value::from_bits(p, bits))
            }
            FieldType::Ref => {
                Err(Error::FieldTypeMismatch { class: k.name.clone(), field: f.name })
            }
        }
    }

    /// Writes a primitive field by name.
    ///
    /// # Errors
    /// [`Error::NoSuchField`]; [`Error::FieldTypeMismatch`] when the value
    /// type does not match the declared field type.
    pub fn set_prim(&mut self, obj: Addr, name: &str, val: Value) -> Result<()> {
        let (k, f) = self.named_field(obj, name)?;
        match f.ty {
            FieldType::Prim(p) if p == val.prim_type() => {
                self.write_prim_raw(obj, f.offset, p.size(), val.to_bits())
            }
            _ => Err(Error::FieldTypeMismatch { class: k.name.clone(), field: f.name }),
        }
    }

    /// Convenience: reads an `Int` field.
    ///
    /// # Errors
    /// As [`Vm::get_prim`], plus a mismatch error for non-int fields.
    pub fn get_int(&self, obj: Addr, name: &str) -> Result<i32> {
        match self.get_prim(obj, name)? {
            Value::Int(v) => Ok(v),
            _ => {
                let k = self.klass_of(obj)?;
                Err(Error::FieldTypeMismatch { class: k.name.clone(), field: name.to_owned() })
            }
        }
    }

    /// Convenience: writes an `Int` field.
    ///
    /// # Errors
    /// As [`Vm::set_prim`].
    pub fn set_int(&mut self, obj: Addr, name: &str, v: i32) -> Result<()> {
        self.set_prim(obj, name, Value::Int(v))
    }

    /// Convenience: reads a `Long` field.
    ///
    /// # Errors
    /// As [`Vm::get_prim`], plus a mismatch error for non-long fields.
    pub fn get_long(&self, obj: Addr, name: &str) -> Result<i64> {
        match self.get_prim(obj, name)? {
            Value::Long(v) => Ok(v),
            _ => {
                let k = self.klass_of(obj)?;
                Err(Error::FieldTypeMismatch { class: k.name.clone(), field: name.to_owned() })
            }
        }
    }

    /// Convenience: writes a `Long` field.
    ///
    /// # Errors
    /// As [`Vm::set_prim`].
    pub fn set_long(&mut self, obj: Addr, name: &str, v: i64) -> Result<()> {
        self.set_prim(obj, name, Value::Long(v))
    }

    /// Convenience: reads a `Double` field.
    ///
    /// # Errors
    /// As [`Vm::get_prim`], plus a mismatch error for non-double fields.
    pub fn get_double(&self, obj: Addr, name: &str) -> Result<f64> {
        match self.get_prim(obj, name)? {
            Value::Double(v) => Ok(v),
            _ => {
                let k = self.klass_of(obj)?;
                Err(Error::FieldTypeMismatch { class: k.name.clone(), field: name.to_owned() })
            }
        }
    }

    /// Convenience: writes a `Double` field.
    ///
    /// # Errors
    /// As [`Vm::set_prim`].
    pub fn set_double(&mut self, obj: Addr, name: &str, v: f64) -> Result<()> {
        self.set_prim(obj, name, Value::Double(v))
    }

    /// Reads a reference field by name.
    ///
    /// # Errors
    /// [`Error::NoSuchField`]; [`Error::FieldTypeMismatch`] for prim fields.
    pub fn get_ref(&self, obj: Addr, name: &str) -> Result<Addr> {
        let (k, f) = self.named_field(obj, name)?;
        match f.ty {
            FieldType::Ref => self.read_ref_at(obj, f.offset),
            FieldType::Prim(_) => {
                Err(Error::FieldTypeMismatch { class: k.name.clone(), field: f.name })
            }
        }
    }

    /// Writes a reference field by name (with write barrier).
    ///
    /// # Errors
    /// [`Error::NoSuchField`]; [`Error::FieldTypeMismatch`] for prim fields.
    pub fn set_ref(&mut self, obj: Addr, name: &str, val: Addr) -> Result<()> {
        let (k, f) = self.named_field(obj, name)?;
        match f.ty {
            FieldType::Ref => self.write_ref_at(obj, f.offset, val),
            FieldType::Prim(_) => {
                Err(Error::FieldTypeMismatch { class: k.name.clone(), field: f.name })
            }
        }
    }

    /// Reads a typed primitive array element.
    ///
    /// # Errors
    /// [`Error::IndexOutOfBounds`], [`Error::NotAnArray`].
    pub fn array_get(&self, obj: Addr, idx: u64) -> Result<Value> {
        let k = self.klass_of(obj)?;
        match k.kind {
            crate::klass::KlassKind::PrimArray(p) => {
                let bits = self.array_get_raw(obj, idx)?;
                Ok(Value::from_bits(p, bits))
            }
            _ => Err(Error::NotAnArray(k.name.clone())),
        }
    }

    /// Writes a typed primitive array element.
    ///
    /// # Errors
    /// [`Error::IndexOutOfBounds`], [`Error::NotAnArray`],
    /// [`Error::FieldTypeMismatch`] for wrong value types.
    pub fn array_set(&mut self, obj: Addr, idx: u64, val: Value) -> Result<()> {
        let k = self.klass_of(obj)?;
        match k.kind {
            crate::klass::KlassKind::PrimArray(p) if p == val.prim_type() => {
                self.array_set_raw(obj, idx, val.to_bits())
            }
            crate::klass::KlassKind::PrimArray(_) => {
                Err(Error::FieldTypeMismatch { class: k.name.clone(), field: format!("[{idx}]") })
            }
            _ => Err(Error::NotAnArray(k.name.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_bits_roundtrip_every_type() {
        let cases = [
            Value::Bool(true),
            Value::Byte(-7),
            Value::Char(0xbeef),
            Value::Short(-30_000),
            Value::Int(i32::MIN),
            Value::Float(-0.5),
            Value::Long(i64::MAX),
            Value::Double(f64::MIN_POSITIVE),
        ];
        for v in cases {
            let back = Value::from_bits(v.prim_type(), v.to_bits());
            assert_eq!(back, v, "{v:?} did not round-trip through bits");
        }
    }

    #[test]
    fn typed_accessors_reject_wrong_types() {
        use crate::klass::{ClassPath, KlassDef};
        use crate::{HeapConfig, Vm};
        let cp = ClassPath::new();
        cp.define(KlassDef::new(
            "T",
            None,
            vec![("i", FieldType::Prim(PrimType::Int)), ("r", FieldType::Ref)],
        ));
        let mut vm = Vm::new("obj", &HeapConfig::small(), cp).unwrap();
        let k = vm.load_class("T").unwrap();
        let o = vm.alloc_instance(k).unwrap();
        // Prim accessor on a ref field and vice versa.
        assert!(matches!(vm.get_prim(o, "r"), Err(Error::FieldTypeMismatch { .. })));
        assert!(matches!(vm.get_ref(o, "i"), Err(Error::FieldTypeMismatch { .. })));
        // Wrong prim type on write.
        assert!(matches!(
            vm.set_prim(o, "i", Value::Long(1)),
            Err(Error::FieldTypeMismatch { .. })
        ));
        // Unknown field name.
        assert!(matches!(vm.get_int(o, "nope"), Err(Error::NoSuchField { .. })));
    }

    #[test]
    fn long_convenience_accessors() {
        use crate::klass::{ClassPath, KlassDef};
        use crate::{HeapConfig, Vm};
        let cp = ClassPath::new();
        cp.define(KlassDef::new(
            "L",
            None,
            vec![("v", FieldType::Prim(PrimType::Long)), ("d", FieldType::Prim(PrimType::Double))],
        ));
        let mut vm = Vm::new("obj", &HeapConfig::small(), cp).unwrap();
        let k = vm.load_class("L").unwrap();
        let o = vm.alloc_instance(k).unwrap();
        vm.set_long(o, "v", -1).unwrap();
        assert_eq!(vm.get_long(o, "v").unwrap(), -1);
        vm.set_double(o, "d", 2.5).unwrap();
        assert_eq!(vm.get_double(o, "d").unwrap(), 2.5);
        // get_long on a double field is a mismatch.
        assert!(matches!(vm.get_long(o, "d"), Err(Error::FieldTypeMismatch { .. })));
    }

    #[test]
    fn prim_array_type_safety() {
        use crate::klass::ClassPath;
        use crate::{HeapConfig, Vm};
        let cp = ClassPath::new();
        let mut vm = Vm::new("obj", &HeapConfig::small(), cp).unwrap();
        let ik = vm.load_class("[I").unwrap();
        let arr = vm.alloc_array(ik, 3).unwrap();
        vm.array_set(arr, 0, Value::Int(-5)).unwrap();
        assert_eq!(vm.array_get(arr, 0).unwrap(), Value::Int(-5));
        assert!(matches!(
            vm.array_set(arr, 1, Value::Long(1)),
            Err(Error::FieldTypeMismatch { .. })
        ));
        assert!(matches!(vm.array_get(arr, 9), Err(Error::IndexOutOfBounds { .. })));
    }
}
