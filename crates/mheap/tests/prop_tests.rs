//! Property-based tests: random object graphs keep their structure and
//! contents across arbitrary GC schedules.

use std::sync::Arc;

use proptest::prelude::*;

use mheap::stdlib::define_core_classes;
use mheap::{Addr, ClassPath, FieldType, HeapConfig, KlassDef, PrimType, Vm};

fn classpath() -> Arc<ClassPath> {
    let cp = ClassPath::new();
    define_core_classes(&cp);
    cp.define(KlassDef::new(
        "GNode",
        None,
        vec![
            ("tag", FieldType::Prim(PrimType::Long)),
            ("left", FieldType::Ref),
            ("right", FieldType::Ref),
        ],
    ));
    cp
}

/// A random DAG description: node i may point at earlier nodes (acyclic by
/// construction, sharing allowed).
#[derive(Debug, Clone)]
struct GraphSpec {
    tags: Vec<i64>,
    lefts: Vec<Option<usize>>,
    rights: Vec<Option<usize>>,
}

fn graph_spec(max_nodes: usize) -> impl Strategy<Value = GraphSpec> {
    (2..max_nodes)
        .prop_flat_map(|n| {
            let tags = proptest::collection::vec(any::<i64>(), n);
            let lefts = proptest::collection::vec(proptest::option::of(0..n), n);
            let rights = proptest::collection::vec(proptest::option::of(0..n), n);
            (tags, lefts, rights)
        })
        .prop_map(|(tags, lefts, rights)| {
            let n = tags.len();
            // Only allow edges to strictly earlier nodes.
            let clamp = |v: Vec<Option<usize>>| {
                v.into_iter().enumerate().map(|(i, e)| e.filter(|&t| t < i)).collect::<Vec<_>>()
            };
            let _ = n;
            GraphSpec { tags, lefts: clamp(lefts), rights: clamp(rights) }
        })
}

/// Materializes the spec in the heap; returns handles to every node.
fn build(vm: &mut Vm, spec: &GraphSpec) -> Vec<mheap::Handle> {
    let k = vm.load_class("GNode").unwrap();
    let mut handles = Vec::with_capacity(spec.tags.len());
    for i in 0..spec.tags.len() {
        let node = vm.alloc_instance(k).unwrap();
        vm.set_long(node, "tag", spec.tags[i]).unwrap();
        let h = vm.handle(node);
        if let Some(l) = spec.lefts[i] {
            let node = vm.resolve(h).unwrap();
            let tgt = vm.resolve(handles[l]).unwrap();
            vm.set_ref(node, "left", tgt).unwrap();
        }
        if let Some(r) = spec.rights[i] {
            let node = vm.resolve(h).unwrap();
            let tgt = vm.resolve(handles[r]).unwrap();
            vm.set_ref(node, "right", tgt).unwrap();
        }
        handles.push(h);
    }
    handles
}

/// Asserts heap contents match the spec, including sharing: `left`/`right`
/// must point at the object the corresponding handle resolves to.
fn check(vm: &Vm, spec: &GraphSpec, handles: &[mheap::Handle]) {
    for i in 0..spec.tags.len() {
        let node = vm.resolve(handles[i]).unwrap();
        assert_eq!(vm.get_long(node, "tag").unwrap(), spec.tags[i]);
        let l = vm.get_ref(node, "left").unwrap();
        match spec.lefts[i] {
            Some(t) => assert_eq!(l, vm.resolve(handles[t]).unwrap()),
            None => assert_eq!(l, Addr::NULL),
        }
        let r = vm.get_ref(node, "right").unwrap();
        match spec.rights[i] {
            Some(t) => assert_eq!(r, vm.resolve(handles[t]).unwrap()),
            None => assert_eq!(r, Addr::NULL),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graphs_survive_minor_gc(spec in graph_spec(60)) {
        let mut vm = Vm::new("p", &HeapConfig::small(), classpath()).unwrap();
        let handles = build(&mut vm, &spec);
        vm.minor_gc().unwrap();
        check(&vm, &spec, &handles);
    }

    #[test]
    fn graphs_survive_full_gc(spec in graph_spec(60)) {
        let mut vm = Vm::new("p", &HeapConfig::small(), classpath()).unwrap();
        let handles = build(&mut vm, &spec);
        vm.full_gc().unwrap();
        check(&vm, &spec, &handles);
    }

    #[test]
    fn graphs_survive_mixed_gc_schedules(
        spec in graph_spec(40),
        schedule in proptest::collection::vec(any::<bool>(), 1..6),
    ) {
        let mut vm = Vm::new("p", &HeapConfig::small(), classpath()).unwrap();
        let handles = build(&mut vm, &spec);
        for full in schedule {
            if full { vm.full_gc().unwrap(); } else { vm.minor_gc().unwrap(); }
        }
        check(&vm, &spec, &handles);
    }

    #[test]
    fn live_set_invariant_under_gc(spec in graph_spec(50)) {
        let mut vm = Vm::new("p", &HeapConfig::small(), classpath()).unwrap();
        let _handles = build(&mut vm, &spec);
        let live = vm.live_object_count().unwrap();
        let bytes = vm.live_bytes().unwrap();
        vm.minor_gc().unwrap();
        prop_assert_eq!(vm.live_object_count().unwrap(), live);
        prop_assert_eq!(vm.live_bytes().unwrap(), bytes);
        vm.full_gc().unwrap();
        prop_assert_eq!(vm.live_object_count().unwrap(), live);
        prop_assert_eq!(vm.live_bytes().unwrap(), bytes);
    }

    #[test]
    fn strings_roundtrip(parts in proptest::collection::vec("[a-zA-Z0-9 αβγ✓]{0,40}", 1..20)) {
        let mut vm = Vm::new("p", &HeapConfig::small(), classpath()).unwrap();
        let handles: Vec<_> = parts.iter().map(|s| {
            let a = vm.new_string(s).unwrap();
            vm.handle(a)
        }).collect();
        vm.minor_gc().unwrap();
        for (h, s) in handles.iter().zip(&parts) {
            let a = vm.resolve(*h).unwrap();
            prop_assert_eq!(&vm.read_string(a).unwrap(), s);
        }
    }

    #[test]
    fn map_holds_many_entries(n in 1u64..120) {
        let mut vm = Vm::new("p", &HeapConfig::small(), classpath()).unwrap();
        let map = vm.new_hash_map(16).unwrap();
        let mh = vm.handle(map);
        let mut keys = Vec::new();
        for i in 0..n {
            let k = vm.new_long(i as i64).unwrap();
            keys.push(vm.handle(k));
            let v = vm.new_long((i * 7) as i64).unwrap();
            let map = vm.resolve(mh).unwrap();
            let k = vm.resolve(*keys.last().unwrap()).unwrap();
            vm.map_put(map, k, v).unwrap();
        }
        vm.minor_gc().unwrap();
        let map = vm.resolve(mh).unwrap();
        prop_assert_eq!(vm.map_len(map).unwrap(), n);
        prop_assert!(vm.map_is_consistent(map).unwrap());
        for (i, kh) in keys.iter().enumerate() {
            let k = vm.resolve(*kh).unwrap();
            let v = vm.map_get(map, k).unwrap().unwrap();
            prop_assert_eq!(vm.get_long(v, "value").unwrap(), (i as i64) * 7);
        }
    }
}
