//! Integration tests for the generational collector: survival, collection,
//! promotion, card-table discovery, compaction, and structural integrity
//! under allocation pressure.

use std::sync::Arc;

use mheap::stdlib::define_core_classes;
use mheap::{Addr, ClassPath, FieldType, HeapConfig, KlassDef, PrimType, Vm};

fn classpath() -> Arc<ClassPath> {
    let cp = ClassPath::new();
    define_core_classes(&cp);
    cp.define(KlassDef::new(
        "Node",
        None,
        vec![("id", FieldType::Prim(PrimType::Int)), ("next", FieldType::Ref)],
    ));
    cp
}

fn small_vm() -> Vm {
    Vm::new("gc-test", &HeapConfig::small(), classpath()).unwrap()
}

/// Builds a linked list of `n` nodes, returning a handle to the head.
fn build_list(vm: &mut Vm, n: i32) -> mheap::Handle {
    let k = vm.load_class("Node").unwrap();
    let head = vm.alloc_instance(k).unwrap();
    vm.set_int(head, "id", 0).unwrap();
    let hh = vm.handle(head);
    let tail = vm.handle(head);
    for i in 1..n {
        let node = vm.alloc_instance(k).unwrap();
        vm.set_int(node, "id", i).unwrap();
        let t = vm.resolve(tail).unwrap();
        vm.set_ref(t, "next", node).unwrap();
        vm.set_handle(tail, node).unwrap();
    }
    vm.release(tail).unwrap();
    hh
}

fn assert_list_intact(vm: &Vm, head: Addr, n: i32) {
    let mut cur = head;
    for i in 0..n {
        assert!(!cur.is_null(), "list truncated at {i}");
        assert_eq!(vm.get_int(cur, "id").unwrap(), i);
        cur = vm.get_ref(cur, "next").unwrap();
    }
    assert!(cur.is_null(), "list longer than {n}");
}

#[test]
fn rooted_list_survives_minor_gc() {
    let mut vm = small_vm();
    let h = build_list(&mut vm, 100);
    vm.minor_gc().unwrap();
    let head = vm.resolve(h).unwrap();
    assert_list_intact(&vm, head, 100);
    assert_eq!(vm.stats.minor_gcs, 1);
}

#[test]
fn unrooted_objects_are_collected() {
    let mut vm = small_vm();
    let h = build_list(&mut vm, 50);
    // Garbage: strings nobody roots.
    for i in 0..200 {
        vm.new_string(&format!("garbage-{i}")).unwrap();
    }
    let live_before = vm.live_object_count().unwrap();
    vm.minor_gc().unwrap();
    let live_after = vm.live_object_count().unwrap();
    assert_eq!(live_before, live_after, "live set must not change across GC");
    // The heap usage should have dropped to roughly the live set.
    assert!(vm.heap().used() <= vm.live_bytes().unwrap() + 4096);
    let head = vm.resolve(h).unwrap();
    assert_list_intact(&vm, head, 50);
}

#[test]
fn repeated_minor_gcs_promote_to_old() {
    let mut vm = small_vm();
    let h = build_list(&mut vm, 20);
    for _ in 0..10 {
        vm.minor_gc().unwrap();
    }
    // After more collections than the tenuring threshold, the whole list
    // should be tenured.
    let head = vm.resolve(h).unwrap();
    assert!(vm.heap().in_old(head), "head should be tenured after 10 minor GCs");
    assert_list_intact(&vm, head, 20);
    assert!(vm.stats.bytes_promoted > 0);
}

#[test]
fn card_table_keeps_old_to_young_edges_alive() {
    let mut vm = small_vm();
    let h = build_list(&mut vm, 5);
    for _ in 0..10 {
        vm.minor_gc().unwrap();
    }
    let head = vm.resolve(h).unwrap();
    assert!(vm.heap().in_old(head));
    // Create a brand-new young object referenced ONLY from the old head.
    let k = vm.load_class("Node").unwrap();
    let young = vm.alloc_instance(k).unwrap();
    vm.set_int(young, "id", 999).unwrap();
    let head = vm.resolve(h).unwrap();
    // Splice it at the front of the tail: head.next = young (old → young).
    vm.set_ref(head, "next", young).unwrap();
    assert!(vm.heap().is_card_dirty(head), "write barrier must dirty the card");
    vm.minor_gc().unwrap();
    let head = vm.resolve(h).unwrap();
    let young = vm.get_ref(head, "next").unwrap();
    assert!(!young.is_null());
    assert_eq!(vm.get_int(young, "id").unwrap(), 999);
}

#[test]
fn full_gc_compacts_old_generation() {
    let mut vm = small_vm();
    // Tenure two lists, drop one, full-GC, verify the survivor and that old
    // space shrank.
    let keep = build_list(&mut vm, 30);
    let drop_me = build_list(&mut vm, 30);
    for _ in 0..10 {
        vm.minor_gc().unwrap();
    }
    let used_before = vm.heap().used();
    vm.release(drop_me).unwrap();
    vm.full_gc().unwrap();
    let used_after = vm.heap().used();
    assert!(used_after < used_before, "full GC should reclaim the dropped list");
    let head = vm.resolve(keep).unwrap();
    assert_list_intact(&vm, head, 30);
    assert_eq!(vm.stats.full_gcs, 1);
}

#[test]
fn identity_hash_survives_gc_moves() {
    let mut vm = small_vm();
    let s = vm.new_string("stable hash").unwrap();
    let h = vm.handle(s);
    let hash_before = vm.identity_hash(s).unwrap();
    for _ in 0..8 {
        vm.minor_gc().unwrap();
    }
    vm.full_gc().unwrap();
    let s = vm.resolve(h).unwrap();
    assert_eq!(vm.identity_hash(s).unwrap(), hash_before);
}

#[test]
fn allocation_pressure_triggers_gc_automatically() {
    let mut vm = small_vm();
    let h = build_list(&mut vm, 10);
    // Allocate far more than the heap holds; everything but the list is
    // garbage, so this must succeed by GC-ing repeatedly.
    for i in 0..20_000 {
        vm.new_string(&format!("pressure {i}")).unwrap();
    }
    assert!(vm.stats.minor_gcs > 0);
    let head = vm.resolve(h).unwrap();
    assert_list_intact(&vm, head, 10);
}

#[test]
fn out_of_memory_is_reported_not_panicked() {
    let mut vm = small_vm();
    let k = vm.load_class("Node").unwrap();
    let list = vm.new_list(4).unwrap();
    let lh = vm.handle(list);
    // Keep everything alive until the heap genuinely fills.
    let result = (0..200_000).try_for_each(|_| {
        let node = vm.alloc_instance(k)?;
        let list = vm.resolve(lh)?;
        vm.list_push(list, node)
    });
    assert!(matches!(
        result,
        Err(mheap::Error::OutOfMemory { .. }) | Err(mheap::Error::PromotionFailed { .. })
    ));
}

#[test]
fn temp_roots_are_updated_by_gc() {
    let mut vm = small_vm();
    let s = vm.new_string("temp").unwrap();
    let idx = vm.push_temp_root(s);
    vm.minor_gc().unwrap();
    let s2 = vm.temp_root(idx);
    assert_eq!(vm.read_string(s2).unwrap(), "temp");
    vm.pop_temp_root();
}

#[test]
fn shared_substructure_is_copied_once() {
    let mut vm = small_vm();
    // Two pairs sharing one string: after GC, both must point at the SAME
    // moved object (no duplication).
    let shared = vm.new_string("shared").unwrap();
    let sh = vm.handle(shared);
    let a = vm.new_pair(shared, Addr::NULL).unwrap();
    let ah = vm.handle(a);
    let shared2 = vm.resolve(sh).unwrap();
    let b = vm.new_pair(shared2, Addr::NULL).unwrap();
    let bh = vm.handle(b);
    vm.minor_gc().unwrap();
    let a = vm.resolve(ah).unwrap();
    let b = vm.resolve(bh).unwrap();
    let fa = vm.get_ref(a, "first").unwrap();
    let fb = vm.get_ref(b, "first").unwrap();
    assert_eq!(fa, fb, "shared object duplicated by GC");
    assert_eq!(vm.read_string(fa).unwrap(), "shared");
}

#[test]
fn cyclic_graphs_survive_gc() {
    let mut vm = small_vm();
    let k = vm.load_class("Node").unwrap();
    let a = vm.alloc_instance(k).unwrap();
    let ah = vm.handle(a);
    let b = vm.alloc_instance(k).unwrap();
    let a = vm.resolve(ah).unwrap();
    vm.set_int(a, "id", 1).unwrap();
    vm.set_int(b, "id", 2).unwrap();
    vm.set_ref(a, "next", b).unwrap();
    vm.set_ref(b, "next", a).unwrap();
    vm.minor_gc().unwrap();
    vm.full_gc().unwrap();
    let a = vm.resolve(ah).unwrap();
    let b = vm.get_ref(a, "next").unwrap();
    assert_eq!(vm.get_int(b, "id").unwrap(), 2);
    assert_eq!(vm.get_ref(b, "next").unwrap(), a, "cycle broken by GC");
}
