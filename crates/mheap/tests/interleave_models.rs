//! Interleaving models for the shared old-gen allocation window
//! (`Heap::begin_shared_old_alloc` / `shared_alloc_raw_old` /
//! `end_shared_old_alloc`) and the segment base claim
//! (`segment::claim_base`), re-expressed over the `interleave` shim's
//! wrapped atomics so the scheduler can drive the races the real heap
//! only hits under load.
//!
//! The positive models mirror the shipped orderings (AcqRel claim CAS,
//! Release open / Acquire close) and must pass the whole seed sweep; the
//! negative models relax exactly one edge and must be caught, pinning
//! *why* each ordering is load-bearing.

use std::sync::Arc;

use interleave::{model, AtomicU64, Config, Data, Ordering};

fn cfg() -> Config {
    Config::from_env()
}

/// One CAS claim of `len` bytes against the shared cursor, mirroring
/// `Heap::shared_alloc_raw_old`'s loop with the shipped orderings.
fn claim(cursor: &AtomicU64, len: u64, end: u64, success: Ordering) -> Option<u64> {
    let mut cur = cursor.load(Ordering::Relaxed);
    loop {
        if cur + len > end {
            return None;
        }
        match cursor.compare_exchange_weak(cur, cur + len, success, Ordering::Relaxed) {
            Ok(_) => return Some(cur),
            Err(now) => cur = now,
        }
    }
}

model! {
    /// Two workers claim disjoint regions from the shared window and fill
    /// them; the window closer (Acquire load of the cursor) observes both
    /// claims and both fills. This is the post-fix protocol end to end.
    fn shared_window_claims_are_disjoint_and_published() {
        let cursor = Arc::new(AtomicU64::new(0));
        let slots = Arc::new([Data::named("slot-0", 0u64), Data::named("slot-1", 0u64)]);
        let handles: Vec<_> = (0..2u64)
            .map(|w| {
                let (c2, s2) = (Arc::clone(&cursor), Arc::clone(&slots));
                interleave::spawn(move || {
                    let base = claim(&c2, 1, 2, Ordering::AcqRel).expect("window has room");
                    s2[base as usize].set(w + 1);
                    base
                })
            })
            .collect();
        let bases: Vec<u64> = handles.into_iter().map(|h| h.join()).collect();
        assert_ne!(bases[0], bases[1], "CAS claims must not overlap");
        // Window close: the Acquire load pairs with the claimers' AcqRel
        // CAS chain, so every filled slot below the cursor is visible.
        let top = cursor.load(Ordering::Acquire);
        assert_eq!(top, 2);
        assert_eq!(slots[bases[0] as usize].get(), 1);
        assert_eq!(slots[bases[1] as usize].get(), 2);
    }

    /// The base-region claim (`segment::claim_base_from`) is a pure
    /// address-space reservation: all-Relaxed is sound because nobody
    /// reads memory *through* the cursor value — uniqueness is the only
    /// invariant, and the CAS provides it at any ordering.
    fn segment_base_claims_are_unique_even_relaxed() {
        let cursor = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2u64)
            .map(|_| {
                let c2 = Arc::clone(&cursor);
                interleave::spawn(move || claim(&c2, 4, 16, Ordering::Relaxed).expect("room"))
            })
            .collect();
        let a = handles.into_iter().map(|h| h.join()).collect::<Vec<_>>();
        assert_ne!(a[0], a[1], "base claims must never alias");
        assert_eq!(cursor.load(Ordering::Relaxed), 8);
    }
}

/// Pre-fix pin: with a Relaxed success ordering on the claim CAS, a
/// concurrent reader that sees the bumped cursor does *not* see the
/// claimer's fill — the exact race the AcqRel ordering (and its `ORDER:`
/// comment) exists to prevent.
#[test]
fn relaxed_claim_cas_lets_reader_race_the_fill() {
    let msg = interleave::fails(cfg(), || {
        let cursor = Arc::new(AtomicU64::new(0));
        let slot = Arc::new(Data::named("window-slot", 0u64));
        let (c2, s2) = (Arc::clone(&cursor), Arc::clone(&slot));
        let t = interleave::spawn(move || {
            s2.set(7);
            // Publish *after* the fill, but with no Release half.
            claim(&c2, 1, 1, Ordering::Relaxed).expect("room");
        });
        if cursor.load(Ordering::Acquire) == 1 {
            // Reader believes the region is claimed and inspects it.
            slot.with(|v| assert_eq!(*v, 7));
        }
        t.join();
    });
    assert!(msg.contains("data race") || msg.contains("window-slot"), "{msg}");
}
