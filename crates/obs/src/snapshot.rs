//! Point-in-time snapshots of a registry: a serde-serializable document
//! plus a human-readable table rendering.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::recorder::TimedEvent;
use crate::Histogram;

/// Summary of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Estimated 99.9th percentile (tail of the log₂ buckets).
    pub p999: u64,
}

impl HistogramSnapshot {
    /// Captures a histogram's current state.
    pub fn capture(h: &Histogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.percentile(50.0),
            p95: h.percentile(95.0),
            p99: h.percentile(99.0),
            p999: h.percentile(99.9),
        }
    }
}

/// An observability-side copy of `simnet::Profile`'s ledger, so profiled
/// runs land in the same snapshot document as the metric registry.
/// `simnet` provides `From<&Profile>` for this type.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileSection {
    /// Application compute nanoseconds.
    pub compute_ns: u64,
    /// Serialization nanoseconds.
    pub ser_ns: u64,
    /// Shuffle spill write nanoseconds.
    pub write_io_ns: u64,
    /// Deserialization nanoseconds.
    pub deser_ns: u64,
    /// Read/fetch nanoseconds (network included).
    pub read_io_ns: u64,
    /// Nanoseconds attributed to the network proper.
    pub net_ns: u64,
    /// Bytes fetched node-locally.
    pub bytes_local: u64,
    /// Bytes fetched over the network.
    pub bytes_remote: u64,
    /// Bytes written to spill files.
    pub bytes_spilled: u64,
    /// Serialization-side function invocations.
    pub ser_invocations: u64,
    /// Deserialization-side function invocations.
    pub deser_invocations: u64,
    /// Objects moved through data transfer.
    pub objects_transferred: u64,
    /// Control-plane messages.
    pub rpc_messages: u64,
    /// Control-plane bytes.
    pub rpc_bytes: u64,
}

impl ProfileSection {
    /// Total nanoseconds across the five cost categories.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns + self.ser_ns + self.write_io_ns + self.deser_ns + self.read_io_ns
    }
}

/// A full point-in-time capture of a [`crate::Registry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Attached profile ledgers by label.
    pub profiles: BTreeMap<String, ProfileSection>,
    /// Retained flight-recorder events, oldest first.
    pub events: Vec<TimedEvent>,
    /// Events the ring buffer evicted before this capture.
    pub events_dropped: u64,
}

impl Snapshot {
    /// Counter value by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.counters.is_empty() {
            writeln!(f, "-- counters {:-<48}", "")?;
            for (name, v) in &self.counters {
                writeln!(f, "{name:<48} {v:>12}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "-- gauges {:-<50}", "")?;
            for (name, v) in &self.gauges {
                writeln!(f, "{name:<48} {v:>12}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "-- histograms {:-<46}", "")?;
            writeln!(
                f,
                "{:<36} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "p50", "p95", "p99", "p99.9", "max"
            )?;
            for (name, h) in &self.histograms {
                writeln!(
                    f,
                    "{:<36} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    name, h.count, h.p50, h.p95, h.p99, h.p999, h.max
                )?;
            }
        }
        if !self.profiles.is_empty() {
            writeln!(f, "-- profiles {:-<48}", "")?;
            for (name, p) in &self.profiles {
                writeln!(
                    f,
                    "{:<28} total {:>10.3} ms  ser {:>10.3} ms  deser {:>10.3} ms",
                    name,
                    p.total_ns() as f64 / 1e6,
                    p.ser_ns as f64 / 1e6,
                    p.deser_ns as f64 / 1e6,
                )?;
            }
        }
        writeln!(
            f,
            "-- events ({} retained, {} dropped) {:-<24}",
            self.events.len(),
            self.events_dropped,
            ""
        )?;
        for ev in &self.events {
            writeln!(f, "[{:>6}] {:>12} ns  {:?}", ev.seq, ev.ts_ns, ev.event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Event;

    #[test]
    fn snapshot_lookup_defaults_to_zero() {
        let s = Snapshot::default();
        assert_eq!(s.counter("nope"), 0);
        assert_eq!(s.gauge("nope"), 0);
    }

    #[test]
    fn table_rendering_mentions_every_section() {
        let mut s = Snapshot::default();
        s.counters.insert("a.b".into(), 3);
        s.gauges.insert("g".into(), -1);
        s.histograms.insert(
            "h".into(),
            HistogramSnapshot { count: 1, sum: 5, min: 5, max: 5, p50: 5, p95: 5, p99: 5, p999: 5 },
        );
        s.profiles.insert("run".into(), ProfileSection::default());
        s.events.push(TimedEvent { seq: 0, ts_ns: 1, event: Event::Marker { label: "x".into() } });
        let t = s.to_string();
        for needle in ["counters", "gauges", "histograms", "profiles", "events", "a.b", "Marker"] {
            assert!(t.contains(needle), "table missing {needle}: {t}");
        }
    }
}
