//! The flight recorder: a bounded ring buffer of structured events.
//!
//! Counters say *how much*; the recorder says *what happened, in what
//! order*. Every notable moment on a transfer path — a shuffle phase
//! opening, a chunk leaving the sender, a class faulted in on the
//! receiver, a GC pause, a baddr-CAS visit conflict — is pushed here with
//! a sequence number and a timestamp. When the ring is full the oldest
//! events are dropped (and counted), so the recorder holds the most
//! recent window at a fixed memory cost.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{DeError, Deserialize, Serialize, Value};

/// A structured observability event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A shuffle phase opened on the controller.
    ShuffleStarted {
        /// The stream identifier for the new phase.
        sid: u32,
        /// The monotonic phase number.
        phase: u64,
    },
    /// The sender sealed and emitted one output chunk.
    ChunkSent {
        /// Stream identifier the chunk belongs to.
        sid: u32,
        /// Chunk payload size in bytes.
        bytes: u64,
    },
    /// The receiver absorbed one input chunk into its heap.
    ChunkAbsorbed {
        /// Chunk payload size in bytes.
        bytes: u64,
        /// Objects materialized from the chunk.
        objects: u64,
    },
    /// The receiver loaded a class on demand to satisfy an incoming tid.
    ClassLoaded {
        /// Fully qualified class name.
        class: String,
        /// The global type id that triggered the load.
        tid: u64,
    },
    /// A garbage collection pause completed.
    GcPause {
        /// The VM (node) that paused.
        vm: String,
        /// True for a full collection, false for minor.
        full: bool,
        /// Pause duration in nanoseconds.
        ns: u64,
        /// Bytes promoted into the old generation.
        promoted_bytes: u64,
    },
    /// A sender stream lost a baddr-header CAS race to another stream.
    CasConflict {
        /// Stream identifier that lost the race.
        sid: u32,
    },
    /// A free-form annotation (test fixtures, bench phase markers).
    Marker {
        /// The annotation text.
        label: String,
    },
}

impl Event {
    /// Short kind tag used in serialization and tables.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ShuffleStarted { .. } => "shuffle_started",
            Event::ChunkSent { .. } => "chunk_sent",
            Event::ChunkAbsorbed { .. } => "chunk_absorbed",
            Event::ClassLoaded { .. } => "class_loaded",
            Event::GcPause { .. } => "gc_pause",
            Event::CasConflict { .. } => "cas_conflict",
            Event::Marker { .. } => "marker",
        }
    }
}

// The vendored serde derive handles only structs and fieldless enums, so
// the data-carrying `Event` serializes by hand as a tagged map:
// `{"kind": "...", ...fields}`.
impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> =
            vec![("kind".to_owned(), Value::Str(self.kind().to_owned()))];
        let mut put = |k: &str, v: Value| m.push((k.to_owned(), v));
        match self {
            Event::ShuffleStarted { sid, phase } => {
                put("sid", sid.to_value());
                put("phase", phase.to_value());
            }
            Event::ChunkSent { sid, bytes } => {
                put("sid", sid.to_value());
                put("bytes", bytes.to_value());
            }
            Event::ChunkAbsorbed { bytes, objects } => {
                put("bytes", bytes.to_value());
                put("objects", objects.to_value());
            }
            Event::ClassLoaded { class, tid } => {
                put("class", class.to_value());
                put("tid", tid.to_value());
            }
            Event::GcPause { vm, full, ns, promoted_bytes } => {
                put("vm", vm.to_value());
                put("full", full.to_value());
                put("ns", ns.to_value());
                put("promoted_bytes", promoted_bytes.to_value());
            }
            Event::CasConflict { sid } => put("sid", sid.to_value()),
            Event::Marker { label } => put("label", label.to_value()),
        }
        Value::Map(m)
    }
}

impl Deserialize for Event {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let kind: String = serde::field(v, "kind")?;
        match kind.as_str() {
            "shuffle_started" => Ok(Event::ShuffleStarted {
                sid: serde::field(v, "sid")?,
                phase: serde::field(v, "phase")?,
            }),
            "chunk_sent" => Ok(Event::ChunkSent {
                sid: serde::field(v, "sid")?,
                bytes: serde::field(v, "bytes")?,
            }),
            "chunk_absorbed" => Ok(Event::ChunkAbsorbed {
                bytes: serde::field(v, "bytes")?,
                objects: serde::field(v, "objects")?,
            }),
            "class_loaded" => Ok(Event::ClassLoaded {
                class: serde::field(v, "class")?,
                tid: serde::field(v, "tid")?,
            }),
            "gc_pause" => Ok(Event::GcPause {
                vm: serde::field(v, "vm")?,
                full: serde::field(v, "full")?,
                ns: serde::field(v, "ns")?,
                promoted_bytes: serde::field(v, "promoted_bytes")?,
            }),
            "cas_conflict" => Ok(Event::CasConflict { sid: serde::field(v, "sid")? }),
            "marker" => Ok(Event::Marker { label: serde::field(v, "label")? }),
            other => Err(DeError(format!("unknown event kind {other:?}"))),
        }
    }
}

/// An [`Event`] stamped with its global sequence number and the
/// nanoseconds since the recorder started.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Position in the global event order (monotonic, never reused).
    pub seq: u64,
    /// Nanoseconds since the recorder was created.
    pub ts_ns: u64,
    /// The event itself.
    pub event: Event,
}

/// Bounded ring buffer of [`TimedEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    seq: AtomicU64,
    start: Instant,
    ring: Mutex<VecDeque<TimedEvent>>,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` recent events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            start: Instant::now(),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
        }
    }

    /// Appends an event, evicting the oldest when full. Returns the
    /// event's sequence number.
    pub fn record(&self, event: Event) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ts_ns = self.start.elapsed().as_nanos() as u64;
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(TimedEvent { seq, ts_ns, event });
        seq
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        let retained = self.ring.lock().unwrap_or_else(|e| e.into_inner()).len() as u64;
        self.total_recorded().saturating_sub(retained)
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discards all retained events (sequence numbers keep advancing).
    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_window() {
        let r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(Event::Marker { label: format!("m{i}") });
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].seq, 2);
        assert_eq!(evs[2].seq, 4);
        assert_eq!(r.total_recorded(), 5);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn events_serde_roundtrip() {
        let originals = vec![
            Event::ShuffleStarted { sid: 7, phase: 7 },
            Event::ChunkSent { sid: 7, bytes: 4096 },
            Event::ChunkAbsorbed { bytes: 4096, objects: 12 },
            Event::ClassLoaded { class: "java.lang.String".into(), tid: 3 },
            Event::GcPause { vm: "w1".into(), full: true, ns: 12345, promoted_bytes: 64 },
            Event::CasConflict { sid: 9 },
            Event::Marker { label: "phase-2".into() },
        ];
        for e in originals {
            let v = e.to_value();
            let back = Event::from_value(&v).unwrap();
            assert_eq!(e, back);
        }
    }
}
