//! Lock-free metric primitives: counters, gauges, log-bucketed histograms,
//! and scoped timers.
//!
//! Everything here is updated with relaxed atomics — hot paths (the
//! sender's per-object visit loop, the receiver's per-slot fixup loop) pay
//! one `fetch_add` per update and never take a lock. Reads (snapshots,
//! percentiles) are racy by design: they see some consistent-enough recent
//! state, which is all an observability layer needs.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and per-run dumps).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A value that moves both ways (live bytes, in-flight chunks, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i - 1]`, up to bucket 64 for values with
/// the top bit set.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (latencies in ns, sizes in
/// bytes). Recording is one relaxed `fetch_add` into the value's power-of-
/// two bucket plus bookkeeping for count/sum/min/max; percentiles are
/// estimated by linear interpolation inside the selected bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket a value lands in: 0 for 0, else `floor(log2(v)) + 1`.
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive `(low, high)` value bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            _ => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimates the `p`-th percentile (`0.0..=100.0`): walks the
    /// cumulative bucket counts to the bucket containing the target rank,
    /// then interpolates linearly between the bucket's bounds by the
    /// rank's position inside the bucket.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().clamp(1.0, count as f64) as u64;
        let mut cum = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let c = self.buckets[i].load(Ordering::Relaxed);
            if c > 0 && cum + c >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let within = (rank - cum) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * within).round() as u64;
            }
            cum += c;
        }
        // Racy snapshot (count read before buckets); fall back to max.
        self.max()
    }

    /// Raw bucket counts, for tests and snapshots.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Clears all samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Records wall-clock nanoseconds into a histogram when dropped.
///
/// ```
/// let h = std::sync::Arc::new(obs::Histogram::new());
/// {
///     let _t = obs::ScopedTimer::new(std::sync::Arc::clone(&h));
///     // ... timed work ...
/// }
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug)]
pub struct ScopedTimer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl ScopedTimer {
    /// Starts timing now.
    pub fn new(hist: Arc<Histogram>) -> Self {
        ScopedTimer { hist, start: Instant::now() }
    }

    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.hist.record(self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.add(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.set(-5);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _t = ScopedTimer::new(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }
}
