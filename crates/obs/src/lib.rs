//! `skyway-obs`: the observability layer for the Skyway reproduction.
//!
//! Every shuffle, GC, and transfer path in the workspace reports into this
//! crate: lock-free [`Counter`]s/[`Gauge`]s/[`Histogram`]s keyed by dotted
//! names in a [`Registry`], and a bounded [`FlightRecorder`] ring of
//! structured [`Event`]s (shuffle phases, chunks, on-demand class loads,
//! GC pauses, baddr-CAS conflicts). A [`Registry::snapshot`] is an owned
//! [`Snapshot`] document that serializes to JSON and renders as a
//! human-readable table.
//!
//! Instrumented components default to the process-wide [`global`]
//! registry but accept an explicit `Arc<Registry>` so tests can assert
//! exact values without cross-test interference.
//!
//! Naming convention: `crate.component.metric`, e.g.
//! `skyway.sender.bytes_cloned`, `mheap.gc.pause_ns`,
//! `serlab.kryo.serialize_ns`.

#![warn(missing_docs)]

mod metrics;
mod recorder;
mod snapshot;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, ScopedTimer, HISTOGRAM_BUCKETS};
pub use recorder::{Event, FlightRecorder, TimedEvent};
pub use snapshot::{HistogramSnapshot, ProfileSection, Snapshot};
pub use trace::{
    chrome_trace_json, critical_path_summary, ActiveSpan, Span, SpanBuffer, TraceCtx, TraceCtxCell,
    Tracer, DEFAULT_SPAN_CAPACITY,
};

/// Canonical dotted names for cross-crate metrics, so producers and the
/// dashboards/tests that read snapshots cannot drift apart. Components
/// with only crate-local readers keep their names at the call site; names
/// listed here are read from *other* crates (bench assertions, CI smoke
/// checks).
pub mod names {
    /// Gauge: chunks currently in flight between pipelined sender and
    /// receiver (bounded by the pipeline depth).
    pub const PIPELINE_CHUNKS_IN_FLIGHT: &str = "skyway.pipeline.chunks_in_flight";
    /// Counter: total real nanoseconds either pipeline end spent blocked
    /// on the chunk channel (sender on full, receiver on empty).
    pub const PIPELINE_STALL_NS: &str = "skyway.pipeline.stall_ns";
    /// Counter: chunk-buffer backings served from the pool.
    pub const PIPELINE_POOL_HITS: &str = "skyway.pipeline.pool_hits";
    /// Counter: chunk-buffer backings freshly allocated (pool empty).
    pub const PIPELINE_POOL_MISSES: &str = "skyway.pipeline.pool_misses";
    /// Histogram: per-chunk receiver wait before the chunk arrived.
    pub const PIPELINE_CHUNK_STALL_NS: &str = "skyway.pipeline.chunk_stall_ns";
    /// Counter: transfers the adaptive policy ran on the inline
    /// (single-chunk, no-overlap) path.
    pub const PIPELINE_MODE_INLINE: &str = "skyway.pipeline.mode_inline";
    /// Counter: transfers the adaptive policy ran on the single-stream
    /// pipelined path.
    pub const PIPELINE_MODE_PIPELINED: &str = "skyway.pipeline.mode_pipelined";
    /// Counter: transfers the adaptive policy ran on the work-stealing
    /// parallel path.
    pub const PIPELINE_MODE_PARALLEL: &str = "skyway.pipeline.mode_parallel";
    /// Counter: transfers that took the same-node zero-copy shared-segment
    /// path instead of any cloning mode.
    pub const PIPELINE_MODE_SHARED: &str = "skyway.pipeline.mode_shared";
    /// Gauge: the engine's current adaptive chunk limit in bytes.
    pub const PIPELINE_CHUNK_LIMIT: &str = "skyway.pipeline.chunk_limit";

    /// Counter: objects visited by the sender's closure traversal.
    pub const SENDER_OBJECTS_VISITED: &str = "skyway.sender.objects_visited";
    /// Counter: object bytes cloned into output buffers.
    pub const SENDER_BYTES_CLONED: &str = "skyway.sender.bytes_cloned";
    /// Counter: baddr-install CAS races lost to a concurrent sender.
    pub const SENDER_CAS_CONFLICTS: &str = "skyway.sender.cas_conflicts";
    /// Counter: objects that took the sidetable fallback instead of a
    /// header baddr.
    pub const SENDER_FALLBACK_HITS: &str = "skyway.sender.fallback_hits";
    /// Histogram: bytes per sealed sender chunk.
    pub const SENDER_CHUNK_BYTES: &str = "skyway.sender.chunk_bytes";
    /// Counter: root batches stolen from a sibling worker's deque by an
    /// idle parallel-traversal worker.
    pub const SENDER_STEALS: &str = "skyway.sender.steals";

    /// Counter: objects absorbed into the receiving heap.
    pub const RECEIVER_OBJECTS_ABSORBED: &str = "skyway.receiver.objects_absorbed";
    /// Counter: object bytes absorbed into the receiving heap.
    pub const RECEIVER_BYTES_ABSORBED: &str = "skyway.receiver.bytes_absorbed";
    /// Counter: chunks absorbed into the receiving heap.
    pub const RECEIVER_CHUNKS_ABSORBED: &str = "skyway.receiver.chunks_absorbed";
    /// Counter: relative references rewritten to absolute addresses.
    pub const RECEIVER_REF_FIXUPS: &str = "skyway.receiver.ref_fixups";
    /// Counter: classes loaded on demand for unknown incoming tIDs.
    pub const RECEIVER_CLASSES_LOADED: &str = "skyway.receiver.classes_loaded";
    /// Counter: card-table cards dirtied for absorbed objects.
    pub const RECEIVER_CARDS_DIRTIED: &str = "skyway.receiver.cards_dirtied";
    /// Histogram: bytes per absorbed chunk.
    pub const RECEIVER_CHUNK_BYTES: &str = "skyway.receiver.chunk_bytes";

    /// Counter: shuffle phases started by the controller.
    pub const SHUFFLE_PHASES_STARTED: &str = "skyway.shuffle.phases_started";
    /// Gauge: the shuffle phase currently in progress.
    pub const SHUFFLE_CURRENT_PHASE: &str = "skyway.shuffle.current_phase";
    /// Counter: stream-ID space wrap-arounds (forces a baddr scrub).
    pub const SHUFFLE_SID_WRAPS: &str = "skyway.shuffle.sid_wraps";
    /// Counter: shuffle streams allocated.
    pub const SHUFFLE_STREAMS_ALLOCATED: &str = "skyway.shuffle.streams_allocated";
    /// Counter: heap-wide baddr scrub passes.
    pub const SHUFFLE_BADDR_SCRUBS: &str = "skyway.shuffle.baddr_scrubs";
    /// Counter: header words cleared by baddr scrub passes.
    pub const SHUFFLE_BADDR_WORDS_SCRUBBED: &str = "skyway.shuffle.baddr_words_scrubbed";

    /// Counter: object graphs sealed into the node-local segment store.
    pub const SEGSTORE_SEALS: &str = "skyway.segstore.seals";
    /// Counter: metadata-only segment attaches served by the store.
    pub const SEGSTORE_ATTACHES: &str = "skyway.segstore.attaches";
    /// Counter: segment detaches (refcount drops) processed by the store.
    pub const SEGSTORE_DETACHES: &str = "skyway.segstore.detaches";
    /// Counter: segments whose memory was reclaimed after the last
    /// attacher dropped and the reclamation epoch advanced.
    pub const SEGSTORE_RECLAIMED: &str = "skyway.segstore.reclaimed";
    /// Counter: bytes written into store-owned memory by seals.
    pub const SEGSTORE_BYTES_SEALED: &str = "skyway.segstore.bytes_sealed";
    /// Counter: bytes a same-node transfer would have cloned but shared
    /// instead (the zero-copy win; gated by the segstore-smoke CI job).
    pub const SEGSTORE_BYTES_NOT_COPIED: &str = "skyway.segstore.bytes_not_copied";
    /// Gauge: sealed segments currently live in the store (attached,
    /// attachable, or awaiting epoch reclamation).
    pub const SEGSTORE_SEGMENTS_LIVE: &str = "skyway.segstore.segments_live";

    /// Counter: full (mark-compact) collections.
    pub const GC_FULL_GCS: &str = "mheap.gc.full_gcs";
    /// Counter: minor (young-generation) collections.
    pub const GC_MINOR_GCS: &str = "mheap.gc.minor_gcs";
    /// Counter: total GC pause nanoseconds.
    pub const GC_PAUSE_NS: &str = "mheap.gc.pause_ns";
    /// Counter: bytes promoted from young to old generation.
    pub const GC_PROMOTED_BYTES: &str = "mheap.gc.promoted_bytes";
    /// Counter: card-table cards scanned by minor collections.
    pub const GC_CARDS_SCANNED: &str = "mheap.gc.cards_scanned";

    /// Counter: flight-recorder events evicted before capture (ring
    /// full). Injected into every snapshot's counter section.
    pub const OBS_EVENTS_DROPPED: &str = "skyway.obs.events_dropped";
    /// Counter: trace spans discarded because the span buffer's lifetime
    /// budget ran out. Injected into every snapshot's counter section.
    pub const OBS_SPANS_DROPPED: &str = "skyway.obs.spans_dropped";

    /// Span: one sparklite stage (shuffle) — the per-stage trace root.
    pub const TRACE_STAGE: &str = "trace.stage";
    /// Span: one heap-to-heap transfer (sender, wire, receiver, GC spans
    /// all stitch under this root's trace id).
    pub const TRACE_TRANSFER: &str = "trace.transfer";
    /// Span: one sender traversal burst — the closure traversals feeding
    /// one flushed chunk (or the stream tail); the `roots` annotation
    /// counts the `writeObject` calls it covers.
    pub const TRACE_SENDER_TRAVERSE: &str = "trace.sender.traverse";
    /// Span: sealing + handing one chunk to the carrier.
    pub const TRACE_SENDER_CHUNK_SEND: &str = "trace.sender.chunk_send";
    /// Span: an idle parallel-traversal worker stealing roots from a
    /// sibling's deque; annotated with the victim and batch size.
    pub const TRACE_SENDER_STEAL: &str = "trace.sender.steal";
    /// Span (simulated clock): one chunk occupying the network link.
    pub const TRACE_LINK_XMIT: &str = "trace.link.xmit";
    /// Span: absolutizing one absorbed chunk on the receiver.
    pub const TRACE_RECEIVER_CHUNK_ABSORB: &str = "trace.receiver.chunk_absorb";
    /// Span: draining deferred cross-chunk ref/root fixups.
    pub const TRACE_RECEIVER_FIXUP: &str = "trace.receiver.fixup";
    /// Span: batch-dirtying card-table cards for absorbed objects.
    pub const TRACE_RECEIVER_CARD_DIRTY: &str = "trace.receiver.card_dirty";
    /// Span: loading a class on demand for an unknown incoming tID.
    pub const TRACE_REGISTRY_CLASS_LOAD: &str = "trace.registry.class_load";
    /// Span: one GC pause, attributed to the transfer that last touched
    /// the collecting VM's heap.
    pub const TRACE_GC_PAUSE: &str = "trace.gc.pause";
    /// Span: traversing and sealing one graph into a store segment.
    pub const TRACE_SEGSTORE_SEAL: &str = "trace.segstore.seal";
    /// Span: one metadata-only segment attach into a co-located heap.
    pub const TRACE_SEGSTORE_ATTACH: &str = "trace.segstore.attach";
    /// Span: one segment detach (refcount drop, possibly queueing the
    /// segment for epoch reclamation).
    pub const TRACE_SEGSTORE_DETACH: &str = "trace.segstore.detach";
}

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Default flight-recorder capacity for registries created with
/// [`Registry::new`].
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

type MetricMap<T> = RwLock<BTreeMap<String, Arc<T>>>;

/// A named collection of metrics plus a flight recorder.
///
/// Metric handles are `Arc`s: call sites on hot paths look a metric up
/// once (read lock, or one write lock on first use) and then update it
/// with plain relaxed atomics.
#[derive(Debug)]
pub struct Registry {
    counters: MetricMap<Counter>,
    gauges: MetricMap<Gauge>,
    histograms: MetricMap<Histogram>,
    profiles: RwLock<BTreeMap<String, ProfileSection>>,
    recorder: FlightRecorder,
    tracer: Tracer,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A registry with the default event capacity.
    pub fn new() -> Self {
        Registry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A registry whose flight recorder retains `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Registry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            profiles: RwLock::new(BTreeMap::new()),
            recorder: FlightRecorder::new(capacity),
            tracer: Tracer::default(),
        }
    }

    fn get_or_insert<T: Default>(map: &MetricMap<T>, name: &str) -> Arc<T> {
        if let Some(m) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
            return Arc::clone(m);
        }
        let mut w = map.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(w.entry(name.to_owned()).or_default())
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, name)
    }

    /// A drop-timer recording elapsed nanoseconds into the histogram
    /// named `name`.
    pub fn timer(&self, name: &str) -> ScopedTimer {
        ScopedTimer::new(self.histogram(name))
    }

    /// Pushes an event into the flight recorder; returns its sequence
    /// number.
    pub fn record(&self, event: Event) -> u64 {
        self.recorder.record(event)
    }

    /// The flight recorder itself.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The span tracer (disabled until [`Tracer::set_enabled`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attaches (or replaces) a named profile ledger so it appears in
    /// snapshots alongside the metrics.
    pub fn put_profile(&self, label: &str, section: ProfileSection) {
        self.profiles.write().unwrap_or_else(|e| e.into_inner()).insert(label.to_owned(), section);
    }

    /// Captures everything into an owned, serializable [`Snapshot`].
    ///
    /// The loss counters [`names::OBS_EVENTS_DROPPED`] and
    /// [`names::OBS_SPANS_DROPPED`] are injected into the counter
    /// section, so "did we silently lose telemetry?" is answerable from
    /// every snapshot (JSON and text table alike).
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.insert(names::OBS_EVENTS_DROPPED.to_owned(), self.recorder.dropped());
        counters.insert(names::OBS_SPANS_DROPPED.to_owned(), self.tracer.dropped());
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), HistogramSnapshot::capture(v)))
            .collect();
        let profiles = self.profiles.read().unwrap_or_else(|e| e.into_inner()).clone();
        Snapshot {
            counters,
            gauges,
            histograms,
            profiles,
            events: self.recorder.events(),
            events_dropped: self.recorder.dropped(),
        }
    }

    /// Zeroes every metric and clears the event ring. Metric handles
    /// stay valid. Intended for tests and between bench repetitions.
    pub fn reset(&self) {
        for c in self.counters.read().unwrap_or_else(|e| e.into_inner()).values() {
            c.reset();
        }
        for g in self.gauges.read().unwrap_or_else(|e| e.into_inner()).values() {
            g.reset();
        }
        for h in self.histograms.read().unwrap_or_else(|e| e.into_inner()).values() {
            h.reset();
        }
        self.profiles.write().unwrap_or_else(|e| e.into_inner()).clear();
        self.recorder.clear();
        self.tracer.clear();
    }
}

/// The process-wide registry instrumented components default to.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// CPU time consumed by the *calling thread*, in nanoseconds.
///
/// Parallel-transfer workers time their traversal/absorption with this
/// instead of wall clock: on a host with fewer cores than workers, wall
/// time charges every worker for its siblings' timeslices and inflates
/// per-lane cost by roughly the oversubscription factor, while thread
/// CPU time stays honest. Falls back to a thread-local monotonic clock
/// where the per-thread clock is unavailable.
pub fn thread_cpu_ns() -> u64 {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        let mut ts = [0i64; 2]; // timespec: tv_sec, tv_nsec
        const CLOCK_THREAD_CPUTIME_ID: u64 = 3;
        const SYS_CLOCK_GETTIME: u64 = 228;
        let ret: i64;
        // SAFETY: clock_gettime(CLOCK_THREAD_CPUTIME_ID, ts) only writes
        // 16 bytes into `ts`, a valid exclusively-owned stack buffer;
        // rcx/r11 (clobbered by `syscall`) are declared as outputs.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_CLOCK_GETTIME as i64 => ret,
                in("rdi") CLOCK_THREAD_CPUTIME_ID,
                in("rsi") ts.as_mut_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if ret == 0 {
            return (ts[0] as u64).saturating_mul(1_000_000_000).saturating_add(ts[1] as u64);
        }
    }
    #[allow(unreachable_code)]
    {
        use std::cell::Cell;
        use std::time::Instant;
        thread_local! {
            static ANCHOR: Cell<Option<Instant>> = const { Cell::new(None) };
        }
        ANCHOR.with(|a| {
            let anchor = match a.get() {
                Some(t) => t,
                None => {
                    let t = Instant::now();
                    a.set(Some(t));
                    t
                }
            };
            anchor.elapsed().as_nanos() as u64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new();
        r.counter("x").add(2);
        r.counter("x").add(3);
        assert_eq!(r.counter("x").get(), 5);
        r.gauge("g").add(-4);
        assert_eq!(r.gauge("g").get(), -4);
        r.histogram("h").record(9);
        assert_eq!(r.histogram("h").count(), 1);
    }

    #[test]
    fn snapshot_captures_all_sections() {
        let r = Registry::with_event_capacity(8);
        r.counter("c").add(7);
        r.gauge("g").set(1);
        r.histogram("h").record(100);
        r.record(Event::Marker { label: "m".into() });
        r.put_profile("run", ProfileSection { ser_ns: 5, ..Default::default() });
        let s = r.snapshot();
        assert_eq!(s.counter("c"), 7);
        assert_eq!(s.gauge("g"), 1);
        assert_eq!(s.histograms["h"].count, 1);
        assert_eq!(s.profiles["run"].ser_ns, 5);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events_dropped, 0);
    }

    #[test]
    fn snapshot_injects_loss_counters() {
        let r = Registry::with_event_capacity(1);
        r.record(Event::Marker { label: "a".into() });
        r.record(Event::Marker { label: "b".into() });
        let s = r.snapshot();
        assert_eq!(s.counter(names::OBS_EVENTS_DROPPED), 1, "ring of 1 evicted one event");
        assert_eq!(s.counter(names::OBS_SPANS_DROPPED), 0);
        assert_eq!(s.events_dropped, 1);
        assert!(s.to_string().contains(names::OBS_EVENTS_DROPPED), "text table shows the loss");
    }

    #[test]
    fn reset_clears_tracer_spans() {
        let r = Registry::new();
        r.tracer().set_enabled(true);
        let ctx = r.tracer().new_trace();
        r.tracer().start(names::TRACE_TRANSFER, ctx, "n").finish();
        assert_eq!(r.tracer().spans().len(), 1);
        r.reset();
        assert!(r.tracer().spans().is_empty());
    }

    #[test]
    fn reset_zeroes_without_invalidating_handles() {
        let r = Registry::new();
        let c = r.counter("c");
        c.add(10);
        r.record(Event::Marker { label: "m".into() });
        r.reset();
        assert_eq!(c.get(), 0);
        assert!(r.recorder().events().is_empty());
        c.inc();
        assert_eq!(r.snapshot().counter("c"), 1);
    }

    #[test]
    fn thread_cpu_clock_advances_and_is_per_thread() {
        let t0 = thread_cpu_ns();
        // Burn a little CPU so the thread clock must move.
        let mut acc = 0u64;
        for i in 0..200_000_u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let t1 = thread_cpu_ns();
        assert!(t1 > t0, "thread CPU clock did not advance: {t0} -> {t1}");
        // A freshly spawned idle-ish thread reports far less CPU than
        // one that just burned a loop; sanity-check it is at least
        // readable there too.
        let child = std::thread::spawn(thread_cpu_ns).join().expect("join");
        assert!(child < u64::MAX);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = Arc::clone(global());
        let b = Arc::clone(global());
        assert!(Arc::ptr_eq(&a, &b));
    }
}
