//! Span-based distributed tracing for the transfer path.
//!
//! A [`TraceCtx`] — `(trace_id, parent span id)` pair — is allocated per
//! shuffle transfer, propagated across the wire in the chunk frame
//! header, and re-attached on the receiver, so sender-side spans
//! (`traverse`, `chunk_send`), simulated link occupancy, receiver-side
//! spans (`chunk_absorb`, `fixup`, `card_dirty`) and GC pauses stitch
//! into one cross-node span tree ("why was *this* transfer slow?").
//!
//! Storage is a lock-free bounded [`SpanBuffer`]: a slot index is claimed
//! with one `fetch_add` and the finished [`Span`] is published through a
//! `OnceLock`, so recording never blocks and never allocates beyond the
//! span's own annotation vector. When the buffer is full further spans
//! are counted in `dropped` rather than silently lost. The capacity is a
//! *lifetime* budget per [`Tracer`]: [`Tracer::clear`] advances a
//! watermark instead of reusing slots (registries are per-run in tests
//! and benches, so the budget is ample).
//!
//! Tracing is **off by default** — a disabled tracer hands out inert
//! spans whose whole cost is one relaxed atomic load, which is what keeps
//! the traced/untraced wall-clock delta inside the noise floor.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default lifetime span budget for tracers created with [`Tracer::new`].
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// A propagated trace context: which trace a span belongs to and which
/// span is its parent. `Copy` and 16 bytes, so it travels in frame
/// headers and socket messages unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace identifier shared by every span of one transfer. 0 = none.
    pub trace_id: u64,
    /// Span id of the parent span (0 for a trace root).
    pub parent: u64,
}

impl TraceCtx {
    /// The absent context: spans started under it are inert.
    pub const NONE: TraceCtx = TraceCtx { trace_id: 0, parent: 0 };

    /// True when this is [`TraceCtx::NONE`] (tracing disabled or never
    /// attached).
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }
}

/// A shareable, interior-mutable [`TraceCtx`] slot (e.g. on a VM, so GC
/// pauses can be attributed to the transfer that last touched the heap).
/// Plain atomics: the two halves are read independently, which is fine —
/// attribution is diagnostic, not transactional.
#[derive(Debug, Default)]
pub struct TraceCtxCell {
    trace_id: AtomicU64,
    parent: AtomicU64,
}

impl TraceCtxCell {
    /// Stores `ctx`.
    pub fn set(&self, ctx: TraceCtx) {
        self.trace_id.store(ctx.trace_id, Ordering::Relaxed);
        self.parent.store(ctx.parent, Ordering::Relaxed);
    }

    /// Loads the current context ([`TraceCtx::NONE`] until first set).
    pub fn get(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id.load(Ordering::Relaxed),
            parent: self.parent.load(Ordering::Relaxed),
        }
    }
}

/// One finished span: a named, annotated `[start, end)` interval on one
/// node, linked to its parent by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Unique span id (never 0).
    pub id: u64,
    /// Parent span id (0 for a trace root).
    pub parent: u64,
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Span name — a `trace.*` const from [`crate::names`].
    pub name: &'static str,
    /// Node (process) the span ran on, e.g. `"driver"`, `"worker-1"`.
    pub node: String,
    /// Start, nanoseconds from the tracer's anchor (or simulated ns).
    pub start_ns: u64,
    /// End, same clock as `start_ns`.
    pub end_ns: u64,
    /// True when the timestamps are simulated-network ns, not wall ns.
    pub sim_clock: bool,
    /// Worker lane within the node: 0 is the main lane, worker *w* of a
    /// parallel transfer records on lane `w + 1`. Lanes map to Perfetto
    /// thread rows so per-worker traversal/steal/absorb spans stack
    /// side by side instead of overlapping on one row.
    pub lane: u32,
    /// Key-value annotations (chunk index, bytes, CAS conflicts, ...).
    pub args: Vec<(&'static str, u64)>,
}

impl Span {
    /// Span duration in its own clock domain.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Lock-free bounded span storage with a drop counter.
#[derive(Debug)]
pub struct SpanBuffer {
    slots: Box<[OnceLock<Span>]>,
    /// Next slot to claim; may run past `slots.len()` (overflow = drops).
    next: AtomicUsize,
    /// Spans discarded because every slot was already claimed.
    dropped: AtomicU64,
    /// Watermark below which slots are considered cleared.
    floor: AtomicUsize,
}

impl SpanBuffer {
    /// A buffer with a lifetime budget of `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        SpanBuffer {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            floor: AtomicUsize::new(0),
        }
    }

    /// Publishes one finished span (counted in [`SpanBuffer::dropped`]
    /// when the budget is exhausted).
    pub fn push(&self, span: Span) {
        // ORDER: AcqRel — the Release half pairs with the Acquire loads of
        // `next` in `spans`/`clear`: a reader that observes this claim also
        // observes every store program-ordered before it (earlier claims'
        // publishes included, via the RMW release sequence). The Acquire
        // half orders this claim after the claims it follows. With Relaxed
        // here those reader loads synchronize with nothing and the slot
        // scan races the publishes it is told about.
        let idx = self.next.fetch_add(1, Ordering::AcqRel);
        if idx >= self.slots.len() {
            // ORDER: Relaxed — pure statistic; read by `dropped()` with no
            // memory guarded by it.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Each slot index is claimed by exactly one pusher, so set()
        // cannot race; a failure would mean a logic bug, not contention.
        // The cross-thread publish edge for the span payload itself is
        // OnceLock's internal Release/Acquire pair.
        let _ = self.slots[idx].set(span);
    }

    /// Spans published since the last [`SpanBuffer::clear`], sorted by
    /// start time then id. Spans claimed but not yet published by a
    /// racing thread are skipped.
    pub fn spans(&self) -> Vec<Span> {
        // ORDER: Acquire — pairs with the Release store in `clear`, so the
        // watermark advance is ordered before any slots it hides.
        let floor = self.floor.load(Ordering::Acquire);
        // ORDER: Acquire — pairs with the AcqRel claim in `push`: every
        // claim at an index below `end` (and the publish work ordered
        // before it) is visible to the slot scan below.
        let end = self.next.load(Ordering::Acquire).min(self.slots.len());
        let mut out: Vec<Span> =
            self.slots[floor..end].iter().filter_map(|s| s.get().cloned()).collect();
        out.sort_by_key(|s| (s.sim_clock, s.start_ns, s.id));
        out
    }

    /// Spans discarded because the lifetime budget ran out.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Hides all currently published spans (watermark advance — slots
    /// are not reused, the lifetime budget keeps shrinking).
    pub fn clear(&self) {
        // ORDER: Acquire — pairs with the AcqRel claim in `push`; the
        // watermark may only rise past slots whose claims we observed.
        let end = self.next.load(Ordering::Acquire).min(self.slots.len());
        // ORDER: Release — pairs with the Acquire load in `spans`, ordering
        // this advance before any reader that observes it.
        self.floor.store(end, Ordering::Release);
        // ORDER: Relaxed — pure statistic reset.
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// Per-registry span recorder: id allocator, wall-clock anchor, and the
/// bounded [`SpanBuffer`].
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    anchor: Instant,
    next_id: AtomicU64,
    buf: SpanBuffer,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_SPAN_CAPACITY)
    }
}

impl Tracer {
    /// A disabled tracer with a lifetime budget of `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            anchor: Instant::now(),
            next_id: AtomicU64::new(1),
            buf: SpanBuffer::new(capacity),
        }
    }

    /// Turns span recording on or off. Off (the default) makes every
    /// tracing entry point a single relaxed atomic load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this tracer's anchor (its construction time).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates a fresh trace: the returned context has a new trace id
    /// and no parent. Returns [`TraceCtx::NONE`] while disabled, which
    /// keeps every downstream span inert.
    pub fn new_trace(&self) -> TraceCtx {
        if !self.enabled() {
            return TraceCtx::NONE;
        }
        TraceCtx { trace_id: self.alloc_id(), parent: 0 }
    }

    /// Starts a span under `ctx` on `node`. Inert (records nothing, all
    /// methods no-ops) while disabled or when `ctx` is
    /// [`TraceCtx::NONE`].
    pub fn start(&self, name: &'static str, ctx: TraceCtx, node: &str) -> ActiveSpan<'_> {
        self.start_on(name, ctx, node, 0)
    }

    /// [`Tracer::start`] on an explicit worker lane (0 = the main lane;
    /// parallel-transfer worker *w* uses lane `w + 1`).
    pub fn start_on(
        &self,
        name: &'static str,
        ctx: TraceCtx,
        node: &str,
        lane: u32,
    ) -> ActiveSpan<'_> {
        if !self.enabled() || ctx.is_none() {
            return ActiveSpan { tracer: self, data: None };
        }
        ActiveSpan {
            tracer: self,
            data: Some(SpanData {
                id: self.alloc_id(),
                parent: ctx.parent,
                trace_id: ctx.trace_id,
                name,
                node: node.to_owned(),
                start_ns: self.now_ns(),
                lane,
                args: Vec::new(),
            }),
        }
    }

    /// Records an already-finished wall-clock span of `dur_ns` ending
    /// now — for intervals measured externally (GC pauses).
    pub fn record_closed(
        &self,
        name: &'static str,
        ctx: TraceCtx,
        node: &str,
        dur_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        self.record_closed_on(name, ctx, node, 0, dur_ns, args);
    }

    /// [`Tracer::record_closed`] on an explicit worker lane.
    pub fn record_closed_on(
        &self,
        name: &'static str,
        ctx: TraceCtx,
        node: &str,
        lane: u32,
        dur_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        if !self.enabled() || ctx.is_none() {
            return;
        }
        let end_ns = self.now_ns();
        self.buf.push(Span {
            id: self.alloc_id(),
            parent: ctx.parent,
            trace_id: ctx.trace_id,
            name,
            node: node.to_owned(),
            start_ns: end_ns.saturating_sub(dur_ns),
            end_ns,
            sim_clock: false,
            lane,
            args: args.to_vec(),
        });
    }

    /// Records a span on the *simulated* clock (link occupancy from
    /// `simnet`): timestamps are simulated nanoseconds, flagged via
    /// [`Span::sim_clock`] so readers never mix the clock domains.
    pub fn record_sim(
        &self,
        name: &'static str,
        ctx: TraceCtx,
        node: &str,
        start_ns: u64,
        end_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        self.record_sim_on(name, ctx, node, 0, start_ns, end_ns, args);
    }

    /// [`Tracer::record_sim`] on an explicit worker lane (per-stream link
    /// occupancy of a parallel transfer).
    #[allow(clippy::too_many_arguments)]
    pub fn record_sim_on(
        &self,
        name: &'static str,
        ctx: TraceCtx,
        node: &str,
        lane: u32,
        start_ns: u64,
        end_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        if !self.enabled() || ctx.is_none() {
            return;
        }
        self.buf.push(Span {
            id: self.alloc_id(),
            parent: ctx.parent,
            trace_id: ctx.trace_id,
            name,
            node: node.to_owned(),
            start_ns,
            end_ns,
            sim_clock: true,
            lane,
            args: args.to_vec(),
        });
    }

    /// Published spans, sorted by start time.
    pub fn spans(&self) -> Vec<Span> {
        self.buf.spans()
    }

    /// Spans discarded because the buffer's lifetime budget ran out.
    pub fn dropped(&self) -> u64 {
        self.buf.dropped()
    }

    /// Hides all published spans (see [`SpanBuffer::clear`]).
    pub fn clear(&self) {
        self.buf.clear();
    }
}

struct SpanData {
    id: u64,
    parent: u64,
    trace_id: u64,
    name: &'static str,
    node: String,
    start_ns: u64,
    lane: u32,
    args: Vec<(&'static str, u64)>,
}

/// A span in progress; publishes itself on drop. Inert variants (from a
/// disabled tracer or an absent context) cost nothing on drop.
pub struct ActiveSpan<'a> {
    tracer: &'a Tracer,
    data: Option<SpanData>,
}

impl ActiveSpan<'_> {
    /// The context for children of this span ([`TraceCtx::NONE`] when
    /// inert, so inertness propagates down the tree).
    pub fn ctx(&self) -> TraceCtx {
        match &self.data {
            Some(d) => TraceCtx { trace_id: d.trace_id, parent: d.id },
            None => TraceCtx::NONE,
        }
    }

    /// This span's id (0 when inert).
    pub fn id(&self) -> u64 {
        self.data.as_ref().map_or(0, |d| d.id)
    }

    /// True when the span records nothing.
    pub fn is_inert(&self) -> bool {
        self.data.is_none()
    }

    /// Attaches a key-value annotation.
    pub fn annotate(&mut self, key: &'static str, value: u64) {
        if let Some(d) = &mut self.data {
            d.args.push((key, value));
        }
    }

    /// Ends the span now (equivalent to dropping it, made explicit).
    pub fn finish(self) {}
}

impl Drop for ActiveSpan<'_> {
    fn drop(&mut self) {
        if let Some(d) = self.data.take() {
            let end_ns = self.tracer.now_ns();
            self.tracer.buf.push(Span {
                id: d.id,
                parent: d.parent,
                trace_id: d.trace_id,
                name: d.name,
                node: d.node,
                start_ns: d.start_ns,
                end_ns,
                sim_clock: false,
                lane: d.lane,
                args: d.args,
            });
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Appends a nanosecond value as microseconds with three decimals
/// (`123.456`) using only integer formatting — the export renders two of
/// these per span, and float formatting dominated the export cost.
fn push_us(out: &mut String, ns: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Renders spans as Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` load directly): one complete (`"ph":"X"`) event
/// per span, one process per node (simulated-clock spans get their own
/// `<node> (sim)` process so the two clock domains never share a
/// timeline), GC spans on their own thread row.
///
/// Writes straight into one preallocated buffer — a pipelined bench run
/// exports tens of thousands of spans, and the export is the bulk of the
/// traced-vs-untraced wall-clock delta, so per-event temporaries matter.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    use std::fmt::Write as _;
    // Stable node -> pid mapping in first-appearance order (node counts
    // are tiny, so a linear scan beats a map).
    let mut pids: Vec<String> = Vec::new();
    let mut pid_of = |node: &str, sim: bool| -> usize {
        let pos = pids
            .iter()
            .position(|p| match p.strip_suffix(" (sim)") {
                Some(base) => sim && base == node,
                None => !sim && p == node,
            })
            .map(|i| i + 1);
        pos.unwrap_or_else(|| {
            pids.push(if sim { format!("{node} (sim)") } else { node.to_owned() });
            pids.len()
        })
    };
    let mut out = String::with_capacity(64 + 192 * spans.len());
    out.push_str("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [");
    let mut first = true;
    for s in spans {
        let pid = pid_of(&s.node, s.sim_clock);
        // tid 1 = main lane, tid 2 = GC, worker lane w >= 1 = tid 2 + w
        // (lanes never collide with the GC row since lane >= 1 maps to
        // tid >= 3).
        let tid = if s.name.starts_with("trace.gc.") {
            2
        } else if s.lane > 0 {
            2 + s.lane as usize
        } else {
            1
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    {\"name\":\"");
        out.push_str(s.name); // `trace.*` consts: no JSON escaping needed
        out.push_str("\",\"cat\":\"");
        out.push_str(if s.sim_clock { "sim" } else { "wall" });
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        push_us(&mut out, s.start_ns);
        out.push_str(",\"dur\":");
        push_us(&mut out, s.duration_ns());
        let _ = write!(
            out,
            ",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"trace_id\":{},\"span_id\":{},\"parent\":{}",
            s.trace_id, s.id, s.parent
        );
        if s.lane > 0 {
            let _ = write!(out, ",\"lane\":{}", s.lane);
        }
        for (k, v) in &s.args {
            let _ = write!(out, ",\"{}\":{v}", json_escape(k));
        }
        out.push_str("}}");
    }
    // Process-name metadata so Perfetto labels each track with the node.
    for (i, name) in pids.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            json_escape(name)
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// One line summarizing where transfer time went, e.g.
/// `critical path: traverse 41% / link 22% / absorb 30% / gc 7%`.
///
/// Root spans (`trace.transfer`, `trace.stage`) envelop their children
/// and are excluded; remaining leaf time is bucketed by subsystem. Link
/// time is simulated-clock and the rest wall-clock, so the shares are a
/// diagnostic mix, not a strict timeline decomposition.
pub fn critical_path_summary(spans: &[Span]) -> String {
    let mut traverse = 0u64;
    let mut link = 0u64;
    let mut absorb = 0u64;
    let mut gc = 0u64;
    let mut other = 0u64;
    for s in spans {
        let d = s.duration_ns();
        match s.name {
            n if n == crate::names::TRACE_TRANSFER || n == crate::names::TRACE_STAGE => {}
            crate::names::TRACE_SENDER_TRAVERSE => traverse += d,
            crate::names::TRACE_LINK_XMIT => link += d,
            crate::names::TRACE_RECEIVER_CHUNK_ABSORB => absorb += d,
            n if n.starts_with("trace.gc.") => gc += d,
            _ => other += d,
        }
    }
    let total = traverse + link + absorb + gc + other;
    if total == 0 {
        return "critical path: (no spans)".to_owned();
    }
    let pct = |v: u64| (v as f64 * 100.0 / total as f64).round() as u64;
    let mut s = format!(
        "critical path: traverse {}% / link {}% / absorb {}% / gc {}%",
        pct(traverse),
        pct(link),
        pct(absorb),
        pct(gc)
    );
    if other > 0 {
        s.push_str(&format!(" / other {}%", pct(other)));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_hands_out_inert_spans() {
        let t = Tracer::new(16);
        assert_eq!(t.new_trace(), TraceCtx::NONE);
        let span = t.start(crate::names::TRACE_TRANSFER, TraceCtx { trace_id: 1, parent: 0 }, "n");
        assert!(span.is_inert());
        assert_eq!(span.ctx(), TraceCtx::NONE);
        drop(span);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn spans_nest_and_publish_on_drop() {
        let t = Tracer::new(16);
        t.set_enabled(true);
        let ctx = t.new_trace();
        let mut root = t.start(crate::names::TRACE_TRANSFER, ctx, "driver");
        root.annotate("bytes", 128);
        let child = t.start(crate::names::TRACE_SENDER_TRAVERSE, root.ctx(), "driver");
        let root_id = root.id();
        let child_id = child.id();
        drop(child);
        drop(root);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.id == root_id).expect("root published");
        let child = spans.iter().find(|s| s.id == child_id).expect("child published");
        assert_eq!(child.parent, root.id);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(root.parent, 0);
        assert!(root.start_ns <= child.start_ns && child.end_ns <= root.end_ns);
        assert_eq!(root.args, vec![("bytes", 128)]);
    }

    #[test]
    fn buffer_overflow_counts_drops() {
        let t = Tracer::new(2);
        t.set_enabled(true);
        let ctx = t.new_trace();
        for _ in 0..5 {
            t.start(crate::names::TRACE_TRANSFER, ctx, "n").finish();
        }
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn clear_is_a_watermark() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        let ctx = t.new_trace();
        t.start(crate::names::TRACE_TRANSFER, ctx, "n").finish();
        t.clear();
        assert!(t.spans().is_empty());
        t.start(crate::names::TRACE_TRANSFER, ctx, "n").finish();
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn record_closed_backdates_the_start() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        let ctx = t.new_trace();
        // Let the anchor clock run past the backdated duration so the
        // saturating start subtraction cannot clamp to zero.
        std::thread::sleep(std::time::Duration::from_micros(50));
        t.record_closed(crate::names::TRACE_GC_PAUSE, ctx, "w1", 1_000, &[("full", 0)]);
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration_ns(), 1_000);
        assert!(!spans[0].sim_clock);
    }

    #[test]
    fn record_sim_is_flagged_and_kept_verbatim() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        let ctx = t.new_trace();
        t.record_sim(crate::names::TRACE_LINK_XMIT, ctx, "link", 10, 40, &[("bytes", 64)]);
        let spans = t.spans();
        assert_eq!((spans[0].start_ns, spans[0].end_ns), (10, 40));
        assert!(spans[0].sim_clock);
    }

    #[test]
    fn chrome_export_is_wellformed_and_groups_processes() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        let ctx = t.new_trace();
        t.start(crate::names::TRACE_TRANSFER, ctx, "driver").finish();
        t.record_sim(crate::names::TRACE_LINK_XMIT, ctx, "driver", 0, 5, &[]);
        t.record_closed(crate::names::TRACE_GC_PAUSE, ctx, "w1", 10, &[]);
        let json = chrome_trace_json(&t.spans());
        for needle in
            ["\"traceEvents\"", "\"ph\":\"X\"", "\"ph\":\"M\"", "driver (sim)", "\"tid\":2"]
        {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn worker_lanes_map_to_their_own_tids() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        let ctx = t.new_trace();
        t.start_on(crate::names::TRACE_SENDER_TRAVERSE, ctx, "n", 3).finish();
        t.record_closed_on(crate::names::TRACE_SENDER_CHUNK_SEND, ctx, "n", 1, 50, &[]);
        t.record_sim_on(crate::names::TRACE_LINK_XMIT, ctx, "n", 2, 0, 9, &[]);
        let spans = t.spans();
        assert_eq!(spans.iter().map(|s| s.lane).collect::<Vec<_>>(), vec![3, 1, 2]);
        let json = chrome_trace_json(&spans);
        // Lane w maps to tid 2 + w, and the lane is surfaced as an arg.
        for needle in ["\"tid\":5", "\"tid\":3", "\"tid\":4", "\"lane\":3"] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn critical_path_summary_shares_sum_to_about_100() {
        let mk = |name: &'static str, dur: u64| Span {
            id: 1,
            parent: 0,
            trace_id: 1,
            name,
            node: "n".into(),
            start_ns: 0,
            end_ns: dur,
            sim_clock: false,
            lane: 0,
            args: vec![],
        };
        let spans = vec![
            mk(crate::names::TRACE_TRANSFER, 100),
            mk(crate::names::TRACE_SENDER_TRAVERSE, 41),
            mk(crate::names::TRACE_LINK_XMIT, 22),
            mk(crate::names::TRACE_RECEIVER_CHUNK_ABSORB, 30),
            mk(crate::names::TRACE_GC_PAUSE, 7),
        ];
        let s = critical_path_summary(&spans);
        assert_eq!(s, "critical path: traverse 41% / link 22% / absorb 30% / gc 7%");
    }
}
