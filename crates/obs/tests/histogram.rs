//! Histogram semantics: bucket partition of the u64 range, percentile
//! interpolation arithmetic, and soundness under concurrent recording.

use std::sync::Arc;

use obs::{Histogram, HISTOGRAM_BUCKETS};

#[test]
fn buckets_partition_the_u64_range() {
    // Buckets must tile [0, u64::MAX] contiguously with no gaps or overlap,
    // and every bound must map back into its own bucket.
    for i in 0..HISTOGRAM_BUCKETS {
        let (lo, hi) = Histogram::bucket_bounds(i);
        assert!(lo <= hi, "bucket {i} bounds inverted");
        assert_eq!(Histogram::bucket_index(lo), i, "lo of bucket {i}");
        assert_eq!(Histogram::bucket_index(hi), i, "hi of bucket {i}");
        if i + 1 < HISTOGRAM_BUCKETS {
            let (next_lo, _) = Histogram::bucket_bounds(i + 1);
            assert_eq!(hi + 1, next_lo, "gap between buckets {i} and {}", i + 1);
        } else {
            assert_eq!(hi, u64::MAX, "last bucket must end at u64::MAX");
        }
    }
    assert_eq!(Histogram::bucket_bounds(0), (0, 0));
}

#[test]
fn recorded_samples_land_in_their_buckets() {
    let h = Histogram::new();
    for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
        h.record(v);
    }
    let counts = h.bucket_counts();
    assert_eq!(counts[0], 1); // 0
    assert_eq!(counts[1], 1); // 1
    assert_eq!(counts[2], 2); // 2, 3
    assert_eq!(counts[3], 2); // 4, 7
    assert_eq!(counts[4], 1); // 8..15
    assert_eq!(counts[10], 1); // 512..1023
    assert_eq!(counts[11], 1); // 1024..2047
    assert_eq!(counts[64], 1); // top bucket
    assert_eq!(counts.iter().sum::<u64>(), h.count());
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), u64::MAX);
}

#[test]
fn percentile_interpolates_within_a_single_bucket() {
    // Ten samples of 8 all land in bucket 4, bounds [8, 15]. The estimator
    // interpolates rank position linearly across the bucket's bounds:
    //   p50 → rank 5, 5/10 into the bucket → 8 + round(7 * 0.5)  = 12
    //   p100 → rank 10, 10/10 into it      → 8 + 7               = 15
    //   p0  → rank clamps to 1, 1/10 in    → 8 + round(0.7)      = 9
    let h = Histogram::new();
    for _ in 0..10 {
        h.record(8);
    }
    assert_eq!(h.percentile(50.0), 12);
    assert_eq!(h.percentile(100.0), 15);
    assert_eq!(h.percentile(0.0), 9);
}

#[test]
fn percentile_walks_cumulative_buckets() {
    // Five 1s (bucket 1: [1,1]) and five 2s (bucket 2: [2,3]).
    let h = Histogram::new();
    for _ in 0..5 {
        h.record(1);
        h.record(2);
    }
    // rank 2 of 10 falls in bucket 1, whose bounds collapse to exactly 1.
    assert_eq!(h.percentile(20.0), 1);
    // rank 6 is the first sample of bucket 2: 2 + round(1 * 1/5) = 2.
    assert_eq!(h.percentile(60.0), 2);
    // rank 10 is the last sample of bucket 2: 2 + round(1 * 5/5) = 3.
    assert_eq!(h.percentile(100.0), 3);
}

#[test]
fn percentiles_are_monotone_and_bounded() {
    let h = Histogram::new();
    // Deterministic pseudo-random samples (xorshift).
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..1000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        h.record(x % 1_000_000);
    }
    let mut last = 0;
    for p in 0..=100 {
        let v = h.percentile(p as f64);
        assert!(v >= last, "percentile must be non-decreasing at p={p}");
        last = v;
    }
    // An interpolated percentile never escapes the bucket of the true max.
    let (_, hi) = Histogram::bucket_bounds(Histogram::bucket_index(h.max()));
    assert!(h.percentile(100.0) <= hi);
    assert!(h.percentile(0.0) >= Histogram::bucket_bounds(Histogram::bucket_index(h.min())).0);
}

#[test]
fn empty_histogram_is_all_zeros() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.percentile(50.0), 0);
    assert_eq!(h.mean(), 0.0);
}

#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Arc::new(Histogram::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    h.record(1 << t); // thread t owns bucket t+1 exclusively
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS).map(|t| (1u64 << t) * PER_THREAD).sum();
    assert_eq!(h.sum(), expected_sum);
    let counts = h.bucket_counts();
    for t in 0..THREADS {
        assert_eq!(counts[(t + 1) as usize], PER_THREAD, "bucket {}", t + 1);
    }
    assert_eq!(h.min(), 1);
    assert_eq!(h.max(), 1 << (THREADS - 1));
}

#[test]
fn concurrent_counter_increments_are_exact() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;
    let c = Arc::new(obs::Counter::new());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS * PER_THREAD);
}
