//! Interleaving models for the span-buffer claim/publish protocol
//! (`obs::trace::SpanBuffer::push` / `spans`): a slot index is claimed
//! with an AcqRel `fetch_add`, the span payload is published through a
//! per-slot once-cell (modelled here as a Release-stored ready flag), and
//! the reader bounds its scan with an Acquire load of the claim cursor,
//! gating each slot on its publish flag.
//!
//! The negative model stores the ready flag Relaxed — the once-cell's
//! Release edge removed — and must be caught racing the payload write,
//! which is exactly the pre-fix hazard of scanning slots whose publish
//! you were told about but never synchronized with.

use std::sync::Arc;

use interleave::{model, AtomicBool, AtomicUsize, Config, Data, Ordering};

struct Buf {
    next: AtomicUsize,
    ready: [AtomicBool; 2],
    slots: [Data<u64>; 2],
}

impl Buf {
    fn new() -> Self {
        Buf {
            next: AtomicUsize::new(0),
            ready: [AtomicBool::new(false), AtomicBool::new(false)],
            slots: [Data::named("span-slot-0", 0), Data::named("span-slot-1", 0)],
        }
    }

    /// `SpanBuffer::push`: claim a slot, fill it, publish it.
    fn push(&self, span: u64, publish: Ordering) {
        let idx = self.next.fetch_add(1, Ordering::AcqRel);
        if idx < self.slots.len() {
            self.slots[idx].set(span);
            self.ready[idx].store(true, publish);
        }
    }

    /// `SpanBuffer::spans`: scan every claimed slot, reading only the
    /// published ones.
    fn snapshot(&self) -> Vec<u64> {
        let end = self.next.load(Ordering::Acquire).min(self.slots.len());
        (0..end)
            .filter(|&i| self.ready[i].load(Ordering::Acquire))
            .map(|i| self.slots[i].get())
            .collect()
    }
}

model! {
    /// Two concurrent pushers and a concurrent snapshot: every span the
    /// reader sees is fully published, claims never alias, and after the
    /// joins both spans are present exactly once.
    fn span_claim_and_publish_are_ordered() {
        let buf = Arc::new(Buf::new());
        let handles: Vec<_> = (0..2u64)
            .map(|w| {
                let b2 = Arc::clone(&buf);
                interleave::spawn(move || b2.push(w + 1, Ordering::Release))
            })
            .collect();
        // Concurrent reader: any published span it sees must carry its
        // full payload (the slot read would race without the edges).
        for span in buf.snapshot() {
            assert!(span == 1 || span == 2, "partially published span {span}");
        }
        for h in handles {
            h.join();
        }
        let mut all = buf.snapshot();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2]);
    }
}

/// Pre-fix pin: a Relaxed publish (the once-cell's Release edge removed)
/// lets the reader observe the ready flag without the payload write that
/// precedes it — the model must flag the slot read as a race.
#[test]
fn relaxed_publish_races_the_snapshot() {
    let msg = interleave::fails(Config::from_env(), || {
        let buf = Arc::new(Buf::new());
        let b2 = Arc::clone(&buf);
        let t = interleave::spawn(move || b2.push(9, Ordering::Relaxed));
        for span in buf.snapshot() {
            assert_eq!(span, 9);
        }
        t.join();
    });
    assert!(msg.contains("data race") || msg.contains("span-slot"), "{msg}");
}
