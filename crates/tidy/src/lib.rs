//! `skyway-tidy`: a hand-rolled static-analysis pass over the workspace's
//! Rust sources (the `rust-lang/rust` `tidy` model — no rustc plugin, no
//! syn; a small lexer, brace-matched scopes, a per-function dataflow pass,
//! and line-oriented rules).
//!
//! Twelve rules guard the invariants the dynamic checkers
//! (`mheap::verify`, the test suite) can only catch after the fact:
//!
//! * `addr-cast` — **address discipline.** Mixing absolute heap addresses
//!   and relative buffer addresses is the §3.3 bug class the whole paper
//!   is about; a raw `as u64`/`as usize` cast on the same line as an
//!   `Addr` value is how such mixups are born.
//! * `addr-provenance` — **address dataflow.** Within a function, an
//!   `Addr` born from `Addr::from_raw`/`byte_add`/offset arithmetic is
//!   tainted until it flows through `translate()` or a bounds check;
//!   tainted values reaching raw memory accessors are violations (the
//!   static twin of `HeapFault::DanglingRelativeAddr`).
//! * `checked-arith` — size/offset arithmetic in the representation-owning
//!   modules (`mheap::layout`, `mheap::mem`) must use `checked_*` /
//!   explicit `wrapping_*`, never bare `+`/`*`.
//! * `unsafe-safety` — every `unsafe` block/fn/impl carries a `// SAFETY:`
//!   comment (same line, or the comment block immediately above).
//! * `panic` — no `.unwrap()` / `.expect(` / `panic!` in non-test code of
//!   `crates/core` and `crates/mheap`.
//! * `lock-order` — a workspace-wide lock-acquisition graph over guard
//!   scopes; cycles are potential deadlocks, and holding a guard across a
//!   blocking channel `send`/`recv` is flagged (`guard-across-send`).
//! * `metric-literal` + `dead-metric` — **registry consistency.** Every
//!   `"skyway.*"` / `"mheap.*"` metric literal and every `"trace.*"` span
//!   name outside `crates/obs` must be an `obs::names` const reference,
//!   and every const in `obs::names` must have at least one use site.
//! * `fault-coverage` — every `HeapFault` variant appears in at least one
//!   test, so no corruption class the verifier can report goes
//!   unexercised.
//! * `atomics-order` + `atomics-order-cas` + `atomics-order-comment` —
//!   **memory-ordering discipline.** A `Relaxed` write to an atomic some
//!   other site reads with `Acquire` is a broken release-publish edge; a
//!   `Relaxed` refcount decrement gating a free can race in-flight
//!   accesses; a CAS failure ordering must be a load ordering no stronger
//!   than its success ordering; and every non-`Relaxed` ordering carries
//!   a `// ORDER:` justification (the atomic twin of `// SAFETY:`).
//!
//! Any rule can be waived for one line with an inline `tidy:allow` comment
//! tag — on the offending line, or alone on the comment line directly
//! above — naming the rule and a non-empty justification, or for whole
//! path prefixes via `[allow]` entries in `tidy.toml`. Tags naming an
//! unknown rule, or omitting the justification, fail the whole run.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

pub mod dataflow;
pub mod lexer;
mod rules;
pub mod sarif;
pub mod scope;

pub use lexer::{has_int_cast, has_token, lex, Line, StrLit};
pub use sarif::to_sarif;

/// Rule identifiers with one-line summaries, in reporting order.
pub const RULES: &[(&str, &str)] = &[
    ("addr-cast", "no raw integer casts on Addr values outside mheap::layout/mheap::mem"),
    ("addr-provenance", "raw-born Addr values must pass translate()/a bounds check before deref"),
    (
        "checked-arith",
        "size/offset arithmetic in mheap::layout/mheap::mem uses checked_*/wrapping_*",
    ),
    ("unsafe-safety", "every unsafe block/fn/impl carries a // SAFETY: comment"),
    ("panic", "no unwrap()/expect()/panic! in non-test code of crates/core and crates/mheap"),
    ("lock-order", "no lock-acquisition cycles; no guard held across a blocking channel send/recv"),
    ("metric-literal", "metric/span name literals outside crates/obs must be obs::names consts"),
    ("dead-metric", "every obs::names const has at least one use site"),
    ("fault-coverage", "every HeapFault variant appears in at least one test"),
    (
        "atomics-order",
        "no Relaxed writes to atomics with acquire-side readers; refcount decrements use Release",
    ),
    ("atomics-order-cas", "compare_exchange failure ordering is a load ordering, <= success"),
    ("atomics-order-comment", "every non-Relaxed atomic ordering carries a // ORDER: comment"),
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Path relative to the scanned root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (approximate after string literals, whose content is
    /// masked out of the code channel).
    pub col: usize,
    /// Human-readable description of the offence.
    pub message: String,
}

/// What to scan and which policy paths apply.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root all paths are relative to.
    pub root: PathBuf,
    /// Directories (relative to root) to scan for `.rs` files.
    pub scan_dirs: Vec<String>,
    /// Path prefixes excluded from scanning entirely (fixtures, target).
    pub exclude: Vec<String>,
    /// Files allowed raw `Addr` handling (the representation owners) —
    /// exempt from both `addr-cast` and `addr-provenance`.
    pub addr_exempt: Vec<String>,
    /// Path prefixes the `panic` rule applies to.
    pub panic_paths: Vec<String>,
    /// Path prefixes the `checked-arith` rule applies to.
    pub arith_paths: Vec<String>,
    /// Path prefixes exempt from `lock-order` (vendored lock shims, whose
    /// `Mutex`/`RwLock` *definitions* would otherwise register as lock
    /// classes).
    pub lock_exempt: Vec<String>,
    /// Path prefixes exempt from `metric-literal` (the registry crate
    /// itself, and this checker which must name the prefixes).
    pub metric_exempt: Vec<String>,
    /// Path prefixes exempt from the `atomics-order` family (the vendored
    /// interleaving shim, which wraps every ordering generically).
    pub atomics_exempt: Vec<String>,
    /// Dotted-name prefixes that identify a metric name literal.
    pub metric_prefixes: Vec<String>,
    /// File (relative) defining the `obs::names` consts, for `dead-metric`.
    pub names_file: Option<String>,
    /// File (relative) defining `enum HeapFault`, for `fault-coverage`.
    pub fault_file: Option<String>,
    /// Per-rule path-prefix allowlists (`tidy.toml` `[allow]` section).
    pub allow: BTreeMap<String, Vec<String>>,
}

impl Config {
    /// The policy for the Skyway workspace rooted at `root`.
    pub fn for_workspace(root: PathBuf) -> Config {
        Config {
            root,
            scan_dirs: ["crates", "src", "shims", "examples", "tests"].map(String::from).to_vec(),
            exclude: vec!["crates/tidy/tests/fixtures".into()],
            addr_exempt: vec![
                "crates/mheap/src/layout.rs".into(),
                "crates/mheap/src/mem.rs".into(),
            ],
            panic_paths: vec!["crates/core/src".into(), "crates/mheap/src".into()],
            arith_paths: vec![
                "crates/mheap/src/layout.rs".into(),
                "crates/mheap/src/mem.rs".into(),
            ],
            lock_exempt: vec!["shims".into()],
            metric_exempt: vec!["crates/obs".into(), "crates/tidy".into()],
            atomics_exempt: vec!["shims".into()],
            metric_prefixes: vec!["skyway.".into(), "mheap.".into(), "trace.".into()],
            names_file: Some("crates/obs/src/lib.rs".into()),
            fault_file: Some("crates/mheap/src/verify.rs".into()),
            allow: BTreeMap::new(),
        }
    }

    /// The policy for the fixture tree at `root` (used by the golden tests
    /// and the CLI's `--fixture-matrix` mode): scan everything under the
    /// root, with every policy path pointed at the fixture equivalents.
    /// The `bad_allow/` subtree — fixtures whose waiver *tags* are
    /// malformed and therefore fail the whole run — is excluded; tests
    /// scan those subdirectories with dedicated configs.
    pub fn for_fixtures(root: PathBuf) -> Config {
        Config {
            root,
            scan_dirs: vec![String::new()],
            exclude: vec!["bad_allow".into()],
            addr_exempt: vec![],
            panic_paths: vec![String::new()],
            arith_paths: vec!["checked_arith.rs".into()],
            lock_exempt: vec![],
            metric_exempt: vec!["names.rs".into()],
            atomics_exempt: vec![],
            metric_prefixes: vec!["skyway.".into(), "mheap.".into(), "trace.".into()],
            names_file: Some("names.rs".into()),
            fault_file: Some("faults.rs".into()),
            allow: BTreeMap::new(),
        }
    }

    /// Merges `[allow]` entries from a `tidy.toml` at `path` (missing file
    /// is fine — there is simply nothing to merge).
    ///
    /// # Errors
    /// Returns a description of the first malformed line.
    pub fn load_allowlists(&mut self, path: &Path) -> Result<(), String> {
        let Ok(text) = fs::read_to_string(path) else { return Ok(()) };
        let mut in_allow = false;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_allow = line == "[allow]";
                continue;
            }
            if !in_allow {
                continue;
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("tidy.toml line {}: expected `rule = [..]`", n + 1))?;
            let key = key.trim().trim_matches('"').to_string();
            if !RULES.iter().any(|(id, _)| *id == key) {
                return Err(format!("tidy.toml line {}: unknown rule `{key}`", n + 1));
            }
            let val = val.trim();
            if !(val.starts_with('[') && val.ends_with(']')) {
                return Err(format!("tidy.toml line {}: expected a `[..]` array", n + 1));
            }
            let entry = self.allow.entry(key).or_default();
            for part in val[1..val.len() - 1].split(',') {
                let p = part.trim().trim_matches('"');
                if !p.is_empty() {
                    entry.push(p.to_string());
                }
            }
        }
        Ok(())
    }
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the scanned root, `/`-separated.
    pub rel: String,
    /// Lexed lines, index 0 = line 1.
    pub lines: Vec<lexer::Line>,
}

/// True if line `i` (0-based) of `f` is waived for `rule` by an inline
/// tag — on the line itself, or alone on the comment-only line directly
/// above.
pub(crate) fn allows(f: &SourceFile, i: usize, rule: &str) -> bool {
    if line_allows(&f.lines[i].comment, rule) {
        return true;
    }
    i > 0 && f.lines[i - 1].code.trim().is_empty() && line_allows(&f.lines[i - 1].comment, rule)
}

/// True if the comment text waives `rule` via an inline tag.
fn line_allows(comment: &str, rule: &str) -> bool {
    let mut from = 0;
    while let Some(p) = comment[from..].find(ALLOW_TAG) {
        let args = &comment[from + p + ALLOW_TAG.len()..];
        let named = args.split([',', ')']).next().unwrap_or("").trim();
        if named == rule {
            return true;
        }
        from += p + 1;
    }
    false
}

const ALLOW_TAG: &str = "tidy:allow(";

/// Validates every inline waiver tag in the tree: the named rule must
/// exist and the justification must be non-empty. A malformed waiver is a
/// run-level error — a typo'd tag that silently waives nothing (or
/// silently waives without a recorded reason) is exactly the kind of rot
/// this pass exists to stop.
fn validate_allow_tags(files: &[SourceFile]) -> Result<(), String> {
    for f in files {
        for (i, l) in f.lines.iter().enumerate() {
            let mut from = 0;
            while let Some(p) = l.comment[from..].find(ALLOW_TAG) {
                let args_start = from + p + ALLOW_TAG.len();
                from = args_start;
                let args = &l.comment[args_start..];
                let Some(close) = args.find(')') else {
                    return Err(format!(
                        "{}:{}: unterminated tidy:allow tag (missing `)`)",
                        f.rel,
                        i + 1
                    ));
                };
                let inner = &args[..close];
                let (rule, reason) = match inner.split_once(',') {
                    Some((r, why)) => (r.trim(), Some(why.trim())),
                    None => (inner.trim(), None),
                };
                if !RULES.iter().any(|(id, _)| *id == rule) {
                    return Err(format!(
                        "{}:{}: tidy:allow names unknown rule `{rule}` (known rules: {})",
                        f.rel,
                        i + 1,
                        RULES.iter().map(|(id, _)| *id).collect::<Vec<_>>().join(", ")
                    ));
                }
                match reason {
                    Some(r) if !r.is_empty() => {}
                    _ => {
                        return Err(format!(
                            "{}:{}: tidy:allow for `{rule}` needs a non-empty reason: \
                             every waiver records why the code is correct",
                            f.rel,
                            i + 1
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

pub(crate) fn path_under(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| p.is_empty() || rel == p || rel.starts_with(&format!("{p}/")))
}

pub(crate) fn rule_allows(cfg: &Config, rule: &str, rel: &str) -> bool {
    cfg.allow.get(rule).is_some_and(|paths| path_under(rel, paths))
}

/// True for paths that are test/bench/example code by location.
pub(crate) fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
}

/// The analysis result: violations plus how many files were scanned.
#[derive(Debug)]
pub struct Report {
    /// All violations, sorted by (file, line, rule, col) and deduplicated.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
}

/// Runs every rule over the configured tree.
///
/// # Errors
/// I/O failures reading the tree, and malformed inline waiver tags
/// (individual unreadable files are errors — a lint pass that silently
/// skips files is worse than none).
pub fn run(cfg: &Config) -> Result<Report, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for dir in &cfg.scan_dirs {
        // An empty scan dir means the root itself (fixture-test configs).
        let d = if dir.is_empty() { cfg.root.clone() } else { cfg.root.join(dir) };
        if d.is_dir() {
            collect_rs(&d, &mut paths)?;
        }
    }
    paths.sort();
    paths.dedup();

    let mut files: Vec<SourceFile> = Vec::new();
    for p in &paths {
        let rel = p
            .strip_prefix(&cfg.root)
            .map_err(|_| format!("path {} escapes root", p.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        if path_under(&rel, &cfg.exclude) {
            continue;
        }
        let text = fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
        files.push(SourceFile { rel, lines: lexer::lex(&text) });
    }

    validate_allow_tags(&files)?;

    let mut out: Vec<Violation> = Vec::new();
    for f in &files {
        rules::addr_cast::check(cfg, f, &mut out);
        rules::addr_provenance::check(cfg, f, &mut out);
        rules::checked_arith::check(cfg, f, &mut out);
        rules::unsafe_safety::check(cfg, f, &mut out);
        rules::panic::check(cfg, f, &mut out);
        rules::metrics::check_literal(cfg, f, &mut out);
    }
    rules::lock_order::check(cfg, &files, &mut out);
    rules::atomics_order::check(cfg, &files, &mut out);
    rules::metrics::check_dead(cfg, &files, &mut out);
    rules::fault_coverage::check(cfg, &files, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule, a.col).cmp(&(&b.file, b.line, b.rule, b.col)));
    out.dedup();
    Ok(Report { violations: out, files_checked: files.len() })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let p = entry.path();
        let name = entry.file_name();
        if p.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(&p, out)?;
            }
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Serializes a report as stable, machine-readable JSON.
pub fn to_json(report: &Report) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"files_checked\": {},\n", report.files_checked));
    s.push_str(&format!("  \"violation_count\": {},\n", report.violations.len()));
    s.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}",
            json_escape(v.rule),
            json_escape(&v.file),
            v.line,
            v.col,
            json_escape(&v.message)
        ));
    }
    if !report.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_of(src: &str) -> SourceFile {
        SourceFile { rel: "x.rs".into(), lines: lexer::lex(src) }
    }

    #[test]
    fn inline_allow_tags_match_same_line() {
        let f = file_of("let a = v.unwrap(); // tidy:allow(panic, infallible by construction)\n");
        assert!(allows(&f, 0, "panic"));
        assert!(!allows(&f, 0, "addr-cast"));
    }

    #[test]
    fn inline_allow_tags_match_from_comment_line_above() {
        let f = file_of(
            "// tidy:allow(panic, the map is pre-populated)\nlet a = v.unwrap();\nlet b = w.unwrap();\n",
        );
        assert!(allows(&f, 1, "panic"), "tag on the comment-only line above covers the next line");
        assert!(!allows(&f, 2, "panic"), "coverage does not extend past one line");
    }

    #[test]
    fn tag_on_code_line_does_not_cover_the_next_line() {
        let f = file_of(
            "let a = v.unwrap(); // tidy:allow(panic, covered here)\nlet b = w.unwrap();\n",
        );
        assert!(allows(&f, 0, "panic"));
        assert!(!allows(&f, 1, "panic"));
    }

    #[test]
    fn unknown_rule_in_tag_is_a_run_error() {
        let files = vec![file_of("let a = 1; // tidy:allow(no-such-rule, typo)\n")];
        let err = validate_allow_tags(&files).unwrap_err();
        assert!(err.contains("unknown rule `no-such-rule`"), "{err}");
        assert!(err.contains("x.rs:1"), "{err}");
    }

    #[test]
    fn missing_or_empty_reason_is_a_run_error() {
        let missing = vec![file_of("let a = 1; // tidy:allow(panic)\n")];
        let err = validate_allow_tags(&missing).unwrap_err();
        assert!(err.contains("non-empty reason"), "{err}");

        let empty = vec![file_of("let a = 1; // tidy:allow(panic,   )\n")];
        let err = validate_allow_tags(&empty).unwrap_err();
        assert!(err.contains("non-empty reason"), "{err}");
    }

    #[test]
    fn valid_tags_pass_validation() {
        let files =
            vec![file_of("let a = v.unwrap(); // tidy:allow(panic, poisoning is fatal here)\n")];
        assert!(validate_allow_tags(&files).is_ok());
    }
}
