//! `skyway-tidy`: a hand-rolled, token-level static-analysis pass over the
//! workspace's Rust sources (the `rust-lang/rust` `tidy` model — no rustc
//! plugin, no syn; a small lexer plus line-oriented rules).
//!
//! Five rule families guard the invariants the dynamic checkers
//! (`mheap::verify`, the test suite) can only catch after the fact:
//!
//! * [`addr-cast`](#addr-cast) — **address discipline.** Mixing absolute
//!   heap addresses and relative buffer addresses is the §3.3 bug class the
//!   whole paper is about; a raw `as u64`/`as usize` cast on the same line
//!   as an [`Addr`] value is how such mixups are born. Outside the two
//!   modules that own the representation (`mheap::layout`, `mheap::mem`),
//!   code must use the typed conversion helpers (`Addr::raw`,
//!   `Addr::from_raw`, `Addr::byte_add`, `Addr::offset_from`).
//! * `unsafe-safety` — every `unsafe` block/fn/impl carries a `// SAFETY:`
//!   comment (same line, or the comment block immediately above — a block
//!   may cover several consecutive `unsafe` items).
//! * `panic` — no `.unwrap()` / `.expect(` / `panic!` in non-test code of
//!   `crates/core` and `crates/mheap`; genuinely-infallible sites are
//!   tagged `// tidy:allow(panic, reason)`.
//! * `metric-literal` + `dead-metric` — **registry consistency.** Every
//!   `"skyway.*"` / `"mheap.*"` string literal outside `crates/obs` must be
//!   an `obs::names` const reference, and every const in `obs::names` must
//!   have at least one use site.
//! * `fault-coverage` — every `HeapFault` variant appears in at least one
//!   test, so no corruption class the verifier can report goes unexercised.
//!
//! Any rule can be waived for one line with `// tidy:allow(<rule>, reason)`
//! or for whole path prefixes via `[allow]` entries in `tidy.toml`.
//!
//! [`Addr`]: https://docs.rs/ (mheap::layout::Addr)

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Rule identifiers with one-line summaries, in reporting order.
pub const RULES: &[(&str, &str)] = &[
    ("addr-cast", "no raw integer casts on Addr values outside mheap::layout/mheap::mem"),
    ("unsafe-safety", "every unsafe block/fn/impl carries a // SAFETY: comment"),
    ("panic", "no unwrap()/expect()/panic! in non-test code of crates/core and crates/mheap"),
    ("metric-literal", "metric name literals outside crates/obs must be obs::names consts"),
    ("dead-metric", "every obs::names const has at least one use site"),
    ("fault-coverage", "every HeapFault variant appears in at least one test"),
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Path relative to the scanned root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the offence.
    pub message: String,
}

/// What to scan and which policy paths apply.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root all paths are relative to.
    pub root: PathBuf,
    /// Directories (relative to root) to scan for `.rs` files.
    pub scan_dirs: Vec<String>,
    /// Path prefixes excluded from scanning entirely (fixtures, target).
    pub exclude: Vec<String>,
    /// Files allowed to cast `Addr` values (the representation owners).
    pub addr_exempt: Vec<String>,
    /// Path prefixes the `panic` rule applies to.
    pub panic_paths: Vec<String>,
    /// Path prefixes exempt from `metric-literal` (the registry crate
    /// itself, and this checker which must name the prefixes).
    pub metric_exempt: Vec<String>,
    /// Dotted-name prefixes that identify a metric name literal.
    pub metric_prefixes: Vec<String>,
    /// File (relative) defining the `obs::names` consts, for `dead-metric`.
    pub names_file: Option<String>,
    /// File (relative) defining `enum HeapFault`, for `fault-coverage`.
    pub fault_file: Option<String>,
    /// Per-rule path-prefix allowlists (`tidy.toml` `[allow]` section).
    pub allow: BTreeMap<String, Vec<String>>,
}

impl Config {
    /// The policy for the Skyway workspace rooted at `root`.
    pub fn for_workspace(root: PathBuf) -> Config {
        Config {
            root,
            scan_dirs: ["crates", "src", "shims", "examples", "tests"].map(String::from).to_vec(),
            exclude: vec!["crates/tidy/tests/fixtures".into()],
            addr_exempt: vec![
                "crates/mheap/src/layout.rs".into(),
                "crates/mheap/src/mem.rs".into(),
            ],
            panic_paths: vec!["crates/core/src".into(), "crates/mheap/src".into()],
            metric_exempt: vec!["crates/obs".into(), "crates/tidy".into()],
            metric_prefixes: vec!["skyway.".into(), "mheap.".into()],
            names_file: Some("crates/obs/src/lib.rs".into()),
            fault_file: Some("crates/mheap/src/verify.rs".into()),
            allow: BTreeMap::new(),
        }
    }

    /// Merges `[allow]` entries from a `tidy.toml` at `path` (missing file
    /// is fine — there is simply nothing to merge).
    ///
    /// # Errors
    /// Returns a description of the first malformed line.
    pub fn load_allowlists(&mut self, path: &Path) -> Result<(), String> {
        let Ok(text) = fs::read_to_string(path) else { return Ok(()) };
        let mut in_allow = false;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_allow = line == "[allow]";
                continue;
            }
            if !in_allow {
                continue;
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("tidy.toml line {}: expected `rule = [..]`", n + 1))?;
            let key = key.trim().trim_matches('"').to_string();
            if !RULES.iter().any(|(id, _)| *id == key) {
                return Err(format!("tidy.toml line {}: unknown rule `{key}`", n + 1));
            }
            let val = val.trim();
            if !(val.starts_with('[') && val.ends_with(']')) {
                return Err(format!("tidy.toml line {}: expected a `[..]` array", n + 1));
            }
            let entry = self.allow.entry(key).or_default();
            for part in val[1..val.len() - 1].split(',') {
                let p = part.trim().trim_matches('"');
                if !p.is_empty() {
                    entry.push(p.to_string());
                }
            }
        }
        Ok(())
    }
}

/// One lexed source line: code with string/char contents masked out,
/// comment text, the string literals that start on the line, and whether
/// the line sits inside `#[cfg(test)]` / `#[test]` code.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code content; string literals appear as `""`, comments removed.
    pub code: String,
    /// Comment text (line and block comments) on this line.
    pub comment: String,
    /// Contents of string literals that start on this line.
    pub strings: Vec<String>,
    /// True inside a `#[cfg(test)]` or `#[test]` item.
    pub in_test: bool,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the scanned root, `/`-separated.
    pub rel: String,
    /// Lexed lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum St {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    CharLit,
}

/// Lexes Rust source into per-line code/comment/string channels. This is a
/// classifier, not a parser: it only needs to know, for every byte, whether
/// it is code, comment, or literal content.
pub fn lex(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut st = St::Code;
    let mut cur_str = String::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        let line = lines.last_mut().unwrap_or_else(|| unreachable!("lines starts non-empty"));
        match st {
            St::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw / byte string starts: r", r#", br", b" — only when the
                // prefix letter does not terminate an identifier.
                let prev_ident = i > 0 && is_ident_char(chars[i - 1]);
                if !prev_ident && (c == 'r' || c == 'b') {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = j > i + 1 || c == 'r';
                    if chars.get(j) == Some(&'"') && (is_raw || c == 'b') {
                        line.code.push('"');
                        cur_str.clear();
                        st = St::Str { raw_hashes: if is_raw { Some(hashes) } else { None } };
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    line.code.push('"');
                    cur_str.clear();
                    st = St::Str { raw_hashes: None };
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let next = chars.get(i + 1);
                    let after = chars.get(i + 2);
                    let is_char = matches!(next, Some('\\')) || after == Some(&'\'');
                    if is_char {
                        line.code.push('\'');
                        st = St::CharLit;
                        i += 1;
                        continue;
                    }
                    line.code.push('\'');
                    i += 1;
                    continue;
                }
                // Mask non-ASCII so byte offsets equal char offsets in the
                // code channel (`mark_tests` relies on this).
                line.code.push(if c.is_ascii() { c } else { '_' });
                i += 1;
            }
            St::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if depth == 1 { St::Code } else { St::BlockComment(depth - 1) };
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                line.comment.push(c);
                i += 1;
            }
            St::Str { raw_hashes } => {
                match raw_hashes {
                    None => {
                        if c == '\\' {
                            if let Some(&e) = chars.get(i + 1) {
                                cur_str.push(e);
                            }
                            i += 2;
                            continue;
                        }
                        if c == '"' {
                            line.code.push('"');
                            line.strings.push(std::mem::take(&mut cur_str));
                            st = St::Code;
                            i += 1;
                            continue;
                        }
                    }
                    Some(h) => {
                        if c == '"' {
                            let closes = (1..=h as usize).all(|k| chars.get(i + k) == Some(&'#'));
                            if closes {
                                line.code.push('"');
                                line.strings.push(std::mem::take(&mut cur_str));
                                st = St::Code;
                                i += 1 + h as usize;
                                continue;
                            }
                        }
                    }
                }
                cur_str.push(c);
                i += 1;
            }
            St::CharLit => {
                if c == '\\' {
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    line.code.push('\'');
                    st = St::Code;
                    i += 1;
                    continue;
                }
                i += 1;
            }
        }
    }
    // Unterminated-string leftovers still count as a literal.
    if !cur_str.is_empty() {
        if let Some(l) = lines.last_mut() {
            l.strings.push(cur_str);
        }
    }
    mark_tests(&mut lines);
    lines
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks every line inside a `#[cfg(test)]` / `#[test]` item's braces.
fn mark_tests(lines: &mut [Line]) {
    // Flatten code with line indices so brace matching can span lines.
    let mut flat: Vec<(usize, char)> = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        flat.extend(l.code.chars().map(|c| (idx, c)));
        flat.push((idx, '\n'));
    }
    let s: String = flat.iter().map(|&(_, c)| c).collect();
    for attr in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(p) = s[from..].find(attr) {
            let p = from + p;
            from = p + attr.len();
            // First `{` after the attribute opens the item body.
            let Some(open_rel) = s[from..].find('{') else { continue };
            let open = from + open_rel;
            let mut depth = 0i32;
            let mut end = s.len() - 1;
            for (k, c) in s[open..].char_indices() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = open + k;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let start_line = flat[p].0;
            let end_line = flat[end.min(flat.len() - 1)].0;
            for l in lines.iter_mut().take(end_line + 1).skip(start_line) {
                l.in_test = true;
            }
        }
    }
}

/// True if `code` contains `tok` as a standalone token (non-identifier
/// characters, or the line edges, on both sides).
pub fn has_token(code: &str, tok: &str) -> bool {
    find_token(code, tok).is_some()
}

fn find_token(code: &str, tok: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(p) = code[from..].find(tok) {
        let p = from + p;
        let before = p == 0 || !is_ident_char(code[..p].chars().next_back()?);
        let end = p + tok.len();
        let after = end >= code.len() || !is_ident_char(code[end..].chars().next()?);
        if before && after {
            return Some(p);
        }
        from = p + tok.len();
    }
    None
}

const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// True if `code` contains an `as <integer-type>` cast.
pub fn has_int_cast(code: &str) -> bool {
    let mut from = 0;
    while let Some(p) = find_token(&code[from..], "as") {
        let rest = code[from + p + 2..].trim_start();
        if INT_TYPES
            .iter()
            .any(|t| rest.starts_with(t) && !rest[t.len()..].starts_with(is_ident_char))
        {
            return true;
        }
        from += p + 2;
    }
    false
}

/// True if the line's comment waives `rule` via `tidy:allow(rule, ...)`.
fn line_allows(comment: &str, rule: &str) -> bool {
    let mut from = 0;
    while let Some(p) = comment[from..].find("tidy:allow(") {
        let args = &comment[from + p + "tidy:allow(".len()..];
        let named = args.split([',', ')']).next().unwrap_or("").trim();
        if named == rule {
            return true;
        }
        from += p + 1;
    }
    false
}

fn path_under(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| p.is_empty() || rel == p || rel.starts_with(&format!("{p}/")))
}

fn rule_allows(cfg: &Config, rule: &str, rel: &str) -> bool {
    cfg.allow.get(rule).is_some_and(|paths| path_under(rel, paths))
}

/// True for paths that are test/bench/example code by location.
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
}

/// The analysis result: violations plus how many files were scanned.
#[derive(Debug)]
pub struct Report {
    /// All violations, sorted by file, line, rule.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
}

/// Runs every rule over the configured tree.
///
/// # Errors
/// I/O failures reading the tree (individual unreadable files are errors —
/// a lint pass that silently skips files is worse than none).
pub fn run(cfg: &Config) -> Result<Report, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for dir in &cfg.scan_dirs {
        // An empty scan dir means the root itself (fixture-test configs).
        let d = if dir.is_empty() { cfg.root.clone() } else { cfg.root.join(dir) };
        if d.is_dir() {
            collect_rs(&d, &mut paths)?;
        }
    }
    paths.sort();
    paths.dedup();

    let mut files: Vec<SourceFile> = Vec::new();
    for p in &paths {
        let rel = p
            .strip_prefix(&cfg.root)
            .map_err(|_| format!("path {} escapes root", p.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        if path_under(&rel, &cfg.exclude) {
            continue;
        }
        let text = fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
        files.push(SourceFile { rel, lines: lex(&text) });
    }

    let mut out: Vec<Violation> = Vec::new();
    for f in &files {
        check_addr_cast(cfg, f, &mut out);
        check_unsafe_safety(cfg, f, &mut out);
        check_panic(cfg, f, &mut out);
        check_metric_literal(cfg, f, &mut out);
    }
    check_dead_metric(cfg, &files, &mut out);
    check_fault_coverage(cfg, &files, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Report { violations: out, files_checked: files.len() })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let p = entry.path();
        let name = entry.file_name();
        if p.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(&p, out)?;
            }
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn check_addr_cast(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if path_under(&f.rel, &cfg.addr_exempt)
        || rule_allows(cfg, "addr-cast", &f.rel)
        || is_test_path(&f.rel)
    {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        if l.in_test || line_allows(&l.comment, "addr-cast") {
            continue;
        }
        if has_token(&l.code, "Addr") && has_int_cast(&l.code) {
            out.push(Violation {
                rule: "addr-cast",
                file: f.rel.clone(),
                line: i + 1,
                message: "raw integer cast on a line handling an Addr value; use the typed \
                          helpers (Addr::raw, Addr::from_raw, Addr::byte_add, Addr::offset_from)"
                    .into(),
            });
        }
    }
}

fn check_unsafe_safety(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if rule_allows(cfg, "unsafe-safety", &f.rel) {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        if !has_token(&l.code, "unsafe") || line_allows(&l.comment, "unsafe-safety") {
            continue;
        }
        let mut covered = l.comment.contains("SAFETY:");
        // Walk up through the contiguous run of comment-only lines and
        // earlier `unsafe` lines (one SAFETY comment may cover several
        // consecutive unsafe items, e.g. `unsafe impl Send`/`Sync`).
        let mut j = i;
        while !covered && j > 0 {
            j -= 1;
            let prev = &f.lines[j];
            let code = prev.code.trim();
            if code.is_empty() || has_token(code, "unsafe") {
                covered = prev.comment.contains("SAFETY:");
            } else {
                break;
            }
        }
        if !covered {
            out.push(Violation {
                rule: "unsafe-safety",
                file: f.rel.clone(),
                line: i + 1,
                message: "`unsafe` without a `// SAFETY:` comment on or above the line".into(),
            });
        }
    }
}

fn check_panic(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if !path_under(&f.rel, &cfg.panic_paths)
        || rule_allows(cfg, "panic", &f.rel)
        || is_test_path(&f.rel)
    {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        if l.in_test || line_allows(&l.comment, "panic") {
            continue;
        }
        let construct = if l.code.contains(".unwrap()") {
            Some("unwrap()")
        } else if l.code.contains(".expect(") {
            Some("expect()")
        } else if has_token(&l.code, "panic!") {
            Some("panic!")
        } else {
            None
        };
        if let Some(c) = construct {
            out.push(Violation {
                rule: "panic",
                file: f.rel.clone(),
                line: i + 1,
                message: format!(
                    "{c} in non-test code; return a typed Error or tag the line with \
                     `// tidy:allow(panic, reason)` if genuinely infallible"
                ),
            });
        }
    }
}

fn check_metric_literal(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if path_under(&f.rel, &cfg.metric_exempt) || rule_allows(cfg, "metric-literal", &f.rel) {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        if line_allows(&l.comment, "metric-literal") {
            continue;
        }
        for s in &l.strings {
            if cfg.metric_prefixes.iter().any(|p| s.starts_with(p)) {
                out.push(Violation {
                    rule: "metric-literal",
                    file: f.rel.clone(),
                    line: i + 1,
                    message: format!(
                        "metric name literal \"{s}\" outside crates/obs; reference an \
                         obs::names const instead"
                    ),
                });
            }
        }
    }
}

/// Parses `pub const IDENT: &str = "metric.name";` definitions out of the
/// names file, returning `(ident, line, value)` triples.
fn metric_consts(cfg: &Config, f: &SourceFile) -> Vec<(String, usize, String)> {
    let mut out = Vec::new();
    for (i, l) in f.lines.iter().enumerate() {
        let code = l.code.trim();
        let Some(rest) = code.strip_prefix("pub const ") else { continue };
        let Some((ident, _)) = rest.split_once(':') else { continue };
        let Some(value) = l.strings.first() else { continue };
        if cfg.metric_prefixes.iter().any(|p| value.starts_with(p)) {
            out.push((ident.trim().to_string(), i + 1, value.clone()));
        }
    }
    out
}

fn check_dead_metric(cfg: &Config, files: &[SourceFile], out: &mut Vec<Violation>) {
    let Some(names_rel) = &cfg.names_file else { return };
    let Some(names) = files.iter().find(|f| &f.rel == names_rel) else { return };
    for (ident, line, value) in metric_consts(cfg, names) {
        let used = files.iter().any(|f| {
            f.lines
                .iter()
                .enumerate()
                .any(|(i, l)| (f.rel != *names_rel || i + 1 != line) && has_token(&l.code, &ident))
        });
        if !used && !line_allows(&names.lines[line - 1].comment, "dead-metric") {
            out.push(Violation {
                rule: "dead-metric",
                file: names.rel.clone(),
                line,
                message: format!(
                    "metric const {ident} (\"{value}\") has no use site outside its definition"
                ),
            });
        }
    }
}

/// Extracts the variant names of `pub enum HeapFault` from the fault file.
fn fault_variants(f: &SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let Some(start) = f.lines.iter().position(|l| l.code.contains("enum HeapFault")) else {
        return out;
    };
    let mut depth = 0i32;
    let mut opened = false;
    for (i, l) in f.lines.iter().enumerate().skip(start) {
        // A variant line starts at enum depth (depth 1 before the line's
        // own braces, so multi-line `Variant {` headers still count).
        let depth_before = depth;
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if i > start && opened && depth_before == 1 {
            let t = l.code.trim();
            let ident: String = t.chars().take_while(|&c| is_ident_char(c)).collect();
            if !ident.is_empty()
                && ident.chars().next().is_some_and(char::is_uppercase)
                && t[ident.len()..].trim_start().starts_with(['{', '(', ','])
            {
                out.push((ident, i + 1));
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    out
}

fn check_fault_coverage(cfg: &Config, files: &[SourceFile], out: &mut Vec<Violation>) {
    let Some(fault_rel) = &cfg.fault_file else { return };
    let Some(faults) = files.iter().find(|f| &f.rel == fault_rel) else { return };
    for (variant, line) in fault_variants(faults) {
        let covered = files.iter().any(|f| {
            let whole_file_is_test = is_test_path(&f.rel);
            f.lines
                .iter()
                .any(|l| (whole_file_is_test || l.in_test) && has_token(&l.code, &variant))
        });
        if !covered && !line_allows(&faults.lines[line - 1].comment, "fault-coverage") {
            out.push(Violation {
                rule: "fault-coverage",
                file: faults.rel.clone(),
                line,
                message: format!(
                    "HeapFault::{variant} never appears in a test; add a test that \
                     provokes and asserts this fault"
                ),
            });
        }
    }
}

/// Serializes a report as stable, machine-readable JSON.
pub fn to_json(report: &Report) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"files_checked\": {},\n", report.files_checked));
    s.push_str(&format!("  \"violation_count\": {},\n", report.violations.len()));
    s.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(v.rule),
            json_escape(&v.file),
            v.line,
            json_escape(&v.message)
        ));
    }
    if !report.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_masks_strings_and_comments() {
        let lines = lex("let x = \"unsafe .unwrap() skyway.y\"; // unsafe comment\n");
        assert!(!has_token(&lines[0].code, "unsafe"));
        assert!(!lines[0].code.contains(".unwrap()"));
        assert_eq!(lines[0].strings, vec!["unsafe .unwrap() skyway.y"]);
        assert!(lines[0].comment.contains("unsafe comment"));
    }

    #[test]
    fn lexer_handles_raw_strings_and_lifetimes() {
        let lines = lex("fn f<'a>(x: &'a str) { let s = r#\"panic!\"#; let c = '\\n'; }\n");
        assert!(has_token(&lines[0].code, "fn"));
        assert!(!has_token(&lines[0].code, "panic!"));
        assert_eq!(lines[0].strings, vec!["panic!"]);
    }

    #[test]
    fn lexer_handles_block_comments_spanning_lines() {
        let lines = lex("a /* x\n unsafe\n y */ b\n");
        assert!(!has_token(&lines[1].code, "unsafe"));
        assert!(lines[1].comment.contains("unsafe"));
        assert!(has_token(&lines[2].code, "b"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn token_and_cast_matchers() {
        assert!(has_token("let a: Addr = x;", "Addr"));
        assert!(!has_token("let a: RelAddr2 = x;", "Addr"));
        assert!(has_int_cast("x as u64"));
        assert!(has_int_cast("(y) as usize + 1"));
        assert!(!has_int_cast("x as f64"));
        assert!(!has_int_cast("basic_usize"));
    }

    #[test]
    fn inline_allow_tags_parse() {
        assert!(line_allows(" tidy:allow(panic, lock poisoning is fatal)", "panic"));
        assert!(line_allows(" tidy:allow(addr-cast)", "addr-cast"));
        assert!(!line_allows(" tidy:allow(panic, reason)", "addr-cast"));
        assert!(!line_allows(" no tag here", "panic"));
    }
}
