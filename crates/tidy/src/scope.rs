//! Brace-matched item regions over the lexed code channel: which lines
//! belong to which `fn` / `struct` body, and the running brace depth inside
//! a region. This is what lets the rules reason per-function (taint resets
//! at function entry) and track guard lifetimes (a guard dies when the
//! depth it was bound at closes).

use crate::lexer::{find_token_at, is_ident_char, Line};

/// A brace-matched item body: inclusive 0-based line range plus the item's
/// name (the identifier after the keyword).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Item name (function or struct identifier).
    pub name: String,
    /// 0-based first line (the line holding the keyword).
    pub start: usize,
    /// 0-based last line (the line holding the closing brace).
    pub end: usize,
}

/// Flattened code channel: the concatenated code text plus, per byte, the
/// (line index, 1-based column) it came from.
struct Flat {
    text: String,
    pos: Vec<(usize, usize)>,
}

fn flatten(lines: &[Line]) -> Flat {
    let mut text = String::new();
    let mut pos = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        // The code channel is pure ASCII (the lexer masks non-ASCII), so
        // byte positions equal character columns.
        for (c_i, ch) in l.code.chars().enumerate() {
            text.push(ch);
            pos.push((idx, c_i + 1));
        }
        text.push('\n');
        pos.push((idx, l.code.len() + 1));
    }
    Flat { text, pos }
}

/// All brace-matched `fn` bodies in the file, in source order. Trait
/// method *declarations* (ending in `;`) and `fn`-pointer types (no
/// identifier after the keyword) are skipped.
pub fn functions(lines: &[Line]) -> Vec<Region> {
    item_regions(lines, "fn")
}

/// All brace-matched `struct` bodies in the file. Tuple and unit structs
/// (ending in `;` before any `{`) are skipped — they have no named fields
/// to inspect.
pub fn structs(lines: &[Line]) -> Vec<Region> {
    item_regions(lines, "struct")
}

fn item_regions(lines: &[Line], keyword: &str) -> Vec<Region> {
    let flat = flatten(lines);
    let bytes = flat.text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = find_token_at(&flat.text, keyword, from) {
        from = p + keyword.len();
        // Item name: first identifier after the keyword.
        let mut j = from;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && is_ident_char(bytes[j] as char) {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = flat.text[name_start..j].to_string();
        // Body: the first `{` unless a `;` ends the item first.
        let mut k = j;
        let mut open = None;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => {
                    open = Some(k);
                    break;
                }
                b';' => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else { continue };
        let mut depth = 0i32;
        let mut end_idx = bytes.len() - 1;
        for (m, b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end_idx = m;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(Region {
            name,
            start: flat.pos[p].0,
            end: flat.pos[end_idx.min(flat.pos.len() - 1)].0,
        });
    }
    out
}

/// Running brace depth at the *end* of each line of `region`, relative to
/// the region's first line (which typically ends at depth 1, inside the
/// opening brace). `out[i]` corresponds to line `region.start + i`.
pub fn end_depths(lines: &[Line], region: &Region) -> Vec<i32> {
    let mut out = Vec::with_capacity(region.end - region.start + 1);
    let mut depth = 0i32;
    for l in lines.iter().take(region.end + 1).skip(region.start) {
        for c in l.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        out.push(depth);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const SRC: &str = "\
pub struct Pair {
    a: u64,
}

impl Pair {
    pub fn get(&self) -> u64 {
        {
            self.a
        }
    }
}

pub fn free(x: fn(u64) -> u64) -> u64 {
    x(1)
}

trait T {
    fn decl(&self) -> u64;
}
";

    #[test]
    fn functions_are_brace_matched_with_names() {
        let lines = lex(SRC);
        let fns = functions(&lines);
        let names: Vec<&str> = fns.iter().map(|r| r.name.as_str()).collect();
        // `fn(u64)` in type position has no name; `decl` ends in `;`.
        assert_eq!(names, ["get", "free"]);
        assert_eq!((fns[0].start, fns[0].end), (5, 9));
        assert_eq!((fns[1].start, fns[1].end), (12, 14));
    }

    #[test]
    fn structs_skip_tuple_structs() {
        let lines = lex("pub struct Addr(pub u64);\npub struct Named {\n    f: u64,\n}\n");
        let ss = structs(&lines);
        assert_eq!(ss.len(), 1);
        assert_eq!(ss[0].name, "Named");
        assert_eq!((ss[0].start, ss[0].end), (1, 3));
    }

    #[test]
    fn end_depths_track_nested_blocks() {
        let lines = lex(SRC);
        let get = &functions(&lines)[0];
        assert_eq!(end_depths(&lines, get), vec![1, 2, 2, 1, 0]);
    }
}
