//! SARIF 2.1.0 serialization of a [`Report`], so CI can upload violations
//! as GitHub code-scanning annotations. Hand-rolled like `to_json` — the
//! subset of SARIF we emit is small and stable.

use crate::{json_escape, Report, RULES};

/// Serializes a report as a SARIF 2.1.0 log with one run.
pub fn to_sarif(report: &Report) -> String {
    let mut s = String::from("{\n");
    s.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [{\n");
    s.push_str("    \"tool\": {\"driver\": {\n");
    s.push_str("      \"name\": \"skyway-tidy\",\n");
    s.push_str(&format!("      \"version\": \"{}\",\n", env!("CARGO_PKG_VERSION")));
    s.push_str("      \"rules\": [");
    for (i, (id, summary)) in RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n        {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            json_escape(id),
            json_escape(summary)
        ));
    }
    s.push_str("\n      ]\n");
    s.push_str("    }},\n");
    s.push_str("    \"results\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let rule_index = RULES.iter().position(|(id, _)| *id == v.rule).unwrap_or(0);
        s.push_str(&format!(
            "\n      {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \
             \"startColumn\": {}}}}}}}]}}",
            json_escape(v.rule),
            rule_index,
            json_escape(&v.message),
            json_escape(&v.file),
            v.line,
            v.col
        ));
    }
    if !report.violations.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str("]\n");
    s.push_str("  }]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Violation;

    #[test]
    fn sarif_carries_rules_and_result_locations() {
        let report = Report {
            violations: vec![Violation {
                rule: "panic",
                file: "crates/core/src/x.rs".into(),
                line: 12,
                col: 7,
                message: "unwrap() in non-test code".into(),
            }],
            files_checked: 1,
        };
        let s = to_sarif(&report);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"skyway-tidy\""));
        assert!(s.contains("\"id\": \"lock-order\""), "all rules are declared");
        assert!(s.contains("\"ruleId\": \"panic\", \"ruleIndex\": 4, \"level\": \"error\""));
        assert!(s.contains("\"uri\": \"crates/core/src/x.rs\""));
        assert!(s.contains("\"startLine\": 12, \"startColumn\": 7"));
    }

    #[test]
    fn empty_report_is_valid_sarif_with_empty_results() {
        let s = to_sarif(&Report { violations: vec![], files_checked: 3 });
        assert!(s.contains("\"results\": []"));
    }
}
