//! The lexing layer: Rust source → per-line code/comment/string channels.
//!
//! This is a classifier, not a parser: it only needs to know, for every
//! byte, whether it is code, comment, or literal content. Everything above
//! it (scopes, dataflow, rules) works on the masked [`Line`] channels.

/// A string literal occurrence: the 1-based column of its opening quote
/// (as it appears in the masked code channel) and its unescaped content.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// 1-based column of the opening quote on the line the literal started.
    pub col: usize,
    /// Literal content with escapes resolved to their raw characters.
    pub text: String,
}

/// One lexed source line: code with string/char contents masked out,
/// comment text, the string literals that close on the line, and whether
/// the line sits inside `#[cfg(test)]` / `#[test]` code.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code content; string literals appear as `""`, comments removed.
    pub code: String,
    /// Comment text (line and block comments) on this line.
    pub comment: String,
    /// String literals that close on this line.
    pub strings: Vec<StrLit>,
    /// True inside a `#[cfg(test)]` or `#[test]` item.
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum St {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    CharLit,
}

/// Lexes Rust source into per-line code/comment/string channels.
pub fn lex(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut st = St::Code;
    let mut cur_str = String::new();
    let mut str_col = 1usize;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        let line = lines.last_mut().unwrap_or_else(|| unreachable!("lines starts non-empty"));
        match st {
            St::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw / byte string starts: r", r#", br", b" — only when the
                // prefix letter does not terminate an identifier.
                let prev_ident = i > 0 && is_ident_char(chars[i - 1]);
                if !prev_ident && (c == 'r' || c == 'b') {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = j > i + 1 || c == 'r';
                    if chars.get(j) == Some(&'"') && (is_raw || c == 'b') {
                        str_col = line.code.len() + 1;
                        line.code.push('"');
                        cur_str.clear();
                        st = St::Str { raw_hashes: if is_raw { Some(hashes) } else { None } };
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    str_col = line.code.len() + 1;
                    line.code.push('"');
                    cur_str.clear();
                    st = St::Str { raw_hashes: None };
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let next = chars.get(i + 1);
                    let after = chars.get(i + 2);
                    let is_char = matches!(next, Some('\\')) || after == Some(&'\'');
                    if is_char {
                        line.code.push('\'');
                        st = St::CharLit;
                        i += 1;
                        continue;
                    }
                    line.code.push('\'');
                    i += 1;
                    continue;
                }
                // Mask non-ASCII so byte offsets equal char offsets in the
                // code channel (`mark_tests` and the column math rely on
                // this).
                line.code.push(if c.is_ascii() { c } else { '_' });
                i += 1;
            }
            St::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if depth == 1 { St::Code } else { St::BlockComment(depth - 1) };
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                line.comment.push(c);
                i += 1;
            }
            St::Str { raw_hashes } => {
                match raw_hashes {
                    None => {
                        if c == '\\' {
                            if let Some(&e) = chars.get(i + 1) {
                                cur_str.push(e);
                            }
                            i += 2;
                            continue;
                        }
                        if c == '"' {
                            line.code.push('"');
                            line.strings
                                .push(StrLit { col: str_col, text: std::mem::take(&mut cur_str) });
                            st = St::Code;
                            i += 1;
                            continue;
                        }
                    }
                    Some(h) => {
                        if c == '"' {
                            let closes = (1..=h as usize).all(|k| chars.get(i + k) == Some(&'#'));
                            if closes {
                                line.code.push('"');
                                line.strings.push(StrLit {
                                    col: str_col,
                                    text: std::mem::take(&mut cur_str),
                                });
                                st = St::Code;
                                i += 1 + h as usize;
                                continue;
                            }
                        }
                    }
                }
                cur_str.push(c);
                i += 1;
            }
            St::CharLit => {
                if c == '\\' {
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    line.code.push('\'');
                    st = St::Code;
                    i += 1;
                    continue;
                }
                i += 1;
            }
        }
    }
    // Unterminated-string leftovers still count as a literal.
    if !cur_str.is_empty() {
        if let Some(l) = lines.last_mut() {
            l.strings.push(StrLit { col: str_col, text: cur_str });
        }
    }
    mark_tests(&mut lines);
    lines
}

/// True for characters that can appear inside a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks every line inside a `#[cfg(test)]` / `#[test]` item's braces.
fn mark_tests(lines: &mut [Line]) {
    // Flatten code with line indices so brace matching can span lines.
    let mut flat: Vec<(usize, char)> = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        flat.extend(l.code.chars().map(|c| (idx, c)));
        flat.push((idx, '\n'));
    }
    let s: String = flat.iter().map(|&(_, c)| c).collect();
    for attr in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(p) = s[from..].find(attr) {
            let p = from + p;
            from = p + attr.len();
            // First `{` after the attribute opens the item body.
            let Some(open_rel) = s[from..].find('{') else { continue };
            let open = from + open_rel;
            let mut depth = 0i32;
            let mut end = s.len() - 1;
            for (k, c) in s[open..].char_indices() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = open + k;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let start_line = flat[p].0;
            let end_line = flat[end.min(flat.len() - 1)].0;
            for l in lines.iter_mut().take(end_line + 1).skip(start_line) {
                l.in_test = true;
            }
        }
    }
}

/// True if `code` contains `tok` as a standalone token (non-identifier
/// characters, or the line edges, on both sides).
pub fn has_token(code: &str, tok: &str) -> bool {
    find_token(code, tok).is_some()
}

/// 0-based position of the first standalone occurrence of `tok`.
pub fn find_token(code: &str, tok: &str) -> Option<usize> {
    find_token_at(code, tok, 0)
}

/// Like [`find_token`], starting the search at byte offset `from`.
/// Boundary checks look at the full string, so a match straddling `from`
/// is still rejected correctly.
pub fn find_token_at(code: &str, tok: &str, from: usize) -> Option<usize> {
    let mut from = from;
    while let Some(p) = code.get(from..)?.find(tok) {
        let p = from + p;
        let before = p == 0 || !is_ident_char(code[..p].chars().next_back()?);
        let end = p + tok.len();
        let after = end >= code.len() || !is_ident_char(code[end..].chars().next()?);
        if before && after {
            return Some(p);
        }
        from = p + tok.len();
    }
    None
}

const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// True if `code` contains an `as <integer-type>` cast.
pub fn has_int_cast(code: &str) -> bool {
    find_int_cast(code).is_some()
}

/// 0-based position of the first `as <integer-type>` cast's `as` token.
pub fn find_int_cast(code: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(p) = find_token_at(code, "as", from) {
        let rest = code[p + 2..].trim_start();
        if INT_TYPES
            .iter()
            .any(|t| rest.starts_with(t) && !rest[t.len()..].starts_with(is_ident_char))
        {
            return Some(p);
        }
        from = p + 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_masks_strings_and_comments() {
        let lines = lex("let x = \"unsafe .unwrap() skyway.y\"; // unsafe comment\n");
        assert!(!has_token(&lines[0].code, "unsafe"));
        assert!(!lines[0].code.contains(".unwrap()"));
        assert_eq!(lines[0].strings.len(), 1);
        assert_eq!(lines[0].strings[0].text, "unsafe .unwrap() skyway.y");
        assert_eq!(lines[0].strings[0].col, 9, "column of the opening quote");
        assert!(lines[0].comment.contains("unsafe comment"));
    }

    #[test]
    fn lexer_handles_raw_strings_and_lifetimes() {
        let lines = lex("fn f<'a>(x: &'a str) { let s = r#\"panic!\"#; let c = '\\n'; }\n");
        assert!(has_token(&lines[0].code, "fn"));
        assert!(!has_token(&lines[0].code, "panic!"));
        assert_eq!(lines[0].strings[0].text, "panic!");
    }

    #[test]
    fn lexer_handles_block_comments_spanning_lines() {
        let lines = lex("a /* x\n unsafe\n y */ b\n");
        assert!(!has_token(&lines[1].code, "unsafe"));
        assert!(lines[1].comment.contains("unsafe"));
        assert!(has_token(&lines[2].code, "b"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn token_and_cast_matchers() {
        assert!(has_token("let a: Addr = x;", "Addr"));
        assert!(!has_token("let a: RelAddr2 = x;", "Addr"));
        assert!(has_int_cast("x as u64"));
        assert!(has_int_cast("(y) as usize + 1"));
        assert!(!has_int_cast("x as f64"));
        assert!(!has_int_cast("basic_usize"));
        assert_eq!(find_int_cast("x as u64"), Some(2));
    }
}
