//! CLI for `skyway-tidy`. Run from anywhere in the workspace:
//!
//! ```text
//! cargo run -p tidy                      # human-readable report, exit 1 on violations
//! cargo run -p tidy -- --json            # machine output for CI
//! cargo run -p tidy -- --sarif           # SARIF 2.1.0 for code-scanning upload
//! cargo run -p tidy -- --fixture-matrix  # assert each fixture trips exactly its rule
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tidy::{run, to_json, to_sarif, Config};

#[derive(Clone, Copy, PartialEq)]
enum Output {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut output = Output::Text;
    let mut fixture_matrix = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => output = Output::Json,
            "--sarif" => output = Output::Sarif,
            "--fixture-matrix" => fixture_matrix = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("skyway-tidy: {e}");
            return ExitCode::from(2);
        }
    };

    if fixture_matrix {
        return match run_fixture_matrix(&root) {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("skyway-tidy: fixture matrix: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut cfg = Config::for_workspace(root.clone());
    if let Err(e) = cfg.load_allowlists(&root.join("tidy.toml")) {
        eprintln!("skyway-tidy: {e}");
        return ExitCode::from(2);
    }

    let report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("skyway-tidy: {e}");
            return ExitCode::from(2);
        }
    };

    match output {
        Output::Json => print!("{}", to_json(&report)),
        Output::Sarif => print!("{}", to_sarif(&report)),
        Output::Text => {
            for v in &report.violations {
                println!("{}:{}:{}: [{}] {}", v.file, v.line, v.col, v.rule, v.message);
            }
            println!(
                "skyway-tidy: {} file(s) checked, {} violation(s)",
                report.files_checked,
                report.violations.len()
            );
        }
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Every fixture file paired with the one rule it is built to trip
/// (`None`: the fixture demonstrates suppression and must stay quiet).
const FIXTURE_RULES: &[(&str, Option<&str>)] = &[
    ("addr_cast.rs", Some("addr-cast")),
    ("addr_provenance.rs", Some("addr-provenance")),
    ("allow_positions.rs", None),
    ("atomics_order.rs", Some("atomics-order")),
    ("atomics_order_cas.rs", Some("atomics-order-cas")),
    ("atomics_order_comment.rs", Some("atomics-order-comment")),
    ("checked_arith.rs", Some("checked-arith")),
    ("faults.rs", Some("fault-coverage")),
    ("lock_order.rs", Some("lock-order")),
    ("metric_literal.rs", Some("metric-literal")),
    ("names.rs", Some("dead-metric")),
    ("names_user.rs", None),
    ("panic_unwrap.rs", Some("panic")),
    ("unsafe_no_safety.rs", Some("unsafe-safety")),
];

/// Scans the fixture tree and asserts each fixture file trips exactly its
/// intended rule — no more, no less — and that no fixture on disk is
/// missing from the expectation table.
fn run_fixture_matrix(root: &Path) -> Result<String, String> {
    let dir = root.join("crates/tidy/tests/fixtures");
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    for entry in std::fs::read_dir(&dir).map_err(|e| format!("reading {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.path().is_file()
            && name.ends_with(".rs")
            && !FIXTURE_RULES.iter().any(|(f, _)| *f == name)
        {
            return Err(format!("fixture {name} has no entry in the expectation table"));
        }
    }
    let report = run(&Config::for_fixtures(dir))?;
    for (file, want) in FIXTURE_RULES {
        let mut fired: Vec<&str> =
            report.violations.iter().filter(|v| v.file == *file).map(|v| v.rule).collect();
        fired.sort_unstable();
        fired.dedup();
        match want {
            Some(rule) => {
                if fired != [*rule] {
                    return Err(format!("{file}: expected exactly [{rule}], got {fired:?}"));
                }
            }
            None => {
                if !fired.is_empty() {
                    return Err(format!("{file}: expected no violations, got {fired:?}"));
                }
            }
        }
    }
    Ok(format!(
        "fixture matrix OK: {} fixtures, {} violations, each fixture trips exactly its rule",
        FIXTURE_RULES.len(),
        report.violations.len()
    ))
}

fn print_help() {
    println!("skyway-tidy: static-analysis gate for the Skyway workspace");
    println!();
    println!("USAGE: skyway-tidy [--json | --sarif] [--fixture-matrix] [--root <path>]");
    println!();
    println!("  --json            emit machine-readable JSON instead of text");
    println!("  --sarif           emit SARIF 2.1.0 for code-scanning upload");
    println!("  --fixture-matrix  assert each tests/fixtures/*.rs trips exactly its rule");
    println!("  --root <path>     workspace root (default: walk up to [workspace])");
    println!();
    println!("RULES:");
    for (id, summary) in tidy::RULES {
        println!("  {id:<16} {summary}");
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("reading {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory; \
                        pass --root <path>"
                .into());
        }
    }
}
