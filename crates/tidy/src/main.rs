//! CLI for `skyway-tidy`. Run from anywhere in the workspace:
//!
//! ```text
//! cargo run -p tidy            # human-readable report, exit 1 on violations
//! cargo run -p tidy -- --json  # machine output for CI
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use tidy::{run, to_json, Config};

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("skyway-tidy: {e}");
            return ExitCode::from(2);
        }
    };

    let mut cfg = Config::for_workspace(root.clone());
    if let Err(e) = cfg.load_allowlists(&root.join("tidy.toml")) {
        eprintln!("skyway-tidy: {e}");
        return ExitCode::from(2);
    }

    let report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("skyway-tidy: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", to_json(&report));
    } else {
        for v in &report.violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        println!(
            "skyway-tidy: {} file(s) checked, {} violation(s)",
            report.files_checked,
            report.violations.len()
        );
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!("skyway-tidy: static-analysis gate for the Skyway workspace");
    println!();
    println!("USAGE: skyway-tidy [--json] [--root <path>]");
    println!();
    println!("  --json         emit machine-readable JSON instead of text");
    println!("  --root <path>  workspace root (default: walk up to [workspace])");
    println!();
    println!("RULES:");
    for (id, summary) in tidy::RULES {
        println!("  {id:<16} {summary}");
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("reading {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory; \
                        pass --root <path>"
                .into());
        }
    }
}
