//! Intraprocedural taint tracking for raw-born `Addr` values — the static
//! twin of `HeapFault::DanglingRelativeAddr`.
//!
//! Within one function body, a value born from `Addr::from_raw`,
//! `byte_add`, `offset_from`, or the `Addr(..)` constructor is *tainted*:
//! it is an address someone computed, not one the runtime vouched for.
//! Taint is cleared when the value flows through a sanitizer
//! (`translate(..)`, `check(..)`, `check_aligned(..)`) or is compared in a
//! bounds check (`if`/`while`/`assert` with a comparison that mentions
//! it). A tainted identifier reaching a raw memory accessor (`load_word`,
//! `store_word`, `read_bytes`, ...) is a violation.
//!
//! The analysis is deliberately line-oriented and conservative in *both*
//! directions: function parameters start untainted (the caller vouched for
//! them), and any comparison mentioning a tainted name counts as a bounds
//! check. It exists to catch the "computed an address, dereferenced it
//! without translating" bug class, not to prove memory safety.

use crate::lexer::{has_token, is_ident_char, Line};
use crate::scope::Region;

/// Expressions that *produce* a raw-born address.
pub const ADDR_SOURCES: &[&str] = &["Addr::from_raw(", ".byte_add(", ".offset_from("];

/// Calls that *vouch for* an address (clear taint from every identifier
/// they mention on the line).
pub const ADDR_SANITIZERS: &[&str] = &["translate(", "check(", "check_aligned("];

/// Raw memory accessors a tainted value must not reach (matched as
/// `.name(` method calls).
pub const ADDR_SINKS: &[&str] = &[
    "load_word",
    "load_word_atomic",
    "store_word",
    "cas_word",
    "load_u32",
    "store_u32",
    "load_u16",
    "store_u16",
    "load_u8",
    "store_u8",
    "read_bytes",
    "write_bytes",
    "copy_within",
    "zero",
];

/// A tainted identifier reaching a sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintHit {
    /// 0-based line index of the sink call.
    pub line: usize,
    /// 1-based column of the sink method name.
    pub col: usize,
    /// The tainted identifier that reached the sink.
    pub ident: String,
    /// The sink method name.
    pub sink: &'static str,
}

/// Runs the taint analysis over one function region.
pub fn addr_taint(lines: &[Line], region: &Region) -> Vec<TaintHit> {
    let mut taint: Vec<String> = Vec::new();
    let mut hits = Vec::new();
    for (i, l) in lines.iter().enumerate().take(region.end + 1).skip(region.start) {
        let code = l.code.as_str();
        // 1. Sanitizers and bounds checks clear every tainted identifier
        //    the line mentions.
        if has_sanitizer(code) || is_bounds_check(code) {
            taint.retain(|t| !has_token(code, t));
        }
        // 2. Bindings and plain assignments move taint.
        if let Some((pattern, rhs)) = binding_of(code) {
            let pats = pattern_idents(pattern);
            let rhs_tainted = has_source(rhs) || taint.iter().any(|t| has_token(rhs, t));
            if rhs_tainted {
                for p in pats {
                    if !taint.contains(&p) {
                        taint.push(p);
                    }
                }
            } else {
                taint.retain(|t| !pats.contains(t));
            }
        }
        // 3. Sinks: a tainted identifier appearing at-or-after the sink
        //    call (i.e. inside its argument list or receiver chain tail)
        //    is a violation. Identifiers *before* the sink are the line's
        //    own binding targets, not sink inputs.
        for &sink in ADDR_SINKS {
            let pat = format!(".{sink}(");
            let mut from = 0;
            while let Some(p) = code[from..].find(&pat) {
                let p = from + p;
                from = p + pat.len();
                if let Some(t) = taint.iter().find(|t| has_token(&code[p..], t)) {
                    hits.push(TaintHit { line: i, col: p + 2, ident: t.clone(), sink });
                }
            }
        }
    }
    hits
}

fn has_source(s: &str) -> bool {
    if ADDR_SOURCES.iter().any(|src| s.contains(src)) {
        return true;
    }
    // The bare `Addr(..)` tuple-struct constructor.
    let mut from = 0;
    while let Some(p) = crate::lexer::find_token_at(s, "Addr", from) {
        from = p + 4;
        if s[from..].starts_with('(') {
            return true;
        }
    }
    false
}

fn has_sanitizer(s: &str) -> bool {
    ADDR_SANITIZERS.iter().any(|san| s.contains(san))
}

/// A conditional or assertion containing a comparison counts as a bounds
/// check for every identifier it mentions.
fn is_bounds_check(code: &str) -> bool {
    let t = code.trim_start();
    let conditional = t.starts_with("if ")
        || t.starts_with("if(")
        || t.starts_with("while ")
        || t.contains("else if ")
        || code.contains("assert");
    conditional && (code.contains('<') || code.contains('>') || code.contains("=="))
}

/// Splits a `let`-binding or simple `ident = expr` assignment into
/// (pattern, rhs). Compound assignments (`+=`, `==`, ...) do not count.
fn binding_of(code: &str) -> Option<(&str, &str)> {
    let bytes = code.as_bytes();
    let start = crate::lexer::find_token(code, "let").map_or(0, |p| p + 3);
    let mut k = start;
    while k < bytes.len() {
        if bytes[k] == b'='
            && (k == 0
                || !matches!(
                    bytes[k - 1],
                    b'=' | b'!'
                        | b'<'
                        | b'>'
                        | b'+'
                        | b'-'
                        | b'*'
                        | b'/'
                        | b'%'
                        | b'&'
                        | b'|'
                        | b'^'
                ))
            && bytes.get(k + 1) != Some(&b'=')
        {
            let pattern = &code[start..k];
            // Without `let`, only a lone identifier target is an
            // assignment we track (skip `x.field = ..`, `arr[i] = ..`).
            if start == 0 {
                let p = pattern.trim();
                if p.is_empty() || !p.chars().all(is_ident_char) {
                    return None;
                }
            }
            return Some((pattern, &code[k + 1..]));
        }
        k += 1;
    }
    None
}

/// Variable identifiers bound by a pattern: lowercase- or
/// underscore-initial tokens, minus binding keywords.
pub(crate) fn pattern_idents(pattern: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in pattern.chars().chain([' ']) {
        if is_ident_char(c) {
            cur.push(c);
            continue;
        }
        if !cur.is_empty() {
            let first = cur.chars().next().unwrap_or(' ');
            let keyword = matches!(cur.as_str(), "let" | "mut" | "ref" | "box" | "move" | "_");
            if (first.is_lowercase() || first == '_') && !first.is_ascii_digit() && !keyword {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::functions;

    fn hits(src: &str) -> Vec<TaintHit> {
        let lines = lex(src);
        let fns = functions(&lines);
        let mut out = Vec::new();
        for r in &fns {
            out.extend(addr_taint(&lines, r));
        }
        out
    }

    #[test]
    fn raw_born_addr_reaching_sink_is_flagged() {
        let h = hits(
            "fn f(a: &Arena, base: Addr) -> u64 {\n    let p = base.byte_add(16);\n    a.load_word(p.raw())\n}\n",
        );
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].line, 2);
        assert_eq!(h[0].ident, "p");
        assert_eq!(h[0].sink, "load_word");
    }

    #[test]
    fn translate_sanitizes() {
        let h = hits(
            "fn f(r: &Rx, a: &Arena, l: u64) -> u64 {\n    let abs = r.translate(l);\n    a.load_word(abs.raw())\n}\n",
        );
        assert!(h.is_empty(), "{h:?}");
    }

    #[test]
    fn bounds_check_sanitizes() {
        let h = hits(
            "fn f(a: &Arena, b: Addr, end: u64) -> u64 {\n    let p = Addr::from_raw(b.raw());\n    if p.raw() >= end {\n        return 0;\n    }\n    a.load_word(p.raw())\n}\n",
        );
        assert!(h.is_empty(), "{h:?}");
    }

    #[test]
    fn binding_target_before_sink_is_not_an_input() {
        // `tgt` is bound on the same line the sink runs; only identifiers
        // inside the sink's argument tail count as reaching it.
        let h = hits(
            "fn f(a: &Arena, sbase: u64) -> Addr {\n    let tgt = Addr(a.load_word(sbase));\n    tgt\n}\n",
        );
        assert!(h.is_empty(), "{h:?}");
    }

    #[test]
    fn taint_propagates_through_rebinding() {
        let h = hits(
            "fn f(a: &Arena, b: Addr) -> u64 {\n    let p = b.byte_add(8);\n    let q = p;\n    a.store_word(q.raw(), 0);\n    0\n}\n",
        );
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].ident, "q");
        assert_eq!(h[0].sink, "store_word");
    }

    #[test]
    fn rebinding_from_clean_rhs_clears() {
        let h = hits(
            "fn f(a: &Arena, b: Addr, ok: Addr) -> u64 {\n    let p = b.byte_add(8);\n    let p = ok;\n    a.load_word(p.raw())\n}\n",
        );
        assert!(h.is_empty(), "{h:?}");
    }
}
