//! The `atomics-order` rule family: memory-ordering discipline for the
//! lock-free core.
//!
//! An *atomic class* is a struct field or `static` of `std::sync::atomic`
//! type (`AtomicU64`, `AtomicBool`, ...); like lock classes, they are
//! keyed by name, so two structs sharing a field name merge — an
//! over-approximation that has not mattered in this tree.
//!
//! Three sub-rules:
//!
//! * `atomics-order` — a `Relaxed` store/RMW-write to a class some other
//!   site reads with `Acquire`/`SeqCst` is a broken release-publish edge
//!   (the reader synchronizes with nothing) — unless the class has a
//!   release-side write elsewhere, the `Arc::clone` idiom where only the
//!   decrement publishes. A `Relaxed` `fetch_sub` whose result gates a
//!   zero/one check is a refcount decrement whose free can race in-flight
//!   accesses. Both are flagged, the former cross-referencing the
//!   acquire-side site.
//! * `atomics-order-cas` — `compare_exchange`/`compare_exchange_weak`
//!   failure orderings must be loads (`Release`/`AcqRel` there panic at
//!   runtime) and must not be stronger than the success ordering.
//! * `atomics-order-comment` — every non-`Relaxed` ordering (and every
//!   fence) carries a `// ORDER:` justification comment, same line or the
//!   comment block above the statement — the atomic twin of `// SAFETY:`.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::is_ident_char;
use crate::{allows, is_test_path, path_under, rule_allows, scope, Config, SourceFile, Violation};

/// `std::sync::atomic` type names that define an atomic class.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
];

/// Method patterns that write an atomic (single-ordering forms).
const WRITE_OPS: &[&str] = &[
    ".store(",
    ".swap(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
];

/// CAS patterns (success + failure orderings). `_weak` first so the
/// non-weak pattern does not also match inside it.
const CAS_OPS: &[&str] = &[".compare_exchange_weak(", ".compare_exchange("];

/// A memory ordering, ranked by strength (`Acquire` and `Release` are
/// incomparable in the model; for the failure-vs-success check they share
/// a rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ord {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Ord {
    fn rank(self) -> u8 {
        match self {
            Ord::Relaxed => 0,
            Ord::Acquire | Ord::Release => 1,
            Ord::AcqRel => 2,
            Ord::SeqCst => 3,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Ord::Relaxed => "Relaxed",
            Ord::Acquire => "Acquire",
            Ord::Release => "Release",
            Ord::AcqRel => "AcqRel",
            Ord::SeqCst => "SeqCst",
        }
    }
}

/// `Ordering::X` tokens a line must justify with `// ORDER:`.
const NON_RELAXED: &[&str] =
    &["Ordering::Acquire", "Ordering::Release", "Ordering::AcqRel", "Ordering::SeqCst"];

pub(crate) fn check(cfg: &Config, files: &[SourceFile], out: &mut Vec<Violation>) {
    let classes = atomic_classes(cfg, files);
    let readers = acquire_readers(cfg, files, &classes);
    let releasers = release_writers(cfg, files, &classes);
    for f in files {
        if path_under(&f.rel, &cfg.atomics_exempt) || is_test_path(&f.rel) {
            continue;
        }
        for (i, l) in f.lines.iter().enumerate() {
            if l.in_test {
                continue;
            }
            check_order_comment(cfg, f, i, out);
            check_relaxed_writes(cfg, f, i, &classes, &readers, &releasers, out);
            check_cas(cfg, f, i, out);
        }
    }
}

/// Collects atomic-class names: struct fields and `static` items of
/// `std::sync::atomic` type.
fn atomic_classes(cfg: &Config, files: &[SourceFile]) -> BTreeSet<String> {
    let mut classes = BTreeSet::new();
    for f in files {
        if path_under(&f.rel, &cfg.atomics_exempt) || is_test_path(&f.rel) {
            continue;
        }
        for region in scope::structs(&f.lines) {
            for l in &f.lines[region.start..=region.end.min(f.lines.len() - 1)] {
                if l.in_test || !is_atomic_type(&l.code) {
                    continue;
                }
                if let Some(name) = field_name(&l.code) {
                    classes.insert(name);
                }
            }
        }
        for l in &f.lines {
            if l.in_test || !is_atomic_type(&l.code) {
                continue;
            }
            if let Some(p) = crate::lexer::find_token(&l.code, "static") {
                let rest = l.code[p + 6..].trim_start();
                let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                if !name.is_empty() && l.code.contains(':') {
                    classes.insert(name);
                }
            }
        }
    }
    classes
}

fn is_atomic_type(code: &str) -> bool {
    ATOMIC_TYPES.iter().any(|t| crate::lexer::has_token(code, t))
}

/// `name` from a struct-field line like `pub refs: AtomicU32,`.
fn field_name(code: &str) -> Option<String> {
    let t = code.trim_start();
    let t = t.strip_prefix("pub").map_or(t, |r| {
        let r = r.trim_start();
        r.strip_prefix('(').and_then(|r| r.split_once(')')).map_or(r, |(_, rest)| rest.trim_start())
    });
    let (name, _) = t.split_once(':')?;
    let name = name.trim();
    if !name.is_empty() && name.chars().all(is_ident_char) {
        Some(name.to_string())
    } else {
        None
    }
}

/// First `Acquire`/`SeqCst` `.load(` site per class, as `file:line`.
fn acquire_readers(
    cfg: &Config,
    files: &[SourceFile],
    classes: &BTreeSet<String>,
) -> BTreeMap<String, String> {
    let mut readers: BTreeMap<String, String> = BTreeMap::new();
    for f in files {
        if path_under(&f.rel, &cfg.atomics_exempt) || is_test_path(&f.rel) {
            continue;
        }
        for (i, l) in f.lines.iter().enumerate() {
            if l.in_test {
                continue;
            }
            let mut from = 0;
            while let Some(p) = l.code[from..].find(".load(") {
                let p = from + p;
                from = p + ".load(".len();
                let Some(class) = receiver_ident(&l.code, p) else { continue };
                if !classes.contains(&class) {
                    continue;
                }
                let args = call_args(f, i, p + ".load(".len() - 1);
                let first = orderings(&args).first().copied();
                if first.is_some_and(|o| matches!(o, Ord::Acquire | Ord::SeqCst)) {
                    readers.entry(class).or_insert_with(|| format!("{}:{}", f.rel, i + 1));
                }
            }
        }
    }
    readers
}

/// Classes with at least one release-side write (`Release`/`AcqRel`/
/// `SeqCst` store, RMW, or CAS success ordering). A Relaxed write to such
/// a class is the `Arc::clone` idiom — the publish edge lives elsewhere —
/// and is not flagged.
fn release_writers(
    cfg: &Config,
    files: &[SourceFile],
    classes: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut releasers = BTreeSet::new();
    for f in files {
        if path_under(&f.rel, &cfg.atomics_exempt) || is_test_path(&f.rel) {
            continue;
        }
        for (i, l) in f.lines.iter().enumerate() {
            if l.in_test {
                continue;
            }
            for pat in WRITE_OPS.iter().chain(CAS_OPS) {
                let mut from = 0;
                while let Some(p) = l.code[from..].find(pat) {
                    let p = from + p;
                    from = p + pat.len();
                    let Some(class) = receiver_ident(&l.code, p) else { continue };
                    if !classes.contains(&class) {
                        continue;
                    }
                    let args = call_args(f, i, p + pat.len() - 1);
                    let first = orderings(&args).first().copied();
                    if first.is_some_and(|o| matches!(o, Ord::Release | Ord::AcqRel | Ord::SeqCst))
                    {
                        releasers.insert(class);
                    }
                }
            }
        }
    }
    releasers
}

/// `atomics-order`: Relaxed writes on acquire-read classes that have no
/// release-side writer anywhere, and Relaxed refcount decrements whose
/// result gates a zero/one check.
fn check_relaxed_writes(
    cfg: &Config,
    f: &SourceFile,
    i: usize,
    classes: &BTreeSet<String>,
    readers: &BTreeMap<String, String>,
    releasers: &BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    if rule_allows(cfg, "atomics-order", &f.rel) || allows(f, i, "atomics-order") {
        return;
    }
    let code = f.lines[i].code.as_str();
    for pat in WRITE_OPS.iter().chain(CAS_OPS) {
        let mut from = 0;
        while let Some(p) = code[from..].find(pat) {
            let p = from + p;
            from = p + pat.len();
            let args = call_args(f, i, p + pat.len() - 1);
            let ords = orderings(&args);
            // The write-side ordering: the single argument for stores and
            // RMWs, the success (first) ordering for CAS.
            let Some(&write_ord) = ords.first() else { continue };
            let op = pat.trim_start_matches('.').trim_end_matches('(');
            let next = f.lines.get(i + 1).map_or("", |l| l.code.as_str());
            // Refcount discipline: a Relaxed decrement whose result is
            // compared against the last-reference values frees memory
            // other threads may still be touching.
            if *pat == ".fetch_sub(" && write_ord == Ord::Relaxed && gates_refcount(code, next) {
                out.push(Violation {
                    rule: "atomics-order",
                    file: f.rel.clone(),
                    line: i + 1,
                    col: p + 2,
                    message: "Relaxed `fetch_sub` gates a last-reference check; the decrement \
                              must be `Release` (paired with an `Acquire` fence or load on the \
                              zero path) so the free cannot race in-flight accesses"
                        .into(),
                });
                continue;
            }
            if write_ord != Ord::Relaxed {
                continue;
            }
            let Some(class) = receiver_ident(code, p) else { continue };
            if !classes.contains(&class) || releasers.contains(&class) {
                continue;
            }
            if let Some(site) = readers.get(&class) {
                out.push(Violation {
                    rule: "atomics-order",
                    file: f.rel.clone(),
                    line: i + 1,
                    col: p + 2,
                    message: format!(
                        "Relaxed `{op}` on `{class}`, but `{class}` is read with an acquire \
                         ordering at {site} — the release-publish edge is missing, so the \
                         reader synchronizes with nothing"
                    ),
                });
            }
        }
    }
}

/// True when a `fetch_sub` result feeds a last-reference comparison on
/// the same or next line (`== 1`, `!= 1`, `== 0`, `> 1`, ...).
fn gates_refcount(code: &str, next: &str) -> bool {
    ["== 1", "!= 1", "== 0", "!= 0", "<= 1", "> 1"]
        .iter()
        .any(|cmp| code.contains(cmp) || next.contains(cmp))
}

/// `atomics-order-cas`: failure ordering must be a load ordering and no
/// stronger than the success ordering.
fn check_cas(cfg: &Config, f: &SourceFile, i: usize, out: &mut Vec<Violation>) {
    if rule_allows(cfg, "atomics-order-cas", &f.rel) || allows(f, i, "atomics-order-cas") {
        return;
    }
    let code = f.lines[i].code.as_str();
    for pat in CAS_OPS {
        let mut from = 0;
        while let Some(p) = code[from..].find(pat) {
            let p = from + p;
            from = p + pat.len();
            let args = call_args(f, i, p + pat.len() - 1);
            let ords = orderings(&args);
            let [success, failure] = ords[..] else { continue };
            if matches!(failure, Ord::Release | Ord::AcqRel) {
                out.push(Violation {
                    rule: "atomics-order-cas",
                    file: f.rel.clone(),
                    line: i + 1,
                    col: p + 2,
                    message: format!(
                        "`{}` failure ordering `{}` is not a load ordering (the failure path \
                         performs no store); use `Relaxed`, `Acquire`, or `SeqCst`",
                        pat.trim_start_matches('.').trim_end_matches('('),
                        failure.name()
                    ),
                });
            } else if failure.rank() > success.rank() {
                out.push(Violation {
                    rule: "atomics-order-cas",
                    file: f.rel.clone(),
                    line: i + 1,
                    col: p + 2,
                    message: format!(
                        "`{}` failure ordering `{}` is stronger than its success ordering \
                         `{}` — the success path needs at least the failure path's guarantees",
                        pat.trim_start_matches('.').trim_end_matches('('),
                        failure.name(),
                        success.name()
                    ),
                });
            }
        }
    }
}

/// `atomics-order-comment`: a non-Relaxed ordering token needs `ORDER:`
/// on its line or in the comment block above its statement.
fn check_order_comment(cfg: &Config, f: &SourceFile, i: usize, out: &mut Vec<Violation>) {
    if rule_allows(cfg, "atomics-order-comment", &f.rel) || allows(f, i, "atomics-order-comment") {
        return;
    }
    let code = f.lines[i].code.as_str();
    let Some(p) = NON_RELAXED.iter().filter_map(|t| code.find(t)).min() else { return };
    if !has_order_comment(f, i) {
        out.push(Violation {
            rule: "atomics-order-comment",
            file: f.rel.clone(),
            line: i + 1,
            col: p + 1,
            message: "non-Relaxed atomic ordering without a `// ORDER:` comment naming the \
                      release/acquire pairing it establishes"
                .into(),
        });
    }
}

/// True if `// ORDER:` covers line `i`: on the line itself, or in the
/// contiguous run of comment-only and statement-continuation lines above
/// it (a multi-line call's comment sits above the statement head).
fn has_order_comment(f: &SourceFile, i: usize) -> bool {
    if f.lines[i].comment.contains("ORDER:") {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let prev = &f.lines[j];
        if prev.comment.contains("ORDER:") {
            return true;
        }
        if prev.code.trim().is_empty() || continues(prev.code.trim_end()) {
            continue;
        }
        break;
    }
    false
}

/// True when the *next* line continues this line's statement or sits in
/// the block this line opens (unclosed call parens, a trailing binary
/// operator/comma/open-paren, or a block/match-arm opener — an `ORDER:`
/// comment above a `match`/`if` head covers the orderings inside it).
fn continues(code: &str) -> bool {
    let opens = code.chars().filter(|&c| c == '(').count();
    let closes = code.chars().filter(|&c| c == ')').count();
    opens > closes
        || code.ends_with(',')
        || code.ends_with('(')
        || code.ends_with('=')
        || code.ends_with("&&")
        || code.ends_with("||")
        || code.ends_with('.')
        || code.ends_with('{')
        || code.ends_with("=>")
}

/// The argument text of a call whose open paren sits at byte `open` of
/// line `i`, joined across up to 8 continuation lines and truncated at
/// the balancing close paren.
fn call_args(f: &SourceFile, i: usize, open: usize) -> String {
    let mut depth = 0i32;
    let mut args = String::new();
    for (n, l) in f.lines.iter().enumerate().skip(i).take(8) {
        let code = if n == i { &l.code[open..] } else { l.code.as_str() };
        for c in code.chars() {
            match c {
                '(' => {
                    depth += 1;
                    if depth == 1 {
                        continue;
                    }
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return args;
                    }
                }
                _ => {}
            }
            args.push(c);
        }
        args.push(' ');
    }
    args
}

/// Every `Ordering::X` token in `text`, in order.
fn orderings(text: &str) -> Vec<Ord> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = text[from..].find("Ordering::") {
        let p = from + p + "Ordering::".len();
        from = p;
        let name: String = text[p..].chars().take_while(|&c| is_ident_char(c)).collect();
        match name.as_str() {
            "Relaxed" => out.push(Ord::Relaxed),
            "Acquire" => out.push(Ord::Acquire),
            "Release" => out.push(Ord::Release),
            "AcqRel" => out.push(Ord::AcqRel),
            "SeqCst" => out.push(Ord::SeqCst),
            _ => {}
        }
    }
    out
}

/// Resolves the receiver identifier of a method call whose `.` sits at
/// byte `dot`, walking back through `?`, `(..)` argument lists, and
/// `[..]` index expressions: `self.buckets[i].fetch_add` → `buckets`.
fn receiver_ident(code: &str, dot: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut k = dot;
    loop {
        if k > 0 && bytes[k - 1] == b'?' {
            k -= 1;
            continue;
        }
        if k > 0 && (bytes[k - 1] == b')' || bytes[k - 1] == b']') {
            let (open, close) = if bytes[k - 1] == b')' { (b'(', b')') } else { (b'[', b']') };
            let mut depth = 0i32;
            let mut m = k;
            while m > 0 {
                m -= 1;
                if bytes[m] == close {
                    depth += 1;
                } else if bytes[m] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            if depth != 0 {
                return None;
            }
            k = m;
            continue;
        }
        break;
    }
    let end = k;
    while k > 0 && is_ident_char(bytes[k - 1] as char) {
        k -= 1;
    }
    if k == end {
        None
    } else {
        Some(code[k..end].to_string())
    }
}
