//! `addr-provenance`: per-function taint tracking for raw-born `Addr`
//! values (see [`crate::dataflow`]). A value born from
//! `Addr::from_raw`/`byte_add`/offset arithmetic must flow through
//! `translate()` or a bounds check before it reaches a raw memory
//! accessor.

use std::collections::BTreeSet;

use crate::{
    allows, dataflow, is_test_path, path_under, rule_allows, scope, Config, SourceFile, Violation,
};

pub(crate) fn check(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if path_under(&f.rel, &cfg.addr_exempt)
        || rule_allows(cfg, "addr-provenance", &f.rel)
        || is_test_path(&f.rel)
    {
        return;
    }
    // Nested functions are analyzed both on their own and as part of the
    // enclosing body; dedupe by site.
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for region in scope::functions(&f.lines) {
        for hit in dataflow::addr_taint(&f.lines, &region) {
            if f.lines[hit.line].in_test || allows(f, hit.line, "addr-provenance") {
                continue;
            }
            if seen.insert((hit.line, hit.col)) {
                out.push(Violation {
                    rule: "addr-provenance",
                    file: f.rel.clone(),
                    line: hit.line + 1,
                    col: hit.col,
                    message: format!(
                        "raw-born address `{}` reaches `{}` without passing translate() or a \
                         bounds check (the static twin of HeapFault::DanglingRelativeAddr)",
                        hit.ident, hit.sink
                    ),
                });
            }
        }
    }
}
