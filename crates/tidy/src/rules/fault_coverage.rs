//! `fault-coverage`: every `HeapFault` variant appears in at least one
//! test, so no corruption class the verifier can report goes unexercised.

use crate::lexer::{find_token, has_token, is_ident_char};
use crate::{allows, is_test_path, Config, SourceFile, Violation};

/// Extracts the variant names of `pub enum HeapFault` from the fault file.
fn fault_variants(f: &SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let Some(start) = f.lines.iter().position(|l| l.code.contains("enum HeapFault")) else {
        return out;
    };
    let mut depth = 0i32;
    let mut opened = false;
    for (i, l) in f.lines.iter().enumerate().skip(start) {
        // A variant line starts at enum depth (depth 1 before the line's
        // own braces, so multi-line `Variant {` headers still count).
        let depth_before = depth;
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if i > start && opened && depth_before == 1 {
            let t = l.code.trim();
            let ident: String = t.chars().take_while(|&c| is_ident_char(c)).collect();
            if !ident.is_empty()
                && ident.chars().next().is_some_and(char::is_uppercase)
                && t[ident.len()..].trim_start().starts_with(['{', '(', ','])
            {
                out.push((ident, i + 1));
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    out
}

pub(crate) fn check(cfg: &Config, files: &[SourceFile], out: &mut Vec<Violation>) {
    let Some(fault_rel) = &cfg.fault_file else { return };
    let Some(faults) = files.iter().find(|f| &f.rel == fault_rel) else { return };
    for (variant, line) in fault_variants(faults) {
        let covered = files.iter().any(|f| {
            let whole_file_is_test = is_test_path(&f.rel);
            f.lines
                .iter()
                .any(|l| (whole_file_is_test || l.in_test) && has_token(&l.code, &variant))
        });
        if !covered && !allows(faults, line - 1, "fault-coverage") {
            out.push(Violation {
                rule: "fault-coverage",
                file: faults.rel.clone(),
                line,
                col: find_token(&faults.lines[line - 1].code, &variant).map_or(1, |p| p + 1),
                message: format!(
                    "HeapFault::{variant} never appears in a test; add a test that \
                     provokes and asserts this fault"
                ),
            });
        }
    }
}
