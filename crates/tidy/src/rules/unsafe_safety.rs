//! `unsafe-safety`: every `unsafe` block/fn/impl carries a `// SAFETY:`
//! comment — same line, or the comment block immediately above (one block
//! may cover several consecutive unsafe items, e.g. `unsafe impl
//! Send`/`Sync`).

use crate::lexer::{find_token, has_token};
use crate::{allows, rule_allows, Config, SourceFile, Violation};

pub(crate) fn check(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if rule_allows(cfg, "unsafe-safety", &f.rel) {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        let Some(p) = find_token(&l.code, "unsafe") else { continue };
        if allows(f, i, "unsafe-safety") {
            continue;
        }
        let mut covered = l.comment.contains("SAFETY:");
        // Walk up through the contiguous run of comment-only lines and
        // earlier `unsafe` lines.
        let mut j = i;
        while !covered && j > 0 {
            j -= 1;
            let prev = &f.lines[j];
            let code = prev.code.trim();
            if code.is_empty() || has_token(code, "unsafe") {
                covered = prev.comment.contains("SAFETY:");
            } else {
                break;
            }
        }
        if !covered {
            out.push(Violation {
                rule: "unsafe-safety",
                file: f.rel.clone(),
                line: i + 1,
                col: p + 1,
                message: "`unsafe` without a `// SAFETY:` comment on or above the line".into(),
            });
        }
    }
}
