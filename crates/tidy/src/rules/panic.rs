//! `panic`: no `.unwrap()` / `.expect(` / `panic!` in non-test code of the
//! configured paths (`crates/core`, `crates/mheap`). Genuinely-infallible
//! sites carry a waiver tag naming the `panic` rule and a reason.

use crate::lexer::find_token;
use crate::{allows, is_test_path, path_under, rule_allows, Config, SourceFile, Violation};

pub(crate) fn check(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if !path_under(&f.rel, &cfg.panic_paths)
        || rule_allows(cfg, "panic", &f.rel)
        || is_test_path(&f.rel)
    {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        if l.in_test || allows(f, i, "panic") {
            continue;
        }
        let construct = if let Some(p) = l.code.find(".unwrap()") {
            Some(("unwrap()", p + 2))
        } else if let Some(p) = l.code.find(".expect(") {
            Some(("expect()", p + 2))
        } else {
            find_token(&l.code, "panic!").map(|p| ("panic!", p + 1))
        };
        if let Some((c, col)) = construct {
            out.push(Violation {
                rule: "panic",
                file: f.rel.clone(),
                line: i + 1,
                col,
                message: format!(
                    "{c} in non-test code; return a typed Error or tag the line with \
                     `// tidy:allow(panic, reason)` if genuinely infallible"
                ),
            });
        }
    }
}
