//! `metric-literal` + `dead-metric`: registry consistency. Every
//! `"skyway.*"` / `"mheap.*"` string literal outside `crates/obs` must be
//! an `obs::names` const reference, and every const in `obs::names` must
//! have at least one use site.

use crate::lexer::{find_token, has_token};
use crate::{allows, path_under, rule_allows, Config, SourceFile, Violation};

pub(crate) fn check_literal(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if path_under(&f.rel, &cfg.metric_exempt) || rule_allows(cfg, "metric-literal", &f.rel) {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        if allows(f, i, "metric-literal") {
            continue;
        }
        for s in &l.strings {
            if cfg.metric_prefixes.iter().any(|p| s.text.starts_with(p)) {
                out.push(Violation {
                    rule: "metric-literal",
                    file: f.rel.clone(),
                    line: i + 1,
                    col: s.col,
                    message: format!(
                        "metric name literal \"{}\" outside crates/obs; reference an \
                         obs::names const instead",
                        s.text
                    ),
                });
            }
        }
    }
}

/// Parses `pub const IDENT: &str = "metric.name";` definitions out of the
/// names file, returning `(ident, line, value)` triples.
fn metric_consts(cfg: &Config, f: &SourceFile) -> Vec<(String, usize, String)> {
    let mut out = Vec::new();
    for (i, l) in f.lines.iter().enumerate() {
        let code = l.code.trim();
        let Some(rest) = code.strip_prefix("pub const ") else { continue };
        let Some((ident, _)) = rest.split_once(':') else { continue };
        let Some(value) = l.strings.first() else { continue };
        if cfg.metric_prefixes.iter().any(|p| value.text.starts_with(p)) {
            out.push((ident.trim().to_string(), i + 1, value.text.clone()));
        }
    }
    out
}

pub(crate) fn check_dead(cfg: &Config, files: &[SourceFile], out: &mut Vec<Violation>) {
    let Some(names_rel) = &cfg.names_file else { return };
    let Some(names) = files.iter().find(|f| &f.rel == names_rel) else { return };
    for (ident, line, value) in metric_consts(cfg, names) {
        let used = files.iter().any(|f| {
            f.lines
                .iter()
                .enumerate()
                .any(|(i, l)| (f.rel != *names_rel || i + 1 != line) && has_token(&l.code, &ident))
        });
        if !used && !allows(names, line - 1, "dead-metric") {
            out.push(Violation {
                rule: "dead-metric",
                file: names.rel.clone(),
                line,
                col: find_token(&names.lines[line - 1].code, &ident).map_or(1, |p| p + 1),
                message: format!(
                    "metric const {ident} (\"{value}\") has no use site outside its definition"
                ),
            });
        }
    }
}
