//! `lock-order`: a workspace-wide lock-acquisition graph over guard
//! scopes.
//!
//! A *lock class* is a struct field of type `Mutex<..>` / `RwLock<..>`
//! (possibly nested, e.g. `Vec<Mutex<..>>`) or a getter function returning
//! one; classes are keyed by name, so two structs sharing a field name
//! merge — an over-approximation that has not mattered in this tree.
//! Within each function body, guard-producing calls (`.lock()`, `.read()`,
//! `.write()` with empty argument lists, resolved back to a known class
//! through `?`, index, and call chains) are tracked: a `let`-bound guard
//! lives until its brace depth closes or it is `drop`ped; a temporary
//! lives for its statement.
//!
//! Violations:
//! * acquiring class B while holding class A when some other code path
//!   acquires A while holding B (a cycle in the acquisition graph —
//!   potential deadlock);
//! * acquiring a class while already holding a guard of the same class
//!   (self-deadlock unless the instances are provably distinct);
//! * `guard-across-send`: holding any guard across a blocking bounded
//!   channel `.send(..)` / `.recv()` — the channel can park the thread
//!   indefinitely while the lock starves every other path.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::is_ident_char;
use crate::{allows, is_test_path, path_under, scope, Config, SourceFile, Violation};

/// A recorded acquisition edge site: (file, 1-based line, 1-based col).
type Site = (String, usize, usize);

pub(crate) fn check(cfg: &Config, files: &[SourceFile], out: &mut Vec<Violation>) {
    let classes = lock_classes(cfg, files);
    if classes.is_empty() {
        return;
    }
    let mut edges: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
    for f in files {
        if path_under(&f.rel, &cfg.lock_exempt) || is_test_path(&f.rel) {
            continue;
        }
        scan_file(f, &classes, &mut edges, out);
    }
    // Cycle pass: an edge A→B is a violation when B already reaches A.
    for ((a, b), sites) in &edges {
        if let Some(witness) = path_back(b, a, &edges) {
            for (file, line, col) in sites {
                out.push(Violation {
                    rule: "lock-order",
                    file: file.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "acquiring lock `{b}` while holding `{a}`, but `{a}` is acquired while \
                         `{b}` is held at {witness} — lock-order cycle, potential deadlock"
                    ),
                });
            }
        }
    }
}

/// Collects lock-class names: struct fields and getter returns of
/// `Mutex<..>` / `RwLock<..>` type.
fn lock_classes(cfg: &Config, files: &[SourceFile]) -> BTreeSet<String> {
    let mut classes = BTreeSet::new();
    for f in files {
        if path_under(&f.rel, &cfg.lock_exempt) || is_test_path(&f.rel) {
            continue;
        }
        for region in scope::structs(&f.lines) {
            for l in &f.lines[region.start..=region.end.min(f.lines.len() - 1)] {
                if l.in_test || !is_lock_type(&l.code) {
                    continue;
                }
                if let Some(name) = field_name(&l.code) {
                    classes.insert(name);
                }
            }
        }
        for l in &f.lines {
            if l.in_test {
                continue;
            }
            // Getter: `fn name(..) -> ..Mutex<..>..` on one line.
            if is_lock_type(&l.code) && l.code.contains("->") {
                if let Some(p) = crate::lexer::find_token(&l.code, "fn") {
                    let rest = l.code[p + 2..].trim_start();
                    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                    let arrow = l.code.find("->").unwrap_or(l.code.len());
                    if !name.is_empty() && is_lock_type(&l.code[arrow..]) {
                        classes.insert(name);
                    }
                }
            }
        }
    }
    classes
}

fn is_lock_type(code: &str) -> bool {
    code.contains("Mutex<") || code.contains("RwLock<")
}

/// `name` from a struct-field line like `pub views: Vec<Mutex<View>>,`.
fn field_name(code: &str) -> Option<String> {
    let t = code.trim_start();
    let t = t.strip_prefix("pub").map_or(t, |r| {
        let r = r.trim_start();
        r.strip_prefix('(').and_then(|r| r.split_once(')')).map_or(r, |(_, rest)| rest.trim_start())
    });
    let (name, _) = t.split_once(':')?;
    let name = name.trim();
    if !name.is_empty() && name.chars().all(is_ident_char) {
        Some(name.to_string())
    } else {
        None
    }
}

/// An active guard: binding name (None for a statement temporary), class,
/// and the end-of-line brace depth it was bound at.
struct Guard {
    name: Option<String>,
    class: String,
    depth: i32,
}

fn scan_file(
    f: &SourceFile,
    classes: &BTreeSet<String>,
    edges: &mut BTreeMap<(String, String), Vec<Site>>,
    out: &mut Vec<Violation>,
) {
    for region in scope::functions(&f.lines) {
        let depths = scope::end_depths(&f.lines, &region);
        let mut guards: Vec<Guard> = Vec::new();
        for i in region.start..=region.end.min(f.lines.len() - 1) {
            let l = &f.lines[i];
            let code = l.code.as_str();
            if l.in_test {
                continue;
            }
            let d = depths[i - region.start];
            // Explicit drops release a guard mid-scope.
            guards.retain(|g| {
                g.name.as_deref().is_none_or(|n| !code.contains(&format!("drop({n})")))
            });
            let waived = allows(f, i, "lock-order");
            for (pos, class) in acquisitions(code, classes) {
                for held in &guards {
                    if waived {
                        continue;
                    }
                    if held.class == class {
                        out.push(Violation {
                            rule: "lock-order",
                            file: f.rel.clone(),
                            line: i + 1,
                            col: pos + 1,
                            message: format!(
                                "acquiring lock `{class}` while a guard on `{class}` is already \
                                 held in this scope — self-deadlock unless the instances are \
                                 provably distinct"
                            ),
                        });
                    } else {
                        edges.entry((held.class.clone(), class.clone())).or_default().push((
                            f.rel.clone(),
                            i + 1,
                            pos + 1,
                        ));
                    }
                }
                guards.push(Guard { name: binding_name(code, pos), class, depth: d });
            }
            // Guard held across a blocking channel hand-off.
            if !guards.is_empty() && !waived {
                for pat in [".send(", ".recv()", ".recv_timeout("] {
                    if let Some(p) = code.find(pat) {
                        let held: Vec<&str> = guards.iter().map(|g| g.class.as_str()).collect();
                        out.push(Violation {
                            rule: "lock-order",
                            file: f.rel.clone(),
                            line: i + 1,
                            col: p + 2,
                            message: format!(
                                "guard on `{}` held across blocking channel `{}`; release the \
                                 lock before parking the thread (guard-across-send)",
                                held.join("`, `"),
                                pat.trim_end_matches('(')
                            ),
                        });
                    }
                }
            }
            // Statement temporaries die with their line; bound guards die
            // when their depth closes.
            guards.retain(|g| g.name.is_some() && d >= g.depth);
        }
    }
}

/// Guard-producing calls on a line: `(column of receiver's dot, class)`.
fn acquisitions(code: &str, classes: &BTreeSet<String>) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for pat in [".lock()", ".read()", ".write()"] {
        let mut from = 0;
        while let Some(p) = code[from..].find(pat) {
            let p = from + p;
            from = p + pat.len();
            if let Some(class) = receiver_ident(code, p) {
                if classes.contains(&class) {
                    out.push((p, class));
                }
            }
        }
    }
    out.sort();
    out
}

/// Resolves the receiver identifier of a method call whose `.` sits at
/// byte `dot`, walking back through `?`, `(..)` call argument lists, and
/// `[..]` index expressions: `self.view(node)?.lock()` → `view`.
fn receiver_ident(code: &str, dot: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut k = dot;
    loop {
        if k > 0 && bytes[k - 1] == b'?' {
            k -= 1;
            continue;
        }
        if k > 0 && (bytes[k - 1] == b')' || bytes[k - 1] == b']') {
            let (open, close) = if bytes[k - 1] == b')' { (b'(', b')') } else { (b'[', b']') };
            let mut depth = 0i32;
            let mut m = k;
            while m > 0 {
                m -= 1;
                if bytes[m] == close {
                    depth += 1;
                } else if bytes[m] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            if depth != 0 {
                return None;
            }
            k = m;
            continue;
        }
        break;
    }
    let end = k;
    while k > 0 && is_ident_char(bytes[k - 1] as char) {
        k -= 1;
    }
    if k == end {
        None
    } else {
        Some(code[k..end].to_string())
    }
}

/// `let`-binding name for an acquisition at `pos`, if the line binds it.
fn binding_name(code: &str, pos: usize) -> Option<String> {
    let let_pos = crate::lexer::find_token(code, "let")?;
    let eq = code.find('=')?;
    if pos < eq {
        return None;
    }
    crate::dataflow::pattern_idents(&code[let_pos + 3..eq]).into_iter().next()
}

/// If `to` is reachable from `from` in the edge graph, returns the site
/// of the path's first hop (for a 2-cycle, exactly the opposing
/// acquisition) rendered as `file:line`.
fn path_back(
    from: &str,
    to: &str,
    edges: &BTreeMap<(String, String), Vec<Site>>,
) -> Option<String> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: Vec<&str> = vec![from];
    let mut qi = 0;
    while qi < queue.len() {
        let cur = queue[qi];
        qi += 1;
        for (a, b) in edges.keys() {
            if a == cur && b != from && !parent.contains_key(b.as_str()) {
                parent.insert(b, cur);
                if b == to {
                    let mut hop: &str = to;
                    while parent.get(hop).copied() != Some(from) {
                        hop = parent.get(hop).copied()?;
                    }
                    let site =
                        edges.get(&(from.to_string(), hop.to_string())).and_then(|s| s.first())?;
                    return Some(format!("{}:{}", site.0, site.1));
                }
                queue.push(b);
            }
        }
    }
    None
}
