//! `addr-cast`: no raw integer casts on lines handling `Addr` values
//! outside the representation-owning modules (`mheap::layout`,
//! `mheap::mem`). Mixing absolute heap addresses and relative buffer
//! addresses is the §3.3 bug class the paper is about; a bare `as u64` /
//! `as usize` next to an `Addr` is how such mixups are born.

use crate::lexer::{find_int_cast, has_token};
use crate::{allows, is_test_path, path_under, rule_allows, Config, SourceFile, Violation};

pub(crate) fn check(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if path_under(&f.rel, &cfg.addr_exempt)
        || rule_allows(cfg, "addr-cast", &f.rel)
        || is_test_path(&f.rel)
    {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        if l.in_test || allows(f, i, "addr-cast") {
            continue;
        }
        if has_token(&l.code, "Addr") {
            if let Some(p) = find_int_cast(&l.code) {
                out.push(Violation {
                    rule: "addr-cast",
                    file: f.rel.clone(),
                    line: i + 1,
                    col: p + 1,
                    message: "raw integer cast on a line handling an Addr value; use the typed \
                              helpers (Addr::raw, Addr::from_raw, Addr::byte_add, \
                              Addr::offset_from)"
                        .into(),
                });
            }
        }
    }
}
