//! One module per rule family. Per-file rules take a single
//! [`crate::SourceFile`]; cross-file rules (`dead-metric`,
//! `fault-coverage`, `lock-order`) take the whole set, since their
//! evidence spans the tree.

pub mod addr_cast;
pub mod addr_provenance;
pub mod atomics_order;
pub mod checked_arith;
pub mod fault_coverage;
pub mod lock_order;
pub mod metrics;
pub mod panic;
pub mod unsafe_safety;
