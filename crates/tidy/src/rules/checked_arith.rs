//! `checked-arith`: size/offset arithmetic in the configured paths
//! (`mheap::layout`, `mheap::mem`) must use `checked_*` / explicit
//! `wrapping_*`, never bare `+` / `*`. These modules own the address
//! representation; a silent overflow there corrupts every downstream
//! address computation.
//!
//! Lines already using a `checked_` / `wrapping_` / `saturating_` /
//! `overflowing_` helper are exempt (the bare operator on such a line is
//! invariably the documented-impossible remainder, e.g. the `& !7` mask
//! after an overflow `debug_assert!`).

use crate::{allows, is_test_path, path_under, rule_allows, Config, SourceFile, Violation};

const EXEMPT_HELPERS: &[&str] = &["checked_", "wrapping_", "saturating_", "overflowing_"];

pub(crate) fn check(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if !path_under(&f.rel, &cfg.arith_paths)
        || rule_allows(cfg, "checked-arith", &f.rel)
        || is_test_path(&f.rel)
    {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        if l.in_test
            || allows(f, i, "checked-arith")
            || EXEMPT_HELPERS.iter().any(|h| l.code.contains(h))
        {
            continue;
        }
        for (col, op) in bare_ops(&l.code) {
            out.push(Violation {
                rule: "checked-arith",
                file: f.rel.clone(),
                line: i + 1,
                col,
                message: format!(
                    "bare `{op}` in size/offset arithmetic; use checked_*/wrapping_* (with a \
                     debug_assert! naming why overflow is impossible), or waive with a reason"
                ),
            });
        }
    }
}

/// 1-based columns of bare binary `+` / `*` operators on a code line.
/// Trait bounds (`T: A + B`), lifetimes (`+ 'a`), `+ ?Sized`, prefix
/// derefs, and raw-pointer types (`*const T`, `*mut T`) are excluded.
fn bare_ops(code: &str) -> Vec<(usize, char)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (k, &b) in bytes.iter().enumerate() {
        let op = match b {
            b'+' => '+',
            b'*' => '*',
            _ => continue,
        };
        // Binary position: the previous non-space must end an operand.
        let prev = code[..k].trim_end().chars().next_back();
        let binary =
            matches!(prev, Some(c) if crate::lexer::is_ident_char(c) || c == ')' || c == ']');
        if !binary {
            continue;
        }
        // Right-hand side, skipping the `=` of a compound assignment.
        let mut rest = &code[k + 1..];
        if let Some(stripped) = rest.strip_prefix('=') {
            rest = stripped;
        }
        let rest = rest.trim_start();
        let next = rest.chars().next();
        if op == '+' {
            // `T: Send + Sync`, `+ 'a`, `+ ?Sized` are type syntax.
            if matches!(next, Some(c) if c.is_uppercase() || c == '\'' || c == '?') {
                continue;
            }
        } else {
            // `as *const T` / `*mut T` are raw-pointer types.
            if rest.starts_with("const ") || rest.starts_with("mut ") {
                continue;
            }
        }
        out.push((k + 1, op));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_ops_classifies_operator_positions() {
        assert_eq!(bare_ops("let x = a + b;"), vec![(11, '+')]);
        assert_eq!(bare_ops("let x = n * 8;"), vec![(11, '*')]);
        assert_eq!(bare_ops("total += len;"), vec![(7, '+')]);
        assert!(bare_ops("fn f<T: Copy + Default>()").is_empty());
        assert!(bare_ops("impl Iterator<Item = u8> + 'a").is_empty());
        assert!(bare_ops("x as *const u64").is_empty());
        assert!(bare_ops("let y = *ptr;").is_empty());
        assert!(bare_ops("let m = (n - 1) & !7;").is_empty());
    }
}
