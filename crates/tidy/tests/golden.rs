//! Golden tests: each fixture file provokes exactly its rule at an exact
//! file/line, the `--json` output carries those coordinates, and — the
//! real CI gate — the actual workspace tree comes back clean.

use std::collections::BTreeMap;
use std::path::PathBuf;

use tidy::{run, to_json, Config, Violation};

/// A config scanning only the fixtures directory, with every policy path
/// pointed at the fixture equivalents.
fn fixture_config() -> Config {
    Config {
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures"),
        scan_dirs: vec![String::new()],
        exclude: vec![],
        addr_exempt: vec![],
        panic_paths: vec![String::new()],
        metric_exempt: vec![],
        metric_prefixes: vec!["skyway.".into(), "mheap.".into()],
        names_file: Some("names.rs".into()),
        fault_file: Some("faults.rs".into()),
        allow: BTreeMap::new(),
    }
}

fn fixture_violations() -> Vec<Violation> {
    run(&fixture_config()).expect("fixture scan").violations
}

#[track_caller]
fn assert_fired(violations: &[Violation], rule: &str, file: &str, line: usize) {
    assert!(
        violations.iter().any(|v| v.rule == rule && v.file == file && v.line == line),
        "expected [{rule}] at {file}:{line}; got: {violations:#?}"
    );
}

#[test]
fn addr_cast_fires_at_exact_line() {
    let vs = fixture_violations();
    assert_fired(&vs, "addr-cast", "addr_cast.rs", 6);
    assert_eq!(vs.iter().filter(|v| v.rule == "addr-cast").count(), 1, "{vs:#?}");
}

#[test]
fn unsafe_safety_fires_at_exact_line() {
    let vs = fixture_violations();
    assert_fired(&vs, "unsafe-safety", "unsafe_no_safety.rs", 11);
    assert_eq!(vs.iter().filter(|v| v.rule == "unsafe-safety").count(), 1, "{vs:#?}");
}

#[test]
fn panic_fires_on_unwrap_expect_and_panic_only() {
    let vs = fixture_violations();
    assert_fired(&vs, "panic", "panic_unwrap.rs", 5);
    assert_fired(&vs, "panic", "panic_unwrap.rs", 6);
    assert_fired(&vs, "panic", "panic_unwrap.rs", 7);
    // The tagged line, unwrap_or, and the #[cfg(test)] module stay quiet.
    assert_eq!(vs.iter().filter(|v| v.rule == "panic").count(), 3, "{vs:#?}");
}

#[test]
fn metric_literal_fires_per_literal() {
    let vs = fixture_violations();
    assert_fired(&vs, "metric-literal", "metric_literal.rs", 5);
    assert_fired(&vs, "metric-literal", "metric_literal.rs", 6);
    let count =
        vs.iter().filter(|v| v.rule == "metric-literal" && v.file == "metric_literal.rs").count();
    assert_eq!(count, 2, "{vs:#?}");
}

#[test]
fn dead_metric_fires_on_unused_const_only() {
    let vs = fixture_violations();
    assert_fired(&vs, "dead-metric", "names.rs", 5);
    assert_eq!(vs.iter().filter(|v| v.rule == "dead-metric").count(), 1, "{vs:#?}");
}

#[test]
fn fault_coverage_fires_on_untested_variant_only() {
    let vs = fixture_violations();
    assert_fired(&vs, "fault-coverage", "faults.rs", 6);
    assert_eq!(vs.iter().filter(|v| v.rule == "fault-coverage").count(), 1, "{vs:#?}");
}

#[test]
fn json_output_carries_rule_file_line() {
    let report = run(&fixture_config()).expect("fixture scan");
    let json = to_json(&report);
    assert!(json.contains("{\"rule\": \"addr-cast\", \"file\": \"addr_cast.rs\", \"line\": 6,"));
    assert!(json.contains("{\"rule\": \"fault-coverage\", \"file\": \"faults.rs\", \"line\": 6,"));
    assert!(json.contains(&format!("\"violation_count\": {}", report.violations.len())));
}

#[test]
fn per_rule_allowlists_suppress_by_path_prefix() {
    let mut cfg = fixture_config();
    cfg.allow.insert("panic".into(), vec!["panic_unwrap.rs".into()]);
    let vs = run(&cfg).expect("fixture scan").violations;
    assert!(vs.iter().all(|v| v.rule != "panic"), "{vs:#?}");
    // Other rules are unaffected.
    assert_fired(&vs, "addr-cast", "addr_cast.rs", 6);
}

/// The gate itself: the real workspace must scan clean. This is the same
/// check CI runs via `cargo run -p tidy -- --json`.
#[test]
fn workspace_tree_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let mut cfg = Config::for_workspace(root.clone());
    cfg.load_allowlists(&root.join("tidy.toml")).expect("tidy.toml parses");
    let report = run(&cfg).expect("workspace scan");
    assert!(report.files_checked > 50, "scanned only {} files", report.files_checked);
    assert!(
        report.violations.is_empty(),
        "workspace tree has tidy violations:\n{}",
        to_json(&report)
    );
}
