//! Golden tests: each fixture file provokes exactly its rule at an exact
//! file/line, the `--json`/`--sarif` output carries those coordinates, and
//! — the real CI gate — the actual workspace tree comes back clean.

use std::path::PathBuf;

use tidy::{run, to_json, to_sarif, Config, Violation};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// A config scanning only the fixtures directory, with every policy path
/// pointed at the fixture equivalents.
fn fixture_config() -> Config {
    Config::for_fixtures(fixtures_root())
}

fn fixture_violations() -> Vec<Violation> {
    run(&fixture_config()).expect("fixture scan").violations
}

#[track_caller]
fn assert_fired(violations: &[Violation], rule: &str, file: &str, line: usize) {
    assert!(
        violations.iter().any(|v| v.rule == rule && v.file == file && v.line == line),
        "expected [{rule}] at {file}:{line}; got: {violations:#?}"
    );
}

#[test]
fn addr_cast_fires_at_exact_line() {
    let vs = fixture_violations();
    assert_fired(&vs, "addr-cast", "addr_cast.rs", 6);
    assert_eq!(vs.iter().filter(|v| v.rule == "addr-cast").count(), 1, "{vs:#?}");
}

#[test]
fn unsafe_safety_fires_at_exact_line() {
    let vs = fixture_violations();
    assert_fired(&vs, "unsafe-safety", "unsafe_no_safety.rs", 11);
    assert_eq!(vs.iter().filter(|v| v.rule == "unsafe-safety").count(), 1, "{vs:#?}");
}

#[test]
fn panic_fires_on_unwrap_expect_and_panic_only() {
    let vs = fixture_violations();
    assert_fired(&vs, "panic", "panic_unwrap.rs", 5);
    assert_fired(&vs, "panic", "panic_unwrap.rs", 6);
    assert_fired(&vs, "panic", "panic_unwrap.rs", 7);
    // The tagged line, unwrap_or, and the #[cfg(test)] module stay quiet,
    // as do the tag-demonstration lines in allow_positions.rs.
    assert_eq!(vs.iter().filter(|v| v.rule == "panic").count(), 3, "{vs:#?}");
}

#[test]
fn metric_literal_fires_per_literal() {
    let vs = fixture_violations();
    assert_fired(&vs, "metric-literal", "metric_literal.rs", 5);
    assert_fired(&vs, "metric-literal", "metric_literal.rs", 6);
    // Span names are covered by the same rule via the "trace." prefix.
    assert_fired(&vs, "metric-literal", "metric_literal.rs", 7);
    let count =
        vs.iter().filter(|v| v.rule == "metric-literal" && v.file == "metric_literal.rs").count();
    assert_eq!(count, 3, "{vs:#?}");
}

#[test]
fn dead_metric_fires_on_unused_const_only() {
    let vs = fixture_violations();
    assert_fired(&vs, "dead-metric", "names.rs", 5);
    // An unused span-name const is just as dead as an unused metric const.
    assert_fired(&vs, "dead-metric", "names.rs", 7);
    assert_eq!(vs.iter().filter(|v| v.rule == "dead-metric").count(), 2, "{vs:#?}");
}

#[test]
fn fault_coverage_fires_on_untested_variant_only() {
    let vs = fixture_violations();
    assert_fired(&vs, "fault-coverage", "faults.rs", 6);
    assert_eq!(vs.iter().filter(|v| v.rule == "fault-coverage").count(), 1, "{vs:#?}");
}

#[test]
fn addr_provenance_fires_on_unsanitized_path_only() {
    let vs = fixture_violations();
    // `bad` derefs a byte_add-born Addr; the translated and
    // bounds-checked functions stay quiet.
    assert_fired(&vs, "addr-provenance", "addr_provenance.rs", 6);
    assert_eq!(vs.iter().filter(|v| v.rule == "addr-provenance").count(), 1, "{vs:#?}");
}

#[test]
fn lock_order_fires_on_cycle_and_guard_across_send() {
    let vs = fixture_violations();
    // Both sides of the ab/ba cycle fire, at the second acquisition.
    assert_fired(&vs, "lock-order", "lock_order.rs", 14);
    assert_fired(&vs, "lock-order", "lock_order.rs", 20);
    // The guard held across the channel send fires; `fine` stays quiet.
    assert_fired(&vs, "lock-order", "lock_order.rs", 26);
    assert_eq!(vs.iter().filter(|v| v.rule == "lock-order").count(), 3, "{vs:#?}");
    let cycle = vs
        .iter()
        .find(|v| v.rule == "lock-order" && v.line == 14)
        .expect("cycle violation present");
    assert!(
        cycle.message.contains("lock_order.rs:20"),
        "cycle message cross-references the opposing site: {}",
        cycle.message
    );
}

#[test]
fn atomics_order_fires_on_relaxed_publish_and_refcount() {
    let vs = fixture_violations();
    // The Relaxed store on the acquire-read flag fires, cross-referencing
    // the acquire site; the Relaxed refcount decrement fires on its own.
    assert_fired(&vs, "atomics-order", "atomics_order.rs", 14);
    assert_fired(&vs, "atomics-order", "atomics_order.rs", 24);
    assert_eq!(vs.iter().filter(|v| v.rule == "atomics-order").count(), 2, "{vs:#?}");
    let publish = vs
        .iter()
        .find(|v| v.rule == "atomics-order" && v.line == 14)
        .expect("publish violation present");
    assert!(
        publish.message.contains("atomics_order.rs:20"),
        "publish message cross-references the acquire-side load: {}",
        publish.message
    );
    let refcount = vs
        .iter()
        .find(|v| v.rule == "atomics-order" && v.line == 24)
        .expect("refcount violation present");
    assert!(refcount.message.contains("last-reference"), "{}", refcount.message);
}

#[test]
fn atomics_order_cas_fires_on_bad_failure_orderings_only() {
    let vs = fixture_violations();
    // Failure AcqRel is not a load ordering; failure Acquire with success
    // Relaxed is stronger than the success side. `fine` stays quiet.
    assert_fired(&vs, "atomics-order-cas", "atomics_order_cas.rs", 13);
    assert_fired(&vs, "atomics-order-cas", "atomics_order_cas.rs", 18);
    assert_eq!(vs.iter().filter(|v| v.rule == "atomics-order-cas").count(), 2, "{vs:#?}");
}

#[test]
fn atomics_order_comment_fires_on_bare_non_relaxed_sites_only() {
    let vs = fixture_violations();
    // The bare Release store and bare fence fire; the same-line-commented
    // Acquire load and the Relaxed store stay quiet.
    assert_fired(&vs, "atomics-order-comment", "atomics_order_comment.rs", 13);
    assert_fired(&vs, "atomics-order-comment", "atomics_order_comment.rs", 17);
    assert_eq!(vs.iter().filter(|v| v.rule == "atomics-order-comment").count(), 2, "{vs:#?}");
}

#[test]
fn checked_arith_fires_on_bare_ops_only() {
    let vs = fixture_violations();
    assert_fired(&vs, "checked-arith", "checked_arith.rs", 5);
    assert_fired(&vs, "checked-arith", "checked_arith.rs", 6);
    // checked_/wrapping_ lines, the mask, the tagged line, and the
    // trait-bound `+` stay quiet.
    assert_eq!(vs.iter().filter(|v| v.rule == "checked-arith").count(), 2, "{vs:#?}");
}

#[test]
fn allow_tag_on_line_or_line_above_suppresses() {
    let vs = fixture_violations();
    assert!(
        vs.iter().all(|v| v.file != "allow_positions.rs"),
        "both tag placements suppress: {vs:#?}"
    );
}

#[test]
fn unknown_rule_in_allow_tag_fails_the_run() {
    let mut cfg = fixture_config();
    cfg.root = fixtures_root().join("bad_allow/unknown");
    cfg.exclude = vec![];
    let err = run(&cfg).expect_err("unknown rule must fail the run");
    assert!(err.contains("unknown rule `no-such-rule`"), "{err}");
    assert!(err.contains("unknown_rule.rs:6"), "{err}");
}

#[test]
fn missing_reason_in_allow_tag_fails_the_run() {
    let mut cfg = fixture_config();
    cfg.root = fixtures_root().join("bad_allow/reason");
    cfg.exclude = vec![];
    let err = run(&cfg).expect_err("missing reason must fail the run");
    assert!(err.contains("non-empty reason"), "{err}");
    assert!(err.contains("empty_reason.rs:6"), "{err}");
}

#[test]
fn violations_are_sorted_and_carry_columns() {
    let vs = fixture_violations();
    let keys: Vec<_> = vs.iter().map(|v| (v.file.clone(), v.line, v.rule, v.col)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "violations are sorted by (file, line, rule, col)");
    assert!(vs.iter().all(|v| v.col >= 1), "every violation has a 1-based column");
}

#[test]
fn json_output_carries_rule_file_line_col() {
    let report = run(&fixture_config()).expect("fixture scan");
    let json = to_json(&report);
    assert!(json.contains("{\"rule\": \"addr-cast\", \"file\": \"addr_cast.rs\", \"line\": 6,"));
    assert!(json.contains("{\"rule\": \"fault-coverage\", \"file\": \"faults.rs\", \"line\": 6,"));
    assert!(json.contains("\"col\": "), "JSON carries the col field");
    assert!(json.contains(&format!("\"violation_count\": {}", report.violations.len())));
}

#[test]
fn sarif_output_carries_locations() {
    let report = run(&fixture_config()).expect("fixture scan");
    let sarif = to_sarif(&report);
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"ruleId\": \"addr-provenance\""));
    assert!(sarif.contains("\"uri\": \"lock_order.rs\""));
    assert!(sarif.contains("\"startLine\": 26"));
}

#[test]
fn per_rule_allowlists_suppress_by_path_prefix() {
    let mut cfg = fixture_config();
    cfg.allow.insert("panic".into(), vec!["panic_unwrap.rs".into()]);
    let vs = run(&cfg).expect("fixture scan").violations;
    assert!(vs.iter().all(|v| v.rule != "panic"), "{vs:#?}");
    // Other rules are unaffected.
    assert_fired(&vs, "addr-cast", "addr_cast.rs", 6);
}

/// The gate itself: the real workspace must scan clean under all twelve
/// rules. This is the same check CI runs via `cargo run -p tidy -- --json`.
#[test]
fn workspace_tree_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let mut cfg = Config::for_workspace(root.clone());
    cfg.load_allowlists(&root.join("tidy.toml")).expect("tidy.toml parses");
    let report = run(&cfg).expect("workspace scan");
    assert!(report.files_checked > 50, "scanned only {} files", report.files_checked);
    assert!(
        report.violations.is_empty(),
        "workspace tree has tidy violations:\n{}",
        to_json(&report)
    );
}
