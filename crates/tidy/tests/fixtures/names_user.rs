// Fixture: the use site that keeps FIXTURE_USED alive.

pub fn touch(reg: &Registry) {
    reg.counter(names::FIXTURE_USED).inc();
}
