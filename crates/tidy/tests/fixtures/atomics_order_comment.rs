// Fixture for the atomics-order-comment rule: the bare Release store
// (line 13) and the bare fence (line 17) fire; the same-line-commented
// Acquire load and the Relaxed store (which needs no justification) stay
// quiet.

pub struct Flag {
    set: AtomicBool,
    hits: AtomicU64,
}

impl Flag {
    pub fn bare(&self) {
        self.set.store(true, Ordering::Release);
    }

    pub fn bare_fence(&self) {
        fence(Ordering::Acquire);
    }

    pub fn covered(&self) -> bool {
        self.set.load(Ordering::Acquire) // ORDER: fixture — pairs with `bare`'s Release store.
    }

    pub fn relaxed_needs_no_comment(&self) {
        self.hits.store(0, Ordering::Relaxed);
    }
}
