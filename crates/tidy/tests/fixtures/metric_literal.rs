// Fixture: metric-literal must fire on lines 5, 6, and 7 — metric names
// and span names alike — not on const references or unrelated literals.

pub fn bad(reg: &Registry, tracer: &Tracer, ctx: TraceCtx) {
    reg.counter("skyway.fixture.bad_counter").inc();
    reg.gauge("mheap.fixture.bad_gauge").set(1);
    let _ = tracer.start("trace.fixture.bad_span", ctx, "node");
    reg.counter(names::GOOD).inc();
    let _ = tracer.start(names::FIXTURE_SPAN_USED, ctx, "node");
    reg.counter("unrelated.name").inc();
}
