// Fixture: metric-literal must fire on lines 5 and 6, not on the const
// reference or the unrelated literal.

pub fn bad(reg: &Registry) {
    reg.counter("skyway.fixture.bad_counter").inc();
    reg.gauge("mheap.fixture.bad_gauge").set(1);
    reg.counter(names::GOOD).inc();
    reg.counter("unrelated.name").inc();
}
