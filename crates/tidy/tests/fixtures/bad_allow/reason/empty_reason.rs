// Fixture (scanned only by the tag-validation tests; the main fixture
// config excludes bad_allow/): the tag below names a real rule but gives
// no reason, which must fail the whole run.

pub fn f(v: Option<u32>) -> u32 {
    v.unwrap_or(0) // tidy:allow(panic)
}
