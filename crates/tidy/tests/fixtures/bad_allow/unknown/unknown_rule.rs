// Fixture (scanned only by the tag-validation tests; the main fixture
// config excludes bad_allow/): the tag below names a rule that does not
// exist, which must fail the whole run.

pub fn f(v: Option<u32>) -> u32 {
    v.unwrap_or(0) // tidy:allow(no-such-rule, the rule id is misspelled)
}
