// Fixture for the atomics-order rule: `publish` writes the flag that
// `consume` reads with Acquire using only Relaxed (the release-publish
// edge is missing, line 14), and `release` drops a refcount with a
// Relaxed decrement that gates the last-reference check (line 24). The
// Acquire read and the commented lines stay quiet.

pub struct Shared {
    ready: AtomicBool,
    refs: AtomicU32,
}

impl Shared {
    pub fn publish(&self) {
        self.ready.store(true, Ordering::Relaxed);
    }

    pub fn consume(&self) -> bool {
        // ORDER: fixture — pairs with the Release publish `publish`
        // should be doing.
        self.ready.load(Ordering::Acquire)
    }

    pub fn release(&self) -> bool {
        self.refs.fetch_sub(1, Ordering::Relaxed) == 1
    }
}
