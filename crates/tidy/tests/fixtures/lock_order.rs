// Fixture for the lock-order rule: `ab` and `ba` acquire the two mutexes
// in opposite orders (a cycle — both edge sites fire), and
// `send_while_locked` holds a guard across a blocking channel send. `fine`
// drops its first guard before taking the second and stays quiet.

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn ab(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga ^ *gb
    }

    pub fn ba(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga ^ *gb
    }

    pub fn send_while_locked(&self, tx: &Sender<u64>) {
        let ga = self.a.lock();
        tx.send(*ga).ok();
    }

    pub fn fine(&self) -> u64 {
        let ga = self.a.lock();
        drop(ga);
        let gb = self.b.lock();
        *gb
    }
}
