// Fixture fault enum: fault-coverage must fire on Uncovered (line 6) —
// Covered is referenced from the test module below.

pub enum HeapFault {
    Covered { obj: u64 },
    Uncovered { obj: u64, card: u64 },
}

#[cfg(test)]
mod tests {
    #[test]
    fn provokes_covered() {
        let _ = HeapFault::Covered { obj: 0 };
    }
}
