// Fixture: unsafe-safety must fire on line 11 only. The first block is
// covered by a same-line comment, the second by the comment above (one
// comment may cover a contiguous run of unsafe items), the third has
// neither.

pub fn covered(p: *const u8) -> u8 {
    let a = unsafe { *p }; // SAFETY: fixture, p is valid by contract
    // SAFETY: fixture, p is valid by contract
    let b = unsafe { *p.add(1) };
    let sum = a + b;
    let c = unsafe { *p.add(2) };
    sum + c
}
