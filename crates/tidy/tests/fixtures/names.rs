// Fixture names registry: dead-metric must fire on FIXTURE_DEAD (line 5)
// and not on FIXTURE_USED (referenced from names_user.rs).

pub const FIXTURE_USED: &str = "skyway.fixture.used";
pub const FIXTURE_DEAD: &str = "skyway.fixture.dead";
pub const NOT_A_METRIC: &str = "plain string, exempt by prefix";
