// Fixture names registry: dead-metric must fire on FIXTURE_DEAD (line 5)
// and FIXTURE_SPAN_DEAD (line 7), not on the consts with use sites.

pub const FIXTURE_USED: &str = "skyway.fixture.used";
pub const FIXTURE_DEAD: &str = "skyway.fixture.dead";
pub const FIXTURE_SPAN_USED: &str = "trace.fixture.span_used";
pub const FIXTURE_SPAN_DEAD: &str = "trace.fixture.span_dead";
pub const NOT_A_METRIC: &str = "plain string, exempt by prefix";
