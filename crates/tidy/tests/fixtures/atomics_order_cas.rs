// Fixture for the atomics-order-cas rule: the first CAS uses a failure
// ordering that is not a load ordering (line 13), the second a failure
// ordering stronger than its success ordering (line 18). The well-formed
// CAS in `fine` stays quiet.

pub struct Slot {
    word: AtomicU64,
}

impl Slot {
    pub fn bad_failure_kind(&self, old: u64, new: u64) -> bool {
        // ORDER: fixture — the success half publishes the claim.
        self.word.compare_exchange(old, new, Ordering::AcqRel, Ordering::AcqRel).is_ok()
    }

    pub fn failure_stronger_than_success(&self, old: u64, new: u64) -> bool {
        // ORDER: fixture — a Relaxed claim needs no failure-side edge.
        self.word.compare_exchange(old, new, Ordering::Relaxed, Ordering::Acquire).is_ok()
    }

    pub fn fine(&self, old: u64, new: u64) -> bool {
        // ORDER: fixture — AcqRel claim publishes; Relaxed failure only
        // reseeds the retry loop.
        self.word.compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Relaxed).is_ok()
    }
}
