// Fixture for waiver-tag placement: a tag suppresses its own line, or the
// single line below when the tag sits alone on a comment line. This file
// must stay violation-free.

pub fn allowed(v: Option<u32>, w: Option<u32>) -> u32 {
    // tidy:allow(panic, fixture: tag on the comment line above covers the next line)
    let a = v.unwrap();
    let b = w.unwrap(); // tidy:allow(panic, fixture: tag on the same line)
    a.wrapping_add(b)
}
