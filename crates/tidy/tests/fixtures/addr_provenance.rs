// Fixture for the addr-provenance rule: a raw-born Addr reaching a deref
// sink fires; translated and bounds-checked paths stay quiet.

pub fn bad(arena: &Arena, base: Addr) -> Result<u64> {
    let p = base.byte_add(16);
    arena.load_word(p.raw())
}

pub fn good_translated(rx: &Receiver, arena: &Arena, logical: u64) -> Result<u64> {
    let abs = rx.translate(logical)?;
    arena.load_word(abs.raw())
}

pub fn good_bounds_checked(arena: &Arena, base: Addr, end: u64) -> Result<u64> {
    let p = Addr::from_raw(base.raw());
    if p.raw() >= end {
        return Err(Error::OutOfBounds);
    }
    arena.load_word(p.raw())
}
