// Fixture: panic must fire on lines 5, 6, and 7 — and not on the tagged
// line, the unwrap_or, or anything inside #[cfg(test)].

pub fn bad(v: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = v.unwrap();
    let b = r.expect("fixture");
    panic!("fixture");
    let _tagged = v.unwrap(); // tidy:allow(panic, fixture exception)
    let _fine = v.unwrap_or(0);
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
    }
}
