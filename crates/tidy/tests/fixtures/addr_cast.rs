// Fixture: addr-cast must fire on line 6 (raw cast on an Addr line) and
// stay quiet on the helper call and the tagged line.

pub fn bad(addr: Addr, x: usize) -> Addr {
    let _fine = Addr::from_raw(addr.raw() + 8);
    let bad = Addr(addr.raw() + x as u64);
    let _tagged = Addr(x as u64); // tidy:allow(addr-cast, fixture exception)
    bad
}
