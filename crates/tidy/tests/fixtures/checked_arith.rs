// Fixture for the checked-arith rule: the bare + and * fire; checked,
// wrapping, masked, tagged, and trait-bound lines stay quiet.

pub fn bad(off: u64, len: u64, n: u64) -> u64 {
    let end = off + len;
    let bytes = n * 8;
    let safe_add = off.checked_add(len);
    let wrapped = off.wrapping_mul(2);
    let masked = (len - 1) & !7;
    let tagged = off + 1; // tidy:allow(checked-arith, fixture: waived bare add)
    end ^ bytes ^ wrapped ^ masked ^ tagged ^ safe_add.unwrap_or(0)
}

pub fn generic<T: Copy + Default>(v: T) -> T {
    v
}
