//! Tests for the carrier streams (§3.3): file and socket transfer with
//! cost accounting through the simulated cluster.

use std::sync::Arc;

use mheap::stdlib::define_core_classes;
use mheap::{ClassPath, HeapConfig, Vm};
use simnet::{Category, Cluster, NodeId, SimConfig};
use skyway::{
    SendConfig, ShuffleController, SkywayFileInputStream, SkywayFileOutputStream,
    SkywaySocketInputStream, SkywaySocketOutputStream, TypeDirectory, UpdateRegistry,
};

fn setup() -> (Arc<TypeDirectory>, Vm, Vm, Cluster) {
    let cp = ClassPath::new();
    define_core_classes(&cp);
    let sender = Vm::new("n0", &HeapConfig::small(), Arc::clone(&cp)).unwrap();
    let receiver = Vm::new("n1", &HeapConfig::small(), cp).unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();
    (dir, sender, receiver, Cluster::new(2, SimConfig::default()))
}

#[test]
fn file_stream_roundtrip_with_io_accounting() {
    let (dir, mut sender, mut receiver, mut cluster) = setup();
    let controller = ShuffleController::new();
    let mut handles = Vec::new();
    for i in 0..10 {
        let s = sender.new_string(&format!("file record {i}")).unwrap();
        handles.push(sender.handle(s));
    }

    let mut out = SkywayFileOutputStream::create(
        &sender,
        &dir,
        NodeId(0),
        &controller,
        SendConfig::for_vm(&sender),
        "a.sort.result",
    )
    .unwrap();
    for h in &handles {
        out.write_object(sender.resolve(*h).unwrap()).unwrap();
    }
    let stats = out.close(&mut cluster).unwrap();
    assert_eq!(stats.objects, 20); // 10 strings + 10 char arrays
    assert!(cluster.profile(NodeId(0)).ns(Category::WriteIo) > 0);
    assert_eq!(cluster.disk_files(NodeId(0)).unwrap(), vec!["a.sort.result".to_owned()]);

    // The receiver pulls the file from its own disk in this test, so copy
    // it over (a shuffle fetch would do this through the network).
    let blob = cluster.disk_read_serve(NodeId(0), "a.sort.result").unwrap();
    cluster.disk_write(NodeId(1), "a.sort.result", blob).unwrap();
    let roots = SkywayFileInputStream::open_and_read(
        &mut receiver,
        &dir,
        NodeId(1),
        &mut cluster,
        "a.sort.result",
        None,
    )
    .unwrap();
    assert_eq!(roots.len(), 10);
    for (i, &r) in roots.iter().enumerate() {
        assert_eq!(receiver.read_string(r).unwrap(), format!("file record {i}"));
    }
    assert!(cluster.profile(NodeId(1)).ns(Category::ReadIo) > 0);
}

#[test]
fn missing_file_is_an_error() {
    let (dir, _sender, mut receiver, mut cluster) = setup();
    assert!(SkywayFileInputStream::open_and_read(
        &mut receiver,
        &dir,
        NodeId(1),
        &mut cluster,
        "nope.sort.result",
        None,
    )
    .is_err());
}

#[test]
fn socket_stream_roundtrip_counts_remote_bytes() {
    let (dir, mut sender, mut receiver, mut cluster) = setup();
    let controller = ShuffleController::new();
    let mut handles = Vec::new();
    for i in 0..25 {
        let s = sender.new_string(&format!("socket {i}")).unwrap();
        handles.push(sender.handle(s));
    }

    let cfg = SendConfig { chunk_limit: 256, ..SendConfig::for_vm(&sender) };
    let mut out =
        SkywaySocketOutputStream::connect(&sender, &dir, NodeId(0), NodeId(1), &controller, cfg)
            .unwrap();
    for h in &handles {
        let root = sender.resolve(*h).unwrap();
        out.write_object(root, &mut cluster).unwrap();
    }
    // Small chunks → some messages must already be in flight before close.
    assert!(cluster.pending(NodeId(0), NodeId(1)) > 0, "streaming should overlap traversal");
    out.close(&mut cluster).unwrap();

    let roots = SkywaySocketInputStream::read_all(
        &mut receiver,
        &dir,
        NodeId(1),
        NodeId(0),
        &mut cluster,
        None,
    )
    .unwrap();
    assert_eq!(roots.len(), 25);
    for (i, &r) in roots.iter().enumerate() {
        assert_eq!(receiver.read_string(r).unwrap(), format!("socket {i}"));
    }
    assert!(cluster.profile(NodeId(1)).bytes_remote > 0);
}

#[test]
fn socket_stream_applies_update_hooks() {
    let (dir, mut sender, mut receiver, mut cluster) = setup();
    let controller = ShuffleController::new();
    let i = sender.new_integer(9).unwrap();
    let hooks = UpdateRegistry::new();
    hooks.register_update(mheap::stdlib::INTEGER, |vm, obj| {
        vm.set_int(obj, "value", 10).map_err(skyway::Error::Heap)
    });

    let mut out = SkywaySocketOutputStream::connect(
        &sender,
        &dir,
        NodeId(0),
        NodeId(1),
        &controller,
        SendConfig::for_vm(&sender),
    )
    .unwrap();
    out.write_object(i, &mut cluster).unwrap();
    out.close(&mut cluster).unwrap();
    let roots = SkywaySocketInputStream::read_all(
        &mut receiver,
        &dir,
        NodeId(1),
        NodeId(0),
        &mut cluster,
        Some(&hooks),
    )
    .unwrap();
    assert_eq!(receiver.get_int(roots[0], "value").unwrap(), 10);
}
