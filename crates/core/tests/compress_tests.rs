//! Tests for the compressed wire format (the paper's future-work
//! extension): correctness of expansion, byte savings, and preserved
//! semantics (aliasing, hashcodes, cycles).

use std::sync::Arc;

use mheap::stdlib::define_core_classes;
use mheap::verify::assert_heap_ok;
use mheap::{Addr, ClassPath, HeapConfig, LayoutSpec, Vm};
use serlab::jsbs::{build_dataset, define_jsbs_classes, verify_media_content};
use serlab::Serializer;
use simnet::{NodeId, Profile};
use skyway::{ShuffleController, SkywaySerializer, TypeDirectory};

fn setup() -> (Arc<TypeDirectory>, Vm, Vm) {
    let cp = ClassPath::new();
    define_jsbs_classes(&cp);
    define_core_classes(&cp);
    let sender =
        Vm::new("n0", &HeapConfig::default().with_capacity(24 << 20), Arc::clone(&cp)).unwrap();
    let receiver = Vm::new("n1", &HeapConfig::default().with_capacity(24 << 20), cp).unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();
    (dir, sender, receiver)
}

fn serializer(dir: &Arc<TypeDirectory>, node: usize, compressed: bool) -> SkywaySerializer {
    SkywaySerializer::new(
        Arc::clone(dir),
        NodeId(node),
        Arc::new(ShuffleController::new()),
        LayoutSpec::SKYWAY,
    )
    .with_wire_compression(compressed)
}

#[test]
fn compressed_roundtrip_preserves_structure() {
    let (dir, mut sender, mut receiver) = setup();
    let handles = build_dataset(&mut sender, 20).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let tx = serializer(&dir, 0, true);
    let rx = serializer(&dir, 1, true);
    let mut p = Profile::new();
    let bytes = tx.serialize(&mut sender, &roots, &mut p).unwrap();
    let rebuilt = rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    assert_eq!(rebuilt.len(), 20);
    for (i, &mc) in rebuilt.iter().enumerate() {
        assert!(verify_media_content(&receiver, mc, i as u64).unwrap(), "record {i}");
    }
    // The expanded objects must form a well-formed heap.
    let rh: Vec<_> = rebuilt.iter().map(|&r| receiver.handle(r)).collect();
    let _ = rh;
    assert_heap_ok(&receiver);
}

#[test]
fn compressed_stream_is_smaller() {
    let (dir, mut sender, _) = setup();
    let handles = build_dataset(&mut sender, 100).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let plain = serializer(&dir, 0, false);
    let compressed = serializer(&dir, 0, true);
    let mut p = Profile::new();
    let plain_bytes = plain.serialize(&mut sender, &roots, &mut p).unwrap().len();
    let comp_bytes = compressed.serialize(&mut sender, &roots, &mut p).unwrap().len();
    assert!(
        (comp_bytes as f64) < plain_bytes as f64 * 0.90,
        "compressed {comp_bytes} not at least 10% under plain {plain_bytes}"
    );
}

#[test]
fn compressed_preserves_hashcodes_and_aliasing() {
    let (dir, mut sender, mut receiver) = setup();
    let s = sender.new_string("shared through compression").unwrap();
    let sh = sender.handle(s);
    let s1 = sender.resolve(sh).unwrap();
    let hash_before = sender.identity_hash(s1).unwrap();
    let a = sender.new_pair(s1, Addr::NULL).unwrap();
    let ah = sender.handle(a);
    let s1 = sender.resolve(sh).unwrap();
    let b = sender.new_pair(s1, Addr::NULL).unwrap();
    let bh = sender.handle(b);

    let tx = serializer(&dir, 0, true);
    let rx = serializer(&dir, 1, true);
    let mut p = Profile::new();
    let roots = vec![sender.resolve(ah).unwrap(), sender.resolve(bh).unwrap()];
    let bytes = tx.serialize(&mut sender, &roots, &mut p).unwrap();
    let rebuilt = rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    let fa = receiver.get_ref(rebuilt[0], "first").unwrap();
    let fb = receiver.get_ref(rebuilt[1], "first").unwrap();
    assert_eq!(fa, fb, "aliasing lost through compression");
    assert_eq!(receiver.identity_hash(fa).unwrap(), hash_before);
}

#[test]
fn compressed_cycles_roundtrip() {
    let cp = ClassPath::new();
    define_core_classes(&cp);
    cp.define(mheap::KlassDef::new(
        "CNode",
        None,
        vec![("id", mheap::FieldType::Prim(mheap::PrimType::Int)), ("next", mheap::FieldType::Ref)],
    ));
    let mut sender = Vm::new("n0", &HeapConfig::small(), Arc::clone(&cp)).unwrap();
    let mut receiver = Vm::new("n1", &HeapConfig::small(), cp).unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();

    let k = sender.load_class("CNode").unwrap();
    let a = sender.alloc_instance(k).unwrap();
    let ah = sender.handle(a);
    let b = sender.alloc_instance(k).unwrap();
    let a = sender.resolve(ah).unwrap();
    sender.set_int(a, "id", 1).unwrap();
    sender.set_int(b, "id", 2).unwrap();
    sender.set_ref(a, "next", b).unwrap();
    sender.set_ref(b, "next", a).unwrap();

    let tx = serializer(&dir, 0, true);
    let rx = serializer(&dir, 1, true);
    let mut p = Profile::new();
    let a = sender.resolve(ah).unwrap();
    let bytes = tx.serialize(&mut sender, &[a], &mut p).unwrap();
    let roots = rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    let ra = roots[0];
    let rb = receiver.get_ref(ra, "next").unwrap();
    assert_eq!(receiver.get_int(rb, "id").unwrap(), 2);
    assert_eq!(receiver.get_ref(rb, "next").unwrap(), ra);
}

#[test]
fn compressed_repeated_roots_use_backrefs() {
    let (dir, mut sender, mut receiver) = setup();
    let s = sender.new_string("twice").unwrap();
    let h = sender.handle(s);
    let tx = serializer(&dir, 0, true);
    let rx = serializer(&dir, 1, true);
    let mut p = Profile::new();
    let root = sender.resolve(h).unwrap();
    let bytes = tx.serialize(&mut sender, &[root, root], &mut p).unwrap();
    let roots = rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    assert_eq!(roots.len(), 2);
    assert_eq!(roots[0], roots[1]);
    assert_eq!(receiver.read_string(roots[0]).unwrap(), "twice");
}

#[test]
fn plain_receiver_rejects_compressed_stream_gracefully() {
    // A receiver that doesn't understand the compressed flag must not
    // misinterpret the stream: flags carry the bit, so a mismatched local
    // spec errors instead of corrupting the heap.
    let (dir, mut sender, _) = setup();
    let cp = ClassPath::new();
    define_jsbs_classes(&cp);
    let mut stock_receiver =
        Vm::new("stock", &HeapConfig { spec: LayoutSpec::STOCK, ..HeapConfig::small() }, cp)
            .unwrap();
    let handles = build_dataset(&mut sender, 2).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let tx = serializer(&dir, 0, true);
    let rx = serializer(&dir, 1, true); // declares SKYWAY local format
    let mut p = Profile::new();
    let bytes = tx.serialize(&mut sender, &roots, &mut p).unwrap();
    assert!(rx.deserialize(&mut stock_receiver, &bytes, &mut p).is_err());
}

#[test]
fn compression_works_with_small_chunks() {
    let (dir, mut sender, mut receiver) = setup();
    let handles = build_dataset(&mut sender, 30).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let tx = serializer(&dir, 0, true).with_chunk_limit(512);
    let rx = serializer(&dir, 1, true);
    let mut p = Profile::new();
    let bytes = tx.serialize(&mut sender, &roots, &mut p).unwrap();
    let rebuilt = rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    for (i, &mc) in rebuilt.iter().enumerate() {
        assert!(verify_media_content(&receiver, mc, i as u64).unwrap());
    }
}
