//! Interleaving models for the work-stealing transfer scheduler
//! (`sender::StealSet`): per-worker queues behind mutexes, local pops
//! racing steal-half grabs from a victim queue. The invariants the model
//! drives across schedules: a chunk is claimed by exactly one worker
//! (uniqueness), nothing is lost or duplicated in a steal hand-off
//! (conservation), and the claim loop terminates under every schedule the
//! sweep explores (the harness's step bound converts livelock into a
//! failure).

use std::sync::Arc;

use interleave::{model, Mutex};

/// A bounded claim loop mirroring `StealSet::next`: pop locally, then
/// steal the back half of the other worker's queue into our own.
fn run_worker(queues: &[Mutex<Vec<u64>>; 2], w: usize) -> Vec<u64> {
    let mut mine = Vec::new();
    for _ in 0..16 {
        let popped = queues[w].lock().pop();
        if let Some(chunk) = popped {
            mine.push(chunk);
            continue;
        }
        // Steal half (rounded up) from the victim, oldest first — the
        // guard is dropped before we touch our own queue, so the two
        // locks are never held together.
        let mut stolen = {
            let mut victim = queues[1 - w].lock();
            let keep = victim.len() / 2;
            victim.split_off(keep)
        };
        if stolen.is_empty() {
            break;
        }
        queues[w].lock().append(&mut stolen);
    }
    mine
}

model! {
    /// Two workers race pops against steal-half grabs: every chunk ends
    /// up claimed exactly once or still queued — never duplicated, never
    /// lost — under every explored schedule.
    fn steal_half_conserves_and_never_duplicates() {
        let queues = Arc::new([Mutex::new(vec![1u64, 2, 3]), Mutex::new(vec![4u64, 5, 6])]);
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let q2 = Arc::clone(&queues);
                interleave::spawn(move || run_worker(&q2, w))
            })
            .collect();
        let mut seen: Vec<u64> = handles.into_iter().flat_map(|h| h.join()).collect();
        // Anything still queued after both workers gave up is unclaimed
        // but must not have been cloned or dropped along the way.
        for q in queues.iter() {
            seen.extend(q.lock().iter().copied());
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6], "chunks lost or duplicated in steal hand-off");
    }

    /// A worker with an empty queue drains the victim to completion: the
    /// steal-then-pop loop claims the whole backlog.
    fn lone_worker_drains_via_steals() {
        let queues = Arc::new([Mutex::new(Vec::new()), Mutex::new(vec![7u64, 8, 9])]);
        let q2 = Arc::clone(&queues);
        let t = interleave::spawn(move || run_worker(&q2, 0));
        let mut mine = t.join();
        mine.extend(queues[0].lock().iter().copied());
        mine.extend(queues[1].lock().iter().copied());
        mine.sort_unstable();
        assert_eq!(mine, vec![7, 8, 9], "steal-half left chunks stranded");
    }
}
