//! End-to-end observability: a known three-object graph goes through a full
//! `SkywayObjectOutputStream` → `SkywayObjectInputStream` transfer plus a
//! receiver-side GC, all reporting into one private `obs::Registry`, and the
//! resulting snapshot carries exact counter values, flight-recorder events,
//! and survives a JSON round-trip.

use std::sync::Arc;

use mheap::stdlib::define_core_classes;
use mheap::{ClassPath, FieldType, HeapConfig, KlassDef, PrimType, Vm};
use simnet::{NodeId, Profile};
use skyway::sender::SendConfig;
use skyway::{ShuffleController, SkywayObjectInputStream, SkywayObjectOutputStream, TypeDirectory};

fn classpath() -> Arc<ClassPath> {
    let cp = ClassPath::new();
    define_core_classes(&cp);
    cp.define(KlassDef::new(
        "ObsNode",
        None,
        vec![
            ("tag", FieldType::Prim(PrimType::Long)),
            ("left", FieldType::Ref),
            ("right", FieldType::Ref),
        ],
    ));
    cp
}

/// Builds the known graph: a → {b, c}, b → c (c shared, reached twice).
fn build_graph(vm: &mut Vm) -> mheap::Addr {
    let k = vm.load_class("ObsNode").unwrap();
    let c = vm.alloc_instance(k).unwrap();
    vm.set_long(c, "tag", 3).unwrap();
    let hc = vm.handle(c);
    let b = vm.alloc_instance(k).unwrap();
    vm.set_long(b, "tag", 2).unwrap();
    let hb = vm.handle(b);
    let a = vm.alloc_instance(k).unwrap();
    vm.set_long(a, "tag", 1).unwrap();
    let ha = vm.handle(a);
    let (a, b, c) = (vm.resolve(ha).unwrap(), vm.resolve(hb).unwrap(), vm.resolve(hc).unwrap());
    vm.set_ref(a, "left", b).unwrap();
    vm.set_ref(a, "right", c).unwrap();
    let (b, c) = (vm.resolve(hb).unwrap(), vm.resolve(hc).unwrap());
    vm.set_ref(b, "left", c).unwrap();
    vm.resolve(ha).unwrap()
}

#[test]
fn full_transfer_reports_exact_metrics_and_roundtrips_as_json() {
    let reg = Arc::new(obs::Registry::new());
    let cp = classpath();
    let svm = Vm::new("tx", &HeapConfig::small().with_capacity(8 << 20), Arc::clone(&cp))
        .unwrap()
        .with_metrics(Arc::clone(&reg));
    let mut svm = svm;
    let mut rvm = Vm::new("rx", &HeapConfig::small().with_capacity(8 << 20), cp)
        .unwrap()
        .with_metrics(Arc::clone(&reg));
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&svm).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();

    let root = build_graph(&mut svm);
    let controller = ShuffleController::new();

    // --- send ---
    let mut out =
        SkywayObjectOutputStream::new(&svm, &dir, NodeId(0), &controller, SendConfig::for_vm(&svm))
            .unwrap()
            .with_metrics(Arc::clone(&reg));
    out.write_object(root).unwrap();
    let stream_out = out.finish();
    assert!(stream_out.stats.total_bytes > 0);

    // --- receive ---
    let mut input =
        SkywayObjectInputStream::new(&mut rvm, &dir, NodeId(1)).with_metrics(Arc::clone(&reg));
    for chunk in &stream_out.chunks {
        input.push_chunk(chunk).unwrap();
    }
    let (roots, rstats) = input.read_objects(None).unwrap();
    assert_eq!(roots.len(), 1);
    assert_eq!(rvm.get_long(roots[0], "tag").unwrap(), 1);

    // --- a GC on the receiver, into the same registry ---
    rvm.minor_gc().unwrap();

    // Bridge a simnet Profile through the registry too.
    let mut profile = Profile::new();
    profile.add_ns(simnet::Category::Ser, 1234);
    profile.bytes_remote = stream_out.stats.total_bytes;
    reg.put_profile("test.transfer", obs::ProfileSection::from(&profile));

    let snap = reg.snapshot();

    // Sender: exactly the 3 objects of the graph, all bytes accounted.
    assert_eq!(snap.counter(obs::names::SENDER_OBJECTS_VISITED), 3);
    assert_eq!(snap.counter(obs::names::SENDER_BYTES_CLONED), stream_out.stats.total_bytes);
    assert_eq!(snap.counter(obs::names::SENDER_CAS_CONFLICTS), 0);

    // Receiver: 3 objects, every ref slot fixed up (2 slots × 3 objects,
    // nulls included — the linear scan rewrites them all), the on-demand
    // class load observed, and the chunk accounting exact.
    assert_eq!(snap.counter(obs::names::RECEIVER_OBJECTS_ABSORBED), 3);
    assert_eq!(snap.counter(obs::names::RECEIVER_REF_FIXUPS), 6);
    assert_eq!(snap.counter(obs::names::RECEIVER_REF_FIXUPS), rstats.ref_fixups);
    assert!(snap.counter(obs::names::RECEIVER_CLASSES_LOADED) >= 1);
    assert_eq!(snap.counter(obs::names::RECEIVER_CHUNKS_ABSORBED), stream_out.chunks.len() as u64);
    assert_eq!(
        snap.counter(obs::names::RECEIVER_BYTES_ABSORBED),
        stream_out.chunks.iter().map(|c| c.len() as u64).sum::<u64>()
    );
    assert_eq!(snap.counter(obs::names::RECEIVER_CARDS_DIRTIED), rstats.cards_dirtied);
    assert!(rstats.cards_dirtied > 0);

    // GC: the receiver's minor collection landed in the same registry.
    assert_eq!(snap.counter(obs::names::GC_MINOR_GCS), 1);
    let pause = snap.histograms.get(obs::names::GC_PAUSE_NS).expect("gc pause histogram");
    assert_eq!(pause.count, 1);

    // Flight recorder saw the phases of the transfer.
    let kinds: Vec<&str> = snap.events.iter().map(|e| e.event.kind()).collect();
    assert!(kinds.contains(&"chunk_sent"), "events: {kinds:?}");
    assert!(kinds.contains(&"chunk_absorbed"), "events: {kinds:?}");
    assert!(kinds.contains(&"class_loaded"), "events: {kinds:?}");
    assert!(kinds.contains(&"gc_pause"), "events: {kinds:?}");

    // Profile bridge made it into the snapshot.
    let sect = snap.profiles.get("test.transfer").expect("profile section");
    assert_eq!(sect.ser_ns, 1234);
    assert_eq!(sect.bytes_remote, stream_out.stats.total_bytes);

    // --- JSON round-trip ---
    let json = serde_json::to_string_pretty(&snap).unwrap();
    assert!(json.contains(obs::names::SENDER_OBJECTS_VISITED));
    let back: obs::Snapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn scoped_registries_do_not_cross_talk() {
    let reg_a = Arc::new(obs::Registry::new());
    let reg_b = Arc::new(obs::Registry::new());
    reg_a.counter(obs::names::SENDER_OBJECTS_VISITED).add(7);
    assert_eq!(reg_b.snapshot().counter(obs::names::SENDER_OBJECTS_VISITED), 0);
    assert_eq!(reg_a.snapshot().counter(obs::names::SENDER_OBJECTS_VISITED), 7);
}
