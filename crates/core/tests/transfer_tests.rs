//! End-to-end Skyway transfer tests: correctness of the full
//! sender→chunks→receiver pipeline, hashcode preservation, aliasing,
//! threading, heterogeneous formats, GC interaction, and failure modes.

use std::sync::Arc;

use mheap::{Addr, ClassPath, HeapConfig, LayoutSpec, Vm};
use serlab::jsbs::{build_dataset, define_jsbs_classes, verify_media_content};
use serlab::Serializer;
use simnet::{NodeId, Profile};
use skyway::{
    scrub_baddrs, send_roots_parallel, ParallelConfig, SendConfig, ShuffleController,
    SkywayObjectInputStream, SkywayObjectOutputStream, SkywaySerializer, Tracking, TypeDirectory,
    UpdateRegistry,
};

fn classpath() -> Arc<ClassPath> {
    let cp = ClassPath::new();
    define_jsbs_classes(&cp);
    cp
}

fn setup_pair() -> (Arc<TypeDirectory>, Vm, Vm) {
    let cp = classpath();
    let sender =
        Vm::new("n0", &HeapConfig::default().with_capacity(24 << 20), Arc::clone(&cp)).unwrap();
    let receiver = Vm::new("n1", &HeapConfig::default().with_capacity(24 << 20), cp).unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();
    (dir, sender, receiver)
}

fn skyway_for(dir: &Arc<TypeDirectory>, node: usize) -> SkywaySerializer {
    SkywaySerializer::new(
        Arc::clone(dir),
        NodeId(node),
        Arc::new(ShuffleController::new()),
        LayoutSpec::SKYWAY,
    )
}

#[test]
fn jsbs_records_roundtrip() {
    let (dir, mut sender, mut receiver) = setup_pair();
    let handles = build_dataset(&mut sender, 30).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let sky_tx = skyway_for(&dir, 0);
    let sky_rx = skyway_for(&dir, 1);
    let mut p = Profile::new();
    let bytes = sky_tx.serialize(&mut sender, &roots, &mut p).unwrap();
    let rebuilt = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    assert_eq!(rebuilt.len(), 30);
    for (i, &mc) in rebuilt.iter().enumerate() {
        assert!(verify_media_content(&receiver, mc, i as u64).unwrap(), "record {i}");
    }
    // Skyway's defining property: zero S/D function invocations.
    assert_eq!(p.ser_invocations, 0);
    assert_eq!(p.deser_invocations, 0);
    assert!(p.objects_transferred > 0);
}

#[test]
fn identity_hashcode_survives_transfer() {
    // §4.2 Header Update: the cached hashcode rides the mark word across
    // the wire, so hash structures need no rehash.
    let (dir, mut sender, mut receiver) = setup_pair();
    let s = sender.new_string("hash me").unwrap();
    let h = sender.handle(s);
    let s = sender.resolve(h).unwrap();
    let hash_before = sender.identity_hash(s).unwrap();

    let sky_tx = skyway_for(&dir, 0);
    let sky_rx = skyway_for(&dir, 1);
    let mut p = Profile::new();
    let s = sender.resolve(h).unwrap();
    let bytes = sky_tx.serialize(&mut sender, &[s], &mut p).unwrap();
    let roots = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    let hash_after = receiver.identity_hash(roots[0]).unwrap();
    assert_eq!(hash_before, hash_after);
}

#[test]
fn transferred_hashmap_is_usable_without_rehash() {
    let (dir, mut sender, mut receiver) = setup_pair();
    let map = sender.new_hash_map(16).unwrap();
    let mh = sender.handle(map);
    let mut key_handles = Vec::new();
    for i in 0..40 {
        let k = sender.new_integer(i).unwrap();
        key_handles.push(sender.handle(k));
        let v = sender.new_integer(i * 3).unwrap();
        let map = sender.resolve(mh).unwrap();
        let k = sender.resolve(*key_handles.last().unwrap()).unwrap();
        sender.map_put(map, k, v).unwrap();
    }
    let sky_tx = skyway_for(&dir, 0);
    let sky_rx = skyway_for(&dir, 1);
    let mut p = Profile::new();
    let map = sender.resolve(mh).unwrap();
    let bytes = sky_tx.serialize(&mut sender, &[map], &mut p).unwrap();
    let roots = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    let rmap = roots[0];
    assert_eq!(receiver.map_len(rmap).unwrap(), 40);
    // The bucket layout is still consistent with the (preserved) hashes —
    // no rehash required.
    assert!(receiver.map_is_consistent(rmap).unwrap());
}

#[test]
fn aliasing_is_preserved_within_a_phase() {
    let (dir, mut sender, mut receiver) = setup_pair();
    let s = sender.new_string("shared").unwrap();
    let sh = sender.handle(s);
    let s1 = sender.resolve(sh).unwrap();
    let a = sender.new_pair(s1, Addr::NULL).unwrap();
    let ah = sender.handle(a);
    let s1 = sender.resolve(sh).unwrap();
    let b = sender.new_pair(s1, Addr::NULL).unwrap();
    let bh = sender.handle(b);

    let sky_tx = skyway_for(&dir, 0);
    let sky_rx = skyway_for(&dir, 1);
    let mut p = Profile::new();
    let roots = vec![sender.resolve(ah).unwrap(), sender.resolve(bh).unwrap()];
    let bytes = sky_tx.serialize(&mut sender, &roots, &mut p).unwrap();
    let rebuilt = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    let fa = receiver.get_ref(rebuilt[0], "first").unwrap();
    let fb = receiver.get_ref(rebuilt[1], "first").unwrap();
    assert_eq!(fa, fb, "shared object duplicated");
    assert_eq!(receiver.read_string(fa).unwrap(), "shared");
}

#[test]
fn repeated_root_uses_backward_reference() {
    let (dir, mut sender, mut receiver) = setup_pair();
    let s = sender.new_string("root twice").unwrap();
    let h = sender.handle(s);
    let controller = ShuffleController::new();
    let mut out = SkywayObjectOutputStream::new(
        &sender,
        &dir,
        NodeId(0),
        &controller,
        SendConfig::for_vm(&sender),
    )
    .unwrap();
    let root = sender.resolve(h).unwrap();
    out.write_object(root).unwrap();
    out.write_object(root).unwrap(); // already sent in this phase
    let stream = out.finish();

    let mut input = SkywayObjectInputStream::new(&mut receiver, &dir, NodeId(1));
    for c in &stream.chunks {
        input.push_chunk(c).unwrap();
    }
    let (roots, stats) = input.read_objects(None).unwrap();
    assert_eq!(roots.len(), 2);
    assert_eq!(roots[0], roots[1], "backward reference must alias the same object");
    // Only 2 objects (string + char array) crossed, not 4.
    assert_eq!(stats.objects, 2);
}

#[test]
fn cyclic_graphs_transfer() {
    let cp = classpath();
    cp.define(mheap::KlassDef::new(
        "Cyc",
        None,
        vec![("id", mheap::FieldType::Prim(mheap::PrimType::Int)), ("next", mheap::FieldType::Ref)],
    ));
    let mut sender = Vm::new("n0", &HeapConfig::small(), Arc::clone(&cp)).unwrap();
    let mut receiver = Vm::new("n1", &HeapConfig::small(), cp).unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();

    let k = sender.load_class("Cyc").unwrap();
    let a = sender.alloc_instance(k).unwrap();
    let ah = sender.handle(a);
    let b = sender.alloc_instance(k).unwrap();
    let a = sender.resolve(ah).unwrap();
    sender.set_int(a, "id", 1).unwrap();
    sender.set_int(b, "id", 2).unwrap();
    sender.set_ref(a, "next", b).unwrap();
    sender.set_ref(b, "next", a).unwrap();

    let sky_tx = skyway_for(&dir, 0);
    let sky_rx = skyway_for(&dir, 1);
    let mut p = Profile::new();
    let a = sender.resolve(ah).unwrap();
    let bytes = sky_tx.serialize(&mut sender, &[a], &mut p).unwrap();
    let roots = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    let ra = roots[0];
    let rb = receiver.get_ref(ra, "next").unwrap();
    assert_eq!(receiver.get_int(rb, "id").unwrap(), 2);
    assert_eq!(receiver.get_ref(rb, "next").unwrap(), ra, "cycle broken");
}

#[test]
fn streaming_small_chunks_roundtrip() {
    let (dir, mut sender, mut receiver) = setup_pair();
    let handles = build_dataset(&mut sender, 20).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    // Tiny 256-byte chunks force many flushes and cross-chunk references.
    let sky_tx = SkywaySerializer::new(
        Arc::clone(&dir),
        NodeId(0),
        Arc::new(ShuffleController::new()),
        LayoutSpec::SKYWAY,
    )
    .with_chunk_limit(256);
    let sky_rx = skyway_for(&dir, 1);
    let mut p = Profile::new();
    let bytes = sky_tx.serialize(&mut sender, &roots, &mut p).unwrap();
    let rebuilt = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    for (i, &mc) in rebuilt.iter().enumerate() {
        assert!(verify_media_content(&receiver, mc, i as u64).unwrap());
    }
}

#[test]
fn parallel_send_with_shared_objects() {
    let (dir, mut sender, mut receiver) = setup_pair();
    // Many pairs sharing one string → cross-thread contention on baddr.
    let s = sender.new_string("contended").unwrap();
    let sh = sender.handle(s);
    let mut pair_handles = Vec::new();
    for _ in 0..64 {
        let s = sender.resolve(sh).unwrap();
        let pr = sender.new_pair(s, Addr::NULL).unwrap();
        pair_handles.push(sender.handle(pr));
    }
    let roots: Vec<Addr> = pair_handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let par = ParallelConfig::with_workers(4);
    let sent = send_roots_parallel(
        &sender,
        &dir,
        NodeId(0),
        7,
        100,
        &roots,
        &par,
        SendConfig::for_vm(&sender),
    )
    .unwrap();
    // Work stealing means the 64 roots may end up on fewer than 4 workers
    // (a fast worker can drain its victims), but never more.
    assert!(!sent.streams.is_empty() && sent.streams.len() <= 4);
    assert_eq!(sent.streams.len(), sent.root_order.len());
    assert_eq!(sent.root_order.iter().map(Vec::len).sum::<usize>(), 64);

    // Each stream is independent; receive them all.
    let mut total_roots = 0;
    for st in &sent.streams {
        let mut input = SkywayObjectInputStream::new(&mut receiver, &dir, NodeId(1));
        for c in &st.chunks {
            input.push_chunk(c).unwrap();
        }
        let (roots, _) = input.read_objects(None).unwrap();
        for &r in &roots {
            let first = receiver.get_ref(r, "first").unwrap();
            assert_eq!(receiver.read_string(first).unwrap(), "contended");
        }
        total_roots += roots.len();
    }
    assert_eq!(total_roots, 64);
}

#[test]
fn heterogeneous_format_adjustment() {
    // Sender uses the Skyway format (3-word header); receiver runs a
    // compact stock JVM (2-word header, 4-byte array length). The sender
    // adjusts object formats while copying (§3.1).
    let cp = classpath();
    let mut sender = Vm::new("n0", &HeapConfig::small(), Arc::clone(&cp)).unwrap();
    let mut receiver =
        Vm::new("n1", &HeapConfig { spec: LayoutSpec::COMPACT, ..HeapConfig::small() }, cp)
            .unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();

    let s = sender.new_string("format shift").unwrap();
    let h = sender.handle(s);
    let sky_tx = SkywaySerializer::new(
        Arc::clone(&dir),
        NodeId(0),
        Arc::new(ShuffleController::new()),
        LayoutSpec::COMPACT, // receiver's format
    );
    let sky_rx = SkywaySerializer::new(
        Arc::clone(&dir),
        NodeId(1),
        Arc::new(ShuffleController::new()),
        LayoutSpec::COMPACT,
    );
    let mut p = Profile::new();
    let s = sender.resolve(h).unwrap();
    let bytes = sky_tx.serialize(&mut sender, &[s], &mut p).unwrap();
    let roots = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    assert_eq!(receiver.read_string(roots[0]).unwrap(), "format shift");
}

#[test]
fn spec_mismatch_is_rejected() {
    let (dir, mut sender, mut receiver) = setup_pair();
    let s = sender.new_string("x").unwrap();
    // Sender prepares a COMPACT-format stream but the receiver runs SKYWAY.
    let sky_tx = SkywaySerializer::new(
        Arc::clone(&dir),
        NodeId(0),
        Arc::new(ShuffleController::new()),
        LayoutSpec::COMPACT,
    );
    let sky_rx = skyway_for(&dir, 1);
    let mut p = Profile::new();
    let bytes = sky_tx.serialize(&mut sender, &[s], &mut p).unwrap();
    assert!(sky_rx.deserialize(&mut receiver, &bytes, &mut p).is_err());
}

#[test]
fn received_objects_survive_gc_and_stay_usable() {
    let (dir, mut sender, mut receiver) = setup_pair();
    let handles = build_dataset(&mut sender, 10).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let sky_tx = skyway_for(&dir, 0);
    let sky_rx = skyway_for(&dir, 1);
    let mut p = Profile::new();
    let bytes = sky_tx.serialize(&mut sender, &roots, &mut p).unwrap();
    let rebuilt = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    // Root them (the caller contract), then stress the receiver heap.
    let root_handles: Vec<_> = rebuilt.iter().map(|&r| receiver.handle(r)).collect();
    for i in 0..5000 {
        receiver.new_string(&format!("gc pressure {i}")).unwrap();
    }
    receiver.full_gc().unwrap();
    for (i, h) in root_handles.iter().enumerate() {
        let mc = receiver.resolve(*h).unwrap();
        assert!(verify_media_content(&receiver, mc, i as u64).unwrap(), "record {i} after GC");
    }
}

#[test]
fn hashtable_tracking_works_without_baddr_word() {
    // Ablation path: a stock-format heap (no baddr) can still send via the
    // side-table tracker.
    let cp = classpath();
    let mut sender = Vm::new(
        "n0",
        &HeapConfig { spec: LayoutSpec::STOCK, ..HeapConfig::small() },
        Arc::clone(&cp),
    )
    .unwrap();
    let mut receiver =
        Vm::new("n1", &HeapConfig { spec: LayoutSpec::STOCK, ..HeapConfig::small() }, cp).unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();
    let s = sender.new_string("no baddr").unwrap();
    let sky_tx = SkywaySerializer::new(
        Arc::clone(&dir),
        NodeId(0),
        Arc::new(ShuffleController::new()),
        LayoutSpec::STOCK,
    )
    .with_tracking(Tracking::HashTable);
    let sky_rx = SkywaySerializer::new(
        Arc::clone(&dir),
        NodeId(1),
        Arc::new(ShuffleController::new()),
        LayoutSpec::STOCK,
    );
    let mut p = Profile::new();
    let bytes = sky_tx.serialize(&mut sender, &[s], &mut p).unwrap();
    let roots = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    assert_eq!(receiver.read_string(roots[0]).unwrap(), "no baddr");
}

#[test]
fn baddr_tracking_on_stock_heap_is_rejected() {
    let cp = classpath();
    let sender =
        Vm::new("n0", &HeapConfig { spec: LayoutSpec::STOCK, ..HeapConfig::small() }, cp).unwrap();
    let dir = TypeDirectory::new(1, NodeId(0));
    let controller = ShuffleController::new();
    let cfg = SendConfig {
        chunk_limit: 1024,
        receiver_spec: LayoutSpec::STOCK,
        tracking: Tracking::Baddr,
    };
    assert!(matches!(
        SkywayObjectOutputStream::new(&sender, &dir, NodeId(0), &controller, cfg),
        Err(skyway::Error::NeedsBaddr)
    ));
}

#[test]
fn update_hooks_run_after_transfer() {
    let (dir, mut sender, mut receiver) = setup_pair();
    let i = sender.new_integer(41).unwrap();
    let hooks = Arc::new(UpdateRegistry::new());
    hooks.register_update(mheap::stdlib::INTEGER, |vm, obj| {
        let v = vm.get_int(obj, "value").map_err(skyway::Error::Heap)?;
        vm.set_int(obj, "value", v + 1).map_err(skyway::Error::Heap)?;
        Ok(())
    });
    let sky_tx = skyway_for(&dir, 0);
    let sky_rx = SkywaySerializer::new(
        Arc::clone(&dir),
        NodeId(1),
        Arc::new(ShuffleController::new()),
        LayoutSpec::SKYWAY,
    )
    .with_hooks(hooks);
    let mut p = Profile::new();
    let bytes = sky_tx.serialize(&mut sender, &[i], &mut p).unwrap();
    let roots = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    assert_eq!(receiver.get_int(roots[0], "value").unwrap(), 42);
}

#[test]
fn phase_isolation_new_phase_resends() {
    let (dir, mut sender, mut receiver) = setup_pair();
    let s = sender.new_string("phased").unwrap();
    let h = sender.handle(s);
    let controller = Arc::new(ShuffleController::new());
    let sky_tx = SkywaySerializer::new(
        Arc::clone(&dir),
        NodeId(0),
        Arc::clone(&controller),
        LayoutSpec::SKYWAY,
    );
    let sky_rx = skyway_for(&dir, 1);
    let mut p = Profile::new();
    let s1 = sender.resolve(h).unwrap();
    let b1 = sky_tx.serialize(&mut sender, &[s1], &mut p).unwrap();
    controller.start_phase(); // shuffleStart
    let s2 = sender.resolve(h).unwrap();
    let b2 = sky_tx.serialize(&mut sender, &[s2], &mut p).unwrap();
    // Both are full copies (no cross-phase backward refs).
    let r1 = sky_rx.deserialize(&mut receiver, &b1, &mut p).unwrap();
    let r2 = sky_rx.deserialize(&mut receiver, &b2, &mut p).unwrap();
    assert_ne!(r1[0], r2[0]);
    assert_eq!(receiver.read_string(r1[0]).unwrap(), "phased");
    assert_eq!(receiver.read_string(r2[0]).unwrap(), "phased");
}

#[test]
fn scrub_baddrs_clears_everything() {
    let (_dir, mut sender, _receiver) = setup_pair();
    let dir = Arc::new(TypeDirectory::new(1, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    let s = sender.new_string("scrubbed").unwrap();
    let h = sender.handle(s);
    let controller = ShuffleController::new();
    let mut out = SkywayObjectOutputStream::new(
        &sender,
        &dir,
        NodeId(0),
        &controller,
        SendConfig::for_vm(&sender),
    )
    .unwrap();
    let s = sender.resolve(h).unwrap();
    out.write_object(s).unwrap();
    let _ = out.finish();
    // The baddr word now carries phase state.
    let s = sender.resolve(h).unwrap();
    let off = sender.spec().baddr_off().unwrap();
    assert_ne!(sender.heap().arena().load_word(s.0 + off).unwrap(), 0);
    scrub_baddrs(&mut sender).unwrap();
    let s = sender.resolve(h).unwrap();
    assert_eq!(sender.heap().arena().load_word(s.0 + off).unwrap(), 0);
}

#[test]
fn corrupt_stream_is_an_error() {
    let (dir, mut sender, mut receiver) = setup_pair();
    let s = sender.new_string("x").unwrap();
    let sky_tx = skyway_for(&dir, 0);
    let sky_rx = skyway_for(&dir, 1);
    let mut p = Profile::new();
    let mut bytes = sky_tx.serialize(&mut sender, &[s], &mut p).unwrap();
    // Corrupt the tID of the first object (after the 10-byte frame header,
    // 4-byte chunk len, 8-byte TOP_MARK, 8-byte mark word).
    let off = 10 + 4 + 8 + 8;
    bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(sky_rx.deserialize(&mut receiver, &bytes, &mut p).is_err());
}

#[test]
fn skyway_emits_more_bytes_than_kryo_but_no_invocations() {
    // The paper's trade-off in one test: more bytes, zero S/D calls.
    let (dir, mut sender, _) = setup_pair();
    let handles = build_dataset(&mut sender, 50).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();

    let reg = serlab::KryoRegistry::new();
    reg.register_all(serlab::jsbs::jsbs_class_names()).unwrap();
    let kryo = serlab::KryoSerializer::manual(Arc::new(reg));
    let mut pk = Profile::new();
    let kryo_bytes = kryo.serialize(&mut sender, &roots, &mut pk).unwrap().len();

    let sky = skyway_for(&dir, 0);
    let mut ps = Profile::new();
    let sky_bytes = sky.serialize(&mut sender, &roots, &mut ps).unwrap().len();

    assert!(sky_bytes > kryo_bytes, "skyway {sky_bytes} <= kryo {kryo_bytes}");
    assert_eq!(ps.ser_invocations, 0);
    assert!(pk.ser_invocations > 0);
    // Headers + padding should dominate the extra bytes (§5.2).
    let stats = sky.last_send_stats();
    assert!(stats.header_bytes > 0);
    assert!(stats.header_bytes + stats.padding_bytes > stats.pointer_bytes);
}
