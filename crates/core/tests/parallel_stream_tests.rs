//! Multi-stream (parallel-send) serializer tests: the §4.2 threading path
//! exposed through the ordinary serializer interface.

use std::sync::Arc;

use mheap::{Addr, ClassPath, HeapConfig, LayoutSpec, Vm};
use serlab::jsbs::{build_dataset, define_jsbs_classes, verify_media_content};
use serlab::Serializer;
use simnet::{NodeId, Profile};
use skyway::{ShuffleController, SkywaySerializer, TypeDirectory};

fn setup() -> (Arc<TypeDirectory>, Vm, Vm) {
    let cp = ClassPath::new();
    define_jsbs_classes(&cp);
    let sender =
        Vm::new("n0", &HeapConfig::default().with_capacity(32 << 20), Arc::clone(&cp)).unwrap();
    let receiver = Vm::new("n1", &HeapConfig::default().with_capacity(32 << 20), cp).unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();
    (dir, sender, receiver)
}

fn serializer(dir: &Arc<TypeDirectory>, node: usize, threads: usize) -> SkywaySerializer {
    SkywaySerializer::new(
        Arc::clone(dir),
        NodeId(node),
        Arc::new(ShuffleController::new()),
        LayoutSpec::SKYWAY,
    )
    .with_parallel_streams(threads)
}

#[test]
fn parallel_streams_preserve_root_order() {
    for threads in [2, 3, 4, 7] {
        let (dir, mut sender, mut receiver) = setup();
        let handles = build_dataset(&mut sender, 41).unwrap();
        let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
        let tx = serializer(&dir, 0, threads);
        let rx = serializer(&dir, 1, threads);
        let mut p = Profile::new();
        let bytes = tx.serialize(&mut sender, &roots, &mut p).unwrap();
        assert!(bytes.starts_with(b"MSKY"));
        let rebuilt = rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
        assert_eq!(rebuilt.len(), 41);
        for (i, &mc) in rebuilt.iter().enumerate() {
            assert!(
                verify_media_content(&receiver, mc, i as u64).unwrap(),
                "{threads} threads, record {i} out of order or corrupt"
            );
        }
    }
}

#[test]
fn single_stream_config_stays_plain_format() {
    let (dir, mut sender, mut receiver) = setup();
    let handles = build_dataset(&mut sender, 5).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let tx = serializer(&dir, 0, 1);
    let mut p = Profile::new();
    let bytes = tx.serialize(&mut sender, &roots, &mut p).unwrap();
    assert!(bytes.starts_with(b"SKYW"));
    let rx = serializer(&dir, 1, 1);
    assert_eq!(rx.deserialize(&mut receiver, &bytes, &mut p).unwrap().len(), 5);
}

#[test]
fn parallel_streams_duplicate_cross_stream_shared_objects() {
    // Objects shared between roots that land in different streams are
    // duplicated per stream (paper: "these copies will become separate
    // objects after delivered to a remote node"); within one stream
    // aliasing is preserved.
    let (dir, mut sender, mut receiver) = setup();
    let s = sender.new_string("contended").unwrap();
    let sh = sender.handle(s);
    let mut pair_handles = Vec::new();
    for _ in 0..8 {
        let s = sender.resolve(sh).unwrap();
        let p = sender.new_pair(s, Addr::NULL).unwrap();
        pair_handles.push(sender.handle(p));
    }
    let roots: Vec<Addr> = pair_handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let tx = serializer(&dir, 0, 4);
    let rx = serializer(&dir, 1, 4);
    let mut p = Profile::new();
    let bytes = tx.serialize(&mut sender, &roots, &mut p).unwrap();
    // Work stealing decides how many of the 4 workers actually emit roots;
    // the container header records how many streams were shipped.
    let streams = u16::from_le_bytes([bytes[4], bytes[5]]) as usize;
    assert!((1..=4).contains(&streams));
    let rebuilt = rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    let firsts: Vec<Addr> =
        rebuilt.iter().map(|&r| receiver.get_ref(r, "first").unwrap()).collect();
    let distinct: std::collections::HashSet<u64> = firsts.iter().map(|a| a.0).collect();
    assert_eq!(
        distinct.len(),
        streams,
        "exactly one copy of the shared object per stream: CAS-losing \
         streams duplicate it, aliasing within a stream is preserved"
    );
    for f in firsts {
        assert_eq!(receiver.read_string(f).unwrap(), "contended");
    }
}

#[test]
fn truncated_container_is_an_error() {
    let (dir, mut sender, mut receiver) = setup();
    let handles = build_dataset(&mut sender, 10).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let tx = serializer(&dir, 0, 3);
    let rx = serializer(&dir, 1, 3);
    let mut p = Profile::new();
    let bytes = tx.serialize(&mut sender, &roots, &mut p).unwrap();
    assert!(rx.deserialize(&mut receiver, &bytes[..bytes.len() / 2], &mut p).is_err());
    assert!(rx.deserialize(&mut receiver, b"MSKY\x02", &mut p).is_err());
}

#[test]
fn parallel_send_stats_are_merged() {
    let (dir, mut sender, _) = setup();
    let handles = build_dataset(&mut sender, 20).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let tx1 = serializer(&dir, 0, 1);
    let tx4 = serializer(&dir, 0, 4);
    let mut p = Profile::new();
    tx1.serialize(&mut sender, &roots, &mut p).unwrap();
    let s1 = tx1.last_send_stats();
    tx4.controller().start_phase();
    tx4.serialize(&mut sender, &roots, &mut p).unwrap();
    let s4 = tx4.last_send_stats();
    // No sharing between records in this dataset → identical object counts.
    assert_eq!(s1.objects, s4.objects);
    assert!(s4.header_bytes >= s1.header_bytes);
}
