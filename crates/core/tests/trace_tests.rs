//! Distributed-tracing integration tests: the span tree a transfer emits
//! is well-formed (one root, no orphans, children nested inside their
//! parent's interval) and — for a known payload — exactly the expected
//! spans, no more, no fewer.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;

use mheap::stdlib::define_core_classes;
use mheap::{ClassPath, HeapConfig, Vm};
use simnet::NodeId;
use skyway::{PipelineConfig, PipelineEngine, TypeDirectory};

fn env() -> (Arc<TypeDirectory>, Vm, Vm) {
    let cp = ClassPath::new();
    define_core_classes(&cp);
    let sender = Vm::new("s", &HeapConfig::small(), Arc::clone(&cp)).unwrap();
    let receiver = Vm::new("r", &HeapConfig::small(), cp).unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();
    (dir, sender, receiver)
}

/// A traced engine over a scoped registry, so span assertions are exact
/// even when other tests run concurrently.
fn traced_engine(chunk_limit: usize) -> (Arc<obs::Registry>, PipelineEngine) {
    let reg = Arc::new(obs::Registry::new());
    reg.tracer().set_enabled(true);
    let engine = PipelineEngine::new(PipelineConfig { chunk_limit, ..PipelineConfig::default() })
        .with_metrics(Arc::clone(&reg));
    (reg, engine)
}

/// Asserts the span list forms one well-formed tree: a single root, every
/// parent id resolvable, one shared trace id, and every wall-clock child
/// contained in its parent's interval (sim-clock spans live on another
/// clock and are checked only for interval sanity).
fn assert_well_formed(spans: &[obs::Span]) {
    assert!(!spans.is_empty(), "a traced transfer must record spans");
    let trace_id = spans[0].trace_id;
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    assert_eq!(ids.len(), spans.len(), "span ids are unique");
    let by_id: BTreeMap<u64, &obs::Span> = spans.iter().map(|s| (s.id, s)).collect();
    let mut roots = 0;
    for s in spans {
        assert_eq!(s.trace_id, trace_id, "all spans share the transfer's trace id");
        assert!(s.start_ns <= s.end_ns, "span {} has a negative interval", s.name);
        if s.parent == 0 {
            roots += 1;
            continue;
        }
        let parent = by_id
            .get(&s.parent)
            .unwrap_or_else(|| panic!("span {} has orphan parent {}", s.name, s.parent));
        if !s.sim_clock && !parent.sim_clock {
            assert!(
                parent.start_ns <= s.start_ns && s.end_ns <= parent.end_ns,
                "span {} [{}, {}] escapes parent {} [{}, {}]",
                s.name,
                s.start_ns,
                s.end_ns,
                parent.name,
                parent.start_ns,
                parent.end_ns,
            );
        }
    }
    assert_eq!(roots, 1, "exactly one root span per transfer");
}

#[test]
fn three_object_transfer_emits_exactly_the_expected_spans() {
    let (dir, mut s, mut r) = env();
    let roots: Vec<_> = (0..3).map(|i| s.new_integer(i).unwrap()).collect();
    let (reg, engine) = traced_engine(PipelineConfig::default().chunk_limit);
    let ctx = reg.tracer().new_trace();
    let (got, _) = engine
        .transfer_with_trace(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 1, &roots, None, ctx)
        .unwrap();
    assert_eq!(got.len(), 3);

    let spans = reg.tracer().spans();
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for sp in &spans {
        *counts.entry(sp.name).or_default() += 1;
    }
    // Three flat integers take the single-chunk path: one transfer root,
    // one traversal burst (all roots fit in one chunk, so the burst only
    // closes at stream finish), one simulated wire occupancy, one
    // absorbed chunk, one fixup drain, one card-dirtying batch, and one
    // class-load consultation (all three objects share
    // java.lang.Integer's tid).
    let expected: BTreeMap<&str, usize> = [
        (obs::names::TRACE_TRANSFER, 1),
        (obs::names::TRACE_SENDER_TRAVERSE, 1),
        (obs::names::TRACE_LINK_XMIT, 1),
        (obs::names::TRACE_RECEIVER_CHUNK_ABSORB, 1),
        (obs::names::TRACE_RECEIVER_FIXUP, 1),
        (obs::names::TRACE_RECEIVER_CARD_DIRTY, 1),
        (obs::names::TRACE_REGISTRY_CLASS_LOAD, 1),
    ]
    .into_iter()
    .collect();
    assert_eq!(counts, expected, "{spans:#?}");
    let traverse = spans.iter().find(|sp| sp.name == obs::names::TRACE_SENDER_TRAVERSE).unwrap();
    assert!(traverse.args.contains(&("roots", 3)), "burst covers all roots: {traverse:?}");
    assert_well_formed(&spans);
}

#[test]
fn untraced_transfer_records_nothing() {
    let (dir, mut s, mut r) = env();
    let roots: Vec<_> = (0..3).map(|i| s.new_integer(i).unwrap()).collect();
    let (reg, engine) = traced_engine(PipelineConfig::default().chunk_limit);
    let (got, _) =
        engine.transfer(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 1, &roots, None).unwrap();
    assert_eq!(got.len(), 3);
    assert!(reg.tracer().spans().is_empty(), "TraceCtx::NONE keeps the path span-free");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any pipelined multi-chunk transfer yields a well-formed span tree,
    /// and its sender/receiver span populations match the work done.
    #[test]
    fn pipelined_span_tree_is_well_formed(
        n_roots in 8usize..48,
        pad in 1usize..64,
    ) {
        let (dir, mut s, mut r) = env();
        let roots: Vec<_> = (0..n_roots)
            .map(|i| s.new_string(&format!("row {i} {}", "x".repeat(pad))).unwrap())
            .collect();
        // A small chunk limit forces the overlapped (threaded) path.
        let (reg, engine) = traced_engine(256);
        let ctx = reg.tracer().new_trace();
        let (got, report) = engine
            .transfer_with_trace(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 1, &roots, None, ctx)
            .unwrap();
        prop_assert_eq!(got.len(), n_roots);

        let spans = reg.tracer().spans();
        assert_well_formed(&spans);
        let count = |name: &str| spans.iter().filter(|sp| sp.name == name).count();
        prop_assert_eq!(count(obs::names::TRACE_TRANSFER), 1);
        // Traverse bursts close at chunk boundaries (a flush returning
        // several chunks closes one burst), plus at most one tail burst;
        // together they cover every root exactly once.
        let chunks = report.chunk_bytes.len();
        let bursts = count(obs::names::TRACE_SENDER_TRAVERSE);
        prop_assert!(bursts >= 1 && bursts <= chunks + 1, "bursts {} chunks {}", bursts, chunks);
        let roots_covered: u64 = spans
            .iter()
            .filter(|sp| sp.name == obs::names::TRACE_SENDER_TRAVERSE)
            .map(|sp| sp.args.iter().find(|(k, _)| *k == "roots").map_or(0, |(_, v)| *v))
            .sum();
        prop_assert_eq!(roots_covered, n_roots as u64);
        prop_assert_eq!(count(obs::names::TRACE_SENDER_CHUNK_SEND), chunks);
        prop_assert_eq!(count(obs::names::TRACE_LINK_XMIT), chunks);
        prop_assert_eq!(count(obs::names::TRACE_RECEIVER_CHUNK_ABSORB), chunks);
        prop_assert_eq!(count(obs::names::TRACE_RECEIVER_FIXUP), 1);
        prop_assert_eq!(reg.tracer().dropped(), 0);
    }
}
