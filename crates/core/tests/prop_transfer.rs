//! Property-based Skyway tests: arbitrary object DAGs round-trip with
//! structure, values, sharing, and cached hashcodes intact — and byte-for-
//! byte object payload equality against what a conventional serializer
//! rebuilds.

use std::sync::Arc;

use proptest::prelude::*;

use mheap::stdlib::define_core_classes;
use mheap::{Addr, ClassPath, FieldType, HeapConfig, KlassDef, LayoutSpec, PrimType, Vm};
use serlab::Serializer;
use simnet::{NodeId, Profile};
use skyway::{ShuffleController, SkywaySerializer, TypeDirectory};

fn classpath() -> Arc<ClassPath> {
    let cp = ClassPath::new();
    define_core_classes(&cp);
    cp.define(KlassDef::new(
        "PNode",
        None,
        vec![
            ("tag", FieldType::Prim(PrimType::Long)),
            ("small", FieldType::Prim(PrimType::Short)),
            ("left", FieldType::Ref),
            ("right", FieldType::Ref),
        ],
    ));
    cp
}

#[derive(Debug, Clone)]
struct GraphSpec {
    tags: Vec<i64>,
    lefts: Vec<Option<usize>>,
    rights: Vec<Option<usize>>,
    roots: Vec<usize>,
}

fn graph_spec(max_nodes: usize) -> impl Strategy<Value = GraphSpec> {
    (2..max_nodes)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(any::<i64>(), n),
                proptest::collection::vec(proptest::option::of(0..n), n),
                proptest::collection::vec(proptest::option::of(0..n), n),
                proptest::collection::vec(0..n, 1..5),
            )
        })
        .prop_map(|(tags, lefts, rights, roots)| {
            let clamp = |v: Vec<Option<usize>>| {
                v.into_iter().enumerate().map(|(i, e)| e.filter(|&t| t < i)).collect::<Vec<_>>()
            };
            GraphSpec { tags, lefts: clamp(lefts), rights: clamp(rights), roots }
        })
}

fn build(vm: &mut Vm, spec: &GraphSpec) -> Vec<mheap::Handle> {
    let k = vm.load_class("PNode").unwrap();
    let mut handles = Vec::with_capacity(spec.tags.len());
    for i in 0..spec.tags.len() {
        let node = vm.alloc_instance(k).unwrap();
        vm.set_long(node, "tag", spec.tags[i]).unwrap();
        vm.set_prim(node, "small", mheap::Value::Short((spec.tags[i] % 999) as i16)).unwrap();
        let h = vm.handle(node);
        if let Some(l) = spec.lefts[i] {
            let node = vm.resolve(h).unwrap();
            let t = vm.resolve(handles[l]).unwrap();
            vm.set_ref(node, "left", t).unwrap();
        }
        if let Some(r) = spec.rights[i] {
            let node = vm.resolve(h).unwrap();
            let t = vm.resolve(handles[r]).unwrap();
            vm.set_ref(node, "right", t).unwrap();
        }
        handles.push(h);
    }
    handles
}

/// Canonical form of the graph reachable from `root`: node index by
/// discovery order, edges as discovered indices, tags as values.
fn canonicalize(vm: &Vm, root: Addr) -> Vec<(i64, i16, Option<usize>, Option<usize>)> {
    let mut index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut order: Vec<Addr> = Vec::new();
    let mut stack = vec![root];
    while let Some(a) = stack.pop() {
        if a.is_null() || index.contains_key(&a.0) {
            continue;
        }
        index.insert(a.0, order.len());
        order.push(a);
        let r = vm.get_ref(a, "right").unwrap();
        let l = vm.get_ref(a, "left").unwrap();
        stack.push(r);
        stack.push(l);
    }
    // Second pass in discovery order so indices are deterministic.
    let mut out = Vec::with_capacity(order.len());
    // Re-walk deterministically (DFS preorder, left then right).
    let mut index2: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut order2: Vec<Addr> = Vec::new();
    let mut stack = vec![root];
    while let Some(a) = stack.pop() {
        if a.is_null() || index2.contains_key(&a.0) {
            continue;
        }
        index2.insert(a.0, order2.len());
        order2.push(a);
        let l = vm.get_ref(a, "left").unwrap();
        let r = vm.get_ref(a, "right").unwrap();
        stack.push(r);
        stack.push(l);
    }
    for &a in &order2 {
        let tag = vm.get_long(a, "tag").unwrap();
        let small = match vm.get_prim(a, "small").unwrap() {
            mheap::Value::Short(s) => s,
            _ => unreachable!(),
        };
        let l = vm.get_ref(a, "left").unwrap();
        let r = vm.get_ref(a, "right").unwrap();
        out.push((
            tag,
            small,
            (!l.is_null()).then(|| index2[&l.0]),
            (!r.is_null()).then(|| index2[&r.0]),
        ));
    }
    out
}

fn transfer_env() -> (Arc<TypeDirectory>, Vm, Vm) {
    let cp = classpath();
    let sender =
        Vm::new("s", &HeapConfig::small().with_capacity(8 << 20), Arc::clone(&cp)).unwrap();
    let receiver = Vm::new("r", &HeapConfig::small().with_capacity(8 << 20), cp).unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();
    (dir, sender, receiver)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_graphs_roundtrip(spec in graph_spec(40), chunk in 128usize..4096) {
        let (dir, mut sender, mut receiver) = transfer_env();
        let handles = build(&mut sender, &spec);
        let roots: Vec<Addr> = spec.roots.iter()
            .map(|&i| sender.resolve(handles[i]).unwrap())
            .collect();
        let sky_tx = SkywaySerializer::new(
            Arc::clone(&dir), NodeId(0), Arc::new(ShuffleController::new()),
            LayoutSpec::SKYWAY,
        ).with_chunk_limit(chunk);
        let sky_rx = SkywaySerializer::new(
            Arc::clone(&dir), NodeId(1), Arc::new(ShuffleController::new()),
            LayoutSpec::SKYWAY,
        );
        let mut p = Profile::new();
        let bytes = sky_tx.serialize(&mut sender, &roots, &mut p).unwrap();
        let rebuilt = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
        prop_assert_eq!(rebuilt.len(), roots.len());
        for (orig, &newr) in roots.iter().zip(&rebuilt) {
            prop_assert_eq!(canonicalize(&sender, *orig), canonicalize(&receiver, newr));
        }
    }

    #[test]
    fn skyway_agrees_with_kryo_on_structure(spec in graph_spec(30)) {
        let (dir, mut sender, mut r_sky) = transfer_env();
        let cp = classpath();
        let mut r_kryo = Vm::new("rk", &HeapConfig::small(), cp).unwrap();
        let handles = build(&mut sender, &spec);
        let roots: Vec<Addr> = spec.roots.iter()
            .map(|&i| sender.resolve(handles[i]).unwrap())
            .collect();

        let sky_tx = SkywaySerializer::new(
            Arc::clone(&dir), NodeId(0), Arc::new(ShuffleController::new()),
            LayoutSpec::SKYWAY,
        );
        let sky_rx = SkywaySerializer::new(
            Arc::clone(&dir), NodeId(1), Arc::new(ShuffleController::new()),
            LayoutSpec::SKYWAY,
        );
        let reg = serlab::KryoRegistry::new();
        reg.register("PNode").unwrap();
        let kryo = serlab::KryoSerializer::manual(Arc::new(reg));

        let mut p = Profile::new();
        let sb = sky_tx.serialize(&mut sender, &roots, &mut p).unwrap();
        let kb = kryo.serialize(&mut sender, &roots, &mut p).unwrap();
        let sr = sky_rx.deserialize(&mut r_sky, &sb, &mut p).unwrap();
        let kr = kryo.deserialize(&mut r_kryo, &kb, &mut p).unwrap();
        for ((&s, &k), &orig) in sr.iter().zip(&kr).zip(&roots) {
            let want = canonicalize(&sender, orig);
            prop_assert_eq!(&canonicalize(&r_sky, s), &want);
            prop_assert_eq!(&canonicalize(&r_kryo, k), &want);
        }
    }

    #[test]
    fn corrupted_skyway_streams_error_not_panic(
        spec in graph_spec(20),
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..6),
    ) {
        let (dir, mut sender, mut receiver) = transfer_env();
        let handles = build(&mut sender, &spec);
        let roots: Vec<Addr> = spec.roots.iter()
            .map(|&i| sender.resolve(handles[i]).unwrap())
            .collect();
        let sky_tx = SkywaySerializer::new(
            Arc::clone(&dir), NodeId(0), Arc::new(ShuffleController::new()),
            LayoutSpec::SKYWAY,
        );
        let sky_rx = SkywaySerializer::new(
            Arc::clone(&dir), NodeId(1), Arc::new(ShuffleController::new()),
            LayoutSpec::SKYWAY,
        );
        let mut p = Profile::new();
        let mut bytes = sky_tx.serialize(&mut sender, &roots, &mut p).unwrap();
        for (pos, val) in &flips {
            let i = *pos as usize % bytes.len();
            bytes[i] ^= *val | 1;
        }
        // Corruption must never panic. (An Ok result is possible when the
        // flips only hit primitive payload or dead padding.)
        let _ = sky_rx.deserialize(&mut receiver, &bytes, &mut p);
    }

    #[test]
    fn hashcodes_preserved_for_all_nodes(spec in graph_spec(25)) {
        let (dir, mut sender, mut receiver) = transfer_env();
        let handles = build(&mut sender, &spec);
        // Materialize hashes for every node.
        let mut hashes = Vec::new();
        for h in &handles {
            let a = sender.resolve(*h).unwrap();
            hashes.push(sender.identity_hash(a).unwrap());
        }
        // Send node 0's graph + all roots to maximize coverage.
        let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
        let sky_tx = SkywaySerializer::new(
            Arc::clone(&dir), NodeId(0), Arc::new(ShuffleController::new()),
            LayoutSpec::SKYWAY,
        );
        let sky_rx = SkywaySerializer::new(
            Arc::clone(&dir), NodeId(1), Arc::new(ShuffleController::new()),
            LayoutSpec::SKYWAY,
        );
        let mut p = Profile::new();
        let bytes = sky_tx.serialize(&mut sender, &roots, &mut p).unwrap();
        let rebuilt = sky_rx.deserialize(&mut receiver, &bytes, &mut p).unwrap();
        for (i, &r) in rebuilt.iter().enumerate() {
            prop_assert_eq!(receiver.identity_hash(r).unwrap(), hashes[i]);
        }
    }
}

// Pipelined transfer must be indistinguishable from the sequential path:
// same roots, same graph (structure, values, sharing), same ReceiveStats —
// for arbitrary DAGs forced across many chunks so both backward references
// and cross-chunk forward references (a parent absolutized before its
// children's chunk arrives) are exercised.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pipelined_equals_sequential(
        spec in graph_spec(40),
        chunk in 128usize..1024,
        depth in 1usize..6,
    ) {
        use skyway::{PipelineConfig, PipelineEngine, SendConfig, sequential_transfer};

        let (dir, mut sender, mut receiver) = transfer_env();
        let handles = build(&mut sender, &spec);
        let roots: Vec<Addr> = spec.roots.iter()
            .map(|&i| sender.resolve(handles[i]).unwrap())
            .collect();

        // The same graph again in an independent environment for the
        // sequential reference run.
        let (dir2, mut sender2, mut receiver2) = transfer_env();
        let handles2 = build(&mut sender2, &spec);
        let roots2: Vec<Addr> = spec.roots.iter()
            .map(|&i| sender2.resolve(handles2[i]).unwrap())
            .collect();

        let engine = PipelineEngine::new(PipelineConfig {
            chunk_limit: chunk,
            depth,
            ..PipelineConfig::default()
        });
        let (pr, report) = engine
            .transfer(&sender, &mut receiver, &dir, NodeId(0), NodeId(1), 1, 1, &roots, None)
            .unwrap();
        let cfg = SendConfig { chunk_limit: chunk, ..SendConfig::for_vm(&sender2) };
        let (sr, sstats, rstats) = sequential_transfer(
            &sender2, &mut receiver2, &dir2, NodeId(0), NodeId(1), 1, 1, &roots2, None, cfg,
        ).unwrap();

        prop_assert_eq!(pr.len(), sr.len());
        for ((p, s), &orig) in pr.iter().zip(&sr).zip(&roots) {
            let want = canonicalize(&sender, orig);
            prop_assert_eq!(&canonicalize(&receiver, *p), &want);
            prop_assert_eq!(&canonicalize(&receiver2, *s), &want);
        }
        // The two modes did identical work, not just equivalent work.
        prop_assert_eq!(report.recv_stats.objects, rstats.objects);
        prop_assert_eq!(report.recv_stats.bytes, rstats.bytes);
        prop_assert_eq!(report.recv_stats.ref_fixups, rstats.ref_fixups);
        prop_assert_eq!(report.recv_stats.chunks, rstats.chunks);
        prop_assert_eq!(report.send_stats.total_bytes, sstats.total_bytes);
    }

    // Parallel transfer (N work-stealing senders, N concurrent absorbers
    // over the shared heap) must rebuild every root's graph exactly as the
    // sequential path does. Every node doubles as a root so subgraphs are
    // shared across roots: roots landing in different streams race on the
    // shared nodes' `baddr` CAS, and the losers duplicate per stream — so
    // per-root graphs stay identical while the receiver's object
    // population may only grow, never shrink or corrupt.
    #[test]
    fn parallel_equals_sequential(
        spec in graph_spec(40),
        chunk in 256usize..1024,
        workers in 2usize..5,
    ) {
        use skyway::{
            ParallelConfig, PipelineConfig, PipelineEngine, SendConfig, TransferMode,
            sequential_transfer,
        };

        let (dir, mut sender, mut receiver) = transfer_env();
        let handles = build(&mut sender, &spec);
        let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();

        let (dir2, mut sender2, mut receiver2) = transfer_env();
        let handles2 = build(&mut sender2, &spec);
        let roots2: Vec<Addr> = handles2.iter().map(|h| sender2.resolve(*h).unwrap()).collect();

        let engine = PipelineEngine::new(PipelineConfig {
            chunk_limit: chunk,
            parallel: Some(ParallelConfig {
                workers,
                min_roots_per_worker: 1,
                ..Default::default()
            }),
            ..PipelineConfig::default()
        });
        let (pr, report) = engine
            .transfer(&sender, &mut receiver, &dir, NodeId(0), NodeId(1), 1, 1, &roots, None)
            .unwrap();
        let cfg = SendConfig { chunk_limit: chunk, ..SendConfig::for_vm(&sender2) };
        let (sr, _, rstats) = sequential_transfer(
            &sender2, &mut receiver2, &dir2, NodeId(0), NodeId(1), 1, 1, &roots2, None, cfg,
        ).unwrap();

        if roots.len() >= workers {
            prop_assert_eq!(report.mode, TransferMode::Parallel);
        }
        prop_assert_eq!(pr.len(), sr.len());
        for ((p, s), &orig) in pr.iter().zip(&sr).zip(&roots) {
            let want = canonicalize(&sender, orig);
            prop_assert_eq!(&canonicalize(&receiver, *p), &want);
            prop_assert_eq!(&canonicalize(&receiver2, *s), &want);
        }
        // Cross-stream CAS losses duplicate shared objects per stream:
        // the parallel receive can only ever hold MORE objects than the
        // sequential one, and everything cloned out was absorbed.
        prop_assert!(report.recv_stats.objects >= rstats.objects);
        prop_assert_eq!(report.send_stats.objects, report.recv_stats.objects);
    }
}
