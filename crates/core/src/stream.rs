//! The Skyway library API (paper §3.3): stream classes compatible with the
//! standard serializer interface, shuffle-phase management
//! (`shuffleStart`), and post-transfer field-update hooks
//! (`registerUpdate`).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use mheap::layout::Addr;
use mheap::Vm;
use parking_lot::RwLock;
use simnet::NodeId;

use crate::receiver::{GraphReceiver, ReceiveStats};
use crate::registry::TypeDirectory;
use crate::sender::{GraphSender, SendConfig, StreamOut};
use crate::{Error, Result};

/// Per-sending-VM shuffle-phase state. `shuffle_start()` increments the
/// phase; the phase id (`sID`) occupies one byte of the `baddr` word, so it
/// cycles through 1..=255 — [`ShuffleController::start_phase`] reports when
/// a wrap occurs so the engine can scrub stale `baddr` words (a heap walk;
/// the price of the one-byte encoding, paid every 255 phases).
#[derive(Debug)]
pub struct ShuffleController {
    phase: AtomicU64,
    stream_counter: AtomicU32,
}

impl Default for ShuffleController {
    fn default() -> Self {
        ShuffleController { phase: AtomicU64::new(1), stream_counter: AtomicU32::new(0) }
    }
}

impl ShuffleController {
    /// Creates the controller at phase 1.
    pub fn new() -> Self {
        ShuffleController::default()
    }

    /// The current shuffle phase's one-byte `sID` (never 0 — 0 means
    /// "never visited", the state of a freshly allocated object).
    pub fn sid(&self) -> u8 {
        // ORDER: Acquire — pairs with the AcqRel phase bump in
        // `start_phase`: a sender that reads the new phase also sees the
        // stream-counter reset ordered before it became visible.
        ((self.phase.load(Ordering::Acquire) - 1) % 255 + 1) as u8
    }

    /// Monotonic phase number (diagnostics).
    pub fn phase(&self) -> u64 {
        // ORDER: Acquire — same pairing as `sid`.
        self.phase.load(Ordering::Acquire)
    }

    /// Starts the next shuffle phase (`shuffleStart` in the paper).
    /// Returns `true` when the one-byte `sID` wrapped around, in which case
    /// the caller must run [`scrub_baddrs`] before sending.
    pub fn start_phase(&self) -> bool {
        // ORDER: AcqRel — the Release half publishes the phase transition
        // to `sid`/`phase` Acquire readers; the Acquire half orders this
        // bump after any previous phase's bump it follows.
        let p = self.phase.fetch_add(1, Ordering::AcqRel) + 1;
        // ORDER: Release — the counter reset must not be reordered after
        // the phase becomes visible, or a racing `next_stream` could hand
        // out a stale high id inside the new phase.
        self.stream_counter.store(0, Ordering::Release);
        let wrapped = (p - 1).is_multiple_of(255);
        let reg = obs::global();
        reg.counter(obs::names::SHUFFLE_PHASES_STARTED).inc();
        reg.gauge(obs::names::SHUFFLE_CURRENT_PHASE).set(p as i64);
        if wrapped {
            reg.counter(obs::names::SHUFFLE_SID_WRAPS).inc();
        }
        reg.record(obs::Event::ShuffleStarted { sid: u32::from(self.sid()), phase: p });
        wrapped
    }

    /// Allocates a fresh stream id within the current phase (each
    /// destination buffer / sender thread gets its own).
    pub fn next_stream(&self) -> u16 {
        obs::global().counter(obs::names::SHUFFLE_STREAMS_ALLOCATED).inc();
        // ORDER: AcqRel — the Acquire half orders the allocation after the
        // phase-start counter reset (Release in `start_phase`); the
        // Release half keeps the RMW chain a release sequence so later
        // allocators inherit that edge.
        (self.stream_counter.fetch_add(1, Ordering::AcqRel) % 0xfffe) as u16 + 1
    }

    /// Allocates `n` *contiguous* stream ids within the current phase and
    /// returns the first — parallel transfer gives worker `t` stream
    /// `base + t`, so one reservation covers the whole worker fleet.
    pub fn next_stream_block(&self, n: u16) -> u16 {
        let n = n.max(1);
        obs::global().counter(obs::names::SHUFFLE_STREAMS_ALLOCATED).add(u64::from(n));
        // ORDER: AcqRel — same pairing as `next_stream`.
        let base = self.stream_counter.fetch_add(u32::from(n), Ordering::AcqRel);
        (base % 0xfffe) as u16 + 1
    }

    /// Allocates a per-transfer trace context under `parent` (a stage
    /// root, or [`obs::TraceCtx::NONE`] for a standalone transfer).
    /// Sender, wire, receiver, and GC spans of the transfer all stitch
    /// under the returned context. [`obs::TraceCtx::NONE`] while tracing
    /// is disabled, which keeps the whole path span-free.
    pub fn begin_transfer(&self, parent: obs::TraceCtx) -> obs::TraceCtx {
        if parent.is_none() {
            obs::global().tracer().new_trace()
        } else {
            parent
        }
    }
}

/// Zeroes every `baddr` word in the heap — required when the one-byte
/// phase id wraps, so 255-phase-old entries cannot alias the new phase.
///
/// # Errors
/// Heap walking errors; [`Error::NeedsBaddr`] if the format has no `baddr`.
pub fn scrub_baddrs(vm: &mut Vm) -> Result<()> {
    let off = vm.spec().baddr_off().map_err(Error::Heap)?;
    let mut addrs: Vec<u64> = Vec::new();
    vm.walk_heap(|_, a, _| {
        addrs.push(a.0);
        Ok(())
    })
    .map_err(Error::Heap)?;
    let reg = obs::global();
    reg.counter(obs::names::SHUFFLE_BADDR_SCRUBS).inc();
    reg.counter(obs::names::SHUFFLE_BADDR_WORDS_SCRUBBED).add(addrs.len() as u64);
    for a in addrs {
        vm.heap().arena().store_word(a + off, 0).map_err(Error::Heap)?;
    }
    Ok(())
}

type UpdateFn = Box<dyn Fn(&mut Vm, Addr) -> Result<()> + Send + Sync>;

/// Post-transfer field-update hooks (`registerUpdate`, §3.3): a function
/// registered per class runs on every transferred object of that class
/// right after absolutization — e.g. re-initializing a timestamp field.
#[derive(Default)]
pub struct UpdateRegistry {
    hooks: RwLock<Vec<(String, UpdateFn)>>,
}

impl std::fmt::Debug for UpdateRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateRegistry").field("hooks", &self.hooks.read().len()).finish()
    }
}

impl UpdateRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        UpdateRegistry::default()
    }

    /// Registers an update function for a class.
    pub fn register_update(
        &self,
        class: impl Into<String>,
        f: impl Fn(&mut Vm, Addr) -> Result<()> + Send + Sync + 'static,
    ) {
        self.hooks.write().push((class.into(), Box::new(f)));
    }

    /// Index of the hook for `class`, if any.
    pub(crate) fn hook_index(&self, class: &str) -> Option<usize> {
        self.hooks.read().iter().position(|(c, _)| c == class)
    }

    /// Applies hook `idx` to `obj`.
    pub(crate) fn apply(&self, vm: &mut Vm, obj: Addr, idx: usize) -> Result<()> {
        let hooks = self.hooks.read();
        let (_, f) = hooks.get(idx).ok_or(Error::NoSuchHook(idx))?;
        f(vm, obj)
    }

    /// Number of registered hooks.
    pub fn len(&self) -> usize {
        self.hooks.read().len()
    }

    /// True when no hooks are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The analogue of `SkywayObjectOutputStream`: `write_object(root)` calls
/// transfer whole object graphs; `finish()` yields the stream chunks for
/// whatever carrier (file, socket) the caller wraps this in.
pub struct SkywayObjectOutputStream<'a> {
    sender: GraphSender<'a>,
    roots_written: usize,
}

impl<'a> std::fmt::Debug for SkywayObjectOutputStream<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkywayObjectOutputStream")
            .field("roots_written", &self.roots_written)
            .finish()
    }
}

impl<'a> SkywayObjectOutputStream<'a> {
    /// Opens an output stream from `vm` within the controller's current
    /// shuffle phase.
    ///
    /// # Errors
    /// [`Error::NeedsBaddr`] for baddr-tracking on a stock-format heap.
    pub fn new(
        vm: &'a Vm,
        dir: &'a TypeDirectory,
        node: NodeId,
        controller: &ShuffleController,
        cfg: SendConfig,
    ) -> Result<Self> {
        let sender =
            GraphSender::new(vm, dir, node, controller.sid(), controller.next_stream(), cfg)?;
        Ok(SkywayObjectOutputStream { sender, roots_written: 0 })
    }

    /// Reports into `registry` instead of the process-wide default.
    #[must_use]
    pub fn with_metrics(mut self, registry: std::sync::Arc<obs::Registry>) -> Self {
        self.sender = self.sender.with_metrics(registry);
        self
    }

    /// Attaches the stream to a transfer trace context (see
    /// [`ShuffleController::begin_transfer`]); wire carriers propagate it
    /// in the frame header.
    #[must_use]
    pub fn with_trace(mut self, ctx: obs::TraceCtx) -> Self {
        self.sender = self.sender.with_trace(ctx);
        self
    }

    /// Transfers the object graph rooted at `root` — the drop-in
    /// counterpart of `stream.writeObject(o)`.
    ///
    /// # Errors
    /// Heap/registry errors.
    pub fn write_object(&mut self, root: Addr) -> Result<()> {
        self.sender.write_root(root)?;
        self.roots_written += 1;
        Ok(())
    }

    /// Number of `write_object` calls so far.
    pub fn roots_written(&self) -> usize {
        self.roots_written
    }

    /// Closes the stream, returning its chunks and statistics.
    pub fn finish(self) -> StreamOut {
        self.sender.finish()
    }
}

/// The analogue of `SkywayObjectInputStream`: feed it the received chunks,
/// then `read_objects()` absolutizes the input buffers and returns the
/// roots.
pub struct SkywayObjectInputStream<'a> {
    receiver: GraphReceiver<'a>,
}

impl<'a> std::fmt::Debug for SkywayObjectInputStream<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkywayObjectInputStream").finish()
    }
}

impl<'a> SkywayObjectInputStream<'a> {
    /// Opens an input stream into `vm`.
    pub fn new(vm: &'a mut Vm, dir: &'a TypeDirectory, node: NodeId) -> Self {
        SkywayObjectInputStream { receiver: GraphReceiver::new(vm, dir, node) }
    }

    /// Reports into `registry` instead of the process-wide default.
    #[must_use]
    pub fn with_metrics(mut self, registry: std::sync::Arc<obs::Registry>) -> Self {
        self.receiver = self.receiver.with_metrics(registry);
        self
    }

    /// Re-attaches a transfer trace context on the receiving side (wire
    /// carriers do this automatically from traced frame headers).
    #[must_use]
    pub fn with_trace(mut self, ctx: obs::TraceCtx) -> Self {
        self.receiver = self.receiver.with_trace(ctx);
        self
    }

    /// Appends one received chunk (streaming arrival).
    ///
    /// # Errors
    /// Heap errors (old generation full) and corrupt-chunk errors.
    pub fn push_chunk(&mut self, bytes: &[u8]) -> Result<()> {
        self.receiver.push_chunk(bytes)
    }

    /// Absolutizes and returns the transferred roots. The counterpart of
    /// draining `readObject()` calls.
    ///
    /// # Errors
    /// Corrupt-stream errors.
    pub fn read_objects(self, hooks: Option<&UpdateRegistry>) -> Result<(Vec<Addr>, ReceiveStats)> {
        self.receiver.finish(hooks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sid_never_zero_and_wraps() {
        let c = ShuffleController::new();
        assert_eq!(c.sid(), 1);
        let mut wrapped = 0;
        for _ in 0..600 {
            if c.start_phase() {
                wrapped += 1;
            }
            assert_ne!(c.sid(), 0);
        }
        assert!(wrapped >= 2, "600 phases must wrap the 255-value sid at least twice");
    }

    #[test]
    fn stream_ids_unique_within_phase() {
        let c = ShuffleController::new();
        let a = c.next_stream();
        let b = c.next_stream();
        assert_ne!(a, b);
        assert_ne!(a, 0);
        c.start_phase();
        assert_eq!(c.next_stream(), a, "stream counter resets each phase");
    }
}
