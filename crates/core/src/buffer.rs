//! Output buffers: native (non-heap) memory that objects are cloned into,
//! flushed in chunks to a sink (paper §3.2, §4.2).
//!
//! Output buffers live *outside* the managed heap so the GC cannot reclaim
//! objects mid-transfer. Relative ("logical") addresses assigned during
//! relativization are gapless and keep growing across flushes —
//! `flushed_bytes` converts between the logical space and the physical
//! buffer. The byte stream cut into chunks at flush points *is* the logical
//! space; objects never span a chunk boundary (the flush happens when the
//! next object does not fit).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{Error, Result};

/// Marker word: the next object in the stream is a top-level (root) object
/// (§4.2 "Root Object Recognition").
pub const TOP_MARK: u64 = 0xffff_ffff_ffff_fff0;

/// Marker word: the following word is the logical address (+1) of an
/// already-transferred root — the paper's "backward reference" for a root
/// that was copied earlier in the same shuffle phase.
pub const TOP_REF: u64 = 0xffff_ffff_ffff_fff1;

/// Default chunk size (1 MiB).
pub const DEFAULT_CHUNK: usize = 1 << 20;

/// A reusable pool of chunk backings shared between output buffers and the
/// consumers that drain their chunks. In steady state a pipelined transfer
/// cycles the same handful of `Vec`s — sender acquires, receiver releases —
/// so per-chunk heap allocation drops to zero after warm-up.
#[derive(Debug, Default)]
pub struct ChunkPool {
    free: parking_lot::Mutex<Vec<Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ChunkPool {
    /// An empty pool.
    pub fn new() -> Arc<Self> {
        Arc::new(ChunkPool::default())
    }

    /// The process-wide per-node pool. Every [`crate::pipeline::PipelineEngine`]
    /// draws from it by default, so back-to-back transfers — even through
    /// different engines — recycle the same chunk backings instead of
    /// re-allocating per transfer. Tests that assert exact hit/miss counts
    /// should use an explicit pool ([`ChunkPool::new`]) instead: the global
    /// counters aggregate every transfer in the process.
    pub fn global() -> &'static Arc<ChunkPool> {
        static GLOBAL: std::sync::OnceLock<Arc<ChunkPool>> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(ChunkPool::new)
    }

    /// Hands out an empty `Vec` with at least `cap` capacity, preferring a
    /// recycled backing (a *hit*) over a fresh allocation (a *miss*).
    pub fn acquire(&self, cap: usize) -> Vec<u8> {
        let recycled = {
            let mut free = self.free.lock();
            let idx = free.iter().position(|v| v.capacity() >= cap);
            idx.map(|i| free.swap_remove(i))
        };
        match recycled {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Returns a chunk backing to the pool (cleared, capacity kept).
    pub fn release(&self, mut v: Vec<u8>) {
        if v.capacity() == 0 {
            return;
        }
        v.clear();
        self.free.lock().push(v);
    }

    /// Number of backings currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }

    /// Acquisitions served from the pool so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Acquisitions that had to allocate fresh memory so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// An output buffer bound to one destination/stream.
#[derive(Debug)]
pub struct OutputBuffer {
    data: Vec<u8>,
    chunk_limit: usize,
    /// Bytes already flushed out of the physical buffer (the paper's
    /// `ob.flushedBytes`).
    pub flushed_bytes: u64,
    /// Next logical allocation address (the paper's `ob.allocableAddr`).
    pub allocable_addr: u64,
    chunks: Vec<Vec<u8>>,
    pool: Option<Arc<ChunkPool>>,
}

impl OutputBuffer {
    /// Creates a buffer with the given flush threshold.
    pub fn new(chunk_limit: usize) -> Self {
        OutputBuffer {
            data: Vec::with_capacity(chunk_limit.min(DEFAULT_CHUNK)),
            chunk_limit: chunk_limit.max(64),
            flushed_bytes: 0,
            allocable_addr: 0,
            chunks: Vec::new(),
            pool: None,
        }
    }

    /// Creates a buffer whose chunk backings come from (and should be
    /// released back to) `pool`. The backing for each chunk is acquired
    /// lazily on first placement, so a final flush never strands a buffer.
    pub fn new_pooled(chunk_limit: usize, pool: Arc<ChunkPool>) -> Self {
        OutputBuffer {
            data: Vec::new(),
            chunk_limit: chunk_limit.max(64),
            flushed_bytes: 0,
            allocable_addr: 0,
            chunks: Vec::new(),
            pool: Some(pool),
        }
    }

    /// Logical bytes produced so far (flushed + pending).
    pub fn total_bytes(&self) -> u64 {
        self.flushed_bytes + self.data.len() as u64
    }

    /// Assigns logical space for an object of `size` bytes *without*
    /// consuming physical buffer space — this is the address-assignment of
    /// Algorithm 2 line 21/24. The physical bytes are reserved later by
    /// [`OutputBuffer::place`] when the object is popped from the gray
    /// queue, which is what lets earlier objects finish their reference
    /// patching before a flush cuts the stream.
    pub fn assign(&mut self, size: u64) -> u64 {
        let at = self.allocable_addr;
        self.allocable_addr += size;
        at
    }

    /// Reserves the physical bytes for a previously assigned logical
    /// address. Placements must happen in logical order (the gray queue is
    /// FIFO, so they do); if the object does not fit in the current chunk,
    /// the pending data is flushed first.
    ///
    /// # Errors
    /// [`Error::OutOfOrderPlacement`] if `logical` is not the next pending
    /// position.
    pub fn place(&mut self, logical: u64, size: u64) -> Result<()> {
        if self.data.len() + size as usize > self.chunk_limit && !self.data.is_empty() {
            self.flush();
        }
        if self.data.capacity() == 0 {
            if let Some(pool) = &self.pool {
                self.data = pool.acquire(self.chunk_limit);
            }
        }
        if logical != self.flushed_bytes + self.data.len() as u64 {
            return Err(Error::OutOfOrderPlacement {
                logical,
                expected: self.flushed_bytes + self.data.len() as u64,
            });
        }
        self.data.resize(self.data.len() + size as usize, 0);
        Ok(())
    }

    /// Assigns *and* places in one step (markers, which are emitted
    /// immediately).
    ///
    /// # Errors
    /// As [`OutputBuffer::place`].
    pub fn emit(&mut self, size: u64) -> Result<u64> {
        let at = self.assign(size);
        self.place(at, size)?;
        Ok(at)
    }

    /// Cuts the pending data into a chunk (no-op when empty).
    pub fn flush(&mut self) {
        if self.data.is_empty() {
            return;
        }
        self.flushed_bytes += self.data.len() as u64;
        self.chunks.push(std::mem::take(&mut self.data));
    }

    /// Finishes the stream, returning all chunks.
    pub fn finish(mut self) -> Vec<Vec<u8>> {
        self.flush();
        self.chunks
    }

    /// Chunks flushed so far (streaming consumers may drain these early).
    pub fn take_ready_chunks(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.chunks)
    }

    fn phys(&self, logical: u64, len: usize) -> Result<usize> {
        let start = logical
            .checked_sub(self.flushed_bytes)
            .ok_or(Error::BufferUnderflow { logical, flushed: self.flushed_bytes })?
            as usize;
        if start + len > self.data.len() {
            return Err(Error::BufferUnderflow { logical, flushed: self.flushed_bytes });
        }
        Ok(start)
    }

    /// Writes an 8-byte word at a logical address (must not be flushed yet).
    ///
    /// # Errors
    /// [`Error::BufferUnderflow`] if the address was already flushed.
    pub fn write_word(&mut self, logical: u64, val: u64) -> Result<()> {
        let p = self.phys(logical, 8)?;
        self.data[p..p + 8].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Writes a 4-byte value at a logical address.
    ///
    /// # Errors
    /// [`Error::BufferUnderflow`].
    pub fn write_u32(&mut self, logical: u64, val: u32) -> Result<()> {
        let p = self.phys(logical, 4)?;
        self.data[p..p + 4].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Writes raw bytes at a logical address.
    ///
    /// # Errors
    /// [`Error::BufferUnderflow`].
    pub fn write_bytes(&mut self, logical: u64, bytes: &[u8]) -> Result<()> {
        let p = self.phys(logical, bytes.len())?;
        self.data[p..p + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Mutable slice at a logical address (for direct heap→buffer copies).
    ///
    /// # Errors
    /// [`Error::BufferUnderflow`].
    pub fn slice_mut(&mut self, logical: u64, len: usize) -> Result<&mut [u8]> {
        let p = self.phys(logical, len)?;
        Ok(&mut self.data[p..p + len])
    }
}

/// Frames a finished stream of chunks into one self-describing byte blob
/// (what a Spark shuffle file or a socket payload carries).
///
/// Layout v1: `magic "SKYW" | version u8 | flags u8 | chunk_count u32 |`
/// then per chunk `len u32 | bytes`. Version 2 (emitted only when a live
/// trace context is attached — see [`frame_chunks_traced`]) inserts
/// `trace_id u64 | parent_span u64` between the count and the chunks, so
/// the receiver re-attaches the sender's transfer trace.
pub fn frame_chunks(chunks: &[Vec<u8>], flags: u8) -> Vec<u8> {
    frame_chunks_traced(chunks, flags, obs::TraceCtx::NONE)
}

/// [`frame_chunks`] with a trace context propagated in the header.
/// [`obs::TraceCtx::NONE`] produces a plain v1 frame, so untraced blobs
/// stay byte-identical to older writers.
pub fn frame_chunks_traced(chunks: &[Vec<u8>], flags: u8, ctx: obs::TraceCtx) -> Vec<u8> {
    let total: usize = chunks.iter().map(|c| c.len() + 4).sum();
    let mut out = Vec::with_capacity(total + 26);
    out.extend_from_slice(b"SKYW");
    out.push(if ctx.is_none() { 1 } else { 2 }); // version
    out.push(flags);
    out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
    if !ctx.is_none() {
        out.extend_from_slice(&ctx.trace_id.to_le_bytes());
        out.extend_from_slice(&ctx.parent.to_le_bytes());
    }
    for c in chunks {
        out.extend_from_slice(&(c.len() as u32).to_le_bytes());
        out.extend_from_slice(c);
    }
    out
}

/// Reads a little-endian `u32` at `pos`, bounds-checked.
fn read_u32_le(blob: &[u8], pos: usize) -> Result<u32> {
    let s =
        blob.get(pos..pos + 4).ok_or_else(|| Error::BadFrame("truncated chunk header".into()))?;
    let mut a = [0u8; 4];
    a.copy_from_slice(s);
    Ok(u32::from_le_bytes(a))
}

/// Reads a little-endian `u64` at `pos`, bounds-checked.
fn read_u64_le(blob: &[u8], pos: usize) -> Result<u64> {
    let s =
        blob.get(pos..pos + 8).ok_or_else(|| Error::BadFrame("truncated trace header".into()))?;
    let mut a = [0u8; 8];
    a.copy_from_slice(s);
    Ok(u64::from_le_bytes(a))
}

/// Parses a framed blob back into chunks (borrowed slices), discarding
/// any propagated trace context.
///
/// # Errors
/// [`Error::BadFrame`] for wrong magic/version/truncation.
pub fn parse_frames(blob: &[u8]) -> Result<(u8, Vec<&[u8]>)> {
    let (flags, _, chunks) = parse_frames_traced(blob)?;
    Ok((flags, chunks))
}

/// Parses a framed blob back into chunks plus the trace context
/// propagated in a v2 header ([`obs::TraceCtx::NONE`] for v1 frames).
///
/// # Errors
/// [`Error::BadFrame`] for wrong magic/version/truncation.
pub fn parse_frames_traced(blob: &[u8]) -> Result<(u8, obs::TraceCtx, Vec<&[u8]>)> {
    if blob.len() < 10 || &blob[0..4] != b"SKYW" {
        return Err(Error::BadFrame("missing SKYW magic".into()));
    }
    if blob[4] != 1 && blob[4] != 2 {
        return Err(Error::BadFrame(format!("unsupported version {}", blob[4])));
    }
    let flags = blob[5];
    let n = read_u32_le(blob, 6)? as usize;
    let (ctx, mut pos) = if blob[4] == 2 {
        let ctx =
            obs::TraceCtx { trace_id: read_u64_le(blob, 10)?, parent: read_u64_le(blob, 18)? };
        (ctx, 26)
    } else {
        (obs::TraceCtx::NONE, 10)
    };
    let mut chunks = Vec::with_capacity(n);
    for _ in 0..n {
        let len = read_u32_le(blob, pos)? as usize;
        pos += 4;
        if pos + len > blob.len() {
            return Err(Error::BadFrame("truncated chunk body".into()));
        }
        chunks.push(&blob[pos..pos + len]);
        pos += len;
    }
    Ok((flags, ctx, chunks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_space_is_gapless_across_flushes() {
        let mut b = OutputBuffer::new(64);
        let a1 = b.emit(48).unwrap();
        let a2 = b.emit(48).unwrap(); // doesn't fit with a1 → flush first
        let a3 = b.emit(8).unwrap();
        assert_eq!(a1, 0);
        assert_eq!(a2, 48);
        assert_eq!(a3, 96);
        let chunks = b.finish();
        let total: usize = chunks.iter().map(Vec::len).sum();
        assert_eq!(total, 104);
        // First chunk holds only the first object (flush-at-boundary).
        assert_eq!(chunks[0].len(), 48);
    }

    #[test]
    fn assignment_does_not_consume_physical_space() {
        let mut b = OutputBuffer::new(64);
        let a1 = b.assign(32);
        let a2 = b.assign(32);
        assert_eq!((a1, a2), (0, 32));
        // Place in order; no flush needed (64 bytes fits exactly).
        b.place(a1, 32).unwrap();
        b.place(a2, 32).unwrap();
        assert_eq!(b.finish().len(), 1);
    }

    #[test]
    fn out_of_order_placement_errors() {
        let mut b = OutputBuffer::new(64);
        let _a1 = b.assign(16);
        let a2 = b.assign(16);
        assert!(matches!(b.place(a2, 16), Err(Error::OutOfOrderPlacement { .. })));
    }

    #[test]
    fn writes_after_flush_fail() {
        let mut b = OutputBuffer::new(64);
        let a1 = b.emit(48).unwrap();
        b.write_word(a1, 42).unwrap();
        let _a2 = b.emit(48).unwrap(); // flushes chunk 1
        assert!(matches!(b.write_word(a1, 7), Err(Error::BufferUnderflow { .. })));
    }

    #[test]
    fn oversized_object_gets_its_own_chunk() {
        let mut b = OutputBuffer::new(64);
        b.emit(8).unwrap();
        let big = b.emit(500).unwrap();
        assert_eq!(big, 8);
        let chunks = b.finish();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].len(), 500);
    }

    #[test]
    fn word_roundtrip_via_frames() {
        let mut b = OutputBuffer::new(1024);
        let a = b.emit(16).unwrap();
        b.write_word(a, 0x1122_3344_5566_7788).unwrap();
        b.write_word(a + 8, TOP_MARK).unwrap();
        let chunks = b.finish();
        let blob = frame_chunks(&chunks, 3);
        let (flags, parsed) = parse_frames(&blob).unwrap();
        assert_eq!(flags, 3);
        assert_eq!(parsed.len(), 1);
        assert_eq!(u64::from_le_bytes(parsed[0][0..8].try_into().unwrap()), 0x1122_3344_5566_7788);
        assert_eq!(u64::from_le_bytes(parsed[0][8..16].try_into().unwrap()), TOP_MARK);
    }

    #[test]
    fn bad_frames_rejected() {
        assert!(parse_frames(b"nope").is_err());
        // Version 3 does not exist.
        assert!(parse_frames(b"SKYW\x03\x00\x00\x00\x00\x00").is_err());
        // Version 2 without its 16-byte trace header is truncated.
        assert!(parse_frames(b"SKYW\x02\x00\x01\x00\x00\x00").is_err());
        let blob = frame_chunks(&[vec![1, 2, 3]], 0);
        assert!(parse_frames(&blob[..blob.len() - 1]).is_err());
    }

    #[test]
    fn traced_frames_roundtrip_the_context() {
        let ctx = obs::TraceCtx { trace_id: 0xdead_beef, parent: 42 };
        let blob = frame_chunks_traced(&[vec![0u8; 8], vec![1u8; 16]], 5, ctx);
        assert_eq!(blob[4], 2, "live context promotes the frame to v2");
        let (flags, got, chunks) = parse_frames_traced(&blob).unwrap();
        assert_eq!(flags, 5);
        assert_eq!(got, ctx);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].len(), 16);
        // The trace-blind parser still reads v2 frames.
        let (flags, chunks) = parse_frames(&blob).unwrap();
        assert_eq!(flags, 5);
        assert_eq!(chunks.len(), 2);
    }

    #[test]
    fn untraced_frames_stay_v1() {
        let blob = frame_chunks_traced(&[vec![0u8; 8]], 0, obs::TraceCtx::NONE);
        assert_eq!(blob[4], 1);
        assert_eq!(blob, frame_chunks(&[vec![0u8; 8]], 0));
        let (_, ctx, _) = parse_frames_traced(&blob).unwrap();
        assert!(ctx.is_none());
    }

    #[test]
    fn pooled_buffer_recycles_backings() {
        let pool = ChunkPool::new();
        let mut b = OutputBuffer::new_pooled(64, Arc::clone(&pool));
        b.emit(48).unwrap();
        b.emit(48).unwrap(); // flush #1
        let chunks = b.finish(); // flush #2
        assert_eq!(chunks.len(), 2);
        assert_eq!(pool.misses(), 2, "cold pool allocates every backing");
        assert_eq!(pool.hits(), 0);
        for c in chunks {
            pool.release(c);
        }
        assert_eq!(pool.idle(), 2);
        // A second stream of the same shape runs entirely on recycled
        // backings: zero new misses.
        let mut b = OutputBuffer::new_pooled(64, Arc::clone(&pool));
        b.emit(48).unwrap();
        b.emit(48).unwrap();
        let chunks = b.finish();
        assert_eq!(chunks.len(), 2);
        assert_eq!(pool.misses(), 2);
        assert_eq!(pool.hits(), 2);
        assert!(chunks.iter().all(|c| c.len() == 48));
    }

    #[test]
    fn pool_acquire_respects_capacity() {
        let pool = ChunkPool::new();
        pool.release(Vec::with_capacity(16));
        // Too small for the request: a miss, small backing stays parked.
        let v = pool.acquire(1024);
        assert!(v.capacity() >= 1024);
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.idle(), 1);
        // Small request reuses the parked backing.
        let v = pool.acquire(8);
        assert!(v.capacity() >= 8);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn empty_stream_frames_cleanly() {
        let b = OutputBuffer::new(64);
        let chunks = b.finish();
        assert!(chunks.is_empty());
        let blob = frame_chunks(&chunks, 0);
        let (_, parsed) = parse_frames(&blob).unwrap();
        assert!(parsed.is_empty());
    }
}
