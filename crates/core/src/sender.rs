//! Sending an object graph (paper §4.2, Algorithm 2).
//!
//! A GC-like breadth-first traversal discovers every object reachable from
//! the roots, clones each object — format preserved — into a
//! per-destination output buffer, and performs the three lightweight
//! adjustments the paper defines:
//!
//! 1. the klass word is replaced by the global type id (`tID`);
//! 2. the mark word is sanitized (GC/lock bits reset, **identity hashcode
//!    preserved**);
//! 3. every reference field is *relativized* to the referee's logical
//!    position in the output buffer, recorded through the `baddr` header
//!    word tagged with the shuffle-phase id (`sID`) and stream id.
//!
//! Visited-tracking normally rides in the `baddr` word (one atomic CAS per
//! object); when the heap has no `baddr` word, or another thread already
//! claimed the object, a thread-local hash table takes over (§4.2 "Support
//! for Threads"). Heterogeneous clusters are handled here too: if the
//! receiver's object format differs, the clone is written *in the
//! receiver's format*, so only the sender pays (§3.1).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mheap::layout::{baddr, mark};
use mheap::{Addr, KlassKind, LayoutSpec, Vm};
use simnet::NodeId;

use crate::buffer::{OutputBuffer, TOP_MARK, TOP_REF};
use crate::registry::TypeDirectory;
use crate::{Error, Result};

/// How visited objects are tracked during a send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tracking {
    /// Through the `baddr` header word (the paper's design; requires the
    /// sender heap's object format to carry one).
    Baddr,
    /// Through a side hash table only (the ablation baseline quantifying
    /// what the extra header word buys).
    HashTable,
}

/// Configuration of one graph send.
#[derive(Debug, Clone, Copy)]
pub struct SendConfig {
    /// Flush threshold of the output buffer in bytes.
    pub chunk_limit: usize,
    /// The receiver's object format (equal to the sender's in homogeneous
    /// clusters; different formats trigger sender-side adjustment).
    pub receiver_spec: LayoutSpec,
    /// Visited-tracking mode.
    pub tracking: Tracking,
}

impl SendConfig {
    /// Homogeneous-cluster defaults for a sender VM.
    pub fn for_vm(vm: &Vm) -> Self {
        SendConfig {
            chunk_limit: crate::buffer::DEFAULT_CHUNK,
            receiver_spec: vm.spec(),
            tracking: if vm.spec().with_baddr { Tracking::Baddr } else { Tracking::HashTable },
        }
    }
}

/// Byte-composition statistics of a finished stream — the paper's §5.2
/// analysis of what the "extra bytes" consist of (headers 51%, padding 34%,
/// pointers 15% in their Spark runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct SendStats {
    /// Objects cloned into the buffer.
    pub objects: u64,
    /// Total logical bytes (markers included).
    pub total_bytes: u64,
    /// Bytes spent on object headers (mark + klass + baddr + array length).
    pub header_bytes: u64,
    /// Bytes spent on alignment padding.
    pub padding_bytes: u64,
    /// Bytes spent on reference fields (pointers).
    pub pointer_bytes: u64,
    /// Bytes spent on primitive payload.
    pub data_bytes: u64,
    /// Marker words (top marks / top refs).
    pub marker_bytes: u64,
    /// Objects found via the hash-table fallback rather than `baddr`.
    pub fallback_hits: u64,
    /// `baddr` CAS races lost to a concurrent stream (each falls back to
    /// the thread-local table and duplicates the object per stream).
    pub cas_conflicts: u64,
}

impl SendStats {
    /// Accumulates another stream's statistics (parallel-stream merge).
    pub fn merge(&mut self, o: &SendStats) {
        self.objects += o.objects;
        self.total_bytes += o.total_bytes;
        self.header_bytes += o.header_bytes;
        self.padding_bytes += o.padding_bytes;
        self.pointer_bytes += o.pointer_bytes;
        self.data_bytes += o.data_bytes;
        self.marker_bytes += o.marker_bytes;
        self.fallback_hits += o.fallback_hits;
        self.cas_conflicts += o.cas_conflicts;
    }
}

/// A finished per-destination stream: chunks plus statistics.
#[derive(Debug)]
pub struct StreamOut {
    /// Stream id (thread id within the shuffle phase).
    pub stream: u16,
    /// Flushed chunks in order.
    pub chunks: Vec<Vec<u8>>,
    /// Composition statistics.
    pub stats: SendStats,
}

/// Precomputed per-klass facts the per-object hot path needs; resolving
/// them once per class (instead of per object) is what keeps the traversal
/// at copy speed, as the real Skyway's VM-internal send loop is.
#[derive(Debug, Clone)]
struct KlassFacts {
    kind: KlassKind,
    tid: u64,
    elem_size: u64,
    /// Exact payload length (instances).
    payload_exact: u64,
    /// Receiver-format object size (instances).
    recv_size: u64,
    /// Sender-format reference-field offsets (instances).
    ref_offsets: Vec<u64>,
}

/// Cached observability handles for the sender hot loop: resolved once at
/// construction so per-object updates are single relaxed atomics.
#[derive(Debug)]
struct SenderMetrics {
    registry: Arc<obs::Registry>,
    objects: Arc<obs::Counter>,
    bytes_cloned: Arc<obs::Counter>,
    cas_conflicts: Arc<obs::Counter>,
    fallback_hits: Arc<obs::Counter>,
    chunk_bytes: Arc<obs::Histogram>,
}

impl SenderMetrics {
    fn new(registry: Arc<obs::Registry>) -> Self {
        SenderMetrics {
            objects: registry.counter(obs::names::SENDER_OBJECTS_VISITED),
            bytes_cloned: registry.counter(obs::names::SENDER_BYTES_CLONED),
            cas_conflicts: registry.counter(obs::names::SENDER_CAS_CONFLICTS),
            fallback_hits: registry.counter(obs::names::SENDER_FALLBACK_HITS),
            chunk_bytes: registry.histogram(obs::names::SENDER_CHUNK_BYTES),
            registry,
        }
    }
}

/// Multiply-mix hasher for heap-address keys (fxhash-style). The visited
/// fallback table sits on the traversal's hottest path — one lookup per
/// reference slot plus one insert per object — where SipHash costs more
/// than the probe itself. Addresses are word-aligned with entropy in the
/// middle bits; one odd-constant multiply spreads them adequately.
#[derive(Debug, Default, Clone)]
pub struct AddrHasher(u64);

impl std::hash::Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

/// Heap address → logical buffer address, keyed by the cheap [`AddrHasher`].
type AddrMap = HashMap<u64, u64, std::hash::BuildHasherDefault<AddrHasher>>;

/// The sender-side traversal state for one (destination, stream) pair.
pub struct GraphSender<'a> {
    vm: &'a Vm,
    dir: &'a TypeDirectory,
    node: NodeId,
    sid: u8,
    stream: u16,
    cfg: SendConfig,
    out: OutputBuffer,
    /// Thread-local fallback: heap address → logical buffer address.
    fallback: AddrMap,
    gray: VecDeque<(Addr, u64, u64)>,
    stats: SendStats,
    klass_facts: HashMap<u32, KlassFacts>,
    metrics: SenderMetrics,
    /// Trace context of the transfer this stream belongs to
    /// ([`obs::TraceCtx::NONE`] keeps every span inert).
    trace_ctx: obs::TraceCtx,
    /// Trace lane (0 = main; parallel worker *w* records on lane `w+1`).
    lane: u32,
    /// Open traverse-burst accumulator (see [`GraphSender::write_root`]).
    traverse: Option<TraverseBurst>,
}

/// Accumulator for one `trace.sender.traverse` burst span: consecutive
/// root traversals coalesce into a single span that closes when a chunk
/// flushes (or at stream finish). Per-root spans would outnumber every
/// other span kind a thousandfold on small-object workloads and dominate
/// the tracing overhead; a burst per flushed chunk matches the pipeline's
/// unit of work.
struct TraverseBurst {
    start_ns: u64,
    roots: u64,
    objects_before: u64,
    bytes_before: u64,
    cas_before: u64,
}

impl<'a> std::fmt::Debug for GraphSender<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphSender")
            .field("node", &self.node)
            .field("sid", &self.sid)
            .field("stream", &self.stream)
            .field("bytes", &self.out.total_bytes())
            .finish()
    }
}

impl<'a> GraphSender<'a> {
    /// Starts a send from `vm` on `node`, within shuffle phase `sid`, as
    /// stream `stream`.
    ///
    /// # Errors
    /// [`Error::NeedsBaddr`] if `Tracking::Baddr` is requested on a heap
    /// whose format has no `baddr` word.
    pub fn new(
        vm: &'a Vm,
        dir: &'a TypeDirectory,
        node: NodeId,
        sid: u8,
        stream: u16,
        cfg: SendConfig,
    ) -> Result<Self> {
        if cfg.tracking == Tracking::Baddr && !vm.spec().with_baddr {
            return Err(Error::NeedsBaddr);
        }
        Ok(GraphSender {
            vm,
            dir,
            node,
            sid,
            stream,
            cfg,
            out: OutputBuffer::new(cfg.chunk_limit),
            fallback: AddrMap::default(),
            gray: VecDeque::new(),
            stats: SendStats::default(),
            klass_facts: HashMap::new(),
            metrics: SenderMetrics::new(Arc::clone(obs::global())),
            trace_ctx: obs::TraceCtx::NONE,
            lane: 0,
            traverse: None,
        })
    }

    /// Reports into `registry` instead of the process-wide default
    /// (scoped registries keep test assertions exact).
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<obs::Registry>) -> Self {
        self.metrics = SenderMetrics::new(registry);
        self
    }

    /// Attaches this stream's spans (traversal per root) to `ctx`.
    /// Without this the sender emits no spans at all.
    #[must_use]
    pub fn with_trace(mut self, ctx: obs::TraceCtx) -> Self {
        self.trace_ctx = ctx;
        self
    }

    /// The trace context this stream's spans attach to (for carriers
    /// that propagate it on the wire).
    pub fn trace_ctx(&self) -> obs::TraceCtx {
        self.trace_ctx
    }

    /// Records this stream's spans on worker lane `lane` (its own Perfetto
    /// thread row) instead of the node's main lane.
    #[must_use]
    pub fn with_lane(mut self, lane: u32) -> Self {
        self.lane = lane;
        self
    }

    /// Draws chunk backings from `pool` instead of allocating each one,
    /// so steady-state pipelined transfer does zero per-chunk allocations.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<crate::buffer::ChunkPool>) -> Self {
        self.out = OutputBuffer::new_pooled(self.cfg.chunk_limit, pool);
        self
    }

    /// Resolves (and caches) the per-klass facts for the klass word of
    /// `obj`.
    fn facts_for(&mut self, obj: Addr) -> Result<&KlassFacts> {
        let kw = self
            .vm
            .heap()
            .arena()
            .load_word(obj.0 + self.vm.spec().klass_off())
            .map_err(Error::Heap)? as u32;
        if !self.klass_facts.contains_key(&kw) {
            let k = self.vm.klasses().get(mheap::KlassId(kw)).map_err(Error::Heap)?;
            let hdr = self.vm.spec().instance_header();
            let payload_exact =
                k.fields.iter().map(|f| f.offset + u64::from(f.ty.size())).max().unwrap_or(hdr)
                    - hdr;
            let facts = KlassFacts {
                kind: k.kind,
                tid: u64::from(self.dir.tid_for(self.node, &k)?),
                elem_size: match k.kind {
                    KlassKind::Instance => 0,
                    _ => u64::from(k.elem_size().map_err(Error::Heap)?),
                },
                payload_exact,
                recv_size: mheap::layout::align8(
                    self.cfg.receiver_spec.instance_header() + payload_exact,
                ),
                ref_offsets: k
                    .fields
                    .iter()
                    .filter(|f| matches!(f.ty, mheap::FieldType::Ref))
                    .map(|f| f.offset)
                    .collect(),
            };
            self.klass_facts.insert(kw, facts);
        }
        Ok(&self.klass_facts[&kw])
    }

    /// The logical position already assigned to `obj` in this phase, if
    /// any (Algorithm 2 lines 18–26 visited check).
    fn lookup_visited(&mut self, obj: Addr) -> Result<Option<u64>> {
        match self.cfg.tracking {
            Tracking::HashTable => Ok(self.fallback.get(&obj.0).copied()),
            Tracking::Baddr => {
                // Segment residents have no writable baddr word (sealed
                // memory is read-only, and a stale sealed baddr could
                // falsely match): track them in the thread-local table.
                if self.vm.heap().in_segment(obj) {
                    return Ok(self.fallback.get(&obj.0).copied());
                }
                let off = obj.0 + self.vm.spec().baddr_off().map_err(Error::Heap)?;
                let w = self.vm.heap().arena().load_word_atomic(off).map_err(Error::Heap)?;
                if baddr::sid_of(w) != self.sid {
                    return Ok(None);
                }
                if baddr::stream_of(w) == self.stream {
                    return Ok(Some(baddr::rel_of(w)));
                }
                // Claimed by another stream/thread: our own copy lives in
                // the thread-local table (or doesn't exist yet).
                if let Some(&rel) = self.fallback.get(&obj.0) {
                    self.stats.fallback_hits += 1;
                    self.metrics.fallback_hits.inc();
                    return Ok(Some(rel));
                }
                Ok(None)
            }
        }
    }

    /// Records `obj → logical` for this phase (CAS on `baddr`, falling back
    /// to the hash table when another thread wins or already owns it).
    fn claim(&mut self, obj: Addr, logical: u64) -> Result<()> {
        match self.cfg.tracking {
            Tracking::HashTable => {
                self.fallback.insert(obj.0, logical);
                Ok(())
            }
            Tracking::Baddr => {
                // Sealed segment memory rejects the baddr CAS; keep the
                // mapping in the thread-local table instead.
                if self.vm.heap().in_segment(obj) {
                    self.fallback.insert(obj.0, logical);
                    return Ok(());
                }
                let off = obj.0 + self.vm.spec().baddr_off().map_err(Error::Heap)?;
                let arena = self.vm.heap().arena();
                let old = arena.load_word_atomic(off).map_err(Error::Heap)?;
                if baddr::sid_of(old) == self.sid {
                    // Another stream claimed it between lookup and claim.
                    self.note_cas_conflict();
                    self.fallback.insert(obj.0, logical);
                    return Ok(());
                }
                let new = baddr::compose(self.sid, self.stream, logical);
                match arena.cas_word(off, old, new).map_err(Error::Heap)? {
                    Ok(_) => Ok(()),
                    Err(_) => {
                        self.note_cas_conflict();
                        self.fallback.insert(obj.0, logical);
                        Ok(())
                    }
                }
            }
        }
    }

    /// Records one lost `baddr` CAS race in both the per-stream stats and
    /// the flight recorder.
    fn note_cas_conflict(&mut self) {
        self.stats.cas_conflicts += 1;
        self.metrics.cas_conflicts.inc();
        self.metrics.registry.record(obs::Event::CasConflict { sid: u32::from(self.sid) });
    }

    /// Object size *in the receiver's format* (facts precomputed).
    fn size_recv(&mut self, obj: Addr) -> Result<u64> {
        let facts = self.facts_for(obj)?;
        match facts.kind {
            KlassKind::Instance => Ok(facts.recv_size),
            _ => {
                let es = facts.elem_size;
                let hdr = self.cfg.receiver_spec.array_header();
                let len = self.vm.array_len(obj).map_err(Error::Heap)?;
                Ok(mheap::layout::align8(hdr + len * es))
            }
        }
    }

    /// Visits a referee: returns its logical address, enqueuing it for
    /// cloning if unseen (Algorithm 2 lines 15–27).
    fn visit(&mut self, obj: Addr) -> Result<u64> {
        if let Some(rel) = self.lookup_visited(obj)? {
            return Ok(rel);
        }
        let size = self.size_recv(obj)?;
        let logical = self.out.assign(size);
        self.claim(obj, logical)?;
        self.gray.push_back((obj, logical, size));
        Ok(logical)
    }

    /// Clones one object into the buffer at its assigned logical address,
    /// adjusting headers and relativizing references (Algorithm 2 lines
    /// 10–27).
    fn clone_object(&mut self, obj: Addr, logical: u64, size: u64) -> Result<()> {
        self.out.place(logical, size)?;
        self.stats.objects += 1;
        self.metrics.objects.inc();
        let facts = self.facts_for(obj)?.clone();
        let sspec = self.vm.spec();
        let rspec = self.cfg.receiver_spec;
        let arena = self.vm.heap().arena();

        // Header: sanitized mark (hashcode preserved), tID, zero baddr.
        let m = arena.load_word(obj.0 + sspec.mark_off()).map_err(Error::Heap)?;
        self.out.write_word(logical, mark::sanitized_for_transfer(m))?;
        self.out.write_word(logical + 8, facts.tid)?;
        if rspec.with_baddr {
            self.out.write_word(logical + rspec.baddr_off().map_err(Error::Heap)?, 0)?;
        }

        match facts.kind {
            KlassKind::Instance => {
                let payload = facts.payload_exact;
                let hdr = rspec.instance_header();
                self.stats.header_bytes += hdr;
                self.stats.padding_bytes += size - hdr - payload;
                // Bulk copy of the entire payload — this is the "transfers
                // every object as a whole" fast path; no per-field access.
                if payload > 0 {
                    let dst = self.out.slice_mut(logical + hdr, payload as usize)?;
                    arena.read_bytes(obj.0 + sspec.instance_header(), dst).map_err(Error::Heap)?;
                }
                // Relativize reference slots within the clone.
                let shdr = sspec.instance_header();
                for &off in &facts.ref_offsets {
                    self.stats.pointer_bytes += 8;
                    let tgt = Addr::from_raw(
                        self.vm.heap().arena().load_word(obj.raw() + off).map_err(Error::Heap)?,
                    );
                    let slot = logical + hdr + (off - shdr);
                    if tgt.is_null() {
                        self.out.write_word(slot, 0)?;
                    } else {
                        let rel = self.visit(tgt)?;
                        self.out.write_word(slot, rel + 1)?;
                    }
                }
                self.stats.data_bytes += payload - 8 * facts.ref_offsets.len() as u64;
            }
            KlassKind::PrimArray(p) => {
                let len = self.vm.array_len(obj).map_err(Error::Heap)?;
                let hdr = rspec.array_header();
                self.stats.header_bytes += hdr;
                self.write_array_len(logical, len)?;
                let bytes = len * u64::from(p.size());
                self.stats.data_bytes += bytes;
                self.stats.padding_bytes += size - hdr - bytes;
                if bytes > 0 {
                    let dst = self.out.slice_mut(logical + hdr, bytes as usize)?;
                    arena.read_bytes(obj.0 + sspec.array_header(), dst).map_err(Error::Heap)?;
                }
            }
            KlassKind::RefArray => {
                let len = self.vm.array_len(obj).map_err(Error::Heap)?;
                let hdr = rspec.array_header();
                self.stats.header_bytes += hdr;
                self.write_array_len(logical, len)?;
                self.stats.pointer_bytes += len * 8;
                self.stats.padding_bytes += size - hdr - len * 8;
                let sbase = obj.0 + sspec.array_header();
                for i in 0..len {
                    let tgt = Addr(arena.load_word(sbase + i * 8).map_err(Error::Heap)?);
                    let slot = logical + hdr + i * 8;
                    if tgt.is_null() {
                        self.out.write_word(slot, 0)?;
                    } else {
                        let rel = self.visit(tgt)?;
                        self.out.write_word(slot, rel + 1)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn write_array_len(&mut self, logical: u64, len: u64) -> Result<()> {
        let rspec = self.cfg.receiver_spec;
        match rspec.array_len_size {
            8 => self.out.write_word(logical + rspec.array_len_off(), len),
            4 => self.out.write_u32(logical + rspec.array_len_off(), len as u32),
            n => Err(Error::BadFrame(format!("array_len_size {n}"))),
        }
    }

    /// Transfers the object graph of one root (`writeObject(root)`): emits
    /// a top mark (or a backward reference if this root already went out in
    /// this phase), then drains the BFS queue.
    ///
    /// When traced, consecutive roots accumulate into one open traverse
    /// burst; [`GraphSender::take_ready_chunks`] and
    /// [`GraphSender::finish`] close it, so traverse spans scale with
    /// flushed chunks rather than with object count.
    ///
    /// # Errors
    /// Heap/registry errors.
    pub fn write_root(&mut self, root: Addr) -> Result<()> {
        if self.trace_ctx.is_none() {
            return self.write_root_inner(root);
        }
        if self.traverse.is_none() {
            self.traverse = Some(TraverseBurst {
                start_ns: self.metrics.registry.tracer().now_ns(),
                roots: 0,
                objects_before: self.stats.objects,
                bytes_before: self.out.total_bytes(),
                cas_before: self.stats.cas_conflicts,
            });
        }
        if let Some(b) = self.traverse.as_mut() {
            b.roots += 1;
        }
        self.write_root_inner(root)
    }

    /// Publishes the open traverse-burst span, ending now.
    fn close_traverse_burst(&mut self) {
        let Some(b) = self.traverse.take() else {
            return;
        };
        let tracer = self.metrics.registry.tracer();
        let dur = tracer.now_ns().saturating_sub(b.start_ns);
        tracer.record_closed_on(
            obs::names::TRACE_SENDER_TRAVERSE,
            self.trace_ctx,
            &self.vm.name,
            self.lane,
            dur,
            &[
                ("roots", b.roots),
                ("objects", self.stats.objects - b.objects_before),
                ("bytes", self.out.total_bytes() - b.bytes_before),
                ("cas_conflicts", self.stats.cas_conflicts - b.cas_before),
            ],
        );
    }

    fn write_root_inner(&mut self, root: Addr) -> Result<()> {
        if root.is_null() {
            return Err(Error::NullRoot);
        }
        if let Some(rel) = self.lookup_visited(root)? {
            let at = self.out.emit(16)?;
            self.out.write_word(at, TOP_REF)?;
            self.out.write_word(at + 8, rel + 1)?;
            self.stats.marker_bytes += 16;
            return Ok(());
        }
        let at = self.out.emit(8)?;
        self.out.write_word(at, TOP_MARK)?;
        self.stats.marker_bytes += 8;
        let size = self.size_recv(root)?;
        let logical = self.out.assign(size);
        self.claim(root, logical)?;
        self.gray.push_back((root, logical, size));
        while let Some((obj, logical, size)) = self.gray.pop_front() {
            self.clone_object(obj, logical, size)?;
        }
        Ok(())
    }

    /// Completes the stream.
    pub fn finish(mut self) -> StreamOut {
        self.close_traverse_burst();
        self.stats.total_bytes = self.out.total_bytes();
        self.metrics.bytes_cloned.add(self.stats.total_bytes);
        let chunks = self.out.finish();
        for c in &chunks {
            // Inlined note_chunk_sent: `self.out` is consumed above, so only
            // field accesses (not whole-`self` methods) are allowed here.
            self.metrics.chunk_bytes.record(c.len() as u64);
            self.metrics
                .registry
                .record(obs::Event::ChunkSent { sid: u32::from(self.sid), bytes: c.len() as u64 });
        }
        StreamOut { stream: self.stream, chunks, stats: self.stats }
    }

    /// Bytes produced so far (streaming diagnostics).
    pub fn bytes_so_far(&self) -> u64 {
        self.out.total_bytes()
    }

    /// Upper-bound estimate of the wire bytes `roots` will produce, or
    /// `None` as soon as the stream may exceed `cap` or the graph is not
    /// *flat* — some root carries reference fields (or is a reference
    /// array), so the traversal could reach an unbounded amount of extra
    /// data. For flat graphs the stream is exactly one top mark plus one
    /// object per root (a repeated root costs a 16-byte backward reference,
    /// never more), which makes this bound tight enough for the pipeline's
    /// single-chunk fallback to trust without walking the heap twice.
    ///
    /// Must be called before any `write_root` — it only inspects klass
    /// facts and array lengths, consuming no buffer space.
    ///
    /// # Errors
    /// Heap/registry errors resolving a root's klass.
    pub fn estimate_flat_bytes(&mut self, roots: &[Addr], cap: u64) -> Result<Option<u64>> {
        let mut total = 0u64;
        for &root in roots {
            if root.is_null() {
                return Ok(None);
            }
            let flat = {
                let facts = self.facts_for(root)?;
                facts.ref_offsets.is_empty() && !matches!(facts.kind, KlassKind::RefArray)
            };
            if !flat {
                return Ok(None);
            }
            total += 8 + self.size_recv(root)?;
            if total > cap {
                return Ok(None);
            }
        }
        Ok(Some(total))
    }

    /// Chunks that have already flushed (streaming carriers drain these so
    /// transfer overlaps with the traversal, §3.2).
    pub fn take_ready_chunks(&mut self) -> Vec<Vec<u8>> {
        let chunks = self.out.take_ready_chunks();
        if !chunks.is_empty() {
            // A chunk boundary ends the current traverse burst.
            self.close_traverse_burst();
        }
        for c in &chunks {
            self.note_chunk_sent(c.len());
        }
        chunks
    }

    /// Records one emitted chunk in the histogram and the flight recorder.
    fn note_chunk_sent(&self, bytes: usize) {
        self.metrics.chunk_bytes.record(bytes as u64);
        self.metrics
            .registry
            .record(obs::Event::ChunkSent { sid: u32::from(self.sid), bytes: bytes as u64 });
    }

    /// The receiver object format this sender is writing for.
    pub fn receiver_spec(&self) -> LayoutSpec {
        self.cfg.receiver_spec
    }

    /// The registry this sender reports into (carriers emit their
    /// chunk-send spans through the same tracer).
    pub(crate) fn registry(&self) -> &Arc<obs::Registry> {
        &self.metrics.registry
    }

    /// The sending VM's node name (span labeling).
    pub(crate) fn node_name(&self) -> &str {
        &self.vm.name
    }

    /// Records one successful steal by this worker: a lane-attributed
    /// trace span annotated with the victim worker and batch size.
    pub(crate) fn note_steal(&self, victim: usize, batch: usize, dur_ns: u64) {
        self.metrics.registry.tracer().record_closed_on(
            obs::names::TRACE_SENDER_STEAL,
            self.trace_ctx,
            &self.vm.name,
            self.lane,
            dur_ns,
            &[("victim", victim as u64), ("batch", batch as u64)],
        );
    }
}

/// Worker-count and stealing knobs for parallel traversal.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Traversal workers (= streams). Defaults to the host's available
    /// parallelism; never clamped to a magic ceiling.
    pub workers: usize,
    /// Upper bound on roots moved per steal (half the victim's queue is
    /// taken, capped here so one steal cannot empty a large victim).
    pub steal_batch: usize,
    /// Pipeline policy knob: parallel mode engages only when
    /// `roots >= workers * min_roots_per_worker` — below that the
    /// per-worker setup outweighs the traversal it parallelizes.
    pub min_roots_per_worker: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            steal_batch: 32,
            min_roots_per_worker: 8,
        }
    }
}

impl ParallelConfig {
    /// A config with an explicit worker count (other knobs default).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig { workers: workers.max(1), ..ParallelConfig::default() }
    }
}

/// Shared work-stealing root queues for one parallel traversal: one deque
/// per worker seeded with a contiguous block of `(original index, root)`
/// pairs; an idle worker steals the back half of a victim's queue.
///
/// Lock discipline: every method holds at most ONE queue lock at a time —
/// a steal drains the victim into a local buffer, releases, and only then
/// locks the thief's own queue.
pub(crate) struct StealSet {
    queues: Vec<Mutex<VecDeque<(u32, Addr)>>>,
    steal_batch: usize,
    steals: AtomicU64,
}

impl StealSet {
    /// Partitions `roots` into contiguous per-worker blocks (contiguity
    /// keeps a steal's batch adjacent in the original root order, which
    /// the receiver's index table reassembles anyway).
    pub(crate) fn new(roots: &[Addr], workers: usize, steal_batch: usize) -> Self {
        let workers = workers.max(1);
        let per = roots.len().div_ceil(workers).max(1);
        let mut queues: Vec<Mutex<VecDeque<(u32, Addr)>>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = (w * per).min(roots.len());
            let hi = ((w + 1) * per).min(roots.len());
            queues.push(Mutex::new(
                roots[lo..hi].iter().enumerate().map(|(i, &r)| ((lo + i) as u32, r)).collect(),
            ));
        }
        StealSet { queues, steal_batch: steal_batch.max(1), steals: AtomicU64::new(0) }
    }

    /// Pops the next root from `me`'s own queue.
    pub(crate) fn pop_local(&self, me: usize) -> Option<(u32, Addr)> {
        self.queues[me].lock().pop_front()
    }

    /// Steals up to half of some victim's queue into `me`'s queue,
    /// returning `(victim, batch)` on success and `None` when every other
    /// queue is empty (at which point no new roots can ever appear —
    /// traversal-discovered objects live in each sender's private BFS
    /// queue, never here — so `None` is the termination signal).
    pub(crate) fn steal(&self, me: usize) -> Option<(usize, usize)> {
        let n = self.queues.len();
        for i in 1..n {
            let victim = (me + i) % n;
            let grabbed: VecDeque<(u32, Addr)> = {
                let mut q = self.queues[victim].lock();
                let take = q.len().div_ceil(2).min(self.steal_batch);
                if take == 0 {
                    continue;
                }
                let at = q.len() - take;
                q.split_off(at)
            };
            let batch = grabbed.len();
            self.steals.fetch_add(1, Ordering::Relaxed);
            let mut own = self.queues[me].lock();
            own.extend(grabbed);
            return Some((victim, batch));
        }
        None
    }

    /// Total successful steals across all workers.
    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

/// Result of a work-stealing parallel send: the non-empty streams, the
/// original root index of every emitted root (per stream, in emission
/// order — the receiver's reassembly table), and the steal count.
#[derive(Debug)]
pub struct ParallelSend {
    /// Finished streams (workers that never claimed a root produce none).
    pub streams: Vec<StreamOut>,
    /// `root_order[i][j]` = original index in `roots` of the `j`-th root
    /// emitted by `streams[i]`.
    pub root_order: Vec<Vec<u32>>,
    /// Successful inter-worker steals during the traversal.
    pub steals: u64,
}

/// Sends `roots` using work-stealing parallel streams over one shared heap
/// (§4.2 "Support for Threads"): roots start as contiguous per-worker
/// blocks, idle workers steal from victims, each worker claims objects via
/// CAS on `baddr`, and objects reached by several workers are duplicated
/// per stream. Worker `t` sends as stream `stream_base + t`; workers that
/// end up with zero roots (all stolen away, or more workers than roots)
/// exit without allocating a stream.
///
/// # Errors
/// Propagates the first sender error from any worker.
#[allow(clippy::too_many_arguments)]
pub fn send_roots_parallel(
    vm: &Vm,
    dir: &TypeDirectory,
    node: NodeId,
    sid: u8,
    stream_base: u16,
    roots: &[Addr],
    par: &ParallelConfig,
    cfg: SendConfig,
) -> Result<ParallelSend> {
    let workers = par.workers.max(1);
    // A worker's output: its finished stream plus the original root
    // indices it emitted, or `None` when every root was stolen away.
    type WorkerStream = Option<(StreamOut, Vec<u32>)>;
    let steal_set = StealSet::new(roots, workers, par.steal_batch);
    let results: Vec<Result<WorkerStream>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let steal_set = &steal_set;
                scope.spawn(move || -> Result<WorkerStream> {
                    let mut sender: Option<GraphSender<'_>> = None;
                    let mut order: Vec<u32> = Vec::new();
                    loop {
                        let (idx, root) = match steal_set.pop_local(t) {
                            Some(item) => item,
                            None => {
                                let t0 = std::time::Instant::now();
                                match steal_set.steal(t) {
                                    Some((victim, batch)) => {
                                        if let Some(s) = sender.as_ref() {
                                            s.note_steal(
                                                victim,
                                                batch,
                                                t0.elapsed().as_nanos() as u64,
                                            );
                                        }
                                        continue;
                                    }
                                    None => break,
                                }
                            }
                        };
                        if sender.is_none() {
                            let stream = stream_base.wrapping_add(t as u16);
                            sender = Some(
                                GraphSender::new(vm, dir, node, sid, stream, cfg)?
                                    .with_lane(t as u32 + 1),
                            );
                        }
                        if let Some(s) = sender.as_mut() {
                            s.write_root(root)?;
                            order.push(idx);
                        }
                    }
                    Ok(sender.map(|s| (s.finish(), order)))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut streams = Vec::new();
    let mut root_order = Vec::new();
    for r in results {
        if let Some((st, ord)) = r? {
            streams.push(st);
            root_order.push(ord);
        }
    }
    obs::global().counter(obs::names::SENDER_STEALS).add(steal_set.steals());
    Ok(ParallelSend { streams, root_order, steals: steal_set.steals() })
}
