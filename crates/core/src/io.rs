//! Carrier streams (paper §3.3): `SkywayFileOutputStream` /
//! `SkywayFileInputStream` and `SkywaySocketOutputStream` /
//! `SkywaySocketInputStream` — "one can easily program with Skyway in the
//! same way as programming with the Java serializer".
//!
//! These wrap the format-level [`crate::stream`] classes with a carrier:
//! the simulated per-node disk (shuffle spill files) or the simulated
//! network (socket-style links). Chunks are streamed to the carrier as the
//! output buffer flushes, so transfer overlaps with traversal just as §3.2
//! describes.

use mheap::layout::Addr;
use mheap::Vm;
use simnet::{Cluster, NodeId};

use crate::buffer::{frame_chunks, parse_frames};
use crate::registry::TypeDirectory;
use crate::sender::{GraphSender, SendConfig, SendStats};
use crate::stream::{ShuffleController, UpdateRegistry};
use crate::{Error, Result};

fn spec_flags(spec: mheap::LayoutSpec) -> u8 {
    (u8::from(spec.with_baddr)) | (u8::from(spec.array_len_size == 4) << 1)
}

/// Writes object graphs into a named file on a node's simulated disk.
///
/// The counterpart of `SkywayFileOutputStream`: construct, call
/// [`SkywayFileOutputStream::write_object`] for every root, then
/// [`SkywayFileOutputStream::close`] to commit the file (charging write-I/O
/// on the owning node).
pub struct SkywayFileOutputStream<'a> {
    sender: GraphSender<'a>,
    node: NodeId,
    name: String,
}

impl<'a> std::fmt::Debug for SkywayFileOutputStream<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkywayFileOutputStream")
            .field("node", &self.node)
            .field("name", &self.name)
            .finish()
    }
}

impl<'a> SkywayFileOutputStream<'a> {
    /// Opens a file stream on `node`'s disk.
    ///
    /// # Errors
    /// [`Error::NeedsBaddr`] as for any sender.
    pub fn create(
        vm: &'a Vm,
        dir: &'a TypeDirectory,
        node: NodeId,
        controller: &ShuffleController,
        cfg: SendConfig,
        name: impl Into<String>,
    ) -> Result<Self> {
        let sender =
            GraphSender::new(vm, dir, node, controller.sid(), controller.next_stream(), cfg)?;
        Ok(SkywayFileOutputStream { sender, node, name: name.into() })
    }

    /// Transfers one object graph (drop-in `writeObject`).
    ///
    /// # Errors
    /// Heap/registry errors.
    pub fn write_object(&mut self, root: Addr) -> Result<()> {
        self.sender.write_root(root)
    }

    /// Commits the file to the node's disk, charging write-I/O time, and
    /// returns the send statistics.
    ///
    /// # Errors
    /// Cluster errors.
    pub fn close(self, cluster: &mut Cluster) -> Result<SendStats> {
        let spec_byte = spec_flags(self.sender.receiver_spec());
        let out = self.sender.finish();
        let blob = frame_chunks(&out.chunks, spec_byte);
        cluster.disk_write(self.node, self.name, blob).map_err(Error::Cluster)?;
        Ok(out.stats)
    }
}

/// Reads object graphs from a named file on a node's simulated disk —
/// the counterpart of `SkywayFileInputStream`.
#[derive(Debug)]
pub struct SkywayFileInputStream;

impl SkywayFileInputStream {
    /// Reads and absolutizes a Skyway file, charging read-I/O time, and
    /// returns the root objects (callers must root them before further
    /// allocation).
    ///
    /// # Errors
    /// Missing-file, corrupt-stream, and heap errors.
    pub fn open_and_read(
        vm: &mut Vm,
        dir: &TypeDirectory,
        node: NodeId,
        cluster: &mut Cluster,
        name: &str,
        hooks: Option<&UpdateRegistry>,
    ) -> Result<Vec<Addr>> {
        let blob = cluster.disk_read(node, name).map_err(Error::Cluster)?;
        read_blob(vm, dir, node, &blob, hooks)
    }
}

/// Sends object graphs over a simulated socket link, streaming each chunk
/// as it flushes — the counterpart of `SkywaySocketOutputStream`.
pub struct SkywaySocketOutputStream<'a> {
    sender: GraphSender<'a>,
    src: NodeId,
    dst: NodeId,
}

impl<'a> std::fmt::Debug for SkywaySocketOutputStream<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkywaySocketOutputStream")
            .field("src", &self.src)
            .field("dst", &self.dst)
            .finish()
    }
}

impl<'a> SkywaySocketOutputStream<'a> {
    /// Connects a socket stream from `src` to `dst`.
    ///
    /// # Errors
    /// [`Error::NeedsBaddr`] as for any sender.
    pub fn connect(
        vm: &'a Vm,
        dir: &'a TypeDirectory,
        src: NodeId,
        dst: NodeId,
        controller: &ShuffleController,
        cfg: SendConfig,
    ) -> Result<Self> {
        let sender =
            GraphSender::new(vm, dir, src, controller.sid(), controller.next_stream(), cfg)?;
        Ok(SkywaySocketOutputStream { sender, src, dst })
    }

    /// Transfers one object graph, streaming any chunks that flushed while
    /// traversing (transfer overlaps computation, §3.2).
    ///
    /// # Errors
    /// Heap/registry/cluster errors.
    pub fn write_object(&mut self, root: Addr, cluster: &mut Cluster) -> Result<()> {
        self.sender.write_root(root)?;
        for chunk in self.sender.take_ready_chunks() {
            cluster
                .net_send(self.src, self.dst, frame_chunk_msg(&chunk))
                .map_err(Error::Cluster)?;
        }
        Ok(())
    }

    /// Flushes the tail and sends the end-of-stream marker.
    ///
    /// # Errors
    /// Cluster errors.
    pub fn close(self, cluster: &mut Cluster) -> Result<SendStats> {
        let out = self.sender.finish();
        for chunk in &out.chunks {
            cluster.net_send(self.src, self.dst, frame_chunk_msg(chunk)).map_err(Error::Cluster)?;
        }
        cluster.net_send(self.src, self.dst, vec![0u8]).map_err(Error::Cluster)?; // EOS
        Ok(out.stats)
    }
}

fn frame_chunk_msg(chunk: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(chunk.len() + 1);
    m.push(1u8); // CHUNK
    m.extend_from_slice(chunk);
    m
}

/// Receives a socket stream — the counterpart of `SkywaySocketInputStream`.
#[derive(Debug)]
pub struct SkywaySocketInputStream;

impl SkywaySocketInputStream {
    /// Drains queued messages from `src` until the end-of-stream marker,
    /// placing each chunk into an input buffer as it arrives, then
    /// absolutizes. Returns the roots.
    ///
    /// # Errors
    /// Transport, corrupt-stream, and heap errors.
    pub fn read_all(
        vm: &mut Vm,
        dir: &TypeDirectory,
        node: NodeId,
        src: NodeId,
        cluster: &mut Cluster,
        hooks: Option<&UpdateRegistry>,
    ) -> Result<Vec<Addr>> {
        let mut rx = crate::receiver::GraphReceiver::new(vm, dir, node);
        loop {
            let msg = cluster.net_recv(node, src).map_err(Error::Cluster)?;
            match msg.first() {
                Some(1) => rx.push_chunk(&msg[1..])?,
                Some(0) => break,
                _ => return Err(Error::BadFrame("bad socket message".into())),
            }
        }
        let (roots, _) = rx.finish(hooks)?;
        Ok(roots)
    }
}

/// Shared blob-reading path (file carrier).
fn read_blob(
    vm: &mut Vm,
    dir: &TypeDirectory,
    node: NodeId,
    blob: &[u8],
    hooks: Option<&UpdateRegistry>,
) -> Result<Vec<Addr>> {
    let (flags, chunks) = parse_frames(blob)?;
    let wire = mheap::LayoutSpec {
        with_baddr: flags & 1 != 0,
        array_len_size: if flags & 2 != 0 { 4 } else { 8 },
    };
    if wire != vm.spec() {
        return Err(Error::SpecMismatch {
            wire: format!("{wire:?}"),
            local: format!("{:?}", vm.spec()),
        });
    }
    let mut rx = crate::receiver::GraphReceiver::new(vm, dir, node);
    for c in chunks {
        rx.push_chunk(c)?;
    }
    let (roots, _) = rx.finish(hooks)?;
    Ok(roots)
}
