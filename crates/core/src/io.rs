//! Carrier streams (paper §3.3): `SkywayFileOutputStream` /
//! `SkywayFileInputStream` and `SkywaySocketOutputStream` /
//! `SkywaySocketInputStream` — "one can easily program with Skyway in the
//! same way as programming with the Java serializer".
//!
//! These wrap the format-level [`crate::stream`] classes with a carrier:
//! the simulated per-node disk (shuffle spill files) or the simulated
//! network (socket-style links). Chunks are streamed to the carrier as the
//! output buffer flushes, so transfer overlaps with traversal just as §3.2
//! describes.

use mheap::layout::Addr;
use mheap::Vm;
use simnet::{Cluster, NodeId};

use crate::buffer::{frame_chunks_traced, parse_frames_traced};
use crate::registry::TypeDirectory;
use crate::sender::{GraphSender, SendConfig, SendStats};
use crate::stream::{ShuffleController, UpdateRegistry};
use crate::{Error, Result};

fn spec_flags(spec: mheap::LayoutSpec) -> u8 {
    (u8::from(spec.with_baddr)) | (u8::from(spec.array_len_size == 4) << 1)
}

/// Writes object graphs into a named file on a node's simulated disk.
///
/// The counterpart of `SkywayFileOutputStream`: construct, call
/// [`SkywayFileOutputStream::write_object`] for every root, then
/// [`SkywayFileOutputStream::close`] to commit the file (charging write-I/O
/// on the owning node).
pub struct SkywayFileOutputStream<'a> {
    sender: GraphSender<'a>,
    node: NodeId,
    name: String,
}

impl<'a> std::fmt::Debug for SkywayFileOutputStream<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkywayFileOutputStream")
            .field("node", &self.node)
            .field("name", &self.name)
            .finish()
    }
}

impl<'a> SkywayFileOutputStream<'a> {
    /// Opens a file stream on `node`'s disk.
    ///
    /// # Errors
    /// [`Error::NeedsBaddr`] as for any sender.
    pub fn create(
        vm: &'a Vm,
        dir: &'a TypeDirectory,
        node: NodeId,
        controller: &ShuffleController,
        cfg: SendConfig,
        name: impl Into<String>,
    ) -> Result<Self> {
        let sender =
            GraphSender::new(vm, dir, node, controller.sid(), controller.next_stream(), cfg)?;
        Ok(SkywayFileOutputStream { sender, node, name: name.into() })
    }

    /// Attaches a transfer trace context, propagated in the file's frame
    /// header so the reading node stitches into the same trace.
    #[must_use]
    pub fn with_trace(mut self, ctx: obs::TraceCtx) -> Self {
        self.sender = self.sender.with_trace(ctx);
        self
    }

    /// Transfers one object graph (drop-in `writeObject`).
    ///
    /// # Errors
    /// Heap/registry errors.
    pub fn write_object(&mut self, root: Addr) -> Result<()> {
        self.sender.write_root(root)
    }

    /// Commits the file to the node's disk, charging write-I/O time, and
    /// returns the send statistics.
    ///
    /// # Errors
    /// Cluster errors.
    pub fn close(self, cluster: &mut Cluster) -> Result<SendStats> {
        let spec_byte = spec_flags(self.sender.receiver_spec());
        let ctx = self.sender.trace_ctx();
        let registry = std::sync::Arc::clone(self.sender.registry());
        let node_name = self.sender.node_name().to_owned();
        let out = self.sender.finish();
        let blob = frame_chunks_traced(&out.chunks, spec_byte, ctx);
        let mut span =
            registry.tracer().start(obs::names::TRACE_SENDER_CHUNK_SEND, ctx, &node_name);
        span.annotate("bytes", blob.len() as u64);
        span.annotate("chunks", out.chunks.len() as u64);
        cluster.disk_write(self.node, self.name, blob).map_err(Error::Cluster)?;
        drop(span);
        Ok(out.stats)
    }
}

/// Reads object graphs from a named file on a node's simulated disk —
/// the counterpart of `SkywayFileInputStream`.
#[derive(Debug)]
pub struct SkywayFileInputStream;

impl SkywayFileInputStream {
    /// Reads and absolutizes a Skyway file, charging read-I/O time, and
    /// returns the root objects (callers must root them before further
    /// allocation).
    ///
    /// # Errors
    /// Missing-file, corrupt-stream, and heap errors.
    pub fn open_and_read(
        vm: &mut Vm,
        dir: &TypeDirectory,
        node: NodeId,
        cluster: &mut Cluster,
        name: &str,
        hooks: Option<&UpdateRegistry>,
    ) -> Result<Vec<Addr>> {
        let blob = cluster.disk_read(node, name).map_err(Error::Cluster)?;
        read_blob(vm, dir, node, &blob, hooks)
    }
}

/// Sends object graphs over a simulated socket link, streaming each chunk
/// as it flushes — the counterpart of `SkywaySocketOutputStream`.
pub struct SkywaySocketOutputStream<'a> {
    sender: GraphSender<'a>,
    src: NodeId,
    dst: NodeId,
}

impl<'a> std::fmt::Debug for SkywaySocketOutputStream<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkywaySocketOutputStream")
            .field("src", &self.src)
            .field("dst", &self.dst)
            .finish()
    }
}

impl<'a> SkywaySocketOutputStream<'a> {
    /// Connects a socket stream from `src` to `dst`.
    ///
    /// # Errors
    /// [`Error::NeedsBaddr`] as for any sender.
    pub fn connect(
        vm: &'a Vm,
        dir: &'a TypeDirectory,
        src: NodeId,
        dst: NodeId,
        controller: &ShuffleController,
        cfg: SendConfig,
    ) -> Result<Self> {
        let sender =
            GraphSender::new(vm, dir, src, controller.sid(), controller.next_stream(), cfg)?;
        Ok(SkywaySocketOutputStream { sender, src, dst })
    }

    /// Attaches a transfer trace context, carried as a traced-chunk message
    /// prefix so the receiving node stitches into the same trace.
    #[must_use]
    pub fn with_trace(mut self, ctx: obs::TraceCtx) -> Self {
        self.sender = self.sender.with_trace(ctx);
        self
    }

    /// Transfers one object graph, streaming any chunks that flushed while
    /// traversing (transfer overlaps computation, §3.2).
    ///
    /// # Errors
    /// Heap/registry/cluster errors.
    pub fn write_object(&mut self, root: Addr, cluster: &mut Cluster) -> Result<()> {
        self.sender.write_root(root)?;
        let ctx = self.sender.trace_ctx();
        let traced = if ctx.is_none() {
            None
        } else {
            Some((
                std::sync::Arc::clone(self.sender.registry()),
                self.sender.node_name().to_owned(),
            ))
        };
        for chunk in self.sender.take_ready_chunks() {
            let mut span = traced.as_ref().map(|(reg, node)| {
                reg.tracer().start(obs::names::TRACE_SENDER_CHUNK_SEND, ctx, node)
            });
            if let Some(s) = span.as_mut() {
                s.annotate("bytes", chunk.len() as u64);
            }
            cluster
                .net_send(self.src, self.dst, frame_chunk_msg(&chunk, ctx))
                .map_err(Error::Cluster)?;
            drop(span);
        }
        Ok(())
    }

    /// Flushes the tail and sends the end-of-stream marker.
    ///
    /// # Errors
    /// Cluster errors.
    pub fn close(self, cluster: &mut Cluster) -> Result<SendStats> {
        let ctx = self.sender.trace_ctx();
        let traced = if ctx.is_none() {
            None
        } else {
            Some((
                std::sync::Arc::clone(self.sender.registry()),
                self.sender.node_name().to_owned(),
            ))
        };
        let out = self.sender.finish();
        for chunk in &out.chunks {
            let mut span = traced.as_ref().map(|(reg, node)| {
                reg.tracer().start(obs::names::TRACE_SENDER_CHUNK_SEND, ctx, node)
            });
            if let Some(s) = span.as_mut() {
                s.annotate("bytes", chunk.len() as u64);
            }
            cluster
                .net_send(self.src, self.dst, frame_chunk_msg(chunk, ctx))
                .map_err(Error::Cluster)?;
            drop(span);
        }
        cluster.net_send(self.src, self.dst, vec![0u8]).map_err(Error::Cluster)?; // EOS
        Ok(out.stats)
    }
}

/// Socket message framing: type 1 carries a bare chunk; type 2 prefixes the
/// chunk with the 16-byte transfer trace context (trace id, parent span id,
/// both little-endian) so the receiver can re-attach it.
fn frame_chunk_msg(chunk: &[u8], ctx: obs::TraceCtx) -> Vec<u8> {
    if ctx.is_none() {
        let mut m = Vec::with_capacity(chunk.len() + 1);
        m.push(1u8); // CHUNK
        m.extend_from_slice(chunk);
        return m;
    }
    let mut m = Vec::with_capacity(chunk.len() + 17);
    m.push(2u8); // TRACED CHUNK
    m.extend_from_slice(&ctx.trace_id.to_le_bytes());
    m.extend_from_slice(&ctx.parent.to_le_bytes());
    m.extend_from_slice(chunk);
    m
}

/// Receives a socket stream — the counterpart of `SkywaySocketInputStream`.
#[derive(Debug)]
pub struct SkywaySocketInputStream;

impl SkywaySocketInputStream {
    /// Drains queued messages from `src` until the end-of-stream marker,
    /// placing each chunk into an input buffer as it arrives, then
    /// absolutizes. Returns the roots.
    ///
    /// # Errors
    /// Transport, corrupt-stream, and heap errors.
    pub fn read_all(
        vm: &mut Vm,
        dir: &TypeDirectory,
        node: NodeId,
        src: NodeId,
        cluster: &mut Cluster,
        hooks: Option<&UpdateRegistry>,
    ) -> Result<Vec<Addr>> {
        let mut rx = crate::receiver::GraphReceiver::new(vm, dir, node);
        loop {
            let msg = cluster.net_recv(node, src).map_err(Error::Cluster)?;
            match msg.first() {
                Some(1) => rx.push_chunk(&msg[1..])?,
                Some(2) => {
                    if msg.len() < 17 {
                        return Err(Error::BadFrame("truncated traced socket message".into()));
                    }
                    let mut id = [0u8; 8];
                    id.copy_from_slice(&msg[1..9]);
                    let mut parent = [0u8; 8];
                    parent.copy_from_slice(&msg[9..17]);
                    rx.attach_trace(obs::TraceCtx {
                        trace_id: u64::from_le_bytes(id),
                        parent: u64::from_le_bytes(parent),
                    });
                    rx.push_chunk(&msg[17..])?;
                }
                Some(0) => break,
                _ => return Err(Error::BadFrame("bad socket message".into())),
            }
        }
        let (roots, _) = rx.finish(hooks)?;
        Ok(roots)
    }
}

/// Shared blob-reading path (file carrier).
fn read_blob(
    vm: &mut Vm,
    dir: &TypeDirectory,
    node: NodeId,
    blob: &[u8],
    hooks: Option<&UpdateRegistry>,
) -> Result<Vec<Addr>> {
    let (flags, ctx, chunks) = parse_frames_traced(blob)?;
    let wire = mheap::LayoutSpec {
        with_baddr: flags & 1 != 0,
        array_len_size: if flags & 2 != 0 { 4 } else { 8 },
    };
    if wire != vm.spec() {
        return Err(Error::SpecMismatch {
            wire: format!("{wire:?}"),
            local: format!("{:?}", vm.spec()),
        });
    }
    let mut rx = crate::receiver::GraphReceiver::new(vm, dir, node);
    rx.attach_trace(ctx);
    for c in chunks {
        rx.push_chunk(c)?;
    }
    let (roots, _) = rx.finish(hooks)?;
    Ok(roots)
}
