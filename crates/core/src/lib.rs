//! `skyway` — the paper's contribution: connecting managed heaps so object
//! graphs move between (simulated) JVM processes *without* serialization.
//!
//! Reproduction of *Skyway: Connecting Managed Heaps in Distributed Big
//! Data Systems* (Nguyen et al., ASPLOS 2018) on top of the [`mheap`]
//! managed-heap substrate:
//!
//! * [`registry`] — global class numbering (§4.1, Algorithm 1): a driver
//!   registry plus per-worker views, so one integer identifies a class
//!   cluster-wide;
//! * [`sender`] — the GC-like traversal (§4.2, Algorithm 2): clone objects
//!   into per-destination output buffers, sanitize headers, relativize
//!   references through the `baddr` word, stream chunks, support parallel
//!   sender threads via CAS;
//! * [`receiver`] — input buffers allocated in the old generation, one
//!   linear absolutization pass, on-demand class loading, card-table
//!   updates (§4.3);
//! * [`stream`] — the developer-facing API (§3.3): output/input streams,
//!   `shuffle_start`, `register_update` hooks;
//! * [`serializer`] — the [`serlab::Serializer`] adapter that lets Skyway
//!   drop into the same shuffle pipelines as Kryo and the Java serializer.
//!
//! # Example: heap-to-heap transfer
//!
//! ```
//! use std::sync::Arc;
//! use mheap::{ClassPath, HeapConfig, Vm};
//! use mheap::stdlib::define_core_classes;
//! use simnet::NodeId;
//! use skyway::{SendConfig, ShuffleController, SkywayObjectInputStream,
//!              SkywayObjectOutputStream, TypeDirectory};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cp = ClassPath::new();
//! define_core_classes(&cp);
//! let mut sender_vm = Vm::new("w0", &HeapConfig::small(), Arc::clone(&cp))?;
//! let mut receiver_vm = Vm::new("w1", &HeapConfig::small(), cp)?;
//!
//! let dir = TypeDirectory::new(2, NodeId(0));
//! dir.bootstrap_driver(&sender_vm)?;
//! dir.worker_startup(NodeId(1))?;
//!
//! // Build a string on the sender and ship its object graph.
//! let s = sender_vm.new_string("over the skyway")?;
//! let controller = ShuffleController::new();
//! let mut out = SkywayObjectOutputStream::new(
//!     &sender_vm, &dir, NodeId(0), &controller, SendConfig::for_vm(&sender_vm))?;
//! out.write_object(s)?;
//! let stream = out.finish();
//!
//! let mut input = SkywayObjectInputStream::new(&mut receiver_vm, &dir, NodeId(1));
//! for chunk in &stream.chunks {
//!     input.push_chunk(chunk)?;
//! }
//! let (roots, _) = input.read_objects(None)?;
//! assert_eq!(receiver_vm.read_string(roots[0])?, "over the skyway");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod compress;
pub mod io;
pub mod pipeline;
pub mod receiver;
pub mod registry;
pub mod sender;
pub mod serializer;
pub mod stream;

pub use buffer::ChunkPool;
pub use io::{
    SkywayFileInputStream, SkywayFileOutputStream, SkywaySocketInputStream,
    SkywaySocketOutputStream,
};
pub use pipeline::{
    sequential_transfer, PipelineConfig, PipelineEngine, PipelineReport, TransferMode,
};
pub use receiver::{GraphReceiver, ReceiveStats, StreamAbsorber, StreamIn};
pub use registry::{RegistryStats, TypeDirectory};
pub use sender::{
    send_roots_parallel, GraphSender, ParallelConfig, ParallelSend, SendConfig, SendStats,
    StreamOut, Tracking,
};
pub use serializer::SkywaySerializer;
pub use stream::{
    scrub_baddrs, ShuffleController, SkywayObjectInputStream, SkywayObjectOutputStream,
    UpdateRegistry,
};

/// Errors produced by Skyway.
#[derive(Debug)]
pub enum Error {
    /// Underlying heap error.
    Heap(mheap::Error),
    /// A node id outside the cluster.
    UnknownNode(usize),
    /// A type id no node ever registered.
    UnknownTypeId(u32),
    /// `baddr`-based tracking requested on a heap format without the word.
    NeedsBaddr,
    /// A logical buffer address referred to already-flushed data.
    BufferUnderflow {
        /// Offending logical address.
        logical: u64,
        /// Bytes already flushed.
        flushed: u64,
    },
    /// Objects must be placed into the buffer in logical order.
    OutOfOrderPlacement {
        /// Requested logical address.
        logical: u64,
        /// Expected next position.
        expected: u64,
    },
    /// A framed transfer blob was malformed.
    BadFrame(String),
    /// A relativized reference pointed outside every received chunk.
    DanglingRelativeAddr(u64),
    /// Sender and receiver object formats disagree.
    SpecMismatch {
        /// Format tagged in the stream.
        wire: String,
        /// Format of the local heap.
        local: String,
    },
    /// `writeObject(null)` is not a transfer.
    NullRoot,
    /// Internal: an update hook index went stale.
    NoSuchHook(usize),
    /// Cluster-fabric error from a carrier stream (file/socket).
    Cluster(simnet::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Heap(e) => write!(f, "heap error: {e}"),
            Error::UnknownNode(n) => write!(f, "unknown node id {n}"),
            Error::UnknownTypeId(t) => write!(f, "unknown global type id {t}"),
            Error::NeedsBaddr => {
                write!(f, "baddr tracking requires an object format with the baddr word")
            }
            Error::BufferUnderflow { logical, flushed } => {
                write!(f, "logical address {logical} already flushed ({flushed} bytes out)")
            }
            Error::OutOfOrderPlacement { logical, expected } => {
                write!(f, "placement at {logical} out of order (expected {expected})")
            }
            Error::BadFrame(s) => write!(f, "bad transfer frame: {s}"),
            Error::DanglingRelativeAddr(a) => {
                write!(f, "relative address {a} outside every received chunk")
            }
            Error::SpecMismatch { wire, local } => {
                write!(f, "object format mismatch: stream {wire} vs local {local}")
            }
            Error::NullRoot => write!(f, "cannot transfer a null root"),
            Error::NoSuchHook(i) => write!(f, "no update hook at index {i}"),
            Error::Cluster(e) => write!(f, "cluster error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Heap(e) => Some(e),
            Error::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mheap::Error> for Error {
    fn from(e: mheap::Error) -> Self {
        Error::Heap(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
