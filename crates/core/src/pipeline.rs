//! Chunk-granularity pipelined shuffle engine.
//!
//! The sequential path (`SkywaySerializer::serialize` → transport →
//! `deserialize`) is a strict three-phase barrier: build every chunk, move
//! every chunk, then absolutize everything in one pass — paying
//! sum-of-phases wall-clock. This module overlaps the phases at chunk
//! granularity: a sender thread walks the object graph and flushes chunks
//! into a bounded channel while the receiving thread places and absolutizes
//! each chunk as it arrives, so chunk *N* is being absolutized while chunk
//! *N+1* is in flight and chunk *N+2* is still being cloned out of the
//! sender heap (paper §4.3 streams output buffers the same way).
//!
//! The channel bound provides backpressure: a slow receiver stalls the
//! sender instead of letting chunks pile up unboundedly. Chunk backings
//! come from a [`ChunkPool`] shared by sender (acquire) and receiver
//! (release), so steady-state transfer performs zero per-chunk heap
//! allocations.
//!
//! Simulated time is charged with the overlap-aware [`LinkClock`] schedule
//! rather than the whole-payload `net_ns` formula, and both the pipelined
//! schedule and the sequential sum are reported so benchmarks can compare
//! like for like.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use mheap::{Addr, Vm};
use simnet::{Cluster, LinkClock, NodeId, SimConfig};

use crate::buffer::ChunkPool;
use crate::receiver::{GraphReceiver, ReceiveStats, StreamAbsorber, StreamIn};
use crate::registry::TypeDirectory;
use crate::sender::{GraphSender, ParallelConfig, SendConfig, SendStats, StealSet, Tracking};
use crate::stream::UpdateRegistry;
use crate::{Error, Result};

/// One parallel stream's chunk timeline — `(ready_raw_ns, bytes,
/// absorb_raw_ns)` per chunk in stream order — plus that stream's fixup
/// CPU time, as fed to the shared-link schedule.
type StreamTimeline<'a> = (&'a [(u64, u64, u64)], u64);

/// Default flush threshold for pipelined transfer. Much smaller than the
/// sequential default (1 MiB): the pipeline's overlap window is one chunk,
/// so finer chunks mean earlier first-byte and smoother overlap, at the
/// cost of per-chunk bookkeeping the pool keeps negligible.
pub const DEFAULT_PIPELINE_CHUNK: usize = 64 << 10;

/// Default bound of the in-flight chunk channel.
pub const DEFAULT_DEPTH: usize = 4;

/// Adaptive chunk-sizing floor.
pub const MIN_ADAPTIVE_CHUNK: usize = 16 << 10;

/// Adaptive chunk-sizing ceiling.
pub const MAX_ADAPTIVE_CHUNK: usize = 1 << 20;

/// Which execution strategy a transfer took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMode {
    /// Flat single-chunk graph: produce, move, absorb inline on the
    /// calling thread — nothing to overlap.
    Inline,
    /// One sender thread overlapped with absorption on the calling thread.
    Pipelined,
    /// N work-stealing traversal workers, each streaming to its own
    /// concurrent absorber over the shared receiving heap.
    Parallel,
    /// Same-node zero-copy: the graph was sealed into (or already lived
    /// in) a shared immutable segment and the receiver attached it
    /// metadata-only — no bytes cloned, no wire time. Produced by the
    /// `segstore` crate's shared path, never by this engine directly.
    Shared,
}

impl TransferMode {
    /// Stable lowercase name (used in benchmark JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            TransferMode::Inline => "inline",
            TransferMode::Pipelined => "pipelined",
            TransferMode::Parallel => "parallel",
            TransferMode::Shared => "shared",
        }
    }
}

/// Configuration of the pipelined engine.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Flush threshold of the sender's output buffer in bytes.
    pub chunk_limit: usize,
    /// Maximum chunks in flight between sender and receiver (channel
    /// bound; the backpressure window). Parallel mode applies it per
    /// worker pair.
    pub depth: usize,
    /// Visited-tracking mode for the sender; `None` picks `Baddr` when the
    /// sender heap carries the word, `HashTable` otherwise.
    pub tracking: Option<Tracking>,
    /// Cost-model parameters for the simulated-time schedule.
    pub sim: SimConfig,
    /// Opt-in parallel mode: with `Some(par)` the engine runs
    /// `par.workers` work-stealing sender workers, each feeding its own
    /// absorber, whenever `roots >= workers * min_roots_per_worker` (and
    /// the graph is not a flat single chunk). `None` keeps the classic
    /// single-sender pipeline.
    pub parallel: Option<ParallelConfig>,
    /// Adapt `chunk_limit` between transfers from the observed stalls:
    /// grow (×2, up to [`MAX_ADAPTIVE_CHUNK`]) while sender stalls
    /// dominate, shrink (÷2, down to [`MIN_ADAPTIVE_CHUNK`]) while
    /// receiver stalls dominate.
    pub adaptive_chunking: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            chunk_limit: DEFAULT_PIPELINE_CHUNK,
            depth: DEFAULT_DEPTH,
            tracking: None,
            sim: SimConfig::default(),
            parallel: None,
            adaptive_chunking: false,
        }
    }
}

/// Cached observability handles (`skyway.pipeline.*`).
#[derive(Debug)]
struct PipelineMetrics {
    registry: Arc<obs::Registry>,
    chunks_in_flight: Arc<obs::Gauge>,
    stall_ns: Arc<obs::Counter>,
    pool_hits: Arc<obs::Counter>,
    pool_misses: Arc<obs::Counter>,
    chunk_stall_ns: Arc<obs::Histogram>,
    mode_inline: Arc<obs::Counter>,
    mode_pipelined: Arc<obs::Counter>,
    mode_parallel: Arc<obs::Counter>,
    chunk_limit: Arc<obs::Gauge>,
    steals: Arc<obs::Counter>,
}

impl PipelineMetrics {
    fn new(registry: Arc<obs::Registry>) -> Self {
        PipelineMetrics {
            chunks_in_flight: registry.gauge(obs::names::PIPELINE_CHUNKS_IN_FLIGHT),
            stall_ns: registry.counter(obs::names::PIPELINE_STALL_NS),
            pool_hits: registry.counter(obs::names::PIPELINE_POOL_HITS),
            pool_misses: registry.counter(obs::names::PIPELINE_POOL_MISSES),
            chunk_stall_ns: registry.histogram(obs::names::PIPELINE_CHUNK_STALL_NS),
            mode_inline: registry.counter(obs::names::PIPELINE_MODE_INLINE),
            mode_pipelined: registry.counter(obs::names::PIPELINE_MODE_PIPELINED),
            mode_parallel: registry.counter(obs::names::PIPELINE_MODE_PARALLEL),
            chunk_limit: registry.gauge(obs::names::PIPELINE_CHUNK_LIMIT),
            steals: registry.counter(obs::names::SENDER_STEALS),
            registry,
        }
    }
}

/// What one pipelined transfer did and what it would have cost.
///
/// All `*_ns` figures are *simulated* nanoseconds on the [`SimConfig`]
/// timeline: measured CPU time scaled by `sd_cpu_scale` (the same
/// calibration every serializer pays in `simnet`) and wire time from the
/// bandwidth/latency model.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Sender-side composition statistics.
    pub send_stats: SendStats,
    /// Receiver-side statistics (identical to the sequential path's).
    pub recv_stats: ReceiveStats,
    /// Per-chunk wire sizes, in stream order.
    pub chunk_bytes: Vec<u64>,
    /// End-to-end simulated time of the overlapped schedule.
    pub pipelined_ns: u64,
    /// Simulated time the sequential three-phase barrier would have paid
    /// for the same work: produce + whole-payload transfer + absolutize.
    pub sequential_ns: u64,
    /// Scaled sender traversal CPU time.
    pub produce_ns: u64,
    /// Wire-occupancy time of all chunks.
    pub wire_ns: u64,
    /// Scaled receiver absolutization CPU time (including final fixups).
    pub absorb_ns: u64,
    /// Real time the sender spent blocked on a full channel.
    pub sender_stall_ns: u64,
    /// Real time the receiver spent blocked on an empty channel.
    pub receiver_stall_ns: u64,
    /// Chunk-pool hits during this transfer.
    pub pool_hits: u64,
    /// Chunk-pool misses (fresh allocations) during this transfer.
    pub pool_misses: u64,
    /// High-water mark of chunks in flight.
    pub max_in_flight: u64,
    /// Which execution strategy the adaptive policy picked.
    pub mode: TransferMode,
    /// Traversal workers (1 outside parallel mode).
    pub workers: u64,
    /// Successful inter-worker root steals (parallel mode only).
    pub steals: u64,
    /// Share of the pipelined schedule the modeled link spent busy
    /// (0–100; the wire is the shared resource parallel streams contend
    /// for, so high utilization means the transfer is link-bound).
    pub link_utilization_pct: f64,
}

impl PipelineReport {
    /// Fraction of sequential time the pipeline saved (0..1).
    pub fn speedup(&self) -> f64 {
        if self.sequential_ns == 0 {
            return 0.0;
        }
        1.0 - self.pipelined_ns as f64 / self.sequential_ns as f64
    }

    /// Charges this transfer into a [`Cluster`]'s per-node profiles using
    /// the chunk-granularity accounting: scaled traversal CPU as `Ser` on
    /// `src`, scaled absolutization CPU as `Deser` on `dst`, and each chunk
    /// through [`Cluster::net_send_chunk`] / [`Cluster::net_recv_chunk`]
    /// so the stream pays wire time per chunk but latency once.
    ///
    /// # Errors
    /// [`simnet::Error::UnknownNode`].
    pub fn charge(&self, cluster: &mut Cluster, src: NodeId, dst: NodeId) -> simnet::Result<()> {
        use simnet::Category;
        cluster.profile_mut(src).add_ns(Category::Ser, self.produce_ns);
        cluster.profile_mut(dst).add_ns(Category::Deser, self.absorb_ns);
        for &len in &self.chunk_bytes {
            // Replay sizes only: the payload already moved in-process.
            cluster.net_send_chunk(src, dst, vec![0u8; len as usize])?;
            cluster.net_recv_chunk(dst, src)?;
        }
        cluster.net_stream_done(src, dst);
        Ok(())
    }
}

/// One chunk in flight: its bytes plus the sender's cumulative traversal
/// CPU time (unscaled) at the moment the chunk was ready.
type InFlight = (Vec<u8>, u64);

/// What the sender thread hands back at join: its send statistics plus
/// raw (unscaled) produce and channel-stall nanoseconds.
type SenderSide = (SendStats, u64, u64);

/// The pipelined shuffle engine. Holds the shared [`ChunkPool`] so buffer
/// backings survive across transfers — the second transfer of a similar
/// shape allocates nothing.
#[derive(Debug)]
pub struct PipelineEngine {
    cfg: PipelineConfig,
    pool: Arc<ChunkPool>,
    metrics: PipelineMetrics,
    /// Adaptive chunk-sizing state: the live flush threshold (0 = not yet
    /// adapted, use `cfg.chunk_limit`).
    live_chunk_limit: AtomicUsize,
}

impl PipelineEngine {
    /// An engine drawing chunk backings from the process-wide per-node
    /// [`ChunkPool::global`], so back-to-back transfers through different
    /// engines still recycle the same backings.
    pub fn new(cfg: PipelineConfig) -> Self {
        PipelineEngine {
            cfg,
            pool: Arc::clone(ChunkPool::global()),
            metrics: PipelineMetrics::new(Arc::clone(obs::global())),
            live_chunk_limit: AtomicUsize::new(0),
        }
    }

    /// Uses an explicit chunk pool instead of the global per-node one
    /// (tests asserting exact hit/miss counts need isolation — the global
    /// pool's counters aggregate every transfer in the process).
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<ChunkPool>) -> Self {
        self.pool = pool;
        self
    }

    /// The flush threshold the next transfer will use: the configured
    /// limit, or the adaptively tuned one once stall feedback moved it.
    pub fn effective_chunk_limit(&self) -> usize {
        let live = self.live_chunk_limit.load(Ordering::Relaxed);
        if self.cfg.adaptive_chunking && live != 0 {
            live
        } else {
            self.cfg.chunk_limit
        }
    }

    /// Stall-feedback controller for the flush threshold: sender stalls
    /// (channel full — per-chunk overhead downstream) grow the chunks,
    /// receiver stalls (channel empty — first byte arrives too late)
    /// shrink them. A 2× dominance band keeps the controller from
    /// oscillating on balanced transfers.
    fn adapt_chunk_limit(&self, sender_stall_ns: u64, receiver_stall_ns: u64) {
        let cur = self.effective_chunk_limit();
        let next = if sender_stall_ns > 2 * receiver_stall_ns {
            (cur.saturating_mul(2)).min(MAX_ADAPTIVE_CHUNK)
        } else if receiver_stall_ns > 2 * sender_stall_ns {
            (cur / 2).max(MIN_ADAPTIVE_CHUNK)
        } else {
            cur
        };
        if next != cur {
            self.live_chunk_limit.store(next, Ordering::Relaxed);
        }
    }

    /// Reports into `registry` instead of the process-wide default
    /// (scoped registries keep test assertions exact).
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<obs::Registry>) -> Self {
        self.metrics = PipelineMetrics::new(registry);
        self
    }

    /// The engine's chunk pool (shared with every transfer's sender).
    pub fn pool(&self) -> &Arc<ChunkPool> {
        &self.pool
    }

    /// The engine's configuration.
    pub fn config(&self) -> PipelineConfig {
        self.cfg
    }

    /// Moves the object graphs of `roots` from `sender_vm` to
    /// `receiver_vm`, overlapping traversal, transfer, and absolutization.
    /// Returns the received roots (arrival order, same as the sequential
    /// path) and the transfer report.
    ///
    /// Flat graphs that provably fit one chunk (see
    /// [`GraphSender::estimate_flat_bytes`]) skip the overlap machinery
    /// and run the three phases inline — with a single chunk there is
    /// nothing to overlap, and the thread + channel overhead would make
    /// the pipeline strictly slower than the sequential path.
    ///
    /// `src`/`dst` are the nodes the VMs live on; `sid`/`stream` identify
    /// the shuffle stream exactly as on the sequential path.
    ///
    /// # Errors
    /// Heap/registry/corrupt-stream errors from either side; sender-side
    /// errors surface even when the receiver finished cleanly.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer(
        &self,
        sender_vm: &Vm,
        receiver_vm: &mut Vm,
        dir: &TypeDirectory,
        src: NodeId,
        dst: NodeId,
        sid: u8,
        stream: u16,
        roots: &[Addr],
        hooks: Option<&UpdateRegistry>,
    ) -> Result<(Vec<Addr>, PipelineReport)> {
        self.transfer_with_trace(
            sender_vm,
            receiver_vm,
            dir,
            src,
            dst,
            sid,
            stream,
            roots,
            hooks,
            obs::TraceCtx::NONE,
        )
    }

    /// [`Self::transfer`] under a trace context: opens a
    /// [`obs::names::TRACE_TRANSFER`] root span and threads its child
    /// context through the sender (traversal and chunk-send spans), the
    /// simulated link (occupancy spans on the sim clock), and the receiver
    /// (absorb, fixup, and card spans; GC pauses on the receiving VM are
    /// attributed to this transfer until the next one re-tags it). With
    /// [`obs::TraceCtx::NONE`] — or tracing disabled — this is exactly
    /// [`Self::transfer`]: the traced path adds one branch per call site.
    ///
    /// # Errors
    /// As for [`Self::transfer`].
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_with_trace(
        &self,
        sender_vm: &Vm,
        receiver_vm: &mut Vm,
        dir: &TypeDirectory,
        src: NodeId,
        dst: NodeId,
        sid: u8,
        stream: u16,
        roots: &[Addr],
        hooks: Option<&UpdateRegistry>,
        parent: obs::TraceCtx,
    ) -> Result<(Vec<Addr>, PipelineReport)> {
        let registry = Arc::clone(&self.metrics.registry);
        let mut root_span = if parent.is_none() {
            None
        } else {
            Some(registry.tracer().start(obs::names::TRACE_TRANSFER, parent, &sender_vm.name))
        };
        let ctx = root_span.as_ref().map_or(obs::TraceCtx::NONE, obs::ActiveSpan::ctx);
        let r = self.transfer_inner(
            sender_vm,
            receiver_vm,
            dir,
            src,
            dst,
            sid,
            stream,
            roots,
            hooks,
            ctx,
        );
        if let (Some(span), Ok((_, report))) = (root_span.as_mut(), &r) {
            span.annotate("bytes", report.send_stats.total_bytes);
            span.annotate("chunks", report.chunk_bytes.len() as u64);
            span.annotate("pipelined_sim_ns", report.pipelined_ns);
            span.annotate("sequential_sim_ns", report.sequential_ns);
        }
        r
    }

    #[allow(clippy::too_many_arguments)]
    fn transfer_inner(
        &self,
        sender_vm: &Vm,
        receiver_vm: &mut Vm,
        dir: &TypeDirectory,
        src: NodeId,
        dst: NodeId,
        sid: u8,
        stream: u16,
        roots: &[Addr],
        hooks: Option<&UpdateRegistry>,
        ctx: obs::TraceCtx,
    ) -> Result<(Vec<Addr>, PipelineReport)> {
        let chunk_limit = self.effective_chunk_limit();
        self.metrics.chunk_limit.set(chunk_limit as i64);
        let send_cfg = SendConfig {
            chunk_limit,
            receiver_spec: receiver_vm.spec(),
            tracking: self.cfg.tracking.unwrap_or(if sender_vm.spec().with_baddr {
                Tracking::Baddr
            } else {
                Tracking::HashTable
            }),
        };
        let pool_hits0 = self.pool.hits();
        let pool_misses0 = self.pool.misses();

        // Mode policy, first gate — flat single-chunk fast path: when
        // every root is reference-free the whole stream provably fits one
        // chunk, so there is nothing to overlap — threads, channels, and
        // per-chunk bookkeeping would be pure overhead (measurably
        // negative on small flat payloads). Run the three phases inline
        // instead; the estimate is an upper bound, so taking this branch
        // guarantees a single chunk. This gate outranks parallel mode: a
        // single chunk gives N workers nothing to share.
        {
            let mut gs = GraphSender::new(sender_vm, dir, src, sid, stream, send_cfg)?
                .with_metrics(Arc::clone(&self.metrics.registry))
                .with_pool(Arc::clone(&self.pool))
                .with_trace(ctx);
            if gs.estimate_flat_bytes(roots, chunk_limit as u64)?.is_some() {
                return self.transfer_single_chunk(
                    gs,
                    receiver_vm,
                    dir,
                    dst,
                    roots,
                    hooks,
                    pool_hits0,
                    pool_misses0,
                    ctx,
                );
            }
        }

        // Second gate — parallel mode: opt-in, and only when there are
        // enough roots to amortize the per-worker setup (each worker owns
        // a stream, a channel, and an absorber).
        if let Some(par) = self.cfg.parallel {
            if par.workers >= 2 && roots.len() >= par.workers * par.min_roots_per_worker.max(1) {
                let r = self.transfer_parallel(
                    sender_vm,
                    receiver_vm,
                    dir,
                    src,
                    dst,
                    sid,
                    stream,
                    roots,
                    hooks,
                    ctx,
                    send_cfg,
                    par,
                );
                if let (true, Ok((_, report))) = (self.cfg.adaptive_chunking, &r) {
                    self.adapt_chunk_limit(report.sender_stall_ns, report.receiver_stall_ns);
                }
                return r;
            }
        }

        self.metrics.mode_pipelined.inc();
        let in_flight = AtomicI64::new(0);
        let max_in_flight = AtomicU64::new(0);
        let (tx, rx) = mpsc::sync_channel::<InFlight>(self.cfg.depth.max(1));

        // Timeline entries: (cumulative produce ns when ready, bytes,
        // absorb ns for this chunk). Scaled and scheduled after the join.
        let mut timeline: Vec<(u64, u64, u64)> = Vec::new();
        let mut receiver_stall_ns = 0u64;
        let mut absorb_raw_ns = 0u64;
        let mut fixup_raw_ns = 0u64;

        let (roots_out, recv_stats, send_side) =
            std::thread::scope(|scope| -> Result<(Vec<Addr>, ReceiveStats, SenderSide)> {
                // The sender thread owns `tx`: when it returns, the channel
                // closes and the receive loop below terminates. Everything
                // else crosses as shared references (`Vm`, the registry,
                // and the pool are all `Sync`).
                let in_flight = &in_flight;
                let max_in_flight = &max_in_flight;
                let metrics = &self.metrics;
                let pool = &self.pool;
                let sender_task = scope.spawn(move || -> Result<(SendStats, u64, u64)> {
                    let mut gs = GraphSender::new(sender_vm, dir, src, sid, stream, send_cfg)?
                        .with_metrics(Arc::clone(&metrics.registry))
                        .with_pool(Arc::clone(pool))
                        .with_trace(ctx);
                    let mut produce_ns = 0u64;
                    let mut stall_ns = 0u64;
                    let ship = |chunks: Vec<Vec<u8>>, produce_ns: u64, stall: &mut u64| {
                        for c in chunks {
                            // The span covers the (possibly blocking) hand-
                            // off, so backpressure stalls are visible as
                            // long chunk-send spans in the trace.
                            let mut span = if ctx.is_none() {
                                None
                            } else {
                                Some(metrics.registry.tracer().start(
                                    obs::names::TRACE_SENDER_CHUNK_SEND,
                                    ctx,
                                    &sender_vm.name,
                                ))
                            };
                            if let Some(s) = span.as_mut() {
                                s.annotate("bytes", c.len() as u64);
                            }
                            let t0 = Instant::now();
                            // A closed channel means the receiver bailed
                            // with an error; stop producing quietly — the
                            // receiver's error wins.
                            if tx.send((c, produce_ns)).is_err() {
                                return false;
                            }
                            *stall += t0.elapsed().as_nanos() as u64;
                            drop(span);
                            let now = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
                            metrics.chunks_in_flight.set(now);
                            max_in_flight.fetch_max(now.max(0) as u64, Ordering::Relaxed);
                        }
                        true
                    };
                    for &root in roots {
                        let t0 = Instant::now();
                        gs.write_root(root)?;
                        produce_ns += t0.elapsed().as_nanos() as u64;
                        if !ship(gs.take_ready_chunks(), produce_ns, &mut stall_ns) {
                            return Ok((gs.finish().stats, produce_ns, stall_ns));
                        }
                    }
                    let t0 = Instant::now();
                    let out = gs.finish();
                    produce_ns += t0.elapsed().as_nanos() as u64;
                    ship(out.chunks, produce_ns, &mut stall_ns);
                    Ok((out.stats, produce_ns, stall_ns))
                });

                // Receiver runs on this thread: it owns `&mut Vm`.
                let recv_result = (|| -> Result<(Vec<Addr>, ReceiveStats)> {
                    let mut gr = GraphReceiver::new(receiver_vm, dir, dst)
                        .with_metrics(Arc::clone(&self.metrics.registry));
                    if !ctx.is_none() {
                        gr = gr.with_trace(ctx);
                    }
                    loop {
                        let t0 = Instant::now();
                        let Ok((chunk, ready_ns)) = rx.recv() else { break };
                        let waited = t0.elapsed().as_nanos() as u64;
                        receiver_stall_ns += waited;
                        self.metrics.chunk_stall_ns.record(waited);
                        let now = in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
                        self.metrics.chunks_in_flight.set(now);
                        let t1 = Instant::now();
                        gr.push_chunk(&chunk)?;
                        gr.absorb_ready(hooks)?;
                        let absorb = t1.elapsed().as_nanos() as u64;
                        absorb_raw_ns += absorb;
                        timeline.push((ready_ns, chunk.len() as u64, absorb));
                        self.pool.release(chunk);
                    }
                    let t0 = Instant::now();
                    let out = gr.finish(hooks)?;
                    fixup_raw_ns = t0.elapsed().as_nanos() as u64;
                    Ok(out)
                })();
                // Receiver error: drop the channel end so a blocked sender
                // unblocks, then surface whichever error came first.
                drop(rx);
                let send_side = match sender_task.join() {
                    Ok(r) => r?,
                    Err(p) => std::panic::resume_unwind(p),
                };
                let (roots_out, recv_stats) = recv_result?;
                Ok((roots_out, recv_stats, send_side))
            })?;
        let (send_stats, produce_raw_ns, sender_stall_ns) = send_side;

        self.metrics.chunks_in_flight.set(0);
        self.metrics.stall_ns.add(sender_stall_ns + receiver_stall_ns);
        let pool_hits = self.pool.hits() - pool_hits0;
        let pool_misses = self.pool.misses() - pool_misses0;
        self.metrics.pool_hits.add(pool_hits);
        self.metrics.pool_misses.add(pool_misses);

        let report = self.schedule(
            &timeline,
            produce_raw_ns,
            absorb_raw_ns + fixup_raw_ns,
            fixup_raw_ns,
            send_stats,
            recv_stats,
            sender_stall_ns,
            receiver_stall_ns,
            pool_hits,
            pool_misses,
            max_in_flight.load(Ordering::Relaxed),
            ctx,
            &sender_vm.name,
        );
        if self.cfg.adaptive_chunking {
            self.adapt_chunk_limit(report.sender_stall_ns, report.receiver_stall_ns);
        }
        Ok((roots_out, report))
    }

    /// The inline (no threads, no channel) variant of [`Self::transfer`]
    /// for flat graphs whose whole stream fits one chunk: produce, move,
    /// absorb, strictly in sequence. With a single chunk the pipelined
    /// schedule *is* the three-phase barrier, so the report carries the
    /// same figure for both timelines and a zero in-flight high-water mark.
    #[allow(clippy::too_many_arguments)]
    fn transfer_single_chunk(
        &self,
        mut gs: GraphSender<'_>,
        receiver_vm: &mut Vm,
        dir: &TypeDirectory,
        dst: NodeId,
        roots: &[Addr],
        hooks: Option<&UpdateRegistry>,
        pool_hits0: u64,
        pool_misses0: u64,
        ctx: obs::TraceCtx,
    ) -> Result<(Vec<Addr>, PipelineReport)> {
        self.metrics.mode_inline.inc();
        let gs_node = gs.node_name().to_owned();
        let t0 = Instant::now();
        for &root in roots {
            gs.write_root(root)?;
        }
        let out = gs.finish();
        let produce_raw_ns = t0.elapsed().as_nanos() as u64;

        let mut gr = GraphReceiver::new(receiver_vm, dir, dst)
            .with_metrics(Arc::clone(&self.metrics.registry));
        if !ctx.is_none() {
            gr = gr.with_trace(ctx);
        }
        let t1 = Instant::now();
        for c in &out.chunks {
            gr.push_chunk(c)?;
            gr.absorb_ready(hooks)?;
        }
        let (roots_out, recv_stats) = gr.finish(hooks)?;
        let absorb_raw_ns = t1.elapsed().as_nanos() as u64;

        let chunk_bytes: Vec<u64> = out.chunks.iter().map(|c| c.len() as u64).collect();
        let total_bytes: u64 = chunk_bytes.iter().sum();
        for c in out.chunks {
            self.pool.release(c);
        }
        let pool_hits = self.pool.hits() - pool_hits0;
        let pool_misses = self.pool.misses() - pool_misses0;
        self.metrics.pool_hits.add(pool_hits);
        self.metrics.pool_misses.add(pool_misses);

        let scale = |ns: u64| -> u64 { (ns as f64 * self.cfg.sim.sd_cpu_scale) as u64 };
        let wire_ns = self.cfg.sim.net_ns(total_bytes);
        if !ctx.is_none() {
            // One inline chunk, one occupancy interval on the sim clock.
            let start = scale(produce_raw_ns);
            self.metrics.registry.tracer().record_sim(
                obs::names::TRACE_LINK_XMIT,
                ctx,
                &gs_node,
                start,
                start + wire_ns,
                &[("bytes", total_bytes)],
            );
        }
        let wall = scale(produce_raw_ns) + wire_ns + scale(absorb_raw_ns);
        let report = PipelineReport {
            send_stats: out.stats,
            recv_stats,
            chunk_bytes,
            pipelined_ns: wall,
            sequential_ns: wall,
            produce_ns: scale(produce_raw_ns),
            wire_ns,
            absorb_ns: scale(absorb_raw_ns),
            sender_stall_ns: 0,
            receiver_stall_ns: 0,
            pool_hits,
            pool_misses,
            max_in_flight: 0,
            mode: TransferMode::Inline,
            workers: 1,
            steals: 0,
            link_utilization_pct: if wall == 0 {
                0.0
            } else {
                100.0 * wire_ns as f64 / wall as f64
            },
        };
        Ok((roots_out, report))
    }

    /// The parallel strategy: `workers` work-stealing traversal workers
    /// share the root set through a [`StealSet`] (roots start as
    /// contiguous blocks, idle workers steal), each worker streams its
    /// chunks through its own bounded channel to its own
    /// [`StreamAbsorber`], and all absorbers place input buffers
    /// concurrently through the receiving heap's shared old-generation
    /// window. Cross-stream CAS races on `baddr` duplicate contended
    /// objects per stream exactly as on the sequential parallel path.
    /// Heap-mutating finish work — the batched card-table pass and update
    /// hooks — runs once on the calling thread after every worker joined
    /// and the shared window closed.
    ///
    /// Per-worker produce/absorb time is measured on the *thread* CPU
    /// clock ([`obs::thread_cpu_ns`]), not wall time: on a host with
    /// fewer cores than workers, wall time would charge every worker for
    /// its timeslice waits and inflate the simulated cost N-fold.
    #[allow(clippy::too_many_arguments)]
    fn transfer_parallel(
        &self,
        sender_vm: &Vm,
        receiver_vm: &mut Vm,
        dir: &TypeDirectory,
        src: NodeId,
        dst: NodeId,
        sid: u8,
        stream_base: u16,
        roots: &[Addr],
        hooks: Option<&UpdateRegistry>,
        ctx: obs::TraceCtx,
        send_cfg: SendConfig,
        par: ParallelConfig,
    ) -> Result<(Vec<Addr>, PipelineReport)> {
        struct SenderOut {
            stats: SendStats,
            order: Vec<u32>,
            produce_raw_ns: u64,
            stall_ns: u64,
        }
        struct AbsorbOut {
            stream_in: StreamIn,
            timeline: Vec<(u64, u64, u64)>,
            stall_ns: u64,
            fixup_raw_ns: u64,
        }

        let workers = par.workers.max(2);
        self.metrics.mode_parallel.inc();
        let pool_hits0 = self.pool.hits();
        let pool_misses0 = self.pool.misses();
        if !ctx.is_none() {
            receiver_vm.set_trace_ctx(ctx);
        }
        let steal_set = StealSet::new(roots, workers, par.steal_batch);
        let in_flight = AtomicI64::new(0);
        let max_in_flight = AtomicU64::new(0);

        // All absorbers allocate input buffers concurrently through the
        // shared window; it must close again before any `&mut Vm` use.
        receiver_vm.heap_mut().begin_shared_old_alloc();
        let joined = {
            let rvm: &Vm = receiver_vm;
            std::thread::scope(|scope| -> (Vec<Result<SenderOut>>, Vec<Result<AbsorbOut>>) {
                let mut sender_tasks = Vec::with_capacity(workers);
                let mut absorb_tasks = Vec::with_capacity(workers);
                for t in 0..workers {
                    let (tx, rx) = mpsc::sync_channel::<InFlight>(self.cfg.depth.max(1));
                    let steal_set = &steal_set;
                    let in_flight = &in_flight;
                    let max_in_flight = &max_in_flight;
                    let metrics = &self.metrics;
                    let pool = &self.pool;
                    sender_tasks.push(scope.spawn(move || -> Result<SenderOut> {
                        let lane = t as u32 + 1;
                        let mut gs: Option<GraphSender<'_>> = None;
                        let mut order: Vec<u32> = Vec::new();
                        let mut produce_ns = 0u64;
                        let mut stall_ns = 0u64;
                        let mut open = true;
                        let ship = |chunks: Vec<Vec<u8>>, produce_ns: u64, stall: &mut u64| {
                            for c in chunks {
                                let mut span = if ctx.is_none() {
                                    None
                                } else {
                                    Some(metrics.registry.tracer().start_on(
                                        obs::names::TRACE_SENDER_CHUNK_SEND,
                                        ctx,
                                        &sender_vm.name,
                                        lane,
                                    ))
                                };
                                if let Some(s) = span.as_mut() {
                                    s.annotate("bytes", c.len() as u64);
                                }
                                let t0 = Instant::now();
                                // A closed channel means this worker's
                                // absorber bailed with an error; stop
                                // producing quietly — its error wins.
                                if tx.send((c, produce_ns)).is_err() {
                                    return false;
                                }
                                *stall += t0.elapsed().as_nanos() as u64;
                                drop(span);
                                let now = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
                                metrics.chunks_in_flight.set(now);
                                max_in_flight.fetch_max(now.max(0) as u64, Ordering::Relaxed);
                            }
                            true
                        };
                        loop {
                            let (idx, root) = match steal_set.pop_local(t) {
                                Some(item) => item,
                                None => {
                                    let t0 = Instant::now();
                                    match steal_set.steal(t) {
                                        Some((victim, batch)) => {
                                            if let Some(s) = gs.as_ref() {
                                                s.note_steal(
                                                    victim,
                                                    batch,
                                                    t0.elapsed().as_nanos() as u64,
                                                );
                                            }
                                            continue;
                                        }
                                        None => break,
                                    }
                                }
                            };
                            if gs.is_none() {
                                gs = Some(
                                    GraphSender::new(
                                        sender_vm,
                                        dir,
                                        src,
                                        sid,
                                        stream_base.wrapping_add(t as u16),
                                        send_cfg,
                                    )?
                                    .with_metrics(Arc::clone(&metrics.registry))
                                    .with_pool(Arc::clone(pool))
                                    .with_trace(ctx)
                                    .with_lane(lane),
                                );
                            }
                            if let Some(s) = gs.as_mut() {
                                let c0 = obs::thread_cpu_ns();
                                s.write_root(root)?;
                                produce_ns += obs::thread_cpu_ns().saturating_sub(c0);
                                order.push(idx);
                                if !ship(s.take_ready_chunks(), produce_ns, &mut stall_ns) {
                                    open = false;
                                    break;
                                }
                            }
                        }
                        let stats = match gs {
                            Some(s) => {
                                let c0 = obs::thread_cpu_ns();
                                let out = s.finish();
                                produce_ns += obs::thread_cpu_ns().saturating_sub(c0);
                                if open {
                                    ship(out.chunks, produce_ns, &mut stall_ns);
                                }
                                out.stats
                            }
                            // Zero roots reached this worker (all stolen
                            // away): no stream, no channel traffic.
                            None => SendStats::default(),
                        };
                        Ok(SenderOut { stats, order, produce_raw_ns: produce_ns, stall_ns })
                    }));
                    absorb_tasks.push(scope.spawn(move || -> Result<AbsorbOut> {
                        let mut sa = StreamAbsorber::new(rvm, dir, dst)
                            .with_metrics(Arc::clone(&metrics.registry));
                        if !ctx.is_none() {
                            sa = sa.with_trace(ctx, t as u32 + 1);
                        }
                        let mut timeline: Vec<(u64, u64, u64)> = Vec::new();
                        let mut stall_ns = 0u64;
                        loop {
                            let t0 = Instant::now();
                            let Ok((chunk, ready_ns)) = rx.recv() else { break };
                            let waited = t0.elapsed().as_nanos() as u64;
                            stall_ns += waited;
                            metrics.chunk_stall_ns.record(waited);
                            let now = in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
                            metrics.chunks_in_flight.set(now);
                            let c0 = obs::thread_cpu_ns();
                            sa.push_chunk(&chunk)?;
                            sa.absorb_ready(hooks)?;
                            timeline.push((
                                ready_ns,
                                chunk.len() as u64,
                                obs::thread_cpu_ns().saturating_sub(c0),
                            ));
                            pool.release(chunk);
                        }
                        let c0 = obs::thread_cpu_ns();
                        let stream_in = sa.finish_stream(hooks)?;
                        let fixup_raw_ns = obs::thread_cpu_ns().saturating_sub(c0);
                        Ok(AbsorbOut { stream_in, timeline, stall_ns, fixup_raw_ns })
                    }));
                }
                fn join<T>(h: std::thread::ScopedJoinHandle<'_, T>) -> T {
                    match h.join() {
                        Ok(r) => r,
                        Err(p) => std::panic::resume_unwind(p),
                    }
                }
                (
                    sender_tasks.into_iter().map(join).collect(),
                    absorb_tasks.into_iter().map(join).collect(),
                )
            })
        };
        receiver_vm.heap_mut().end_shared_old_alloc();
        self.metrics.chunks_in_flight.set(0);

        // Sender errors first: a sender failure closes its channel, which
        // makes its absorber fail on the truncated stream — the sender's
        // error is the root cause.
        let souts = joined.0.into_iter().collect::<Result<Vec<SenderOut>>>()?;
        let aouts = joined.1.into_iter().collect::<Result<Vec<AbsorbOut>>>()?;

        // Merge on the calling thread, which owns `&mut Vm` again: roots
        // back into original order, one batched card pass over every
        // stream's input buffers, then update hooks.
        let merge0 = obs::thread_cpu_ns();
        let mut send_stats = SendStats::default();
        let mut recv_stats = ReceiveStats::default();
        let mut roots_out = vec![Addr::NULL; roots.len()];
        let mut produce_raw_ns = 0u64;
        let mut sender_stall_ns = 0u64;
        let mut receiver_stall_ns = 0u64;
        let mut card_spans: Vec<(Addr, u64)> = Vec::new();
        let mut pending_hooks: Vec<(Addr, usize)> = Vec::new();
        for (t, (so, ao)) in souts.iter().zip(&aouts).enumerate() {
            if so.order.len() != ao.stream_in.roots.len() {
                return Err(Error::BadFrame(format!(
                    "parallel stream {t} absorbed {} roots but the sender emitted {}",
                    ao.stream_in.roots.len(),
                    so.order.len()
                )));
            }
            for (j, &orig) in so.order.iter().enumerate() {
                roots_out[orig as usize] = ao.stream_in.roots[j];
            }
            send_stats.merge(&so.stats);
            recv_stats.merge(&ao.stream_in.stats);
            produce_raw_ns += so.produce_raw_ns;
            sender_stall_ns += so.stall_ns;
            receiver_stall_ns += ao.stall_ns;
            card_spans.extend(&ao.stream_in.card_spans);
            pending_hooks.extend(&ao.stream_in.pending_hooks);
        }
        let cards = receiver_vm.heap_mut().dirty_card_batch(&card_spans);
        recv_stats.cards_dirtied += cards;
        self.metrics.registry.counter(obs::names::RECEIVER_CARDS_DIRTIED).add(cards);
        if let Some(h) = hooks {
            for (obj, idx) in pending_hooks {
                h.apply(receiver_vm, obj, idx)?;
            }
        }
        let merge_raw_ns = obs::thread_cpu_ns().saturating_sub(merge0);

        let steals = steal_set.steals();
        self.metrics.steals.add(steals);
        self.metrics.stall_ns.add(sender_stall_ns + receiver_stall_ns);
        let pool_hits = self.pool.hits() - pool_hits0;
        let pool_misses = self.pool.misses() - pool_misses0;
        self.metrics.pool_hits.add(pool_hits);
        self.metrics.pool_misses.add(pool_misses);

        let per_stream: Vec<StreamTimeline<'_>> =
            aouts.iter().map(|a| (a.timeline.as_slice(), a.fixup_raw_ns)).collect();
        let absorb_raw_total_ns: u64 = aouts
            .iter()
            .map(|a| a.fixup_raw_ns + a.timeline.iter().map(|&(_, _, ns)| ns).sum::<u64>())
            .sum::<u64>()
            + merge_raw_ns;
        let report = self.schedule_parallel(
            &per_stream,
            produce_raw_ns,
            absorb_raw_total_ns,
            merge_raw_ns,
            send_stats,
            recv_stats,
            sender_stall_ns,
            receiver_stall_ns,
            pool_hits,
            pool_misses,
            max_in_flight.load(Ordering::Relaxed),
            workers as u64,
            steals,
            ctx,
            &sender_vm.name,
        );
        Ok((roots_out, report))
    }

    /// The parallel analogue of [`Self::schedule`]: every worker's chunks
    /// contend for ONE shared link (sorted by scaled ready time, each on
    /// its own trace lane), then chain through that worker's absorber;
    /// the transfer ends when the slowest stream finishes its fixups plus
    /// the coordinator's merge. The sequential comparison charges the sum
    /// of all workers' CPU — the same work one thread would have done.
    #[allow(clippy::too_many_arguments)]
    fn schedule_parallel(
        &self,
        per_stream: &[StreamTimeline<'_>],
        produce_raw_ns: u64,
        absorb_raw_total_ns: u64,
        merge_raw_ns: u64,
        send_stats: SendStats,
        recv_stats: ReceiveStats,
        sender_stall_ns: u64,
        receiver_stall_ns: u64,
        pool_hits: u64,
        pool_misses: u64,
        max_in_flight: u64,
        workers: u64,
        steals: u64,
        ctx: obs::TraceCtx,
        link_node: &str,
    ) -> PipelineReport {
        let scale = |ns: u64| -> u64 { (ns as f64 * self.cfg.sim.sd_cpu_scale) as u64 };
        // (scaled ready, worker, bytes, scaled absorb) for every chunk of
        // every stream; the greedy in-ready-order schedule through one
        // LinkClock models the shared wire all streams contend for.
        // Within a worker ready times are cumulative, so the global sort
        // preserves each stream's chunk order.
        let mut events: Vec<(u64, usize, u64, u64)> = Vec::new();
        for (t, (timeline, _)) in per_stream.iter().enumerate() {
            for &(ready_raw, bytes, absorb_raw) in *timeline {
                events.push((scale(ready_raw), t, bytes, scale(absorb_raw)));
            }
        }
        events.sort_by_key(|&(ready, t, _, _)| (ready, t));
        let mut link = LinkClock::new(&self.cfg.sim);
        let mut absorber_free = vec![0u64; per_stream.len()];
        let mut total_bytes = 0u64;
        let mut chunk_bytes = Vec::with_capacity(events.len());
        for &(ready, t, bytes, absorb) in &events {
            let xmit = link.send_traced_on(t, ready, bytes);
            if !ctx.is_none() {
                self.metrics.registry.tracer().record_sim_on(
                    obs::names::TRACE_LINK_XMIT,
                    ctx,
                    link_node,
                    t as u32 + 1,
                    xmit.start_ns,
                    xmit.end_ns,
                    &[("bytes", bytes)],
                );
            }
            absorber_free[t] = absorber_free[t].max(xmit.arrival_ns) + absorb;
            total_bytes += bytes;
            chunk_bytes.push(bytes);
        }
        let slowest_stream = per_stream
            .iter()
            .enumerate()
            .map(|(t, &(_, fixup_raw))| absorber_free[t] + scale(fixup_raw))
            .max()
            .unwrap_or(0);
        let pipelined_ns = slowest_stream + scale(merge_raw_ns);
        let sequential_ns =
            scale(produce_raw_ns) + self.cfg.sim.net_ns(total_bytes) + scale(absorb_raw_total_ns);
        PipelineReport {
            send_stats,
            recv_stats,
            chunk_bytes,
            pipelined_ns,
            sequential_ns,
            produce_ns: scale(produce_raw_ns),
            wire_ns: link.busy_ns(),
            absorb_ns: scale(absorb_raw_total_ns),
            sender_stall_ns,
            receiver_stall_ns,
            pool_hits,
            pool_misses,
            max_in_flight,
            mode: TransferMode::Parallel,
            workers,
            steals,
            link_utilization_pct: link.utilization_pct(pipelined_ns),
        }
    }

    /// Builds the simulated-time comparison from the measured timeline.
    ///
    /// Pipelined: each chunk becomes ready at its (scaled) cumulative
    /// produce time, crosses the wire under the [`LinkClock`] schedule,
    /// and is absolutized as soon as both it and the absorber are free;
    /// the final fixup drain runs after the last chunk. Sequential: all
    /// produce, then the whole payload at `net_ns`, then all absorption —
    /// the three-phase barrier the sequential path actually pays.
    #[allow(clippy::too_many_arguments)]
    fn schedule(
        &self,
        timeline: &[(u64, u64, u64)],
        produce_raw_ns: u64,
        absorb_raw_total_ns: u64,
        fixup_raw_ns: u64,
        send_stats: SendStats,
        recv_stats: ReceiveStats,
        sender_stall_ns: u64,
        receiver_stall_ns: u64,
        pool_hits: u64,
        pool_misses: u64,
        max_in_flight: u64,
        ctx: obs::TraceCtx,
        link_node: &str,
    ) -> PipelineReport {
        let scale = |ns: u64| -> u64 { (ns as f64 * self.cfg.sim.sd_cpu_scale) as u64 };
        let mut link = LinkClock::new(&self.cfg.sim);
        let mut absorber_free = 0u64;
        let mut total_bytes = 0u64;
        let mut chunk_bytes = Vec::with_capacity(timeline.len());
        for &(ready_raw, bytes, absorb_raw) in timeline {
            let xmit = link.send_traced(scale(ready_raw), bytes);
            if !ctx.is_none() {
                self.metrics.registry.tracer().record_sim(
                    obs::names::TRACE_LINK_XMIT,
                    ctx,
                    link_node,
                    xmit.start_ns,
                    xmit.end_ns,
                    &[("bytes", bytes)],
                );
            }
            absorber_free = absorber_free.max(xmit.arrival_ns) + scale(absorb_raw);
            total_bytes += bytes;
            chunk_bytes.push(bytes);
        }
        let pipelined_ns = absorber_free + scale(fixup_raw_ns);
        let sequential_ns =
            scale(produce_raw_ns) + self.cfg.sim.net_ns(total_bytes) + scale(absorb_raw_total_ns);
        PipelineReport {
            send_stats,
            recv_stats,
            chunk_bytes,
            pipelined_ns,
            sequential_ns,
            produce_ns: scale(produce_raw_ns),
            wire_ns: link.busy_ns(),
            absorb_ns: scale(absorb_raw_total_ns),
            sender_stall_ns,
            receiver_stall_ns,
            pool_hits,
            pool_misses,
            max_in_flight,
            mode: TransferMode::Pipelined,
            workers: 1,
            steals: 0,
            link_utilization_pct: link.utilization_pct(pipelined_ns),
        }
    }
}

/// A sequential (three-phase) reference transfer over the same VM pair,
/// for equivalence tests and benchmarks: send everything, then push every
/// chunk, then absolutize in one pass.
///
/// # Errors
/// Heap/registry/corrupt-stream errors.
#[allow(clippy::too_many_arguments)]
pub fn sequential_transfer(
    sender_vm: &Vm,
    receiver_vm: &mut Vm,
    dir: &TypeDirectory,
    src: NodeId,
    dst: NodeId,
    sid: u8,
    stream: u16,
    roots: &[Addr],
    hooks: Option<&UpdateRegistry>,
    cfg: SendConfig,
) -> Result<(Vec<Addr>, SendStats, ReceiveStats)> {
    let mut gs = GraphSender::new(sender_vm, dir, src, sid, stream, cfg)?;
    for &root in roots {
        gs.write_root(root)?;
    }
    let out = gs.finish();
    let mut gr = GraphReceiver::new(receiver_vm, dir, dst);
    for c in &out.chunks {
        gr.push_chunk(c)?;
    }
    let (roots_out, recv_stats) = gr.finish(hooks)?;
    Ok((roots_out, out.stats, recv_stats))
}

// Sanity: the sender half is moved into a scoped thread holding `&Vm`,
// `&TypeDirectory`, and `&PipelineEngine`; this is only sound because all
// three are `Sync` (the registry serves concurrent tID lookups, the pool
// is lock-protected). The compiler enforces it — this note is for readers.
#[allow(dead_code)]
fn _assert_sync(v: &Vm, d: &TypeDirectory, p: &PipelineEngine) {
    fn is_sync<T: Sync>(_: &T) {}
    is_sync(v);
    is_sync(d);
    is_sync(p);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mheap::{stdlib::define_core_classes, ClassPath, HeapConfig};

    fn env() -> (Arc<TypeDirectory>, Vm, Vm) {
        let cp = ClassPath::new();
        define_core_classes(&cp);
        let sender = Vm::new("s", &HeapConfig::small(), Arc::clone(&cp)).unwrap();
        let receiver = Vm::new("r", &HeapConfig::small(), cp).unwrap();
        let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
        dir.bootstrap_driver(&sender).unwrap();
        dir.worker_startup(NodeId(1)).unwrap();
        (dir, sender, receiver)
    }

    #[test]
    fn pipelined_matches_sequential_roots() {
        let (dir, mut s, mut r) = env();
        let mut root_addrs = Vec::new();
        for i in 0..64 {
            root_addrs.push(s.new_string(&format!("payload {i} {}", "x".repeat(i))).unwrap());
        }
        let engine =
            PipelineEngine::new(PipelineConfig { chunk_limit: 256, ..PipelineConfig::default() });
        let (got, report) = engine
            .transfer(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 1, &root_addrs, None)
            .unwrap();
        assert_eq!(got.len(), root_addrs.len());
        for (i, a) in got.iter().enumerate() {
            assert!(r.read_string(*a).unwrap().starts_with(&format!("payload {i} ")));
        }
        // Same work as the sequential reference path over identical input.
        let (dir2, mut s2, mut r2) = env();
        let mut addrs2 = Vec::new();
        for i in 0..64 {
            addrs2.push(s2.new_string(&format!("payload {i} {}", "x".repeat(i))).unwrap());
        }
        let cfg = SendConfig { chunk_limit: 256, ..SendConfig::for_vm(&s2) };
        let (got2, sstats2, rstats2) = sequential_transfer(
            &s2,
            &mut r2,
            &dir2,
            NodeId(0),
            NodeId(1),
            1,
            1,
            &addrs2,
            None,
            cfg,
        )
        .unwrap();
        assert_eq!(got2.len(), got.len());
        assert_eq!(report.recv_stats.objects, rstats2.objects);
        assert_eq!(report.recv_stats.bytes, rstats2.bytes);
        assert_eq!(report.recv_stats.ref_fixups, rstats2.ref_fixups);
        assert_eq!(report.send_stats.total_bytes, sstats2.total_bytes);
        assert!(report.chunk_bytes.len() > 1, "test must span multiple chunks");
        assert_eq!(
            report.chunk_bytes.iter().sum::<u64>(),
            report.send_stats.total_bytes,
            "every produced byte crossed the channel"
        );
    }

    #[test]
    fn second_transfer_reuses_every_backing() {
        let (dir, mut s, mut r) = env();
        let mut addrs = Vec::new();
        for i in 0..32 {
            addrs.push(s.new_string(&format!("pooled {i}")).unwrap());
        }
        let reg = Arc::new(obs::Registry::new());
        // Exact hit/miss assertions need an isolated pool — the global
        // per-node pool aggregates every concurrently running test.
        let engine =
            PipelineEngine::new(PipelineConfig { chunk_limit: 128, ..PipelineConfig::default() })
                .with_metrics(Arc::clone(&reg))
                .with_pool(ChunkPool::new());
        let (_, first) =
            engine.transfer(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 1, &addrs, None).unwrap();
        assert!(first.pool_misses > 0, "cold pool must allocate");
        let (_, second) =
            engine.transfer(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 2, &addrs, None).unwrap();
        // The warm pool serves the second run: it reuses backings (hits)
        // and never allocates more than the cold run's peak did — exact
        // zero would be flaky, since the peak of concurrently outstanding
        // chunks depends on thread scheduling.
        assert!(
            second.pool_misses <= first.pool_misses,
            "steady state allocates no more than cold"
        );
        assert!(second.pool_hits > 0, "warm pool must serve backings");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(obs::names::PIPELINE_POOL_MISSES),
            first.pool_misses + second.pool_misses
        );
        assert!(snap.counter(obs::names::PIPELINE_POOL_HITS) >= second.pool_hits);
    }

    #[test]
    fn flat_roots_take_single_chunk_fallback() {
        let (dir, mut s, mut r) = env();
        let mut addrs = Vec::new();
        for i in 0..16 {
            addrs.push(s.new_integer(i).unwrap());
        }
        // Isolated pool: the test asserts exact steady-state miss counts.
        let engine = PipelineEngine::new(PipelineConfig::default()).with_pool(ChunkPool::new());
        let (got, report) =
            engine.transfer(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 1, &addrs, None).unwrap();
        assert_eq!(got.len(), 16);
        for (i, a) in got.iter().enumerate() {
            assert_eq!(r.get_int(*a, "value").unwrap(), i as i32);
        }
        assert_eq!(report.mode, TransferMode::Inline);
        assert_eq!(report.chunk_bytes.len(), 1, "flat graph travels as one chunk");
        assert_eq!(report.max_in_flight, 0, "fallback never opens the channel");
        assert_eq!(report.pipelined_ns, report.sequential_ns, "nothing overlaps");
        assert_eq!(report.sender_stall_ns + report.receiver_stall_ns, 0);
        assert_eq!(report.chunk_bytes[0], report.send_stats.total_bytes);
        // The pool serves the fallback too: an identical second transfer
        // runs entirely on the released backing.
        let (_, second) =
            engine.transfer(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 2, &addrs, None).unwrap();
        assert_eq!(second.pool_misses, 0, "steady-state fallback allocates nothing");
        assert!(second.pool_hits > 0);
        // A ref-bearing root disqualifies the graph and keeps the
        // overlapped path (strings reference their char arrays). The mode
        // is the deterministic witness — max_in_flight depends on thread
        // scheduling and can legitimately be 0 on a busy host.
        let mixed = [addrs[0], s.new_string("not flat").unwrap()];
        let (_, threaded) =
            engine.transfer(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 3, &mixed, None).unwrap();
        assert_eq!(threaded.mode, TransferMode::Pipelined, "ref-bearing roots stay pipelined");
    }

    #[test]
    fn parallel_transfer_matches_sequential() {
        let (dir, mut s, mut r) = env();
        let mut addrs = Vec::new();
        for i in 0..48 {
            addrs.push(s.new_string(&format!("parallel payload {i} {}", "y".repeat(i))).unwrap());
        }
        let par = ParallelConfig { workers: 4, min_roots_per_worker: 1, ..Default::default() };
        let engine = PipelineEngine::new(PipelineConfig {
            chunk_limit: 256,
            parallel: Some(par),
            ..PipelineConfig::default()
        });
        let (got, report) =
            engine.transfer(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 1, &addrs, None).unwrap();
        assert_eq!(report.mode, TransferMode::Parallel);
        assert_eq!(report.workers, 4);
        assert_eq!(got.len(), addrs.len());
        // Root order is restored from the per-stream index tables even
        // though workers interleave and steal.
        for (i, a) in got.iter().enumerate() {
            assert!(r.read_string(*a).unwrap().starts_with(&format!("parallel payload {i} ")));
        }
        // Strings share nothing, so parallel absorbs exactly the
        // sequential object population.
        let (dir2, mut s2, mut r2) = env();
        let mut addrs2 = Vec::new();
        for i in 0..48 {
            addrs2.push(s2.new_string(&format!("parallel payload {i} {}", "y".repeat(i))).unwrap());
        }
        let cfg = SendConfig { chunk_limit: 256, ..SendConfig::for_vm(&s2) };
        let (got2, sstats2, rstats2) = sequential_transfer(
            &s2,
            &mut r2,
            &dir2,
            NodeId(0),
            NodeId(1),
            1,
            1,
            &addrs2,
            None,
            cfg,
        )
        .unwrap();
        assert_eq!(got2.len(), got.len());
        assert_eq!(report.recv_stats.objects, rstats2.objects);
        assert_eq!(report.recv_stats.bytes, rstats2.bytes);
        assert_eq!(report.recv_stats.ref_fixups, rstats2.ref_fixups);
        assert_eq!(report.send_stats.objects, sstats2.objects);
        assert_eq!(report.send_stats.total_bytes, sstats2.total_bytes);
        assert_eq!(
            report.chunk_bytes.iter().sum::<u64>(),
            report.send_stats.total_bytes,
            "every produced byte crossed a channel"
        );
        // The receiving heap stays coherent for further mutation: a GC
        // after the parallel absorb must keep every transferred string.
        let keep: Vec<_> = got.iter().map(|&a| r.handle(a)).collect();
        r.full_gc().unwrap();
        for (i, h) in keep.iter().enumerate() {
            let a = r.resolve(*h).unwrap();
            assert!(r.read_string(a).unwrap().starts_with(&format!("parallel payload {i} ")));
        }
    }

    #[test]
    fn parallel_policy_falls_back_below_root_floor() {
        let (dir, mut s, mut r) = env();
        let mut addrs = Vec::new();
        for i in 0..6 {
            addrs.push(s.new_string(&format!("few {i}")).unwrap());
        }
        // 6 roots < 4 workers × 8 roots/worker → pipelined, not parallel.
        let engine = PipelineEngine::new(PipelineConfig {
            chunk_limit: 128,
            parallel: Some(ParallelConfig { workers: 4, ..Default::default() }),
            ..PipelineConfig::default()
        });
        let (_, report) =
            engine.transfer(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 1, &addrs, None).unwrap();
        assert_eq!(report.mode, TransferMode::Pipelined);
        assert_eq!(report.workers, 1);
        // And a flat graph that fits one chunk stays inline even with
        // parallel enabled and enough roots for the worker floor.
        let roomy = PipelineEngine::new(PipelineConfig {
            parallel: Some(ParallelConfig { workers: 4, ..Default::default() }),
            ..PipelineConfig::default()
        });
        let flat: Vec<Addr> = (0..64).map(|i| s.new_integer(i).unwrap()).collect();
        let (_, flat_report) =
            roomy.transfer(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 2, &flat, None).unwrap();
        assert_eq!(flat_report.mode, TransferMode::Inline);
    }

    #[test]
    fn adaptive_chunking_moves_the_limit_with_stalls() {
        let engine = PipelineEngine::new(PipelineConfig {
            chunk_limit: 64 << 10,
            adaptive_chunking: true,
            ..PipelineConfig::default()
        });
        assert_eq!(engine.effective_chunk_limit(), 64 << 10);
        // Sender-stall dominance grows the chunks…
        engine.adapt_chunk_limit(10_000, 1_000);
        assert_eq!(engine.effective_chunk_limit(), 128 << 10);
        // …balanced stalls hold steady…
        engine.adapt_chunk_limit(5_000, 4_000);
        assert_eq!(engine.effective_chunk_limit(), 128 << 10);
        // …receiver-stall dominance shrinks, and the floor holds.
        for _ in 0..10 {
            engine.adapt_chunk_limit(0, 10_000);
        }
        assert_eq!(engine.effective_chunk_limit(), MIN_ADAPTIVE_CHUNK);
        // The ceiling holds too.
        for _ in 0..10 {
            engine.adapt_chunk_limit(10_000, 0);
        }
        assert_eq!(engine.effective_chunk_limit(), MAX_ADAPTIVE_CHUNK);
        // Without the opt-in flag the configured limit is authoritative.
        let fixed = PipelineEngine::new(PipelineConfig::default());
        fixed.adapt_chunk_limit(10_000, 0);
        assert_eq!(fixed.effective_chunk_limit(), DEFAULT_PIPELINE_CHUNK);
    }

    #[test]
    fn report_charges_cluster_stream() {
        let (dir, mut s, mut r) = env();
        let addrs = [s.new_string("charged").unwrap()];
        let engine = PipelineEngine::new(PipelineConfig::default());
        let (_, report) =
            engine.transfer(&s, &mut r, &dir, NodeId(0), NodeId(1), 1, 1, &addrs, None).unwrap();
        let mut cluster = Cluster::new(2, SimConfig::default());
        report.charge(&mut cluster, NodeId(0), NodeId(1)).unwrap();
        let p = cluster.profile(NodeId(1));
        assert_eq!(p.bytes_remote, report.send_stats.total_bytes);
        assert_eq!(cluster.profile(NodeId(0)).ns(simnet::Category::Ser), report.produce_ns);
        assert_eq!(cluster.profile(NodeId(1)).ns(simnet::Category::Deser), report.absorb_ns);
    }
}
