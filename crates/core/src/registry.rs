//! Global class numbering (paper §4.1, Algorithm 1).
//!
//! The driver JVM owns the complete type registry mapping every class name
//! to a cluster-unique integer id (`tID`). Each worker holds a *registry
//! view* — a subset it pulls from the driver:
//!
//! * at startup it issues one `REQUEST_VIEW` and receives the whole current
//!   registry in a batch (most classes a worker will need are already
//!   registered, so batching beats per-class round trips);
//! * when it loads a class missing from its view it issues a `LOOKUP` with
//!   the class-name string; the driver returns (or creates) the id;
//! * the id is written into the klass meta-object (`WRITETID`), so the hot
//!   send path reads it with one load.
//!
//! Message and string-byte counters are kept so the registry-traffic
//! ablation can compare this protocol against per-class lookups and against
//! the Java serializer's string-per-object regime.

use std::collections::HashMap;

use mheap::{Klass, Vm};
use parking_lot::Mutex;
use simnet::NodeId;

use crate::{Error, Result};

/// Traffic statistics of the type-registration protocol.
#[derive(Debug, Default, Clone, Copy)]
pub struct RegistryStats {
    /// `REQUEST_VIEW` batch pulls served.
    pub view_pulls: u64,
    /// Individual `LOOKUP` round trips served.
    pub lookups: u64,
    /// Total protocol messages (requests + responses).
    pub messages: u64,
    /// Class-name string bytes that crossed the (simulated) wire.
    pub string_bytes: u64,
}

#[derive(Debug, Default)]
struct DriverRegistry {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl DriverRegistry {
    fn lookup_or_create(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }
}

#[derive(Debug, Default, Clone)]
struct RegistryView {
    by_name: HashMap<String, u32>,
    by_id: HashMap<u32, String>,
}

impl RegistryView {
    fn insert(&mut self, name: &str, id: u32) {
        self.by_name.insert(name.to_owned(), id);
        self.by_id.insert(id, name.to_owned());
    }
}

/// The cluster-wide type directory: driver registry + per-node views.
///
/// One instance is shared (via `Arc`) by every node of a simulated cluster;
/// the per-node state is what each JVM would hold locally, and every access
/// that would cross the network updates [`RegistryStats`].
#[derive(Debug)]
pub struct TypeDirectory {
    driver: NodeId,
    registry: Mutex<DriverRegistry>,
    views: Vec<Mutex<RegistryView>>,
    stats: Mutex<RegistryStats>,
}

impl TypeDirectory {
    /// Creates the directory for an `n`-node cluster with the given driver
    /// node (the paper lets the user pick the driver through an API call).
    pub fn new(n_nodes: usize, driver: NodeId) -> Self {
        TypeDirectory {
            driver,
            registry: Mutex::new(DriverRegistry::default()),
            views: (0..n_nodes).map(|_| Mutex::new(RegistryView::default())).collect(),
            stats: Mutex::new(RegistryStats::default()),
        }
    }

    /// The driver node.
    pub fn driver(&self) -> NodeId {
        self.driver
    }

    /// Protocol traffic so far.
    pub fn stats(&self) -> RegistryStats {
        *self.stats.lock()
    }

    /// Number of globally registered types.
    pub fn len(&self) -> usize {
        self.registry.lock().names.len()
    }

    /// True if no type is registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn view(&self, node: NodeId) -> Result<&Mutex<RegistryView>> {
        self.views.get(node.0).ok_or(Error::UnknownNode(node.0))
    }

    /// Driver part 1 (Algorithm 1, lines 3–8): after JVM startup, register
    /// every class already loaded in the driver VM and stamp their `tID`s.
    ///
    /// # Errors
    /// [`Error::UnknownNode`] if the directory was built without the driver.
    pub fn bootstrap_driver(&self, vm: &Vm) -> Result<()> {
        let mut reg = self.registry.lock();
        let mut view = self.view(self.driver)?.lock();
        for k in vm.klasses().all() {
            let id = reg.lookup_or_create(&k.name);
            k.set_tid(id);
            view.insert(&k.name, id);
        }
        Ok(())
    }

    /// Worker part 1 (lines 22–24): pull the full registry in one
    /// `REQUEST_VIEW` batch at startup.
    ///
    /// # Errors
    /// [`Error::UnknownNode`].
    pub fn worker_startup(&self, node: NodeId) -> Result<()> {
        let reg = self.registry.lock();
        let mut view = self.view(node)?.lock();
        let mut bytes = 0u64;
        for (i, name) in reg.names.iter().enumerate() {
            view.insert(name, i as u32);
            bytes += name.len() as u64 + 4;
        }
        let mut st = self.stats.lock();
        st.view_pulls += 1;
        st.messages += 2;
        st.string_bytes += bytes;
        Ok(())
    }

    /// Worker part 2 (lines 26–35): obtain the `tID` for a loaded klass,
    /// consulting the local view first and falling back to a `LOOKUP` round
    /// trip, then write the id into the klass meta-object.
    ///
    /// # Errors
    /// [`Error::UnknownNode`].
    pub fn tid_for(&self, node: NodeId, klass: &Klass) -> Result<u32> {
        if let Some(tid) = klass.tid() {
            return Ok(tid);
        }
        {
            let view = self.view(node)?.lock();
            if let Some(&id) = view.by_name.get(&klass.name) {
                klass.set_tid(id);
                return Ok(id);
            }
        }
        // LOOKUP round trip: class-name string to the driver, id back.
        // Every guard below is scoped to a single statement or block so the
        // locks are taken strictly one at a time: holding the view while
        // locking the registry here inverted `worker_startup`'s
        // registry-then-view order (a deadlock window under concurrent
        // startup + lookup), and holding stats across the driver-view
        // insert inverted view-then-stats the same way. The race this
        // opens — another thread interleaving between the registry lookup
        // and the view insert — is benign: `lookup_or_create` is
        // idempotent and re-inserting the same (name, id) is a no-op.
        let id = self.registry.lock().lookup_or_create(&klass.name);
        self.view(node)?.lock().insert(&klass.name, id);
        klass.set_tid(id);
        {
            let mut st = self.stats.lock();
            st.lookups += 1;
            st.messages += 2;
            st.string_bytes += klass.name.len() as u64;
        }
        // The driver's own view stays complete.
        if node != self.driver {
            self.view(self.driver)?.lock().insert(&klass.name, id);
        }
        Ok(id)
    }

    /// Receiver-side reverse mapping: class name behind a `tID`. Consults
    /// the local view, then the driver ("the type registry knows the full
    /// class name", §4.1).
    ///
    /// # Errors
    /// [`Error::UnknownNode`]; [`Error::UnknownTypeId`] if no node ever
    /// registered the id.
    pub fn name_for_tid(&self, node: NodeId, tid: u32) -> Result<String> {
        {
            let view = self.view(node)?.lock();
            if let Some(name) = view.by_id.get(&tid) {
                return Ok(name.clone());
            }
        }
        let reg = self.registry.lock();
        let name = reg.names.get(tid as usize).cloned().ok_or(Error::UnknownTypeId(tid))?;
        drop(reg);
        self.view(node)?.lock().insert(&name, tid);
        let mut st = self.stats.lock();
        st.lookups += 1;
        st.messages += 2;
        st.string_bytes += name.len() as u64;
        Ok(name)
    }

    /// [`TypeDirectory::name_for_tid`] wrapped in a
    /// `trace.registry.class_load` span — the receiver's on-demand class
    /// resolution is a protocol round trip worth seeing on a transfer's
    /// timeline. Inert (plain lookup) when `ctx` is absent or tracing is
    /// off.
    ///
    /// # Errors
    /// Same as [`TypeDirectory::name_for_tid`].
    pub fn name_for_tid_traced(
        &self,
        node: NodeId,
        tid: u32,
        tracer: &obs::Tracer,
        ctx: obs::TraceCtx,
        node_name: &str,
    ) -> Result<String> {
        let mut span = tracer.start(obs::names::TRACE_REGISTRY_CLASS_LOAD, ctx, node_name);
        span.annotate("tid", u64::from(tid));
        self.name_for_tid(node, tid)
    }

    /// Registers every class currently loaded in a worker VM (bulk variant
    /// of the class-load hook, useful right after booting a workload).
    ///
    /// # Errors
    /// [`Error::UnknownNode`].
    pub fn register_loaded(&self, node: NodeId, vm: &Vm) -> Result<()> {
        for k in vm.klasses().all() {
            self.tid_for(node, &k)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mheap::stdlib::define_core_classes;
    use mheap::{ClassPath, HeapConfig};

    fn vm(name: &str) -> Vm {
        let cp = ClassPath::new();
        define_core_classes(&cp);
        Vm::new(name, &HeapConfig::small(), cp).unwrap()
    }

    #[test]
    fn driver_bootstrap_assigns_stable_ids() {
        let driver_vm = vm("driver");
        driver_vm.load_class("java.lang.String").unwrap();
        driver_vm.load_class("java.lang.Integer").unwrap();
        let dir = TypeDirectory::new(3, NodeId(0));
        dir.bootstrap_driver(&driver_vm).unwrap();
        let s = driver_vm.klasses().by_name("java.lang.String").unwrap();
        assert!(s.tid().is_some());
        assert_eq!(dir.len(), driver_vm.klasses().len());
    }

    #[test]
    fn view_pull_then_local_hits_cost_no_lookups() {
        let driver_vm = vm("driver");
        driver_vm.load_class("java.lang.String").unwrap();
        let dir = TypeDirectory::new(2, NodeId(0));
        dir.bootstrap_driver(&driver_vm).unwrap();

        let worker_vm = vm("worker");
        dir.worker_startup(NodeId(1)).unwrap();
        worker_vm.load_class("java.lang.String").unwrap();
        let k = worker_vm.klasses().by_name("java.lang.String").unwrap();
        let tid = dir.tid_for(NodeId(1), &k).unwrap();

        // Same id as the driver's.
        let dk = driver_vm.klasses().by_name("java.lang.String").unwrap();
        assert_eq!(Some(tid), dk.tid());
        // No individual lookup was needed.
        assert_eq!(dir.stats().lookups, 0);
        assert_eq!(dir.stats().view_pulls, 1);
    }

    #[test]
    fn unseen_class_costs_one_lookup_and_registers_globally() {
        let dir = TypeDirectory::new(2, NodeId(0));
        let worker_vm = vm("worker");
        dir.worker_startup(NodeId(1)).unwrap();
        worker_vm.load_class("util.Pair").unwrap();
        let k = worker_vm.klasses().by_name("util.Pair").unwrap();
        let tid = dir.tid_for(NodeId(1), &k).unwrap();
        assert_eq!(dir.stats().lookups, 1);
        // A second worker finds it without defining it.
        assert_eq!(dir.name_for_tid(NodeId(0), tid).unwrap(), "util.Pair");
    }

    #[test]
    fn same_class_same_id_across_nodes() {
        let dir = TypeDirectory::new(3, NodeId(0));
        let a = vm("a");
        let b = vm("b");
        a.load_class("util.Pair").unwrap();
        b.load_class("util.Pair").unwrap();
        let ka = a.klasses().by_name("util.Pair").unwrap();
        let kb = b.klasses().by_name("util.Pair").unwrap();
        let ta = dir.tid_for(NodeId(1), &ka).unwrap();
        let tb = dir.tid_for(NodeId(2), &kb).unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    fn cached_tid_short_circuits() {
        let dir = TypeDirectory::new(1, NodeId(0));
        let a = vm("a");
        a.load_class("util.Pair").unwrap();
        let k = a.klasses().by_name("util.Pair").unwrap();
        let t1 = dir.tid_for(NodeId(0), &k).unwrap();
        let msgs = dir.stats().messages;
        let t2 = dir.tid_for(NodeId(0), &k).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(dir.stats().messages, msgs, "cached tid must cost no messages");
    }

    #[test]
    fn unknown_tid_is_an_error() {
        let dir = TypeDirectory::new(1, NodeId(0));
        assert!(matches!(dir.name_for_tid(NodeId(0), 999), Err(Error::UnknownTypeId(999))));
    }

    #[test]
    fn unknown_node_is_an_error() {
        let dir = TypeDirectory::new(1, NodeId(0));
        assert!(matches!(dir.worker_startup(NodeId(5)), Err(Error::UnknownNode(5))));
    }

    #[test]
    fn concurrent_tid_lookups_agree() {
        // Parallel sender threads resolve tids concurrently; all threads
        // must observe one consistent id per class.
        let dir = std::sync::Arc::new(TypeDirectory::new(1, NodeId(0)));
        let a = vm("a");
        a.load_class("util.Pair").unwrap();
        a.load_class("java.lang.String").unwrap();
        let pair = a.klasses().by_name("util.Pair").unwrap();
        let string = a.klasses().by_name("java.lang.String").unwrap();
        let ids: Vec<(u32, u32)> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let dir = std::sync::Arc::clone(&dir);
                    let pair = std::sync::Arc::clone(&pair);
                    let string = std::sync::Arc::clone(&string);
                    s.spawn(move || {
                        (
                            dir.tid_for(NodeId(0), &pair).unwrap(),
                            dir.tid_for(NodeId(0), &string).unwrap(),
                        )
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(ids[0].0, ids[0].1);
    }

    #[test]
    fn strings_cross_wire_once_per_class_not_per_object() {
        // The paper's claim: Skyway sends a type string at most once per
        // class per machine. 1000 tid_for calls → string bytes bounded by
        // one name.
        let dir = TypeDirectory::new(2, NodeId(0));
        let a = vm("a");
        a.load_class("util.Pair").unwrap();
        let k = a.klasses().by_name("util.Pair").unwrap();
        for _ in 0..1000 {
            dir.tid_for(NodeId(1), &k).unwrap();
        }
        assert_eq!(dir.stats().string_bytes, "util.Pair".len() as u64);
    }
}
