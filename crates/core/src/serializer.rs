//! The [`serlab::Serializer`] adapter: lets Skyway plug into the same
//! shuffle pipelines and benchmarks as every baseline library (paper §3.3 —
//! "directly compatible with the standard Java serializer").
//!
//! One adapter instance belongs to one node: it serializes outgoing data
//! from that node's VM and deserializes incoming data into it. Byte blobs
//! are framed chunk streams (see [`crate::buffer::frame_chunks`]), so they
//! travel through files, sockets, or the simulated network unchanged.

use std::sync::Arc;

use mheap::{Addr, LayoutSpec, Vm};
use simnet::{NodeId, Profile};

use crate::buffer::{frame_chunks, parse_frames};
use crate::registry::TypeDirectory;
use crate::sender::{
    send_roots_parallel, GraphSender, ParallelConfig, SendConfig, SendStats, Tracking,
};
use crate::stream::{ShuffleController, UpdateRegistry};
use crate::{Error, Result};

const FLAG_COMPRESSED: u8 = 0b100;

fn spec_flags(spec: LayoutSpec) -> u8 {
    (u8::from(spec.with_baddr)) | (u8::from(spec.array_len_size == 4) << 1)
}

fn flags_spec(flags: u8) -> LayoutSpec {
    LayoutSpec { with_baddr: flags & 1 != 0, array_len_size: if flags & 2 != 0 { 4 } else { 8 } }
}

/// Skyway as a pluggable serializer for one cluster node.
#[derive(Debug)]
pub struct SkywaySerializer {
    dir: Arc<TypeDirectory>,
    node: NodeId,
    controller: Arc<ShuffleController>,
    chunk_limit: usize,
    receiver_spec: LayoutSpec,
    tracking: Tracking,
    hooks: Option<Arc<UpdateRegistry>>,
    compressed_wire: bool,
    parallel_streams: usize,
    last_send_stats: parking_lot::Mutex<SendStats>,
}

impl SkywaySerializer {
    /// Creates the adapter for `node`. `receiver_spec` is the object format
    /// of the nodes this one sends to (same as the local format in
    /// homogeneous clusters).
    pub fn new(
        dir: Arc<TypeDirectory>,
        node: NodeId,
        controller: Arc<ShuffleController>,
        receiver_spec: LayoutSpec,
    ) -> Self {
        SkywaySerializer {
            dir,
            node,
            controller,
            chunk_limit: crate::buffer::DEFAULT_CHUNK,
            receiver_spec,
            tracking: Tracking::Baddr,
            hooks: None,
            compressed_wire: false,
            parallel_streams: 1,
            last_send_stats: parking_lot::Mutex::new(SendStats::default()),
        }
    }

    /// Enables the compressed wire format (the paper's future-work
    /// extension): objects travel without the `baddr` header word and with
    /// 4-byte array lengths; the receiver expands them back to the local
    /// format before absolutization. Smaller streams, slower receive — see
    /// the `ablations` harness for the measured trade-off.
    pub fn with_wire_compression(mut self, on: bool) -> Self {
        self.compressed_wire = on;
        self
    }

    /// Overrides the chunk size, builder-style.
    pub fn with_chunk_limit(mut self, chunk_limit: usize) -> Self {
        self.chunk_limit = chunk_limit.max(64);
        self
    }

    /// Selects the visited-tracking mode, builder-style (the ablation
    /// switch).
    pub fn with_tracking(mut self, tracking: Tracking) -> Self {
        self.tracking = tracking;
        self
    }

    /// Installs post-transfer update hooks, builder-style.
    pub fn with_hooks(mut self, hooks: Arc<UpdateRegistry>) -> Self {
        self.hooks = Some(hooks);
        self
    }

    /// Sends with `n` work-stealing parallel workers (§4.2 "Support for
    /// Threads"): roots start as contiguous per-worker blocks, idle
    /// workers steal from victims, shared objects are claimed via CAS on
    /// `baddr` and duplicated per stream — the same semantics as the
    /// existing serializers.
    pub fn with_parallel_streams(mut self, n: usize) -> Self {
        self.parallel_streams = n.max(1);
        self
    }

    /// Byte-composition statistics of the most recent `serialize` call
    /// (the §5.2 extra-bytes analysis).
    pub fn last_send_stats(&self) -> SendStats {
        *self.last_send_stats.lock()
    }

    /// The shuffle controller (engines call `start_phase` through it).
    pub fn controller(&self) -> &Arc<ShuffleController> {
        &self.controller
    }

    /// Receives one framed single-stream blob into `vm`.
    fn receive_blob(&self, vm: &mut Vm, blob: &[u8]) -> Result<Vec<Addr>> {
        let (flags, chunks) = parse_frames(blob)?;
        let declared_spec = flags_spec(flags);
        if declared_spec != vm.spec() {
            return Err(Error::SpecMismatch {
                wire: format!("{declared_spec:?}"),
                local: format!("{:?}", vm.spec()),
            });
        }
        if flags & FLAG_COMPRESSED != 0 {
            let local_spec = vm.spec();
            let expanded =
                crate::compress::expand_stream(vm, &self.dir, self.node, &chunks, local_spec)?;
            let mut rx = crate::receiver::GraphReceiver::new(vm, &self.dir, self.node);
            rx.push_chunk(&expanded)?;
            let (roots, _stats) = rx.finish(self.hooks.as_deref())?;
            return Ok(roots);
        }
        let mut rx = crate::receiver::GraphReceiver::new(vm, &self.dir, self.node);
        for c in chunks {
            rx.push_chunk(c)?;
        }
        let (roots, _stats) = rx.finish(self.hooks.as_deref())?;
        Ok(roots)
    }

    fn send_config(&self) -> SendConfig {
        SendConfig {
            chunk_limit: self.chunk_limit,
            receiver_spec: if self.compressed_wire {
                crate::compress::WIRE_SPEC
            } else {
                self.receiver_spec
            },
            tracking: self.tracking,
        }
    }
}

impl serlab::Serializer for SkywaySerializer {
    fn name(&self) -> &str {
        "skyway"
    }

    fn serialize(
        &self,
        vm: &mut Vm,
        roots: &[Addr],
        profile: &mut Profile,
    ) -> serlab::Result<Vec<u8>> {
        let flags = if self.compressed_wire {
            spec_flags(self.receiver_spec) | FLAG_COMPRESSED
        } else {
            spec_flags(self.receiver_spec)
        };
        if self.parallel_streams > 1 {
            let mut run = || -> Result<Vec<u8>> {
                let par = ParallelConfig::with_workers(self.parallel_streams);
                let stream_base = self.controller.next_stream_block(par.workers as u16);
                let send = send_roots_parallel(
                    vm,
                    &self.dir,
                    self.node,
                    self.controller.sid(),
                    stream_base,
                    roots,
                    &par,
                    self.send_config(),
                )?;
                let mut merged = SendStats::default();
                let mut out = Vec::new();
                out.extend_from_slice(b"MSKY");
                out.extend_from_slice(&(send.streams.len() as u16).to_le_bytes());
                for (st, order) in send.streams.iter().zip(&send.root_order) {
                    profile.objects_transferred += st.stats.objects;
                    merge_stats(&mut merged, &st.stats);
                    // Root-index table: which original roots this stream
                    // carries, in emission order — work stealing makes the
                    // assignment dynamic, so the wire must say.
                    out.extend_from_slice(&(order.len() as u32).to_le_bytes());
                    for &ix in order {
                        out.extend_from_slice(&ix.to_le_bytes());
                    }
                    let blob = frame_chunks(&st.chunks, flags);
                    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                    out.extend_from_slice(&blob);
                }
                *self.last_send_stats.lock() = merged;
                Ok(out)
            };
            return run().map_err(to_serlab);
        }
        let mut run = || -> Result<Vec<u8>> {
            let mut sender = GraphSender::new(
                vm,
                &self.dir,
                self.node,
                self.controller.sid(),
                self.controller.next_stream(),
                self.send_config(),
            )?;
            for &root in roots {
                sender.write_root(root)?;
            }
            let out = sender.finish();
            profile.objects_transferred += out.stats.objects;
            // Note what is conspicuously absent: no per-object S/D function
            // invocations are counted, because none happen.
            *self.last_send_stats.lock() = out.stats;
            Ok(frame_chunks(&out.chunks, flags))
        };
        run().map_err(to_serlab)
    }

    fn deserialize(
        &self,
        vm: &mut Vm,
        bytes: &[u8],
        _profile: &mut Profile,
    ) -> serlab::Result<Vec<Addr>> {
        if bytes.starts_with(b"MSKY") {
            // Multi-stream container: each stream is an independent input
            // buffer set carrying its own root-index table; roots land
            // back at their original positions regardless of which worker
            // stream the work-stealing traversal assigned them to.
            let mut run = || -> Result<Vec<Addr>> {
                if bytes.len() < 6 {
                    return Err(Error::BadFrame("truncated MSKY container".into()));
                }
                let mut hdr = [0u8; 2];
                hdr.copy_from_slice(&bytes[4..6]);
                let n = u16::from_le_bytes(hdr) as usize;
                let mut pos = 6usize;
                let read_u32 = |pos: &mut usize| -> Result<usize> {
                    let b = bytes
                        .get(*pos..*pos + 4)
                        .ok_or_else(|| Error::BadFrame("truncated MSKY stream header".into()))?;
                    let mut w = [0u8; 4];
                    w.copy_from_slice(b);
                    *pos += 4;
                    Ok(u32::from_le_bytes(w) as usize)
                };
                // Pass 1: parse every table and blob boundary before any
                // heap mutation, so corrupt containers error out with
                // nothing absorbed.
                let mut sections: Vec<(Vec<usize>, &[u8])> = Vec::with_capacity(n);
                for _ in 0..n {
                    let count = read_u32(&mut pos)?;
                    if count > bytes.len() / 4 {
                        return Err(Error::BadFrame("MSKY root table longer than body".into()));
                    }
                    let mut order = Vec::with_capacity(count);
                    for _ in 0..count {
                        order.push(read_u32(&mut pos)?);
                    }
                    let len = read_u32(&mut pos)?;
                    let blob = bytes
                        .get(pos..pos + len)
                        .ok_or_else(|| Error::BadFrame("truncated MSKY stream body".into()))?;
                    pos += len;
                    sections.push((order, blob));
                }
                let total: usize = sections.iter().map(|(o, _)| o.len()).sum();
                if sections.iter().flat_map(|(o, _)| o).any(|&ix| ix >= total) {
                    return Err(Error::BadFrame("MSKY root index out of range".into()));
                }
                let mut slots: Vec<Option<Addr>> = vec![None; total];
                for (order, blob) in sections {
                    let roots = self.receive_blob(vm, blob)?;
                    if roots.len() != order.len() {
                        return Err(Error::BadFrame(format!(
                            "MSKY stream carried {} roots but its table lists {}",
                            roots.len(),
                            order.len()
                        )));
                    }
                    for (ix, addr) in order.into_iter().zip(roots) {
                        if slots[ix].replace(addr).is_some() {
                            return Err(Error::BadFrame(format!("duplicate MSKY root index {ix}")));
                        }
                    }
                }
                slots
                    .into_iter()
                    .map(|s| s.ok_or_else(|| Error::BadFrame("MSKY root index gap".into())))
                    .collect()
            };
            return run().map_err(to_serlab);
        }
        let mut run = || -> Result<Vec<Addr>> {
            let (flags, chunks) = parse_frames(bytes)?;
            let declared_spec = flags_spec(flags);
            if flags & FLAG_COMPRESSED != 0 {
                // Compressed wire: expand to the local format first, then
                // receive the expanded stream normally.
                if declared_spec != vm.spec() {
                    return Err(Error::SpecMismatch {
                        wire: format!("{declared_spec:?}"),
                        local: format!("{:?}", vm.spec()),
                    });
                }
                let local_spec = vm.spec();
                let expanded =
                    crate::compress::expand_stream(vm, &self.dir, self.node, &chunks, local_spec)?;
                let mut rx = crate::receiver::GraphReceiver::new(vm, &self.dir, self.node);
                // Re-chunk the expanded stream at the configured size; the
                // receiver requires objects not to span chunks, which one
                // single chunk trivially satisfies.
                rx.push_chunk(&expanded)?;
                let (roots, _stats) = rx.finish(self.hooks.as_deref())?;
                return Ok(roots);
            }
            if declared_spec != vm.spec() {
                return Err(Error::SpecMismatch {
                    wire: format!("{declared_spec:?}"),
                    local: format!("{:?}", vm.spec()),
                });
            }
            let mut rx = crate::receiver::GraphReceiver::new(vm, &self.dir, self.node);
            for c in chunks {
                rx.push_chunk(c)?;
            }
            let (roots, _stats) = rx.finish(self.hooks.as_deref())?;
            Ok(roots)
        };
        run().map_err(to_serlab)
    }

    fn preserves_sharing(&self) -> bool {
        true
    }
}

fn merge_stats(into: &mut SendStats, s: &SendStats) {
    into.objects += s.objects;
    into.total_bytes += s.total_bytes;
    into.header_bytes += s.header_bytes;
    into.padding_bytes += s.padding_bytes;
    into.pointer_bytes += s.pointer_bytes;
    into.data_bytes += s.data_bytes;
    into.marker_bytes += s.marker_bytes;
    into.fallback_hits += s.fallback_hits;
    into.cas_conflicts += s.cas_conflicts;
}

fn to_serlab(e: Error) -> serlab::Error {
    match e {
        Error::Heap(h) => serlab::Error::Heap(h),
        other => serlab::Error::Malformed(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_flags_roundtrip() {
        for spec in [LayoutSpec::SKYWAY, LayoutSpec::STOCK, LayoutSpec::COMPACT] {
            assert_eq!(flags_spec(spec_flags(spec)), spec);
        }
    }
}
