//! Receiving an object graph (paper §4.3).
//!
//! Each received chunk becomes one *input buffer* region allocated directly
//! in the receiving heap's old generation — transferred data is written
//! into the heap and usable right away. Because the sender's logical byte
//! stream is gapless and objects never span a flush boundary, the receiver
//! only needs a (logical start → heap base) map per chunk; a single linear
//! scan then **absolutizes** the buffer:
//!
//! * the `tID` in each klass slot is replaced by the local klass pointer
//!   (loading the class on demand when this node never saw it);
//! * every relativized reference becomes an absolute heap address;
//! * top marks identify the root objects without re-traversal;
//! * card-table entries covering the buffers are dirtied so the collector
//!   accounts for the new pointers.
//!
//! Two front ends share one absorption core: [`GraphReceiver`] owns a
//! `&mut Vm` and completes a stream end to end (allocation, scan, card
//! batch, hooks), while [`StreamAbsorber`] runs the same scan over a
//! shared `&Vm` — N of them absorb concurrent streams of one parallel
//! transfer, each allocating input buffers through the heap's shared
//! old-generation window, and hand their heap-mutating leftovers (card
//! spans, update hooks) back to the coordinator as a [`StreamIn`].

use std::collections::HashMap;
use std::sync::Arc;

use mheap::layout::mark;
use mheap::{Addr, KlassId, KlassKind, Vm, FILLER_WORD};
use simnet::NodeId;

use crate::buffer::{TOP_MARK, TOP_REF};
use crate::registry::TypeDirectory;
use crate::stream::UpdateRegistry;
use crate::{Error, Result};

#[derive(Debug, Clone, Copy)]
struct ChunkMap {
    logical_start: u64,
    base: Addr,
    len: u64,
}

/// Per-tID facts precomputed once per class so the linear absolutization
/// scan runs at memory speed.
#[derive(Debug, Clone)]
struct TidFacts {
    klass_word: u64,
    kind: KlassKind,
    instance_size: u64,
    elem_size: u64,
    /// Reference-field offsets (instances).
    ref_offsets: Vec<u64>,
    hooked: Option<usize>,
}

/// Receive statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReceiveStats {
    /// Objects absolutized.
    pub objects: u64,
    /// Bytes placed into the heap (markers included).
    pub bytes: u64,
    /// Chunks (old-generation input-buffer regions).
    pub chunks: u64,
    /// Classes loaded on demand during absolutization.
    pub classes_loaded: u64,
    /// Reference slots rewritten from relative to absolute addresses.
    pub ref_fixups: u64,
    /// Card-table entries dirtied to cover the input buffers.
    pub cards_dirtied: u64,
}

impl ReceiveStats {
    /// Accumulates another stream's statistics (parallel-stream merge).
    pub fn merge(&mut self, o: &ReceiveStats) {
        self.objects += o.objects;
        self.bytes += o.bytes;
        self.chunks += o.chunks;
        self.classes_loaded += o.classes_loaded;
        self.ref_fixups += o.ref_fixups;
        self.cards_dirtied += o.cards_dirtied;
    }
}

/// Cached observability handles for the receiver's linear scan.
#[derive(Debug)]
struct ReceiverMetrics {
    registry: Arc<obs::Registry>,
    objects: Arc<obs::Counter>,
    bytes: Arc<obs::Counter>,
    chunks: Arc<obs::Counter>,
    ref_fixups: Arc<obs::Counter>,
    classes_loaded: Arc<obs::Counter>,
    cards_dirtied: Arc<obs::Counter>,
    chunk_bytes: Arc<obs::Histogram>,
}

impl ReceiverMetrics {
    fn new(registry: Arc<obs::Registry>) -> Self {
        ReceiverMetrics {
            objects: registry.counter(obs::names::RECEIVER_OBJECTS_ABSORBED),
            bytes: registry.counter(obs::names::RECEIVER_BYTES_ABSORBED),
            chunks: registry.counter(obs::names::RECEIVER_CHUNKS_ABSORBED),
            ref_fixups: registry.counter(obs::names::RECEIVER_REF_FIXUPS),
            classes_loaded: registry.counter(obs::names::RECEIVER_CLASSES_LOADED),
            cards_dirtied: registry.counter(obs::names::RECEIVER_CARDS_DIRTIED),
            chunk_bytes: registry.histogram(obs::names::RECEIVER_CHUNK_BYTES),
            registry,
        }
    }
}

/// The heap-independent absorption state of one stream: chunk map, caches,
/// fixup lists, statistics. Every method takes `vm: &Vm` — the scan reads
/// and rewrites input-buffer words through the arena's interior
/// mutability, so concurrent absorbers over disjoint buffers never alias.
struct AbsorbCore<'d> {
    dir: &'d TypeDirectory,
    node: NodeId,
    chunks: Vec<ChunkMap>,
    next_logical: u64,
    tid_cache: HashMap<u32, KlassId>,
    facts_cache: HashMap<u32, TidFacts>,
    stats: ReceiveStats,
    metrics: ReceiverMetrics,
    /// Chunks absolutized so far (prefix of `chunks`).
    absorbed: usize,
    /// Roots recovered so far, in arrival order.
    roots: Vec<Addr>,
    /// Reference slots whose target chunk had not arrived when the slot
    /// was scanned: (absolute slot address, logical target).
    ref_fixups: Vec<(u64, u64)>,
    /// Top references whose target chunk had not arrived: (index into
    /// `roots`, logical target).
    root_fixups: Vec<(usize, u64)>,
    /// One absorbed range per chunk; cards are dirtied in one batch at
    /// the end instead of object by object during absorption.
    card_spans: Vec<(Addr, u64)>,
    /// A top mark at the very end of a chunk applies to the first object
    /// of the next chunk.
    next_is_root: bool,
    pending_hooks: Vec<(Addr, usize)>,
    /// Trace context re-attached from the wire (or directly by the
    /// pipeline); [`obs::TraceCtx::NONE`] keeps every span inert.
    trace_ctx: obs::TraceCtx,
    /// Trace lane (0 = main; parallel absorber *w* records on lane `w+1`).
    lane: u32,
}

impl<'d> AbsorbCore<'d> {
    fn new(dir: &'d TypeDirectory, node: NodeId) -> Self {
        AbsorbCore {
            dir,
            node,
            chunks: Vec::new(),
            next_logical: 0,
            tid_cache: HashMap::new(),
            facts_cache: HashMap::new(),
            stats: ReceiveStats::default(),
            metrics: ReceiverMetrics::new(Arc::clone(obs::global())),
            absorbed: 0,
            roots: Vec::new(),
            ref_fixups: Vec::new(),
            root_fixups: Vec::new(),
            card_spans: Vec::new(),
            next_is_root: false,
            pending_hooks: Vec::new(),
            trace_ctx: obs::TraceCtx::NONE,
            lane: 0,
        }
    }

    fn facts_for_tid(
        &mut self,
        vm: &Vm,
        tid: u32,
        hooks: Option<&UpdateRegistry>,
    ) -> Result<&TidFacts> {
        if !self.facts_cache.contains_key(&tid) {
            let kid = self.klass_for_tid(vm, tid)?;
            let k = vm.klasses().get(kid).map_err(Error::Heap)?;
            let facts = TidFacts {
                klass_word: u64::from(kid.0),
                kind: k.kind,
                instance_size: k.instance_size,
                elem_size: match k.kind {
                    KlassKind::Instance => 0,
                    _ => u64::from(k.elem_size().map_err(Error::Heap)?),
                },
                ref_offsets: k
                    .fields
                    .iter()
                    .filter(|f| matches!(f.ty, mheap::FieldType::Ref))
                    .map(|f| f.offset)
                    .collect(),
                hooked: hooks.and_then(|h| h.hook_index(&k.name)),
            };
            self.facts_cache.insert(tid, facts);
        }
        Ok(&self.facts_cache[&tid])
    }

    /// Records a chunk already written at `base` into the chunk map.
    fn note_chunk(&mut self, base: Addr, len: u64) {
        self.chunks.push(ChunkMap { logical_start: self.next_logical, base, len });
        self.next_logical += len;
        self.stats.chunks += 1;
        self.stats.bytes += len;
        self.metrics.chunks.inc();
        self.metrics.bytes.add(len);
        self.metrics.chunk_bytes.record(len);
    }

    /// Translates a logical stream offset to an absolute heap address.
    ///
    /// Chunk ranges are sorted, contiguous, and start at logical 0, so the
    /// first chunk whose end lies past `logical` either contains it or does
    /// not exist — any offset at or past the received byte count (and any
    /// offset against an empty chunk list) is dangling, never clamped to
    /// the last chunk.
    fn translate(&self, logical: u64) -> Result<Addr> {
        let idx = self.chunks.partition_point(|c| c.logical_start + c.len <= logical);
        let c = self.chunks.get(idx).ok_or(Error::DanglingRelativeAddr(logical))?;
        debug_assert!(logical >= c.logical_start, "chunk ranges are gapless from 0");
        Ok(c.base.byte_add(logical - c.logical_start))
    }

    /// Rewrites one reference slot from a relative to an absolute address.
    /// A forward reference into a chunk that has not arrived yet is left
    /// relative and queued on the fixup list for the finish pass.
    fn absolutize_slot(&mut self, vm: &Vm, obj: Addr, off: u64) -> Result<()> {
        let slot = obj.0 + off;
        let v = vm.heap().arena().load_word(slot).map_err(Error::Heap)?;
        self.stats.ref_fixups += 1;
        self.metrics.ref_fixups.inc();
        if v == 0 {
            return vm.heap().arena().store_word(slot, Addr::NULL.0).map_err(Error::Heap);
        }
        let logical = v - 1;
        if logical >= self.next_logical {
            self.ref_fixups.push((slot, logical));
            return Ok(());
        }
        let abs = self.translate(logical)?;
        vm.heap().arena().store_word(slot, abs.0).map_err(Error::Heap)
    }

    fn klass_for_tid(&mut self, vm: &Vm, tid: u32) -> Result<KlassId> {
        if let Some(&k) = self.tid_cache.get(&tid) {
            return Ok(k);
        }
        let name = self.dir.name_for_tid_traced(
            self.node,
            tid,
            self.metrics.registry.tracer(),
            self.trace_ctx,
            &vm.name,
        )?;
        let loaded_before = vm.klasses().len();
        let kid = vm.load_class(&name).map_err(Error::Heap)?;
        if vm.klasses().len() > loaded_before {
            self.stats.classes_loaded += 1;
            self.metrics.classes_loaded.inc();
            self.metrics
                .registry
                .record(obs::Event::ClassLoaded { class: name.clone(), tid: u64::from(tid) });
        }
        // Make sure the local klass knows its tid too (it may serve as a
        // sender later).
        let k = vm.klasses().get(kid).map_err(Error::Heap)?;
        self.dir.tid_for(self.node, &k)?;
        self.tid_cache.insert(tid, kid);
        Ok(kid)
    }

    /// Absolutizes every chunk placed so far but not yet absorbed — the
    /// pipelined receive path calls this after each arrival so absorption
    /// overlaps with the transfer of later chunks. Intra-chunk and
    /// backward references resolve immediately; forward references into
    /// chunks that have not arrived yet are queued for the finish pass.
    fn absorb_ready(&mut self, vm: &Vm, hooks: Option<&UpdateRegistry>) -> Result<()> {
        let spec = vm.spec();
        // Spans must not borrow `self` while the scan mutates it, so they
        // are anchored to a cloned registry handle (only when traced).
        let traced = if self.trace_ctx.is_none() {
            None
        } else {
            Some((Arc::clone(&self.metrics.registry), vm.name.clone()))
        };
        while self.absorbed < self.chunks.len() {
            let c = self.chunks[self.absorbed];
            let mut span = traced.as_ref().map(|(reg, node)| {
                reg.tracer().start_on(
                    obs::names::TRACE_RECEIVER_CHUNK_ABSORB,
                    self.trace_ctx,
                    node,
                    self.lane,
                )
            });
            let objects_before = self.stats.objects;
            let mut at = c.base.0;
            let end = c.base.0 + c.len;
            while at < end {
                let w = vm.heap().arena().load_word(at).map_err(Error::Heap)?;
                if w == TOP_MARK {
                    self.next_is_root = true;
                    vm.heap().arena().store_word(at, FILLER_WORD).map_err(Error::Heap)?;
                    at += 8;
                    continue;
                }
                if w == TOP_REF {
                    let l = vm.heap().arena().load_word(at + 8).map_err(Error::Heap)?;
                    if l == 0 {
                        return Err(Error::BadFrame("null top reference".into()));
                    }
                    if l > self.next_logical {
                        // Top reference into a chunk still in flight.
                        self.root_fixups.push((self.roots.len(), l - 1));
                        self.roots.push(Addr::NULL);
                    } else {
                        let r = self.translate(l - 1)?;
                        self.roots.push(r);
                    }
                    vm.heap().arena().store_word(at, FILLER_WORD).map_err(Error::Heap)?;
                    vm.heap().arena().store_word(at + 8, FILLER_WORD).map_err(Error::Heap)?;
                    at += 16;
                    continue;
                }
                if w == FILLER_WORD {
                    at += 8;
                    continue;
                }
                // An object: resolve its type, then absolutize.
                let obj = Addr::from_raw(at);
                let tid_word =
                    vm.heap().arena().load_word(at + spec.klass_off()).map_err(Error::Heap)?;
                if tid_word > u64::from(u32::MAX) {
                    return Err(Error::BadFrame(format!("implausible tID {tid_word:#x}")));
                }
                let facts = self.facts_for_tid(vm, tid_word as u32, hooks)?.clone();
                vm.heap()
                    .arena()
                    .store_word(at + spec.klass_off(), facts.klass_word)
                    .map_err(Error::Heap)?;
                // Mark words arrive sanitized; a forwarding bit here means
                // the stream is corrupt (this is untrusted input, so it is
                // a validation error, not an assertion).
                if mark::is_forwarded(vm.heap().arena().load_word(at).map_err(Error::Heap)?) {
                    return Err(Error::BadFrame(format!(
                        "object at logical {at:#x} carries a forwarding mark"
                    )));
                }
                let size = match facts.kind {
                    KlassKind::Instance => facts.instance_size,
                    _ => {
                        let len = vm.array_len(obj).map_err(Error::Heap)?;
                        // Checked arithmetic: a corrupted length must not
                        // overflow into a bogus small size.
                        let body = len
                            .checked_mul(facts.elem_size)
                            .and_then(|b| b.checked_add(spec.array_header()))
                            .filter(|&b| b <= c.len)
                            .ok_or_else(|| {
                                Error::BadFrame(format!("implausible array length {len}"))
                            })?;
                        mheap::layout::align8(body)
                    }
                };
                if size == 0 || at + size > end {
                    return Err(Error::BadFrame("object spans chunk boundary".into()));
                }
                // Absolutize reference slots.
                match facts.kind {
                    KlassKind::RefArray => {
                        let len = vm.array_len(obj).map_err(Error::Heap)?;
                        let base = spec.array_header();
                        for i in 0..len {
                            self.absolutize_slot(vm, obj, base + i * 8)?;
                        }
                    }
                    KlassKind::Instance => {
                        for i in 0..facts.ref_offsets.len() {
                            self.absolutize_slot(
                                vm,
                                obj,
                                self.facts_cache[&(tid_word as u32)].ref_offsets[i],
                            )?;
                        }
                    }
                    KlassKind::PrimArray(_) => {}
                }
                if self.next_is_root {
                    self.roots.push(obj);
                    self.next_is_root = false;
                }
                if let Some(hook_idx) = facts.hooked {
                    self.pending_hooks.push((obj, hook_idx));
                }
                self.stats.objects += 1;
                self.metrics.objects.inc();
                at += size;
            }
            // New pointers now live in the old generation; the card table
            // is updated in one batch at the end (no allocation — and
            // therefore no GC — can happen before the roots are returned).
            self.card_spans.push((c.base, c.len));
            self.metrics.registry.record(obs::Event::ChunkAbsorbed {
                bytes: c.len,
                objects: self.stats.objects - objects_before,
            });
            if let Some(s) = &mut span {
                s.annotate("chunk", self.absorbed as u64);
                s.annotate("bytes", c.len);
                s.annotate("objects", self.stats.objects - objects_before);
            }
            self.absorbed += 1;
        }
        Ok(())
    }

    /// Drains this stream's own cross-chunk fixups — every chunk of the
    /// stream has arrived, so any still-unresolved target is genuinely
    /// dangling. Streams are self-contained (relative addresses never
    /// cross streams), so each parallel absorber drains its own list.
    fn drain_fixups(&mut self, vm: &Vm) -> Result<u64> {
        let n = (self.ref_fixups.len() + self.root_fixups.len()) as u64;
        for (slot, logical) in std::mem::take(&mut self.ref_fixups) {
            let abs = self.translate(logical)?;
            vm.heap().arena().store_word(slot, abs.0).map_err(Error::Heap)?;
        }
        for (idx, logical) in std::mem::take(&mut self.root_fixups) {
            let abs = self.translate(logical)?;
            self.roots[idx] = abs;
        }
        Ok(n)
    }
}

/// The receiver side of one stream: accumulates chunks and absolutizes
/// them — either in one pass at [`GraphReceiver::finish`] (the sequential
/// path) or chunk by chunk as they arrive via
/// [`GraphReceiver::absorb_ready`] (the pipelined path). Incremental
/// absorption resolves every intra-chunk and backward reference on the
/// spot; forward references into chunks that have not arrived yet go onto
/// a short fixup list drained in `finish`.
pub struct GraphReceiver<'a> {
    vm: &'a mut Vm,
    core: AbsorbCore<'a>,
}

impl<'a> std::fmt::Debug for GraphReceiver<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphReceiver")
            .field("node", &self.core.node)
            .field("chunks", &self.core.chunks.len())
            .field("bytes", &self.core.next_logical)
            .finish()
    }
}

impl<'a> GraphReceiver<'a> {
    /// Starts receiving a stream into `vm` on `node`.
    pub fn new(vm: &'a mut Vm, dir: &'a TypeDirectory, node: NodeId) -> Self {
        GraphReceiver { vm, core: AbsorbCore::new(dir, node) }
    }

    /// Reports into `registry` instead of the process-wide default
    /// (scoped registries keep test assertions exact).
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<obs::Registry>) -> Self {
        self.core.metrics = ReceiverMetrics::new(registry);
        self
    }

    /// Re-attaches the sender's trace context so receiver-side spans
    /// (absorb, fixup, card dirtying) and subsequent GC pauses on this
    /// VM stitch into the same transfer trace.
    #[must_use]
    pub fn with_trace(mut self, ctx: obs::TraceCtx) -> Self {
        self.core.trace_ctx = ctx;
        self.vm.set_trace_ctx(ctx);
        self
    }

    /// Re-attaches a trace context mid-stream (wire carriers learn the
    /// context from the first traced frame, after construction).
    pub fn attach_trace(&mut self, ctx: obs::TraceCtx) {
        if !ctx.is_none() {
            self.core.trace_ctx = ctx;
            self.vm.set_trace_ctx(ctx);
        }
    }

    /// Places one received chunk into a fresh old-generation input buffer.
    /// Chunks must arrive in stream order (they do: links are FIFO).
    ///
    /// # Errors
    /// [`mheap::Error::OldGenFull`] (wrapped) when the heap cannot host the
    /// buffer; alignment errors for corrupt chunks.
    pub fn push_chunk(&mut self, bytes: &[u8]) -> Result<()> {
        if !bytes.len().is_multiple_of(8) {
            return Err(Error::BadFrame(format!("chunk length {} not 8-aligned", bytes.len())));
        }
        if bytes.is_empty() {
            return Ok(());
        }
        let base = self.vm.heap_mut().alloc_raw_old(bytes.len() as u64).map_err(Error::Heap)?;
        self.vm.heap().arena().write_bytes(base.0, bytes).map_err(Error::Heap)?;
        self.core.note_chunk(base, bytes.len() as u64);
        Ok(())
    }

    #[cfg(test)]
    fn translate(&self, logical: u64) -> Result<Addr> {
        self.core.translate(logical)
    }

    /// Absolutizes every chunk placed so far but not yet absorbed (see
    /// [`AbsorbCore::absorb_ready`] semantics described on
    /// [`GraphReceiver`]).
    ///
    /// # Errors
    /// Corrupt-stream and heap errors.
    pub fn absorb_ready(&mut self, hooks: Option<&UpdateRegistry>) -> Result<()> {
        self.core.absorb_ready(self.vm, hooks)
    }

    /// Number of forward references still awaiting their target chunk
    /// (pipeline diagnostics).
    pub fn pending_fixups(&self) -> usize {
        self.core.ref_fixups.len() + self.core.root_fixups.len()
    }

    /// Completes the receive: absolutizes any chunks not yet absorbed,
    /// drains the cross-chunk fixup lists, dirties the card table in one
    /// batch, and applies update hooks. Returns the root objects in
    /// arrival order, plus statistics.
    ///
    /// The returned roots are *not yet GC roots*: callers must register
    /// them (handles) before any further allocation on this VM.
    ///
    /// # Errors
    /// Corrupt-stream and heap errors.
    pub fn finish(mut self, hooks: Option<&UpdateRegistry>) -> Result<(Vec<Addr>, ReceiveStats)> {
        self.core.absorb_ready(self.vm, hooks)?;
        let traced = if self.core.trace_ctx.is_none() {
            None
        } else {
            Some((Arc::clone(&self.core.metrics.registry), self.vm.name.clone()))
        };
        // Cross-chunk forward references: every chunk has arrived now, so
        // any still-unresolved target is genuinely dangling.
        let mut fixup_span = traced.as_ref().map(|(reg, node)| {
            reg.tracer().start(obs::names::TRACE_RECEIVER_FIXUP, self.core.trace_ctx, node)
        });
        let n_fixups = self.core.drain_fixups(self.vm)?;
        if let Some(s) = &mut fixup_span {
            s.annotate("fixups", n_fixups);
        }
        drop(fixup_span);
        // One batched card-table pass over all absorbed ranges: tell the GC.
        let mut card_span = traced.as_ref().map(|(reg, node)| {
            reg.tracer().start(obs::names::TRACE_RECEIVER_CARD_DIRTY, self.core.trace_ctx, node)
        });
        let cards = self.vm.heap_mut().dirty_card_batch(&self.core.card_spans);
        self.core.stats.cards_dirtied += cards;
        self.core.metrics.cards_dirtied.add(cards);
        if let Some(s) = &mut card_span {
            s.annotate("cards", cards);
        }
        drop(card_span);
        // Post-transfer field updates (§3.3 registerUpdate).
        if let Some(h) = hooks {
            for (obj, idx) in std::mem::take(&mut self.core.pending_hooks) {
                h.apply(self.vm, obj, idx)?;
            }
        }
        Ok((std::mem::take(&mut self.core.roots), self.core.stats))
    }
}

/// A finished parallel stream's receiver-side output: its roots (in
/// emission order), statistics, and the heap-mutating leftovers the
/// coordinator applies once it regains `&mut Vm` — card-table spans and
/// pending update hooks.
#[derive(Debug)]
pub struct StreamIn {
    /// Roots recovered from this stream, in emission order.
    pub roots: Vec<Addr>,
    /// This stream's receive statistics.
    pub stats: ReceiveStats,
    /// Absorbed input-buffer ranges awaiting one batched card-dirty pass.
    pub card_spans: Vec<(Addr, u64)>,
    /// `(object, hook index)` pairs awaiting post-transfer update hooks.
    pub pending_hooks: Vec<(Addr, usize)>,
}

/// One stream's absorber in a parallel transfer: the same scan as
/// [`GraphReceiver`] but over a shared `&Vm`, allocating input buffers
/// through the heap's shared old-generation window
/// ([`mheap::Heap::begin_shared_old_alloc`] must be open). Heap-mutating
/// finish work (card batch, hooks) is returned as a [`StreamIn`] for the
/// coordinator instead of being applied here.
pub struct StreamAbsorber<'a> {
    vm: &'a Vm,
    core: AbsorbCore<'a>,
}

impl<'a> std::fmt::Debug for StreamAbsorber<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamAbsorber")
            .field("node", &self.core.node)
            .field("chunks", &self.core.chunks.len())
            .field("bytes", &self.core.next_logical)
            .finish()
    }
}

impl<'a> StreamAbsorber<'a> {
    /// Starts absorbing one parallel stream into `vm` on `node`.
    pub fn new(vm: &'a Vm, dir: &'a TypeDirectory, node: NodeId) -> Self {
        StreamAbsorber { vm, core: AbsorbCore::new(dir, node) }
    }

    /// Reports into `registry` instead of the process-wide default.
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<obs::Registry>) -> Self {
        self.core.metrics = ReceiverMetrics::new(registry);
        self
    }

    /// Attaches the transfer's trace context; spans record on `lane`
    /// (worker *w* of a parallel transfer uses lane `w + 1`).
    #[must_use]
    pub fn with_trace(mut self, ctx: obs::TraceCtx, lane: u32) -> Self {
        self.core.trace_ctx = ctx;
        self.core.lane = lane;
        self
    }

    /// Places one received chunk into a fresh old-generation input buffer
    /// claimed through the heap's shared allocation window.
    ///
    /// # Errors
    /// [`mheap::Error::OldGenFull`] (wrapped) when the heap cannot host
    /// the buffer; alignment errors for corrupt chunks.
    pub fn push_chunk(&mut self, bytes: &[u8]) -> Result<()> {
        if !bytes.len().is_multiple_of(8) {
            return Err(Error::BadFrame(format!("chunk length {} not 8-aligned", bytes.len())));
        }
        if bytes.is_empty() {
            return Ok(());
        }
        let base = self.vm.heap().shared_alloc_raw_old(bytes.len() as u64).map_err(Error::Heap)?;
        self.vm.heap().arena().write_bytes(base.0, bytes).map_err(Error::Heap)?;
        self.core.note_chunk(base, bytes.len() as u64);
        Ok(())
    }

    /// Absolutizes every chunk placed so far but not yet absorbed.
    ///
    /// # Errors
    /// Corrupt-stream and heap errors.
    pub fn absorb_ready(&mut self, hooks: Option<&UpdateRegistry>) -> Result<()> {
        self.core.absorb_ready(self.vm, hooks)
    }

    /// Completes this stream: absorbs remaining chunks and drains its own
    /// cross-chunk fixups (streams are self-contained — relative
    /// addresses never cross streams), returning the roots plus the
    /// heap-mutating leftovers for the coordinator.
    ///
    /// # Errors
    /// Corrupt-stream and heap errors.
    pub fn finish_stream(mut self, hooks: Option<&UpdateRegistry>) -> Result<StreamIn> {
        self.core.absorb_ready(self.vm, hooks)?;
        let traced = if self.core.trace_ctx.is_none() {
            None
        } else {
            Some((Arc::clone(&self.core.metrics.registry), self.vm.name.clone()))
        };
        let mut fixup_span = traced.as_ref().map(|(reg, node)| {
            reg.tracer().start_on(
                obs::names::TRACE_RECEIVER_FIXUP,
                self.core.trace_ctx,
                node,
                self.core.lane,
            )
        });
        let n_fixups = self.core.drain_fixups(self.vm)?;
        if let Some(s) = &mut fixup_span {
            s.annotate("fixups", n_fixups);
        }
        drop(fixup_span);
        Ok(StreamIn {
            roots: std::mem::take(&mut self.core.roots),
            stats: self.core.stats,
            card_spans: std::mem::take(&mut self.core.card_spans),
            pending_hooks: std::mem::take(&mut self.core.pending_hooks),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mheap::{stdlib::define_core_classes, ClassPath, HeapConfig};

    fn env() -> (Vm, TypeDirectory) {
        let cp = ClassPath::new();
        define_core_classes(&cp);
        let vm = Vm::new("recv", &HeapConfig::small(), cp).unwrap();
        (vm, TypeDirectory::new(1, NodeId(0)))
    }

    #[test]
    fn translate_empty_chunk_list_is_dangling() {
        let (mut vm, dir) = env();
        let r = GraphReceiver::new(&mut vm, &dir, NodeId(0));
        assert!(matches!(r.translate(0), Err(Error::DanglingRelativeAddr(0))));
        assert!(matches!(r.translate(64), Err(Error::DanglingRelativeAddr(64))));
    }

    #[test]
    fn translate_past_the_end_is_dangling() {
        let (mut vm, dir) = env();
        let mut r = GraphReceiver::new(&mut vm, &dir, NodeId(0));
        r.push_chunk(&[0u8; 32]).unwrap();
        r.push_chunk(&[0u8; 16]).unwrap();
        // In-range logicals resolve, and stay contiguous across chunks.
        let a0 = r.translate(0).unwrap();
        let a31 = r.translate(31).unwrap();
        assert_eq!(a31.0 - a0.0, 31);
        assert!(r.translate(32).is_ok());
        assert!(r.translate(47).is_ok());
        // One past the end of the last chunk must not clamp to it.
        assert!(matches!(r.translate(48), Err(Error::DanglingRelativeAddr(48))));
        assert!(matches!(r.translate(u64::MAX - 1), Err(Error::DanglingRelativeAddr(_))));
    }
}
