//! Wire-format header compression — the paper's named future-work item
//! (§5.2: "future work could focus on compressing headers and paddings
//! during sending").
//!
//! In compressed mode the sender clones objects into the stream in a
//! *compact wire format* (no `baddr` slot, 4-byte array length), shaving
//! one-plus words of header per object — the dominant component of
//! Skyway's byte overhead (the `extra_bytes` harness measures headers at
//! ~45 % of the stream). The price is exactly the one the paper's design
//! avoided: the receiver can no longer place chunks into the heap as-is;
//! it must *expand* each object back to the local format, paying a
//! per-object copy before the usual absolutization scan. The `ablations`
//! harness quantifies the trade: bytes saved vs receive time added.
//!
//! Expansion is a pure byte-stream transformation: a first pass over the
//! wire chunks sizes every object in both formats and builds the
//! wire-logical → expanded-logical offset map; a second pass emits the
//! expanded stream (headers widened, reference slots re-based through the
//! map). The expanded stream then flows through the ordinary
//! [`crate::receiver::GraphReceiver`], so GC interaction, card dirtying,
//! and root recovery are shared, not duplicated.

use std::collections::HashMap;

use mheap::layout::align8;
use mheap::{KlassKind, LayoutSpec, Vm};
use simnet::NodeId;

use crate::buffer::{TOP_MARK, TOP_REF};
use crate::registry::TypeDirectory;
use crate::{Error, Result};

/// The compact wire format used by compressed transfers.
pub const WIRE_SPEC: LayoutSpec = LayoutSpec { with_baddr: false, array_len_size: 4 };

fn load_word(bytes: &[u8], off: u64) -> Result<u64> {
    let o = off as usize;
    bytes
        .get(o..o + 8)
        .map(|s| {
            let mut a = [0u8; 8];
            a.copy_from_slice(s);
            u64::from_le_bytes(a)
        })
        .ok_or(Error::BadFrame(format!("wire offset {off} out of range")))
}

fn load_u32(bytes: &[u8], off: u64) -> Result<u32> {
    let o = off as usize;
    bytes
        .get(o..o + 4)
        .map(|s| {
            let mut a = [0u8; 4];
            a.copy_from_slice(s);
            u32::from_le_bytes(a)
        })
        .ok_or(Error::BadFrame(format!("wire offset {off} out of range")))
}

struct WireKlass {
    kind: KlassKind,
    elem_size: u64,
    /// Exact payload length (instances), local-format reference offsets,
    /// and the object sizes in both formats.
    payload_exact: u64,
    local_size: u64,
    wire_size: u64,
    local_ref_offsets: Vec<u64>,
}

/// Expands a compact-wire-format stream into the local object format of
/// `vm`, returning the expanded byte stream (markers preserved) ready for
/// the ordinary receiver.
///
/// # Errors
/// Corrupt-stream, registry, and class-loading errors.
pub fn expand_stream(
    vm: &Vm,
    dir: &TypeDirectory,
    node: NodeId,
    wire_chunks: &[&[u8]],
    local_spec: LayoutSpec,
) -> Result<Vec<u8>> {
    let wire = WIRE_SPEC;
    let mut klasses: HashMap<u32, WireKlass> = HashMap::new();
    let resolve = |tid: u32| -> Result<WireKlass> {
        let name = dir.name_for_tid(node, tid)?;
        let kid = vm.load_class(&name).map_err(Error::Heap)?;
        let k = vm.klasses().get(kid).map_err(Error::Heap)?;
        let lhdr = local_spec.instance_header();
        let payload_exact =
            k.fields.iter().map(|f| f.offset + u64::from(f.ty.size())).max().unwrap_or(lhdr) - lhdr;
        Ok(WireKlass {
            kind: k.kind,
            elem_size: match k.kind {
                KlassKind::Instance => 0,
                _ => u64::from(k.elem_size().map_err(Error::Heap)?),
            },
            payload_exact,
            local_size: align8(lhdr + payload_exact),
            wire_size: align8(wire.instance_header() + payload_exact),
            local_ref_offsets: k
                .fields
                .iter()
                .filter(|f| matches!(f.ty, mheap::FieldType::Ref))
                .map(|f| f.offset)
                .collect(),
        })
    };

    // ---- pass 1: size every record, build the offset map ----
    // The wire stream is gapless across chunks; concatenate for simplicity
    // (chunks only matter for streaming arrival, which already happened).
    let total: usize = wire_chunks.iter().map(|c| c.len()).sum();
    let mut stream = Vec::with_capacity(total);
    for c in wire_chunks {
        stream.extend_from_slice(c);
    }
    let mut map: HashMap<u64, u64> = HashMap::new(); // wire logical → expanded logical
    let mut at: u64 = 0;
    let mut out_at: u64 = 0;
    let end = stream.len() as u64;
    while at < end {
        let w = load_word(&stream, at)?;
        if w == TOP_MARK {
            map.insert(at, out_at);
            at += 8;
            out_at += 8;
            continue;
        }
        if w == TOP_REF {
            map.insert(at, out_at);
            at += 16;
            out_at += 16;
            continue;
        }
        let tid = load_word(&stream, at + 8)?;
        if tid > u64::from(u32::MAX) {
            return Err(Error::BadFrame(format!("implausible wire tID {tid:#x}")));
        }
        let tid = tid as u32;
        if let std::collections::hash_map::Entry::Vacant(e) = klasses.entry(tid) {
            let wk = resolve(tid)?;
            e.insert(wk);
        }
        let wk = &klasses[&tid];
        let (wsize, lsize) = match wk.kind {
            KlassKind::Instance => (wk.wire_size, wk.local_size),
            _ => {
                let len = match wire.array_len_size {
                    4 => u64::from(load_u32(&stream, at + wire.array_len_off())?),
                    _ => load_word(&stream, at + wire.array_len_off())?,
                };
                (
                    align8(wire.array_header() + len * wk.elem_size),
                    align8(local_spec.array_header() + len * wk.elem_size),
                )
            }
        };
        map.insert(at, out_at);
        at += wsize;
        out_at += lsize;
    }

    // ---- pass 2: emit the expanded stream ----
    let mut out = vec![0u8; out_at as usize];
    let put_word = |buf: &mut Vec<u8>, off: u64, v: u64| {
        buf[off as usize..off as usize + 8].copy_from_slice(&v.to_le_bytes());
    };
    let mut at: u64 = 0;
    while at < end {
        let w = load_word(&stream, at)?;
        let dst = map[&at];
        if w == TOP_MARK {
            put_word(&mut out, dst, TOP_MARK);
            at += 8;
            continue;
        }
        if w == TOP_REF {
            put_word(&mut out, dst, TOP_REF);
            let target = load_word(&stream, at + 8)?;
            let translated = if target == 0 {
                return Err(Error::BadFrame("null top reference".into()));
            } else {
                *map.get(&(target - 1)).ok_or(Error::DanglingRelativeAddr(target - 1))? + 1
            };
            put_word(&mut out, dst + 8, translated);
            at += 16;
            continue;
        }
        let tid = load_word(&stream, at + 8)? as u32;
        let wk = &klasses[&tid];
        // Headers: mark + klass(tid) + zeroed baddr.
        put_word(&mut out, dst, w);
        put_word(&mut out, dst + 8, u64::from(tid));
        if local_spec.with_baddr {
            put_word(&mut out, dst + local_spec.baddr_off().map_err(Error::Heap)?, 0);
        }
        let (wsize, copy_hdr_src, copy_hdr_dst, payload_len) = match wk.kind {
            KlassKind::Instance => (
                wk.wire_size,
                WIRE_SPEC.instance_header(),
                local_spec.instance_header(),
                wk.payload_exact,
            ),
            _ => {
                let len = u64::from(load_u32(&stream, at + WIRE_SPEC.array_len_off())?);
                match local_spec.array_len_size {
                    8 => put_word(&mut out, dst + local_spec.array_len_off(), len),
                    4 => out[(dst + local_spec.array_len_off()) as usize
                        ..(dst + local_spec.array_len_off()) as usize + 4]
                        .copy_from_slice(&(len as u32).to_le_bytes()),
                    n => return Err(Error::BadFrame(format!("array_len_size {n}"))),
                }
                (
                    align8(WIRE_SPEC.array_header() + len * wk.elem_size),
                    WIRE_SPEC.array_header(),
                    local_spec.array_header(),
                    len * wk.elem_size,
                )
            }
        };
        // Bulk-copy the payload.
        if payload_len > 0 {
            let src = (at + copy_hdr_src) as usize;
            let d = (dst + copy_hdr_dst) as usize;
            let payload = stream
                .get(src..src + payload_len as usize)
                .ok_or(Error::BadFrame("wire payload out of range".into()))?
                .to_vec();
            out[d..d + payload_len as usize].copy_from_slice(&payload);
        }
        // Re-base reference slots through the offset map.
        let rebase = |out: &mut Vec<u8>, slot: u64| -> Result<()> {
            let s = out
                .get(slot as usize..slot as usize + 8)
                .ok_or_else(|| Error::BadFrame("rebase slot out of range".into()))?;
            let mut a = [0u8; 8];
            a.copy_from_slice(s);
            let v = u64::from_le_bytes(a);
            if v != 0 {
                let t = *map.get(&(v - 1)).ok_or(Error::DanglingRelativeAddr(v - 1))?;
                out[slot as usize..slot as usize + 8].copy_from_slice(&(t + 1).to_le_bytes());
            }
            Ok(())
        };
        match wk.kind {
            KlassKind::Instance => {
                let lhdr = local_spec.instance_header();
                for &loff in &wk.local_ref_offsets {
                    rebase(&mut out, dst + lhdr + (loff - lhdr))?;
                }
            }
            KlassKind::RefArray => {
                let len = u64::from(load_u32(&stream, at + WIRE_SPEC.array_len_off())?);
                let base = dst + local_spec.array_header();
                for i in 0..len {
                    rebase(&mut out, base + i * 8)?;
                }
            }
            KlassKind::PrimArray(_) => {}
        }
        at += wsize;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_spec_is_compact() {
        assert_eq!(WIRE_SPEC.instance_header(), 16);
        assert_eq!(WIRE_SPEC.array_header(), 24);
    }
}
