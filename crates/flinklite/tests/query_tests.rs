//! Query correctness: every query produces the same answer under the
//! built-in row serializer and under Skyway, and both match the plain-Rust
//! reference. Plus checks of the lazy-deserialization mechanism itself.

use std::sync::Arc;

use flinklite::engine::{boot, FlinkConfig, FlinkSerializer};
use flinklite::queries::{reference, run_query, QueryId};
use flinklite::rowser::{FlinkRowSerializer, RowSchema};
use flinklite::tables::{
    define_tpch_classes, new_lineitem, read_lineitem, tpch_class_names, LineitemVal, LINEITEM,
};
use flinklite::tpchgen::generate;
use mheap::{ClassPath, HeapConfig, Vm};
use serlab::Serializer;
use simnet::Profile;

#[test]
fn all_queries_match_reference_under_both_serializers() {
    let db = generate(60, 77);
    for q in QueryId::ALL {
        let expect = reference(&db, q);
        for ser in FlinkSerializer::ALL {
            let mut sc = boot(
                &FlinkConfig { serializer: ser, heap_bytes: 48 << 20, ..FlinkConfig::default() },
                q.schema(),
            )
            .unwrap();
            let got = run_query(&mut sc, &db, q).unwrap();
            assert_eq!(got, expect, "query {} under {}", q.label(), ser.label());
        }
    }
}

#[test]
fn skyway_runs_have_no_sd_invocations() {
    let db = generate(60, 3);
    let mut sc = boot(
        &FlinkConfig {
            serializer: FlinkSerializer::Skyway,
            heap_bytes: 48 << 20,
            ..FlinkConfig::default()
        },
        QueryId::QC.schema(),
    )
    .unwrap();
    run_query(&mut sc, &db, QueryId::QC).unwrap();
    let p = sc.aggregate_profile();
    assert!(p.ser_invocations < 100, "{} invocations", p.ser_invocations);
    assert!(p.objects_transferred > 100);
}

#[test]
fn builtin_invocations_scale_with_rows() {
    let db = generate(60, 3);
    let mut sc =
        boot(&FlinkConfig { heap_bytes: 48 << 20, ..FlinkConfig::default() }, QueryId::QC.schema())
            .unwrap();
    run_query(&mut sc, &db, QueryId::QC).unwrap();
    let p = sc.aggregate_profile();
    assert!(p.ser_invocations > 1000, "{}", p.ser_invocations);
}

fn lazy_test_vms() -> (Vm, Vm) {
    let cp = ClassPath::new();
    define_tpch_classes(&cp);
    let a = Vm::new("a", &HeapConfig::small().with_capacity(8 << 20), Arc::clone(&cp)).unwrap();
    let b = Vm::new("b", &HeapConfig::small().with_capacity(8 << 20), cp).unwrap();
    (a, b)
}

fn sample_lineitem() -> LineitemVal {
    LineitemVal {
        orderkey: 42,
        partkey: 7,
        suppkey: 3,
        quantity: 10.0,
        extendedprice: 1234.5,
        discount: 0.05,
        tax: 0.02,
        returnflag: 'R',
        linestatus: 'F',
        shipdate: 100,
        commitdate: 120,
        receiptdate: 130,
        shipmode: "RAIL".to_owned(),
    }
}

#[test]
fn row_serializer_roundtrips_all_fields_without_projection() {
    let (mut a, mut b) = lazy_test_vms();
    let schema = Arc::new(RowSchema::new(tpch_class_names()));
    let ser = FlinkRowSerializer::new(schema);
    let v = sample_lineitem();
    let row = new_lineitem(&mut a, &v).unwrap();
    let mut p = Profile::new();
    let bytes = ser.serialize(&mut a, &[row], &mut p).unwrap();
    let out = ser.deserialize(&mut b, &bytes, &mut p).unwrap();
    assert_eq!(read_lineitem(&b, out[0]).unwrap(), v);
}

#[test]
fn lazy_projection_skips_unwanted_columns() {
    let (mut a, mut b) = lazy_test_vms();
    let schema = Arc::new(
        RowSchema::new(tpch_class_names()).project(LINEITEM, &["orderkey", "extendedprice"]),
    );
    let ser = FlinkRowSerializer::new(schema);
    let v = sample_lineitem();
    let row = new_lineitem(&mut a, &v).unwrap();
    let mut p = Profile::new();
    let bytes = ser.serialize(&mut a, &[row], &mut p).unwrap();
    let out = ser.deserialize(&mut b, &bytes, &mut p).unwrap();
    let got = read_lineitem(&b, out[0]).unwrap();
    // Wanted columns decoded.
    assert_eq!(got.orderkey, 42);
    assert_eq!(got.extendedprice, 1234.5);
    // Unwanted columns stay at their zero defaults — never decoded.
    assert_eq!(got.quantity, 0.0);
    assert_eq!(got.shipdate, 0);
    assert_eq!(got.shipmode, "", "string column must not be materialized");
}

#[test]
fn lazy_projection_shrinks_receiver_heap_usage() {
    // The savings are real: no char-array allocations for skipped strings.
    let schema_full = Arc::new(RowSchema::new(tpch_class_names()));
    let schema_lazy = Arc::new(RowSchema::new(tpch_class_names()).project(LINEITEM, &["orderkey"]));
    let mut used = Vec::new();
    for schema in [schema_full, schema_lazy] {
        let (mut a, mut b) = lazy_test_vms();
        let ser = FlinkRowSerializer::new(schema);
        let rows: Vec<_> = (0..200)
            .map(|i| {
                let mut v = sample_lineitem();
                v.orderkey = i;
                let r = new_lineitem(&mut a, &v).unwrap();
                a.handle(r)
            })
            .collect();
        let roots: Vec<_> = rows.iter().map(|h| a.resolve(*h).unwrap()).collect();
        let mut p = Profile::new();
        let bytes = ser.serialize(&mut a, &roots, &mut p).unwrap();
        let before = b.stats.bytes_allocated;
        ser.deserialize(&mut b, &bytes, &mut p).unwrap();
        used.push(b.stats.bytes_allocated - before);
    }
    assert!(used[1] < used[0], "lazy deserialization allocated {} >= full {}", used[1], used[0]);
}

#[test]
fn table3_descriptions_present() {
    for q in QueryId::ALL {
        assert!(!q.description().is_empty());
        assert!(q.label().starts_with('Q'));
    }
}

#[test]
fn null_string_columns_roundtrip() {
    // Rows whose string columns were never set (null refs) must survive
    // the built-in serializer as nulls.
    let (mut a, mut b) = lazy_test_vms();
    let schema = Arc::new(RowSchema::new(tpch_class_names()));
    let ser = FlinkRowSerializer::new(schema);
    let k = a.load_class(LINEITEM).unwrap();
    let row = a.alloc_instance(k).unwrap();
    a.set_long(row, "orderkey", 5).unwrap();
    // shipmode left null.
    let mut p = Profile::new();
    let bytes = ser.serialize(&mut a, &[row], &mut p).unwrap();
    let out = ser.deserialize(&mut b, &bytes, &mut p).unwrap();
    assert_eq!(b.get_long(out[0], "orderkey").unwrap(), 5);
    assert!(b.get_ref(out[0], "shipmode").unwrap().is_null());
}

#[test]
fn row_serializer_rejects_unknown_class() {
    let (mut a, _b) = lazy_test_vms();
    let schema = Arc::new(RowSchema::new(["tpch.Orders"])); // lineitem missing
    let ser = FlinkRowSerializer::new(schema);
    let v = sample_lineitem();
    let row = new_lineitem(&mut a, &v).unwrap();
    let mut p = Profile::new();
    assert!(ser.serialize(&mut a, &[row], &mut p).is_err());
}

#[test]
fn truncated_row_stream_is_an_error() {
    let (mut a, mut b) = lazy_test_vms();
    let schema = Arc::new(RowSchema::new(tpch_class_names()));
    let ser = FlinkRowSerializer::new(schema);
    let v = sample_lineitem();
    let row = new_lineitem(&mut a, &v).unwrap();
    let mut p = Profile::new();
    let bytes = ser.serialize(&mut a, &[row], &mut p).unwrap();
    assert!(ser.deserialize(&mut b, &bytes[..bytes.len() / 2], &mut p).is_err());
}
