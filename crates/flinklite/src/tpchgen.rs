//! A scaled-down TPC-H-schema data generator.
//!
//! The paper uses the TPC-H `dbgen` tool to produce a 100 GB input (§5.3).
//! This generator produces the same eight-table schema with the standard
//! row-count *ratios* (per unit of scale: customers : orders : lineitems ≈
//! 150 : 1500 : 6000, parts 200, suppliers 10, partsupp 800), deterministic
//! for a given seed, so the queries exercise the same operator mix at a
//! laptop-friendly size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tables::{CustomerVal, LineitemVal, OrdersVal, PartsuppVal, SupplierVal};

/// Days-since-epoch bounds of order dates (8 "years" of 360 days).
pub const DATE_MIN: i32 = 0;
/// One synthetic year in days.
pub const YEAR_DAYS: i32 = 360;
/// Upper bound (exclusive) on order dates.
pub const DATE_MAX: i32 = 8 * YEAR_DAYS;

/// Ship modes, as in TPC-H.
pub const SHIP_MODES: [&str; 7] = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"];
/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
/// Market segments.
pub const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
/// Region names.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// A nation row (generated deterministically, not random).
#[derive(Debug, Clone, PartialEq)]
pub struct NationVal {
    /// Nation key.
    pub nationkey: i64,
    /// Region key.
    pub regionkey: i64,
    /// Nation name.
    pub name: String,
}

/// The generated database.
#[derive(Debug, Clone)]
pub struct TpchData {
    /// Lineitem rows.
    pub lineitem: Vec<LineitemVal>,
    /// Orders rows.
    pub orders: Vec<OrdersVal>,
    /// Customer rows.
    pub customer: Vec<CustomerVal>,
    /// Supplier rows.
    pub supplier: Vec<SupplierVal>,
    /// Partsupp rows.
    pub partsupp: Vec<PartsuppVal>,
    /// Nations (25, each mapped to one of 5 regions).
    pub nation: Vec<NationVal>,
    /// Number of parts (part rows are implied: key 0..n_parts).
    pub n_parts: i64,
}

impl TpchData {
    /// Total row count across the generated tables.
    pub fn total_rows(&self) -> usize {
        self.lineitem.len()
            + self.orders.len()
            + self.customer.len()
            + self.supplier.len()
            + self.partsupp.len()
            + self.nation.len()
    }
}

/// Generates a database with roughly `scale_units` "customers-worth" of
/// data (TPC-H ratios preserved). `scale_units = 150` ≈ one thousandth of
/// SF-0.001... pick what your benchmark budget affords.
pub fn generate(scale_units: usize, seed: u64) -> TpchData {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_customers = scale_units.max(10);
    let n_orders = n_customers * 10;
    let n_parts = (n_customers * 4 / 3).max(8) as i64;
    let n_suppliers = (n_customers / 15).max(4) as i64;

    let nation: Vec<NationVal> = (0..25)
        .map(|i| NationVal { nationkey: i, regionkey: i % 5, name: format!("NATION_{i:02}") })
        .collect();

    let customer: Vec<CustomerVal> = (0..n_customers as i64)
        .map(|custkey| CustomerVal {
            custkey,
            nationkey: rng.gen_range(0..25),
            acctbal: rng.gen_range(-999.99..9999.99),
            name: format!("Customer#{custkey:09}"),
            mktsegment: SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_owned(),
        })
        .collect();

    let supplier: Vec<SupplierVal> = (0..n_suppliers)
        .map(|suppkey| SupplierVal {
            suppkey,
            nationkey: rng.gen_range(0..25),
            acctbal: rng.gen_range(-999.99..9999.99),
            name: format!("Supplier#{suppkey:09}"),
        })
        .collect();

    // Each part is supplied by 4 suppliers.
    let mut partsupp = Vec::with_capacity(n_parts as usize * 4);
    for partkey in 0..n_parts {
        for s in 0..4 {
            partsupp.push(PartsuppVal {
                partkey,
                suppkey: (partkey + s * 7 + 1) % n_suppliers,
                supplycost: rng.gen_range(1.0..1000.0),
                availqty: rng.gen_range(1..9999),
            });
        }
    }

    let mut orders = Vec::with_capacity(n_orders);
    let mut lineitem = Vec::new();
    for orderkey in 0..n_orders as i64 {
        let orderdate = rng.gen_range(DATE_MIN..DATE_MAX - 60);
        let n_lines = rng.gen_range(1..=7);
        let mut total = 0.0;
        for _ in 0..n_lines {
            let quantity = f64::from(rng.gen_range(1..=50));
            let extendedprice = quantity * rng.gen_range(900.0..11000.0) / 10.0;
            let shipdate = orderdate + rng.gen_range(1..=121);
            let commitdate = orderdate + rng.gen_range(30..=90);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            total += extendedprice;
            lineitem.push(LineitemVal {
                orderkey,
                partkey: rng.gen_range(0..n_parts),
                suppkey: rng.gen_range(0..n_suppliers),
                quantity,
                extendedprice,
                discount: f64::from(rng.gen_range(0..=10)) / 100.0,
                tax: f64::from(rng.gen_range(0..=8)) / 100.0,
                returnflag: if receiptdate <= orderdate + 90 {
                    if rng.gen_bool(0.5) {
                        'R'
                    } else {
                        'A'
                    }
                } else {
                    'N'
                },
                linestatus: if shipdate > DATE_MAX - 180 { 'O' } else { 'F' },
                shipdate,
                commitdate,
                receiptdate,
                shipmode: SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].to_owned(),
            });
        }
        orders.push(OrdersVal {
            orderkey,
            custkey: rng.gen_range(0..n_customers as i64),
            orderdate,
            totalprice: total,
            shippriority: 0,
            orderpriority: PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_owned(),
        });
    }

    TpchData { lineitem, orders, customer, supplier, partsupp, nation, n_parts }
}

/// Round-robin partitions a table's rows across `n` workers.
pub fn partition<T: Clone>(rows: &[T], n: usize) -> Vec<Vec<T>> {
    let mut parts = vec![Vec::with_capacity(rows.len() / n + 1); n];
    for (i, r) in rows.iter().enumerate() {
        parts[i % n].push(r.clone());
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_roughly_tpch() {
        let db = generate(150, 1);
        assert_eq!(db.customer.len(), 150);
        assert_eq!(db.orders.len(), 1500);
        // ~4 lineitems per order.
        let ratio = db.lineitem.len() as f64 / db.orders.len() as f64;
        assert!((2.0..6.0).contains(&ratio), "lineitems/order = {ratio}");
        assert_eq!(db.nation.len(), 25);
        assert_eq!(db.partsupp.len(), db.n_parts as usize * 4);
    }

    #[test]
    fn deterministic() {
        let a = generate(50, 9);
        let b = generate(50, 9);
        assert_eq!(a.lineitem, b.lineitem);
        assert_eq!(a.orders, b.orders);
    }

    #[test]
    fn dates_in_range() {
        let db = generate(60, 2);
        for o in &db.orders {
            assert!((DATE_MIN..DATE_MAX).contains(&o.orderdate));
        }
        for l in &db.lineitem {
            assert!(l.shipdate > DATE_MIN);
            assert!(l.receiptdate > l.shipdate);
        }
    }

    #[test]
    fn partitioning_is_total() {
        let db = generate(40, 3);
        let parts = partition(&db.orders, 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), db.orders.len());
    }
}
