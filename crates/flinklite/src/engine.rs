//! The Flink-like batch engine: the shared dataflow substrate
//! ([`sparklite::SparkCluster`]) wired with Flink's built-in row
//! serializers — or with Skyway, which is exactly the swap the paper's
//! §5.3 experiment performs ("since the read/write interface is clearly
//! defined, we could easily integrate Skyway into Flink").

use std::sync::Arc;

use mheap::{ClassPath, LayoutSpec};
use simnet::SimConfig;
use skyway::SkywaySerializer;
use sparklite::{SparkCluster, SparkConfig};

use crate::rowser::{FlinkRowSerializer, RowSchema};
use crate::tables::{define_tpch_classes, tpch_class_names};
use crate::{Error, Result};

/// Which serializer the Flink-like engine runs with (the two bars of
/// Fig. 8(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlinkSerializer {
    /// Flink's highly-optimized built-in per-field serializers.
    Builtin,
    /// Skyway.
    Skyway,
}

impl FlinkSerializer {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FlinkSerializer::Builtin => "flink-builtin",
            FlinkSerializer::Skyway => "skyway",
        }
    }

    /// Both options in presentation order.
    pub const ALL: [FlinkSerializer; 2] = [FlinkSerializer::Builtin, FlinkSerializer::Skyway];
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct FlinkConfig {
    /// Number of workers.
    pub n_workers: usize,
    /// Serializer choice.
    pub serializer: FlinkSerializer,
    /// Per-VM heap bytes.
    pub heap_bytes: usize,
    /// Cost model.
    pub sim: SimConfig,
}

impl Default for FlinkConfig {
    fn default() -> Self {
        FlinkConfig {
            n_workers: 3,
            serializer: FlinkSerializer::Builtin,
            heap_bytes: 64 << 20,
            sim: SimConfig::default(),
        }
    }
}

/// Boots a Flink-like cluster: the dataflow substrate with TPC-H row
/// classes and the chosen serializer. The `schema` carries the lazy
/// projections for built-in deserialization.
///
/// # Errors
/// Heap/boot errors.
pub fn boot(cfg: &FlinkConfig, schema: RowSchema) -> Result<SparkCluster> {
    let classpath = ClassPath::new();
    define_tpch_classes(&classpath);
    let spark_cfg = SparkConfig {
        n_workers: cfg.n_workers,
        heap_bytes: cfg.heap_bytes,
        sim: cfg.sim,
        ..SparkConfig::default()
    };
    let schema = Arc::new(schema);
    let sc = match cfg.serializer {
        FlinkSerializer::Builtin => SparkCluster::new_custom(
            &spark_cfg,
            classpath,
            &|_node, _dir, _controller| {
                (Arc::new(FlinkRowSerializer::new(Arc::clone(&schema))), false)
            },
            "flink-builtin",
        ),
        FlinkSerializer::Skyway => SparkCluster::new_custom(
            &spark_cfg,
            classpath,
            &|node, dir, controller| {
                (
                    Arc::new(SkywaySerializer::new(
                        Arc::clone(dir),
                        node,
                        Arc::clone(controller),
                        LayoutSpec::SKYWAY,
                    )),
                    true,
                )
            },
            "skyway",
        ),
    }
    .map_err(Error::Engine)?;
    Ok(sc)
}

/// The default schema over every TPC-H row class, with no lazy projection
/// (each query installs its own projections).
pub fn full_schema() -> RowSchema {
    RowSchema::new(tpch_class_names())
}
