//! The five TPC-H-derived queries of the paper's Table 3 (QA–QE), each
//! implemented as a Flink-like operator pipeline with shuffles, plus plain
//! in-memory reference implementations for validation.
//!
//! Table 3:
//! * **QA** — pricing details for items shipped within the last 120 days;
//! * **QB** — minimum-cost supplier per region for each item;
//! * **QC** — shipping priority and potential revenue of pending orders;
//! * **QD** — number of late orders in each quarter of a given year;
//! * **QE** — items returned by customers, sorted by lost revenue.

use std::collections::HashMap;

use sparklite::SparkCluster;

use crate::rowser::RowSchema;
use crate::tables::{
    new_customer, new_lineitem, new_orders, new_partsupp, new_result, read_customer, read_lineitem,
    read_orders, read_partsupp, read_result, ResultVal, CUSTOMER, LINEITEM, ORDERS, PARTSUPP,
};
use crate::tpchgen::{partition, TpchData, DATE_MAX, YEAR_DAYS};
use crate::{Error, Result};

/// Identifies one of the five queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Pricing summary of recently shipped items.
    QA,
    /// Minimum-cost supplier per region per item.
    QB,
    /// Potential revenue of pending orders.
    QC,
    /// Late orders per quarter.
    QD,
    /// Returned items by lost revenue.
    QE,
}

impl QueryId {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            QueryId::QA => "QA",
            QueryId::QB => "QB",
            QueryId::QC => "QC",
            QueryId::QD => "QD",
            QueryId::QE => "QE",
        }
    }

    /// Table 3 description.
    pub fn description(self) -> &'static str {
        match self {
            QueryId::QA => "Report pricing details for all items shipped within the last 120 days.",
            QueryId::QB => {
                "List the minimum cost supplier for each region for each item in the database."
            }
            QueryId::QC => {
                "Retrieve the shipping priority and potential revenue of all pending orders."
            }
            QueryId::QD => "Count the number of late orders in each quarter of a given year.",
            QueryId::QE => "Report all items returned by customers sorted by the lost revenue.",
        }
    }

    /// All five queries in Table 3 order.
    pub const ALL: [QueryId; 5] = [QueryId::QA, QueryId::QB, QueryId::QC, QueryId::QD, QueryId::QE];

    /// The lazy projection this query's shuffles allow (what Flink's
    /// built-in deserializer actually decodes on the receiving side).
    pub fn schema(self) -> RowSchema {
        let s = crate::engine::full_schema();
        match self {
            QueryId::QA => s.project(
                LINEITEM,
                &["returnflag", "linestatus", "quantity", "extendedprice", "discount", "shipdate"],
            ),
            QueryId::QB => s.project(PARTSUPP, &["partkey", "suppkey", "supplycost"]),
            QueryId::QC => s
                .project(LINEITEM, &["orderkey", "extendedprice", "discount"])
                .project(ORDERS, &["orderkey", "custkey", "orderdate", "shippriority"])
                .project(CUSTOMER, &["custkey", "mktsegment"]),
            QueryId::QD => s
                .project(LINEITEM, &["orderkey", "commitdate", "receiptdate"])
                .project(ORDERS, &["orderkey", "orderdate", "orderpriority"]),
            QueryId::QE => s
                .project(LINEITEM, &["orderkey", "returnflag", "extendedprice", "discount"])
                .project(ORDERS, &["orderkey", "custkey"])
                .project(CUSTOMER, &["custkey", "name", "acctbal"]),
        }
    }
}

fn hash_str(s: &str) -> u64 {
    sparklite::classes::hash_str(s)
}

fn hash64(x: u64) -> u64 {
    sparklite::classes::hash64(x)
}

/// Sorted, rounded result rows (comparable between engine and reference).
fn normalize(mut rows: Vec<ResultVal>) -> Vec<(String, i64, i64, i64, i64)> {
    let mut out: Vec<(String, i64, i64, i64, i64)> = rows
        .drain(..)
        .map(|r| {
            (
                r.key,
                (r.v1 * 100.0).round() as i64,
                (r.v2 * 100.0).round() as i64,
                (r.v3 * 100.0).round() as i64,
                r.tag,
            )
        })
        .collect();
    out.sort();
    out
}

/// A normalized query result row: group key plus four numeric columns.
pub type QueryRow = (String, i64, i64, i64, i64);

/// Runs a query end-to-end, returning normalized result tuples.
///
/// # Errors
/// Engine errors.
pub fn run_query(sc: &mut SparkCluster, db: &TpchData, q: QueryId) -> Result<Vec<QueryRow>> {
    let rows = match q {
        QueryId::QA => run_qa(sc, db)?,
        QueryId::QB => run_qb(sc, db)?,
        QueryId::QC => run_qc(sc, db)?,
        QueryId::QD => run_qd(sc, db)?,
        QueryId::QE => run_qe(sc, db)?,
    };
    Ok(normalize(rows))
}

/// Reference (plain Rust) implementation, for validation.
pub fn reference(db: &TpchData, q: QueryId) -> Vec<(String, i64, i64, i64, i64)> {
    let rows = match q {
        QueryId::QA => ref_qa(db),
        QueryId::QB => ref_qb(db),
        QueryId::QC => ref_qc(db),
        QueryId::QD => ref_qd(db),
        QueryId::QE => ref_qe(db),
    };
    normalize(rows)
}

// ---------------------------------------------------------------------------
// QA: pricing summary of items shipped in the last 120 days
// ---------------------------------------------------------------------------

const QA_CUTOFF: i32 = DATE_MAX - 120;

fn run_qa(sc: &mut SparkCluster, db: &TpchData) -> Result<Vec<ResultVal>> {
    let li = sc
        .create_dataset(partition(&db.lineitem, sc.n_workers()), |vm, v| {
            new_lineitem(vm, v).map_err(Error::into_spark)
        })
        .map_err(Error::Engine)?;
    // Filter + project, then shuffle by (returnflag, linestatus) group.
    let filtered = sc
        .transform(
            &li,
            |vm, rows| {
                let mut out = Vec::new();
                for &r in rows {
                    let v = read_lineitem(vm, r).map_err(Error::into_spark)?;
                    if v.shipdate >= QA_CUTOFF {
                        out.push(v);
                    }
                }
                Ok(out)
            },
            |vm, v| new_lineitem(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    sc.release(li).map_err(Error::Engine)?;
    let grouped = sc
        .shuffle(filtered, |vm, r| {
            let v = read_lineitem(vm, r).map_err(Error::into_spark)?;
            Ok(hash_str(&format!("{}{}", v.returnflag, v.linestatus)))
        })
        .map_err(Error::Engine)?;
    let agg = sc
        .transform(
            &grouped,
            |vm, rows| {
                let mut m: HashMap<String, (f64, f64, f64, i64)> = HashMap::new();
                for &r in rows {
                    let v = read_lineitem(vm, r).map_err(Error::into_spark)?;
                    let e = m
                        .entry(format!("{}|{}", v.returnflag, v.linestatus))
                        .or_insert((0.0, 0.0, 0.0, 0));
                    e.0 += v.quantity;
                    e.1 += v.extendedprice;
                    e.2 += v.extendedprice * (1.0 - v.discount);
                    e.3 += 1;
                }
                let mut out: Vec<ResultVal> = m
                    .into_iter()
                    .map(|(key, (q, p, d, c))| ResultVal { key, v1: q, v2: p, v3: d, tag: c })
                    .collect();
                out.sort_by(|a, b| a.key.cmp(&b.key));
                Ok(out)
            },
            |vm, v| new_result(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    sc.release(grouped).map_err(Error::Engine)?;
    let out = sc
        .collect(&agg, |vm, rows| {
            rows.iter().map(|&r| read_result(vm, r).map_err(Error::into_spark)).collect()
        })
        .map_err(Error::Engine)?;
    sc.release(agg).map_err(Error::Engine)?;
    Ok(out)
}

fn ref_qa(db: &TpchData) -> Vec<ResultVal> {
    let mut m: HashMap<String, (f64, f64, f64, i64)> = HashMap::new();
    for v in &db.lineitem {
        if v.shipdate >= QA_CUTOFF {
            let e =
                m.entry(format!("{}|{}", v.returnflag, v.linestatus)).or_insert((0.0, 0.0, 0.0, 0));
            e.0 += v.quantity;
            e.1 += v.extendedprice;
            e.2 += v.extendedprice * (1.0 - v.discount);
            e.3 += 1;
        }
    }
    m.into_iter()
        .map(|(key, (q, p, d, c))| ResultVal { key, v1: q, v2: p, v3: d, tag: c })
        .collect()
}

// ---------------------------------------------------------------------------
// QB: minimum-cost supplier per region per part
// ---------------------------------------------------------------------------

fn run_qb(sc: &mut SparkCluster, db: &TpchData) -> Result<Vec<ResultVal>> {
    // Supplier → region map is tiny dimension data; like Flink's broadcast
    // join, it rides to every worker driver-side.
    let region_of_nation: HashMap<i64, i64> =
        db.nation.iter().map(|n| (n.nationkey, n.regionkey)).collect();
    let region_of_supp: HashMap<i64, i64> =
        db.supplier.iter().map(|s| (s.suppkey, region_of_nation[&s.nationkey])).collect();

    let ps = sc
        .create_dataset(partition(&db.partsupp, sc.n_workers()), |vm, v| {
            new_partsupp(vm, v).map_err(Error::into_spark)
        })
        .map_err(Error::Engine)?;
    // Shuffle by (part, region) so the min per group is partition-local.
    let ros = region_of_supp.clone();
    let grouped = sc
        .shuffle(ps, move |vm, r| {
            let v = read_partsupp(vm, r).map_err(Error::into_spark)?;
            let region = ros.get(&v.suppkey).copied().unwrap_or(0);
            Ok(hash64((v.partkey as u64) << 8 | region as u64))
        })
        .map_err(Error::Engine)?;
    let ros = region_of_supp;
    let mins = sc
        .transform(
            &grouped,
            move |vm, rows| {
                let mut best: HashMap<(i64, i64), (f64, i64)> = HashMap::new();
                for &r in rows {
                    let v = read_partsupp(vm, r).map_err(Error::into_spark)?;
                    let region = ros.get(&v.suppkey).copied().unwrap_or(0);
                    let e = best.entry((v.partkey, region)).or_insert((f64::MAX, -1));
                    if v.supplycost < e.0 {
                        *e = (v.supplycost, v.suppkey);
                    }
                }
                Ok(best
                    .into_iter()
                    .map(|((part, region), (cost, supp))| ResultVal {
                        key: format!("{part}|{region}"),
                        v1: cost,
                        v2: 0.0,
                        v3: 0.0,
                        tag: supp,
                    })
                    .collect::<Vec<_>>())
            },
            |vm, v| new_result(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    sc.release(grouped).map_err(Error::Engine)?;
    let out = sc
        .collect(&mins, |vm, rows| {
            rows.iter().map(|&r| read_result(vm, r).map_err(Error::into_spark)).collect()
        })
        .map_err(Error::Engine)?;
    sc.release(mins).map_err(Error::Engine)?;
    Ok(out)
}

fn ref_qb(db: &TpchData) -> Vec<ResultVal> {
    let region_of_nation: HashMap<i64, i64> =
        db.nation.iter().map(|n| (n.nationkey, n.regionkey)).collect();
    let region_of_supp: HashMap<i64, i64> =
        db.supplier.iter().map(|s| (s.suppkey, region_of_nation[&s.nationkey])).collect();
    let mut best: HashMap<(i64, i64), (f64, i64)> = HashMap::new();
    for v in &db.partsupp {
        let region = region_of_supp.get(&v.suppkey).copied().unwrap_or(0);
        let e = best.entry((v.partkey, region)).or_insert((f64::MAX, -1));
        if v.supplycost < e.0 {
            *e = (v.supplycost, v.suppkey);
        }
    }
    best.into_iter()
        .map(|((part, region), (cost, supp))| ResultVal {
            key: format!("{part}|{region}"),
            v1: cost,
            v2: 0.0,
            v3: 0.0,
            tag: supp,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// QC: potential revenue of pending (recent) BUILDING orders
// ---------------------------------------------------------------------------

const QC_DATE: i32 = DATE_MAX - 180;
const QC_SEGMENT: &str = "BUILDING";
const QC_TOP: usize = 10;

fn run_qc(sc: &mut SparkCluster, db: &TpchData) -> Result<Vec<ResultVal>> {
    // Customers of the segment (dimension side of the first join).
    let building: std::collections::HashSet<i64> =
        db.customer.iter().filter(|c| c.mktsegment == QC_SEGMENT).map(|c| c.custkey).collect();

    // Orders filtered by date + segment membership, shuffled by orderkey.
    let orders = sc
        .create_dataset(partition(&db.orders, sc.n_workers()), |vm, v| {
            new_orders(vm, v).map_err(Error::into_spark)
        })
        .map_err(Error::Engine)?;
    let b2 = building.clone();
    let pending = sc
        .transform(
            &orders,
            move |vm, rows| {
                let mut out = Vec::new();
                for &r in rows {
                    let v = read_orders(vm, r).map_err(Error::into_spark)?;
                    if v.orderdate >= QC_DATE && b2.contains(&v.custkey) {
                        out.push(v);
                    }
                }
                Ok(out)
            },
            |vm, v| new_orders(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    sc.release(orders).map_err(Error::Engine)?;
    let pending = sc
        .shuffle(pending, |vm, r| {
            Ok(hash64(read_orders(vm, r).map_err(Error::into_spark)?.orderkey as u64))
        })
        .map_err(Error::Engine)?;

    // Lineitems shuffled by orderkey (co-partitioned with orders).
    let li = sc
        .create_dataset(partition(&db.lineitem, sc.n_workers()), |vm, v| {
            new_lineitem(vm, v).map_err(Error::into_spark)
        })
        .map_err(Error::Engine)?;
    let li = sc
        .shuffle(li, |vm, r| {
            Ok(hash64(read_lineitem(vm, r).map_err(Error::into_spark)?.orderkey as u64))
        })
        .map_err(Error::Engine)?;

    // Join + aggregate revenue per order.
    let rev = sc
        .zip_transform(
            &pending,
            &li,
            |vm, order_rows, li_rows| {
                let mut orders: HashMap<i64, i32> = HashMap::new();
                for &r in order_rows {
                    let v = read_orders(vm, r).map_err(Error::into_spark)?;
                    orders.insert(v.orderkey, v.orderdate);
                }
                let mut rev: HashMap<i64, f64> = HashMap::new();
                for &r in li_rows {
                    let v = read_lineitem(vm, r).map_err(Error::into_spark)?;
                    if orders.contains_key(&v.orderkey) {
                        *rev.entry(v.orderkey).or_insert(0.0) +=
                            v.extendedprice * (1.0 - v.discount);
                    }
                }
                Ok(rev
                    .into_iter()
                    .map(|(okey, revenue)| ResultVal {
                        key: format!("order-{okey}"),
                        v1: revenue,
                        v2: f64::from(orders[&okey]),
                        v3: 0.0,
                        tag: okey,
                    })
                    .collect::<Vec<_>>())
            },
            |vm, v| new_result(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    sc.release(pending).map_err(Error::Engine)?;
    sc.release(li).map_err(Error::Engine)?;

    let mut all = sc
        .collect(&rev, |vm, rows| {
            rows.iter().map(|&r| read_result(vm, r).map_err(Error::into_spark)).collect()
        })
        .map_err(Error::Engine)?;
    sc.release(rev).map_err(Error::Engine)?;
    all.sort_by(|a, b| b.v1.partial_cmp(&a.v1).unwrap_or(std::cmp::Ordering::Equal));
    all.truncate(QC_TOP);
    Ok(all)
}

fn ref_qc(db: &TpchData) -> Vec<ResultVal> {
    let building: std::collections::HashSet<i64> =
        db.customer.iter().filter(|c| c.mktsegment == QC_SEGMENT).map(|c| c.custkey).collect();
    let orders: HashMap<i64, i32> = db
        .orders
        .iter()
        .filter(|o| o.orderdate >= QC_DATE && building.contains(&o.custkey))
        .map(|o| (o.orderkey, o.orderdate))
        .collect();
    let mut rev: HashMap<i64, f64> = HashMap::new();
    for v in &db.lineitem {
        if orders.contains_key(&v.orderkey) {
            *rev.entry(v.orderkey).or_insert(0.0) += v.extendedprice * (1.0 - v.discount);
        }
    }
    let mut all: Vec<ResultVal> = rev
        .into_iter()
        .map(|(okey, revenue)| ResultVal {
            key: format!("order-{okey}"),
            v1: revenue,
            v2: f64::from(orders[&okey]),
            v3: 0.0,
            tag: okey,
        })
        .collect();
    all.sort_by(|a, b| b.v1.partial_cmp(&a.v1).unwrap_or(std::cmp::Ordering::Equal));
    all.truncate(QC_TOP);
    all
}

// ---------------------------------------------------------------------------
// QD: late orders per quarter of a given year
// ---------------------------------------------------------------------------

const QD_YEAR: i32 = 5; // synthetic year index

fn run_qd(sc: &mut SparkCluster, db: &TpchData) -> Result<Vec<ResultVal>> {
    // Late lineitems → orderkeys, shuffled by orderkey.
    let li = sc
        .create_dataset(partition(&db.lineitem, sc.n_workers()), |vm, v| {
            new_lineitem(vm, v).map_err(Error::into_spark)
        })
        .map_err(Error::Engine)?;
    let late = sc
        .transform(
            &li,
            |vm, rows| {
                let mut out = Vec::new();
                for &r in rows {
                    let v = read_lineitem(vm, r).map_err(Error::into_spark)?;
                    if v.receiptdate > v.commitdate {
                        out.push(v);
                    }
                }
                Ok(out)
            },
            |vm, v| new_lineitem(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    sc.release(li).map_err(Error::Engine)?;
    let late = sc
        .shuffle(late, |vm, r| {
            Ok(hash64(read_lineitem(vm, r).map_err(Error::into_spark)?.orderkey as u64))
        })
        .map_err(Error::Engine)?;

    // Orders of the year, shuffled by orderkey.
    let orders = sc
        .create_dataset(partition(&db.orders, sc.n_workers()), |vm, v| {
            new_orders(vm, v).map_err(Error::into_spark)
        })
        .map_err(Error::Engine)?;
    let year_orders = sc
        .transform(
            &orders,
            |vm, rows| {
                let mut out = Vec::new();
                for &r in rows {
                    let v = read_orders(vm, r).map_err(Error::into_spark)?;
                    if v.orderdate / YEAR_DAYS == QD_YEAR {
                        out.push(v);
                    }
                }
                Ok(out)
            },
            |vm, v| new_orders(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    sc.release(orders).map_err(Error::Engine)?;
    let year_orders = sc
        .shuffle(year_orders, |vm, r| {
            Ok(hash64(read_orders(vm, r).map_err(Error::into_spark)?.orderkey as u64))
        })
        .map_err(Error::Engine)?;

    // Semi-join + count per quarter.
    let counts = sc
        .zip_transform(
            &year_orders,
            &late,
            |vm, order_rows, li_rows| {
                let mut late_orders: std::collections::HashSet<i64> =
                    std::collections::HashSet::new();
                for &r in li_rows {
                    late_orders.insert(read_lineitem(vm, r).map_err(Error::into_spark)?.orderkey);
                }
                let mut per_q: HashMap<i32, i64> = HashMap::new();
                for &r in order_rows {
                    let v = read_orders(vm, r).map_err(Error::into_spark)?;
                    if late_orders.contains(&v.orderkey) {
                        let q = (v.orderdate % YEAR_DAYS) / (YEAR_DAYS / 4);
                        *per_q.entry(q).or_insert(0) += 1;
                    }
                }
                Ok(per_q
                    .into_iter()
                    .map(|(q, c)| ResultVal {
                        key: format!("Q{}", q + 1),
                        v1: 0.0,
                        v2: 0.0,
                        v3: 0.0,
                        tag: c,
                    })
                    .collect::<Vec<_>>())
            },
            |vm, v| new_result(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    sc.release(year_orders).map_err(Error::Engine)?;
    sc.release(late).map_err(Error::Engine)?;

    // Final tiny aggregation driver-side.
    let partials = sc
        .collect(&counts, |vm, rows| {
            rows.iter().map(|&r| read_result(vm, r).map_err(Error::into_spark)).collect()
        })
        .map_err(Error::Engine)?;
    sc.release(counts).map_err(Error::Engine)?;
    let mut m: HashMap<String, i64> = HashMap::new();
    for p in partials {
        *m.entry(p.key).or_insert(0) += p.tag;
    }
    Ok(m.into_iter().map(|(key, c)| ResultVal { key, v1: 0.0, v2: 0.0, v3: 0.0, tag: c }).collect())
}

fn ref_qd(db: &TpchData) -> Vec<ResultVal> {
    let mut late_orders: std::collections::HashSet<i64> = std::collections::HashSet::new();
    for v in &db.lineitem {
        if v.receiptdate > v.commitdate {
            late_orders.insert(v.orderkey);
        }
    }
    let mut per_q: HashMap<String, i64> = HashMap::new();
    for o in &db.orders {
        if o.orderdate / YEAR_DAYS == QD_YEAR && late_orders.contains(&o.orderkey) {
            let q = (o.orderdate % YEAR_DAYS) / (YEAR_DAYS / 4);
            *per_q.entry(format!("Q{}", q + 1)).or_insert(0) += 1;
        }
    }
    per_q.into_iter().map(|(key, c)| ResultVal { key, v1: 0.0, v2: 0.0, v3: 0.0, tag: c }).collect()
}

// ---------------------------------------------------------------------------
// QE: returned items by lost revenue
// ---------------------------------------------------------------------------

const QE_TOP: usize = 20;

fn run_qe(sc: &mut SparkCluster, db: &TpchData) -> Result<Vec<ResultVal>> {
    // Returned lineitems, shuffled by orderkey.
    let li = sc
        .create_dataset(partition(&db.lineitem, sc.n_workers()), |vm, v| {
            new_lineitem(vm, v).map_err(Error::into_spark)
        })
        .map_err(Error::Engine)?;
    let returned = sc
        .transform(
            &li,
            |vm, rows| {
                let mut out = Vec::new();
                for &r in rows {
                    let v = read_lineitem(vm, r).map_err(Error::into_spark)?;
                    if v.returnflag == 'R' {
                        out.push(v);
                    }
                }
                Ok(out)
            },
            |vm, v| new_lineitem(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    sc.release(li).map_err(Error::Engine)?;
    let returned = sc
        .shuffle(returned, |vm, r| {
            Ok(hash64(read_lineitem(vm, r).map_err(Error::into_spark)?.orderkey as u64))
        })
        .map_err(Error::Engine)?;

    // Orders shuffled by orderkey for the join, producing (custkey, lost).
    let orders = sc
        .create_dataset(partition(&db.orders, sc.n_workers()), |vm, v| {
            new_orders(vm, v).map_err(Error::into_spark)
        })
        .map_err(Error::Engine)?;
    let orders = sc
        .shuffle(orders, |vm, r| {
            Ok(hash64(read_orders(vm, r).map_err(Error::into_spark)?.orderkey as u64))
        })
        .map_err(Error::Engine)?;
    let lost_per_cust = sc
        .zip_transform(
            &orders,
            &returned,
            |vm, order_rows, li_rows| {
                let mut cust_of: HashMap<i64, i64> = HashMap::new();
                for &r in order_rows {
                    let v = read_orders(vm, r).map_err(Error::into_spark)?;
                    cust_of.insert(v.orderkey, v.custkey);
                }
                let mut lost: HashMap<i64, f64> = HashMap::new();
                for &r in li_rows {
                    let v = read_lineitem(vm, r).map_err(Error::into_spark)?;
                    if let Some(&cust) = cust_of.get(&v.orderkey) {
                        *lost.entry(cust).or_insert(0.0) += v.extendedprice * (1.0 - v.discount);
                    }
                }
                Ok(lost
                    .into_iter()
                    .map(|(cust, value)| ResultVal {
                        key: String::new(),
                        v1: value,
                        v2: 0.0,
                        v3: 0.0,
                        tag: cust,
                    })
                    .collect::<Vec<_>>())
            },
            |vm, v| new_result(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    sc.release(orders).map_err(Error::Engine)?;
    sc.release(returned).map_err(Error::Engine)?;

    // Shuffle partial sums by customer, join with customer names, top-N.
    let by_cust = sc
        .shuffle(lost_per_cust, |vm, r| {
            Ok(hash64(read_result(vm, r).map_err(Error::into_spark)?.tag as u64))
        })
        .map_err(Error::Engine)?;
    let customers = sc
        .create_dataset(
            {
                // Partition customers consistently with the shuffle above.
                let w = sc.n_workers();
                let mut parts = vec![Vec::new(); w];
                for c in &db.customer {
                    parts[(hash64(c.custkey as u64) % w as u64) as usize].push(c.clone());
                }
                parts
            },
            |vm, v| new_customer(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    let named = sc
        .zip_transform(
            &customers,
            &by_cust,
            |vm, cust_rows, partials| {
                let mut name_of: HashMap<i64, String> = HashMap::new();
                for &r in cust_rows {
                    let v = read_customer(vm, r).map_err(Error::into_spark)?;
                    name_of.insert(v.custkey, v.name);
                }
                let mut lost: HashMap<i64, f64> = HashMap::new();
                for &r in partials {
                    let v = read_result(vm, r).map_err(Error::into_spark)?;
                    *lost.entry(v.tag).or_insert(0.0) += v.v1;
                }
                Ok(lost
                    .into_iter()
                    .map(|(cust, value)| ResultVal {
                        key: name_of.get(&cust).cloned().unwrap_or_default(),
                        v1: value,
                        v2: 0.0,
                        v3: 0.0,
                        tag: cust,
                    })
                    .collect::<Vec<_>>())
            },
            |vm, v| new_result(vm, v).map_err(Error::into_spark),
        )
        .map_err(Error::Engine)?;
    sc.release(customers).map_err(Error::Engine)?;
    sc.release(by_cust).map_err(Error::Engine)?;

    let mut all = sc
        .collect(&named, |vm, rows| {
            rows.iter().map(|&r| read_result(vm, r).map_err(Error::into_spark)).collect()
        })
        .map_err(Error::Engine)?;
    sc.release(named).map_err(Error::Engine)?;
    all.sort_by(|a, b| {
        b.v1.partial_cmp(&a.v1).unwrap_or(std::cmp::Ordering::Equal).then(a.tag.cmp(&b.tag))
    });
    all.truncate(QE_TOP);
    Ok(all)
}

fn ref_qe(db: &TpchData) -> Vec<ResultVal> {
    let cust_of: HashMap<i64, i64> = db.orders.iter().map(|o| (o.orderkey, o.custkey)).collect();
    let name_of: HashMap<i64, String> =
        db.customer.iter().map(|c| (c.custkey, c.name.clone())).collect();
    let mut lost: HashMap<i64, f64> = HashMap::new();
    for v in &db.lineitem {
        if v.returnflag == 'R' {
            if let Some(&cust) = cust_of.get(&v.orderkey) {
                *lost.entry(cust).or_insert(0.0) += v.extendedprice * (1.0 - v.discount);
            }
        }
    }
    let mut all: Vec<ResultVal> = lost
        .into_iter()
        .map(|(cust, value)| ResultVal {
            key: name_of.get(&cust).cloned().unwrap_or_default(),
            v1: value,
            v2: 0.0,
            v3: 0.0,
            tag: cust,
        })
        .collect();
    all.sort_by(|a, b| {
        b.v1.partial_cmp(&a.v1).unwrap_or(std::cmp::Ordering::Equal).then(a.tag.cmp(&b.tag))
    });
    all.truncate(QE_TOP);
    all
}
