//! Flink's built-in row serializer: statically-chosen per-field
//! serializers plus **lazy deserialization**.
//!
//! Per the paper (§5.3): "Flink can select a built-in serializer for each
//! field to use when creating tuples from the input" and "Flink does not
//! deserialize all fields of a row upon receiving it — only those involved
//! in the transformation are deserialized." That is why Flink's
//! deserialization time (8.7%) is so much smaller than its serialization
//! time (23.5%) — and it is the mechanism this serializer implements: a
//! per-class *lazy projection* tells the decoder which columns downstream
//! operators touch; all other columns are parsed past (varints skipped,
//! string payloads skipped) but never written to the heap and never
//! allocated.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mheap::{Addr, FieldType, KlassKind, PrimType, Vm};
use parking_lot::Mutex;
use serlab::framework::{field_plans, FieldPlan, RebuildArena};
use serlab::{ByteReader, ByteWriter, Serializer};
use simnet::Profile;

use crate::{Error as FlinkError, Result as FlinkResult};

/// Type registry of the row serializer: class name ↔ compact id, fixed at
/// plan time on every node (Flink knows tuple types statically).
#[derive(Debug, Default)]
pub struct RowSchema {
    names: Vec<String>,
    ids: HashMap<String, u32>,
    lazy: HashMap<String, HashSet<String>>,
}

impl RowSchema {
    /// Builds the schema over the given row classes.
    pub fn new<'a>(names: impl IntoIterator<Item = &'a str>) -> Self {
        let mut s = RowSchema::default();
        for n in names {
            if !s.ids.contains_key(n) {
                let id = s.names.len() as u32;
                s.names.push(n.to_owned());
                s.ids.insert(n.to_owned(), id);
            }
        }
        s
    }

    /// Declares that downstream operators only read `fields` of `class`
    /// — receiving nodes lazily skip everything else.
    pub fn project(mut self, class: &str, fields: &[&str]) -> Self {
        self.lazy.insert(class.to_owned(), fields.iter().map(|s| (*s).to_owned()).collect());
        self
    }

    fn wanted(&self, class: &str, field: &str) -> bool {
        match self.lazy.get(class) {
            Some(set) => set.contains(field),
            None => true,
        }
    }
}

/// The built-in row serializer (the paper's Flink baseline).
#[derive(Debug)]
pub struct FlinkRowSerializer {
    schema: Arc<RowSchema>,
    plan_cache: Mutex<HashMap<u64, Arc<Vec<FieldPlan>>>>,
}

impl FlinkRowSerializer {
    /// Creates the serializer over a shared schema.
    pub fn new(schema: Arc<RowSchema>) -> Self {
        FlinkRowSerializer { schema, plan_cache: Mutex::new(HashMap::new()) }
    }

    fn plan(&self, k: &Arc<mheap::Klass>) -> Arc<Vec<FieldPlan>> {
        let key = k.uid;
        if let Some(p) = self.plan_cache.lock().get(&key) {
            return Arc::clone(p);
        }
        let p = Arc::new(field_plans(k));
        self.plan_cache.lock().insert(key, Arc::clone(&p));
        p
    }

    fn write_prim(w: &mut ByteWriter, p: PrimType, bits: u64) {
        match p {
            PrimType::Int => w.varint_signed(i64::from(bits as u32 as i32)),
            PrimType::Long => w.varint_signed(bits as i64),
            PrimType::Bool | PrimType::Byte => w.u8(bits as u8),
            PrimType::Char | PrimType::Short => w.u16(bits as u16),
            PrimType::Float => w.u32(bits as u32),
            PrimType::Double => w.u64(bits),
        }
    }

    fn read_prim(r: &mut ByteReader<'_>, p: PrimType) -> serlab::Result<u64> {
        Ok(match p {
            PrimType::Int => r.varint_signed()? as u32 as u64,
            PrimType::Long => r.varint_signed()? as u64,
            PrimType::Bool | PrimType::Byte => u64::from(r.u8()?),
            PrimType::Char | PrimType::Short => u64::from(r.u16()?),
            PrimType::Float => u64::from(r.u32()?),
            PrimType::Double => r.u64()?,
        })
    }

    fn skip_prim(r: &mut ByteReader<'_>, p: PrimType) -> serlab::Result<()> {
        // Parsing without materializing: this is the "lazy" saving.
        Self::read_prim(r, p).map(|_| ())
    }

    fn write_row(
        &self,
        vm: &Vm,
        w: &mut ByteWriter,
        row: Addr,
        profile: &mut Profile,
    ) -> FlinkResult<()> {
        profile.ser_invocations += 1;
        profile.objects_transferred += 1;
        let k = vm.klass_of(row).map_err(FlinkError::Heap)?;
        let tid = self
            .schema
            .ids
            .get(&k.name)
            .copied()
            .ok_or_else(|| FlinkError::UnknownRowClass(k.name.clone()))?;
        w.varint(u64::from(tid) + 1);
        let plan = self.plan(&k);
        for f in plan.iter() {
            match f.ty {
                FieldType::Prim(p) => {
                    let bits =
                        vm.read_prim_raw(row, f.offset, p.size()).map_err(FlinkError::Heap)?;
                    Self::write_prim(w, p, bits);
                }
                FieldType::Ref => {
                    // Row fields may hold strings (built-in StringSerializer:
                    // length + UTF-16 units) or be null.
                    let s = vm.read_ref_at(row, f.offset).map_err(FlinkError::Heap)?;
                    if s.is_null() {
                        w.varint(0);
                    } else {
                        let text = vm.read_string(s).map_err(FlinkError::Heap)?;
                        w.varint(text.len() as u64 + 1);
                        w.raw(text.as_bytes());
                    }
                }
            }
        }
        Ok(())
    }

    fn read_row(
        &self,
        vm: &mut Vm,
        r: &mut ByteReader<'_>,
        arena: &mut RebuildArena,
        profile: &mut Profile,
    ) -> FlinkResult<usize> {
        profile.deser_invocations += 1;
        let tag = r.varint().map_err(FlinkError::Serde)?;
        if tag == 0 {
            return Err(FlinkError::Corrupt("null row tag".into()));
        }
        let cname = self
            .schema
            .names
            .get((tag - 1) as usize)
            .cloned()
            .ok_or_else(|| FlinkError::UnknownRowClass(format!("row tag {tag}")))?;
        let klass = vm.load_class(&cname).map_err(FlinkError::Heap)?;
        let k = vm.klasses().get(klass).map_err(FlinkError::Heap)?;
        if k.kind != KlassKind::Instance {
            return Err(FlinkError::UnknownRowClass(cname));
        }
        let row = vm.alloc_instance(klass).map_err(FlinkError::Heap)?;
        let id = arena.push(vm, row);
        let plan = self.plan(&k);
        for f in plan.iter() {
            let wanted = self.schema.wanted(&cname, &f.name);
            match f.ty {
                FieldType::Prim(p) => {
                    if wanted {
                        let bits = Self::read_prim(r, p).map_err(FlinkError::Serde)?;
                        let row = arena.get(vm, id);
                        vm.write_prim_raw(row, f.offset, p.size(), bits)
                            .map_err(FlinkError::Heap)?;
                    } else {
                        Self::skip_prim(r, p).map_err(FlinkError::Serde)?;
                    }
                }
                FieldType::Ref => {
                    let n = r.varint().map_err(FlinkError::Serde)?;
                    if n == 0 {
                        continue; // null stays null
                    }
                    let raw = r.raw((n - 1) as usize).map_err(FlinkError::Serde)?;
                    if wanted {
                        // Materializing the string costs a char-array
                        // allocation + copy — exactly what laziness avoids
                        // for untouched columns.
                        let text = std::str::from_utf8(raw)
                            .map_err(|_| FlinkError::Corrupt("bad UTF-8 string column".into()))?
                            .to_owned();
                        let s = vm.new_string(&text).map_err(FlinkError::Heap)?;
                        let ts = vm.push_temp_root(s);
                        let row = arena.get(vm, id);
                        let s = vm.temp_root(ts);
                        vm.pop_temp_root();
                        vm.set_ref(row, &f.name, s).map_err(FlinkError::Heap)?;
                    }
                }
            }
        }
        Ok(id)
    }
}

impl Serializer for FlinkRowSerializer {
    fn name(&self) -> &str {
        "flink-builtin"
    }

    fn serialize(
        &self,
        vm: &mut Vm,
        roots: &[Addr],
        profile: &mut Profile,
    ) -> serlab::Result<Vec<u8>> {
        let mut w = ByteWriter::with_capacity(roots.len() * 48);
        w.varint(roots.len() as u64);
        for &row in roots {
            self.write_row(vm, &mut w, row, profile).map_err(to_serlab)?;
        }
        Ok(w.into_bytes())
    }

    fn deserialize(
        &self,
        vm: &mut Vm,
        bytes: &[u8],
        profile: &mut Profile,
    ) -> serlab::Result<Vec<Addr>> {
        let mut r = ByteReader::new(bytes);
        let n = r.varint()? as usize;
        let mut arena = RebuildArena::new(vm);
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(self.read_row(vm, &mut r, &mut arena, profile).map_err(to_serlab)?);
        }
        Ok(arena.finish(vm, &ids))
    }

    fn preserves_sharing(&self) -> bool {
        false
    }
}

fn to_serlab(e: FlinkError) -> serlab::Error {
    match e {
        FlinkError::Heap(h) => serlab::Error::Heap(h),
        FlinkError::Serde(s) => s,
        other => serlab::Error::Malformed(other.to_string()),
    }
}
