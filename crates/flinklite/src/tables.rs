//! TPC-H-schema row classes as managed-heap objects, with GC-safe
//! constructors and readers.
//!
//! Flink reads input into typed tuples ("rows in a relational database",
//! §5.3); here each table gets a row class whose column types are known at
//! plan time — exactly the property Flink's built-in per-field serializers
//! exploit.

use std::sync::Arc;

use mheap::stdlib::define_core_classes;
use mheap::{Addr, ClassPath, FieldType, KlassDef, PrimType, Vm};

use crate::{Error, Result};

/// Lineitem row class.
pub const LINEITEM: &str = "tpch.Lineitem";
/// Orders row class.
pub const ORDERS: &str = "tpch.Orders";
/// Customer row class.
pub const CUSTOMER: &str = "tpch.Customer";
/// Supplier row class.
pub const SUPPLIER: &str = "tpch.Supplier";
/// Part row class.
pub const PART: &str = "tpch.Part";
/// Partsupp row class.
pub const PARTSUPP: &str = "tpch.Partsupp";
/// Nation row class.
pub const NATION: &str = "tpch.Nation";
/// Region row class.
pub const REGION: &str = "tpch.Region";
/// Generic result row: group key string + up to three numeric columns.
pub const RESULT_ROW: &str = "tpch.ResultRow";

/// Registers the TPC-H row classes (plus the core library) on a classpath.
pub fn define_tpch_classes(cp: &Arc<ClassPath>) {
    define_core_classes(cp);
    let l = FieldType::Prim(PrimType::Long);
    let d = FieldType::Prim(PrimType::Double);
    let i = FieldType::Prim(PrimType::Int);
    let c = FieldType::Prim(PrimType::Char);
    let r = FieldType::Ref;
    cp.define_all([
        KlassDef::new(
            LINEITEM,
            None,
            vec![
                ("orderkey", l),
                ("partkey", l),
                ("suppkey", l),
                ("quantity", d),
                ("extendedprice", d),
                ("discount", d),
                ("tax", d),
                ("returnflag", c),
                ("linestatus", c),
                ("shipdate", i),
                ("commitdate", i),
                ("receiptdate", i),
                ("shipmode", r),
            ],
        ),
        KlassDef::new(
            ORDERS,
            None,
            vec![
                ("orderkey", l),
                ("custkey", l),
                ("orderdate", i),
                ("totalprice", d),
                ("shippriority", i),
                ("orderpriority", r),
            ],
        ),
        KlassDef::new(
            CUSTOMER,
            None,
            vec![("custkey", l), ("nationkey", l), ("acctbal", d), ("name", r), ("mktsegment", r)],
        ),
        KlassDef::new(
            SUPPLIER,
            None,
            vec![("suppkey", l), ("nationkey", l), ("acctbal", d), ("name", r)],
        ),
        KlassDef::new(
            PART,
            None,
            vec![("partkey", l), ("retailprice", d), ("size", i), ("name", r)],
        ),
        KlassDef::new(
            PARTSUPP,
            None,
            vec![("partkey", l), ("suppkey", l), ("supplycost", d), ("availqty", i)],
        ),
        KlassDef::new(NATION, None, vec![("nationkey", l), ("regionkey", l), ("name", r)]),
        KlassDef::new(REGION, None, vec![("regionkey", l), ("name", r)]),
        KlassDef::new(
            RESULT_ROW,
            None,
            vec![("key", r), ("v1", d), ("v2", d), ("v3", d), ("tag", l)],
        ),
    ]);
}

/// All row classes plus their field types' support classes, for serializer
/// registries.
pub fn tpch_class_names() -> Vec<&'static str> {
    vec![
        LINEITEM,
        ORDERS,
        CUSTOMER,
        SUPPLIER,
        PART,
        PARTSUPP,
        NATION,
        REGION,
        RESULT_ROW,
        mheap::stdlib::STRING,
        "[C",
        "[Ljava.lang.Object;",
        mheap::stdlib::ARRAY_LIST,
    ]
}

/// A lineitem as Rust values (generation intermediate / reader output).
#[derive(Debug, Clone, PartialEq)]
pub struct LineitemVal {
    /// Order key.
    pub orderkey: i64,
    /// Part key.
    pub partkey: i64,
    /// Supplier key.
    pub suppkey: i64,
    /// Quantity ordered.
    pub quantity: f64,
    /// Extended price.
    pub extendedprice: f64,
    /// Discount fraction.
    pub discount: f64,
    /// Tax fraction.
    pub tax: f64,
    /// Return flag (`'R'`, `'A'`, `'N'`).
    pub returnflag: char,
    /// Line status (`'O'`, `'F'`).
    pub linestatus: char,
    /// Ship date (days since epoch).
    pub shipdate: i32,
    /// Commit date.
    pub commitdate: i32,
    /// Receipt date.
    pub receiptdate: i32,
    /// Ship mode string.
    pub shipmode: String,
}

/// Builds a lineitem row in the heap.
///
/// # Errors
/// Allocation errors.
pub fn new_lineitem(vm: &mut Vm, v: &LineitemVal) -> Result<Addr> {
    let s = vm.new_string(&v.shipmode).map_err(Error::Heap)?;
    let t = vm.push_temp_root(s);
    let k = vm.load_class(LINEITEM).map_err(Error::Heap)?;
    let row = vm.alloc_instance(k).map_err(Error::Heap)?;
    let s = vm.temp_root(t);
    vm.pop_temp_root();
    vm.set_long(row, "orderkey", v.orderkey).map_err(Error::Heap)?;
    vm.set_long(row, "partkey", v.partkey).map_err(Error::Heap)?;
    vm.set_long(row, "suppkey", v.suppkey).map_err(Error::Heap)?;
    vm.set_double(row, "quantity", v.quantity).map_err(Error::Heap)?;
    vm.set_double(row, "extendedprice", v.extendedprice).map_err(Error::Heap)?;
    vm.set_double(row, "discount", v.discount).map_err(Error::Heap)?;
    vm.set_double(row, "tax", v.tax).map_err(Error::Heap)?;
    vm.set_prim(row, "returnflag", mheap::Value::Char(v.returnflag as u16)).map_err(Error::Heap)?;
    vm.set_prim(row, "linestatus", mheap::Value::Char(v.linestatus as u16)).map_err(Error::Heap)?;
    vm.set_int(row, "shipdate", v.shipdate).map_err(Error::Heap)?;
    vm.set_int(row, "commitdate", v.commitdate).map_err(Error::Heap)?;
    vm.set_int(row, "receiptdate", v.receiptdate).map_err(Error::Heap)?;
    vm.set_ref(row, "shipmode", s).map_err(Error::Heap)?;
    Ok(row)
}

fn get_char(vm: &Vm, row: Addr, f: &str) -> Result<char> {
    match vm.get_prim(row, f).map_err(Error::Heap)? {
        mheap::Value::Char(c) => Ok(char::from_u32(u32::from(c)).unwrap_or('?')),
        _ => Ok('?'),
    }
}

/// Reads a lineitem row.
///
/// # Errors
/// Field errors.
pub fn read_lineitem(vm: &Vm, row: Addr) -> Result<LineitemVal> {
    let shipmode_ref = vm.get_ref(row, "shipmode").map_err(Error::Heap)?;
    Ok(LineitemVal {
        orderkey: vm.get_long(row, "orderkey").map_err(Error::Heap)?,
        partkey: vm.get_long(row, "partkey").map_err(Error::Heap)?,
        suppkey: vm.get_long(row, "suppkey").map_err(Error::Heap)?,
        quantity: vm.get_double(row, "quantity").map_err(Error::Heap)?,
        extendedprice: vm.get_double(row, "extendedprice").map_err(Error::Heap)?,
        discount: vm.get_double(row, "discount").map_err(Error::Heap)?,
        tax: vm.get_double(row, "tax").map_err(Error::Heap)?,
        returnflag: get_char(vm, row, "returnflag")?,
        linestatus: get_char(vm, row, "linestatus")?,
        shipdate: vm.get_int(row, "shipdate").map_err(Error::Heap)?,
        commitdate: vm.get_int(row, "commitdate").map_err(Error::Heap)?,
        receiptdate: vm.get_int(row, "receiptdate").map_err(Error::Heap)?,
        shipmode: if shipmode_ref.is_null() {
            String::new()
        } else {
            vm.read_string(shipmode_ref).map_err(Error::Heap)?
        },
    })
}

/// An orders row as Rust values.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdersVal {
    /// Order key.
    pub orderkey: i64,
    /// Customer key.
    pub custkey: i64,
    /// Order date (days since epoch).
    pub orderdate: i32,
    /// Total price.
    pub totalprice: f64,
    /// Shipping priority.
    pub shippriority: i32,
    /// Order priority string.
    pub orderpriority: String,
}

/// Builds an orders row.
///
/// # Errors
/// Allocation errors.
pub fn new_orders(vm: &mut Vm, v: &OrdersVal) -> Result<Addr> {
    let s = vm.new_string(&v.orderpriority).map_err(Error::Heap)?;
    let t = vm.push_temp_root(s);
    let k = vm.load_class(ORDERS).map_err(Error::Heap)?;
    let row = vm.alloc_instance(k).map_err(Error::Heap)?;
    let s = vm.temp_root(t);
    vm.pop_temp_root();
    vm.set_long(row, "orderkey", v.orderkey).map_err(Error::Heap)?;
    vm.set_long(row, "custkey", v.custkey).map_err(Error::Heap)?;
    vm.set_int(row, "orderdate", v.orderdate).map_err(Error::Heap)?;
    vm.set_double(row, "totalprice", v.totalprice).map_err(Error::Heap)?;
    vm.set_int(row, "shippriority", v.shippriority).map_err(Error::Heap)?;
    vm.set_ref(row, "orderpriority", s).map_err(Error::Heap)?;
    Ok(row)
}

/// Reads an orders row.
///
/// # Errors
/// Field errors.
pub fn read_orders(vm: &Vm, row: Addr) -> Result<OrdersVal> {
    let p = vm.get_ref(row, "orderpriority").map_err(Error::Heap)?;
    Ok(OrdersVal {
        orderkey: vm.get_long(row, "orderkey").map_err(Error::Heap)?,
        custkey: vm.get_long(row, "custkey").map_err(Error::Heap)?,
        orderdate: vm.get_int(row, "orderdate").map_err(Error::Heap)?,
        totalprice: vm.get_double(row, "totalprice").map_err(Error::Heap)?,
        shippriority: vm.get_int(row, "shippriority").map_err(Error::Heap)?,
        orderpriority: if p.is_null() {
            String::new()
        } else {
            vm.read_string(p).map_err(Error::Heap)?
        },
    })
}

/// A customer row as Rust values.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomerVal {
    /// Customer key.
    pub custkey: i64,
    /// Nation key.
    pub nationkey: i64,
    /// Account balance.
    pub acctbal: f64,
    /// Customer name.
    pub name: String,
    /// Market segment.
    pub mktsegment: String,
}

/// Builds a customer row.
///
/// # Errors
/// Allocation errors.
pub fn new_customer(vm: &mut Vm, v: &CustomerVal) -> Result<Addr> {
    let n = vm.new_string(&v.name).map_err(Error::Heap)?;
    let tn = vm.push_temp_root(n);
    let m = vm.new_string(&v.mktsegment).map_err(Error::Heap)?;
    let tm = vm.push_temp_root(m);
    let k = vm.load_class(CUSTOMER).map_err(Error::Heap)?;
    let row = vm.alloc_instance(k).map_err(Error::Heap)?;
    let m = vm.temp_root(tm);
    let n = vm.temp_root(tn);
    vm.pop_temp_root();
    vm.pop_temp_root();
    vm.set_long(row, "custkey", v.custkey).map_err(Error::Heap)?;
    vm.set_long(row, "nationkey", v.nationkey).map_err(Error::Heap)?;
    vm.set_double(row, "acctbal", v.acctbal).map_err(Error::Heap)?;
    vm.set_ref(row, "name", n).map_err(Error::Heap)?;
    vm.set_ref(row, "mktsegment", m).map_err(Error::Heap)?;
    Ok(row)
}

/// Reads a customer row.
///
/// # Errors
/// Field errors.
pub fn read_customer(vm: &Vm, row: Addr) -> Result<CustomerVal> {
    let n = vm.get_ref(row, "name").map_err(Error::Heap)?;
    let m = vm.get_ref(row, "mktsegment").map_err(Error::Heap)?;
    Ok(CustomerVal {
        custkey: vm.get_long(row, "custkey").map_err(Error::Heap)?,
        nationkey: vm.get_long(row, "nationkey").map_err(Error::Heap)?,
        acctbal: vm.get_double(row, "acctbal").map_err(Error::Heap)?,
        name: if n.is_null() { String::new() } else { vm.read_string(n).map_err(Error::Heap)? },
        mktsegment: if m.is_null() {
            String::new()
        } else {
            vm.read_string(m).map_err(Error::Heap)?
        },
    })
}

/// A supplier row as Rust values.
#[derive(Debug, Clone, PartialEq)]
pub struct SupplierVal {
    /// Supplier key.
    pub suppkey: i64,
    /// Nation key.
    pub nationkey: i64,
    /// Account balance.
    pub acctbal: f64,
    /// Supplier name.
    pub name: String,
}

/// Builds a supplier row.
///
/// # Errors
/// Allocation errors.
pub fn new_supplier(vm: &mut Vm, v: &SupplierVal) -> Result<Addr> {
    let n = vm.new_string(&v.name).map_err(Error::Heap)?;
    let t = vm.push_temp_root(n);
    let k = vm.load_class(SUPPLIER).map_err(Error::Heap)?;
    let row = vm.alloc_instance(k).map_err(Error::Heap)?;
    let n = vm.temp_root(t);
    vm.pop_temp_root();
    vm.set_long(row, "suppkey", v.suppkey).map_err(Error::Heap)?;
    vm.set_long(row, "nationkey", v.nationkey).map_err(Error::Heap)?;
    vm.set_double(row, "acctbal", v.acctbal).map_err(Error::Heap)?;
    vm.set_ref(row, "name", n).map_err(Error::Heap)?;
    Ok(row)
}

/// Reads a supplier row.
///
/// # Errors
/// Field errors.
pub fn read_supplier(vm: &Vm, row: Addr) -> Result<SupplierVal> {
    let n = vm.get_ref(row, "name").map_err(Error::Heap)?;
    Ok(SupplierVal {
        suppkey: vm.get_long(row, "suppkey").map_err(Error::Heap)?,
        nationkey: vm.get_long(row, "nationkey").map_err(Error::Heap)?,
        acctbal: vm.get_double(row, "acctbal").map_err(Error::Heap)?,
        name: if n.is_null() { String::new() } else { vm.read_string(n).map_err(Error::Heap)? },
    })
}

/// A partsupp row as Rust values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartsuppVal {
    /// Part key.
    pub partkey: i64,
    /// Supplier key.
    pub suppkey: i64,
    /// Supply cost.
    pub supplycost: f64,
    /// Available quantity.
    pub availqty: i32,
}

/// Builds a partsupp row.
///
/// # Errors
/// Allocation errors.
pub fn new_partsupp(vm: &mut Vm, v: &PartsuppVal) -> Result<Addr> {
    let k = vm.load_class(PARTSUPP).map_err(Error::Heap)?;
    let row = vm.alloc_instance(k).map_err(Error::Heap)?;
    vm.set_long(row, "partkey", v.partkey).map_err(Error::Heap)?;
    vm.set_long(row, "suppkey", v.suppkey).map_err(Error::Heap)?;
    vm.set_double(row, "supplycost", v.supplycost).map_err(Error::Heap)?;
    vm.set_int(row, "availqty", v.availqty).map_err(Error::Heap)?;
    Ok(row)
}

/// Reads a partsupp row.
///
/// # Errors
/// Field errors.
pub fn read_partsupp(vm: &Vm, row: Addr) -> Result<PartsuppVal> {
    Ok(PartsuppVal {
        partkey: vm.get_long(row, "partkey").map_err(Error::Heap)?,
        suppkey: vm.get_long(row, "suppkey").map_err(Error::Heap)?,
        supplycost: vm.get_double(row, "supplycost").map_err(Error::Heap)?,
        availqty: vm.get_int(row, "availqty").map_err(Error::Heap)?,
    })
}

/// A generic result row as Rust values (group key + three numbers + tag).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultVal {
    /// Group key.
    pub key: String,
    /// First aggregate.
    pub v1: f64,
    /// Second aggregate.
    pub v2: f64,
    /// Third aggregate.
    pub v3: f64,
    /// Integer tag (counts, keys…).
    pub tag: i64,
}

/// Builds a result row.
///
/// # Errors
/// Allocation errors.
pub fn new_result(vm: &mut Vm, v: &ResultVal) -> Result<Addr> {
    let s = vm.new_string(&v.key).map_err(Error::Heap)?;
    let t = vm.push_temp_root(s);
    let k = vm.load_class(RESULT_ROW).map_err(Error::Heap)?;
    let row = vm.alloc_instance(k).map_err(Error::Heap)?;
    let s = vm.temp_root(t);
    vm.pop_temp_root();
    vm.set_ref(row, "key", s).map_err(Error::Heap)?;
    vm.set_double(row, "v1", v.v1).map_err(Error::Heap)?;
    vm.set_double(row, "v2", v.v2).map_err(Error::Heap)?;
    vm.set_double(row, "v3", v.v3).map_err(Error::Heap)?;
    vm.set_long(row, "tag", v.tag).map_err(Error::Heap)?;
    Ok(row)
}

/// Reads a result row.
///
/// # Errors
/// Field errors.
pub fn read_result(vm: &Vm, row: Addr) -> Result<ResultVal> {
    let s = vm.get_ref(row, "key").map_err(Error::Heap)?;
    Ok(ResultVal {
        key: if s.is_null() { String::new() } else { vm.read_string(s).map_err(Error::Heap)? },
        v1: vm.get_double(row, "v1").map_err(Error::Heap)?,
        v2: vm.get_double(row, "v2").map_err(Error::Heap)?,
        v3: vm.get_double(row, "v3").map_err(Error::Heap)?,
        tag: vm.get_long(row, "tag").map_err(Error::Heap)?,
    })
}
