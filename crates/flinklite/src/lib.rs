//! `flinklite` — a Flink-like batch query engine over simulated managed
//! heaps, the apparatus of the paper's §5.3 evaluation.
//!
//! Flink reads input into typed tuples and serializes each field with a
//! statically-chosen built-in serializer; on the receiving side it
//! deserializes *lazily*, decoding only the columns the next operator
//! touches. [`rowser::FlinkRowSerializer`] implements exactly that; the
//! engine otherwise reuses the shared dataflow substrate
//! ([`sparklite::SparkCluster`]) wired through [`engine::boot`], so swapping
//! in Skyway is the same one-line change the paper performs.
//!
//! The five TPC-H-derived queries of Table 3 (QA–QE) live in [`queries`];
//! the scaled-down TPC-H generator in [`tpchgen`].

#![warn(missing_docs)]

pub mod engine;
pub mod queries;
pub mod rowser;
pub mod tables;
pub mod tpchgen;

pub use engine::{boot, full_schema, FlinkConfig, FlinkSerializer};
pub use queries::{reference, run_query, QueryId};
pub use rowser::{FlinkRowSerializer, RowSchema};
pub use tpchgen::{generate, TpchData};

/// Errors produced by the Flink-like engine.
#[derive(Debug)]
pub enum Error {
    /// Managed-heap error.
    Heap(mheap::Error),
    /// Serializer error.
    Serde(serlab::Error),
    /// Dataflow-substrate error.
    Engine(sparklite::Error),
    /// A row class outside the schema.
    UnknownRowClass(String),
    /// Corrupt row stream.
    Corrupt(String),
}

impl Error {
    /// Converts into the substrate's error type (closure plumbing).
    pub fn into_spark(self) -> sparklite::Error {
        match self {
            Error::Heap(e) => sparklite::Error::Heap(e),
            Error::Serde(e) => sparklite::Error::Serde(e),
            Error::Engine(e) => e,
            other => sparklite::Error::Serde(serlab::Error::Malformed(other.to_string())),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Heap(e) => write!(f, "heap error: {e}"),
            Error::Serde(e) => write!(f, "serializer error: {e}"),
            Error::Engine(e) => write!(f, "engine error: {e}"),
            Error::UnknownRowClass(c) => write!(f, "row class not in schema: {c}"),
            Error::Corrupt(s) => write!(f, "corrupt row stream: {s}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Heap(e) => Some(e),
            Error::Serde(e) => Some(e),
            Error::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mheap::Error> for Error {
    fn from(e: mheap::Error) -> Self {
        Error::Heap(e)
    }
}

impl From<serlab::Error> for Error {
    fn from(e: serlab::Error) -> Self {
        Error::Serde(e)
    }
}

impl From<sparklite::Error> for Error {
    fn from(e: sparklite::Error) -> Self {
        Error::Engine(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
