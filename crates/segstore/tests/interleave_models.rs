//! Interleaving models for the segment store's lock-free refcount retire
//! path (`SegmentStore::attach_traced` / `release_ref`): attachers bump
//! the refcount under the map lock (existence + resurrection guard),
//! read the mapped segment outside any lock, and decrement with
//! `fetch_sub(Release)`; the last decrementer takes an `Acquire` fence,
//! rechecks under the map lock, and retires the segment to limbo (the
//! "free" the fence orders after every other attacher's reads).
//!
//! The negative model drops the decrement to Relaxed — the seed's
//! original ordering — and must be caught: the retire races another
//! attacher's in-flight segment read, which is precisely the bug the
//! Release/Acquire pair at the refcount-free edge fixes.

use std::sync::Arc;

use interleave::{fence, model, AtomicU32, Config, Data, Mutex, Ordering};

struct Store {
    /// The map lock: guards attachability and the zero-recheck.
    map: Mutex<bool>, // true once retired
    refs: AtomicU32,
    /// The mapped segment bytes; retiring "frees" them by zeroing.
    seg: Data<u32>,
}

impl Store {
    fn new() -> Self {
        Store { map: Mutex::new(false), refs: AtomicU32::new(0), seg: Data::named("segment", 1) }
    }

    /// `attach_traced`: refcount bump under the map lock, like
    /// `Arc::clone` — the lock proves the entry is still attachable.
    fn attach(&self) -> bool {
        let retired = self.map.lock();
        if *retired {
            return false;
        }
        self.refs.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// `release_ref`: Release decrement; the zero path takes the Acquire
    /// fence, rechecks under the map lock, and frees.
    fn release(&self, dec: Ordering) {
        if self.refs.fetch_sub(1, dec) != 1 {
            return;
        }
        if dec != Ordering::Relaxed {
            fence(Ordering::Acquire);
        }
        let mut retired = self.map.lock();
        // Resurrection guard: a racing attach under the map lock may have
        // revived the entry between our decrement and this recheck — and
        // may itself have read and released again by now, so the recheck
        // must *Acquire* that holder's Release decrement (our own fence
        // predates it and orders nothing of theirs).
        if !*retired && self.refs.load(Ordering::Acquire) == 0 {
            *retired = true;
            self.seg.set(0); // retire to limbo: the eventual free
        }
    }
}

fn attacher(store: &Store, dec: Ordering) {
    if store.attach() {
        // The mapped read the refcount protects: must complete before
        // any retire becomes possible.
        store.seg.with(|bytes| assert_eq!(*bytes, 1, "read a freed segment"));
        store.release(dec);
    }
}

model! {
    /// Two attachers race reads against the last-reference retire; the
    /// Release decrement + Acquire fence order every read before the
    /// free, and the map-lock recheck stops a revived entry from being
    /// torn down.
    fn refcount_retire_orders_reads_before_free() {
        let store = Arc::new(Store::new());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s2 = Arc::clone(&store);
                interleave::spawn(move || attacher(&s2, Ordering::Release))
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert!(*store.map.lock(), "last detach must retire the segment");
        assert_eq!(store.seg.get(), 0, "retired segment is freed exactly once");
    }

    /// Detach-under-attach: an attach that lands between the decrement
    /// and the zero-recheck revives the entry, and the recheck must then
    /// leave it alive for the still-active holder.
    fn attach_during_retire_revives_the_entry() {
        let store = Arc::new(Store::new());
        let s2 = Arc::clone(&store);
        let t = interleave::spawn(move || attacher(&s2, Ordering::Release));
        if store.attach() {
            store.seg.with(|bytes| assert_eq!(*bytes, 1, "read a freed segment"));
            store.release(Ordering::Release);
        }
        t.join();
        assert_eq!(store.seg.get(), 0, "the true last holder still retires");
    }
}

/// Pre-fix pin: with a Relaxed decrement (and no fence) the retire does
/// not happen-after the other attacher's segment read — the model must
/// flag the free racing that read. This is the seed's original ordering
/// at the refcount-free edge.
#[test]
fn relaxed_refcount_decrement_races_the_free() {
    let msg = interleave::fails(Config::from_env(), || {
        let store = Arc::new(Store::new());
        let s2 = Arc::clone(&store);
        let t = interleave::spawn(move || attacher(&s2, Ordering::Relaxed));
        attacher(&store, Ordering::Relaxed);
        t.join();
    });
    assert!(msg.contains("data race") || msg.contains("segment"), "{msg}");
}
