//! Segment-store integration tests: attach must be observationally equal
//! to a byte-cloning transfer, refcounts must pin segments across GC and
//! epoch advances, and the global chunk pool must make back-to-back
//! pipelined transfers allocation-free.

use std::sync::Arc;

use proptest::prelude::*;

use mheap::stdlib::define_core_classes;
use mheap::{Addr, ClassPath, FieldType, Gen, HeapConfig, KlassDef, PrimType, Vm};
use segstore::{shared_transfer, SegStore};
use simnet::NodeId;
use skyway::{
    sequential_transfer, ChunkPool, PipelineConfig, PipelineEngine, SendConfig, TransferMode,
    TypeDirectory,
};

fn classpath() -> Arc<ClassPath> {
    let cp = ClassPath::new();
    define_core_classes(&cp);
    cp.define(KlassDef::new(
        "SNode",
        None,
        vec![
            ("tag", FieldType::Prim(PrimType::Long)),
            ("left", FieldType::Ref),
            ("right", FieldType::Ref),
        ],
    ));
    cp
}

#[derive(Debug, Clone)]
struct GraphSpec {
    tags: Vec<i64>,
    lefts: Vec<Option<usize>>,
    rights: Vec<Option<usize>>,
    roots: Vec<usize>,
}

fn graph_spec(max_nodes: usize) -> impl Strategy<Value = GraphSpec> {
    (2..max_nodes)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(any::<i64>(), n),
                proptest::collection::vec(proptest::option::of(0..n), n),
                proptest::collection::vec(proptest::option::of(0..n), n),
                proptest::collection::vec(0..n, 1..5),
            )
        })
        .prop_map(|(tags, lefts, rights, roots)| {
            let clamp = |v: Vec<Option<usize>>| {
                v.into_iter().enumerate().map(|(i, e)| e.filter(|&t| t < i)).collect::<Vec<_>>()
            };
            GraphSpec { tags, lefts: clamp(lefts), rights: clamp(rights), roots }
        })
}

fn build(vm: &mut Vm, spec: &GraphSpec) -> Vec<mheap::Handle> {
    let k = vm.load_class("SNode").unwrap();
    let mut handles = Vec::with_capacity(spec.tags.len());
    for i in 0..spec.tags.len() {
        let node = vm.alloc_instance(k).unwrap();
        vm.set_long(node, "tag", spec.tags[i]).unwrap();
        let h = vm.handle(node);
        if let Some(l) = spec.lefts[i] {
            let node = vm.resolve(h).unwrap();
            let t = vm.resolve(handles[l]).unwrap();
            vm.set_ref(node, "left", t).unwrap();
        }
        if let Some(r) = spec.rights[i] {
            let node = vm.resolve(h).unwrap();
            let t = vm.resolve(handles[r]).unwrap();
            vm.set_ref(node, "right", t).unwrap();
        }
        handles.push(h);
    }
    handles
}

/// Canonical form of the graph reachable from `root`: DFS preorder with
/// edges as discovery indices — identical graphs canonicalize identically
/// regardless of where their bytes live (owned heap or attached segment).
fn canonicalize(vm: &Vm, root: Addr) -> Vec<(i64, Option<usize>, Option<usize>)> {
    let mut index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut order: Vec<Addr> = Vec::new();
    let mut stack = vec![root];
    while let Some(a) = stack.pop() {
        if a.is_null() || index.contains_key(&a.0) {
            continue;
        }
        index.insert(a.0, order.len());
        order.push(a);
        let l = vm.get_ref(a, "left").unwrap();
        let r = vm.get_ref(a, "right").unwrap();
        stack.push(r);
        stack.push(l);
    }
    let mut out = Vec::with_capacity(order.len());
    for &a in &order {
        let tag = vm.get_long(a, "tag").unwrap();
        let l = vm.get_ref(a, "left").unwrap();
        let r = vm.get_ref(a, "right").unwrap();
        out.push((tag, (!l.is_null()).then(|| index[&l.0]), (!r.is_null()).then(|| index[&r.0])));
    }
    out
}

/// Two co-located VMs on node 0 sharing one type directory.
fn same_node_env() -> (Arc<TypeDirectory>, Vm, Vm) {
    let cp = classpath();
    let sender =
        Vm::new("s", &HeapConfig::small().with_capacity(8 << 20), Arc::clone(&cp)).unwrap();
    let receiver = Vm::new("r", &HeapConfig::small().with_capacity(8 << 20), cp).unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();
    (dir, sender, receiver)
}

fn resolve_roots(vm: &Vm, handles: &[mheap::Handle], idx: &[usize]) -> Vec<Addr> {
    idx.iter().map(|&i| vm.resolve(handles[i]).unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The tentpole property: attaching a sealed segment must be
    // observationally identical to cloning the graph byte-by-byte through
    // the wire path — same per-root structure, tags, and sharing — while
    // doing none of the receive-side work (zero chunks, fixups, dirtied
    // cards) and keeping every heap invariant intact, even with owned→
    // segment references created after the attach.
    #[test]
    fn attach_equals_clone(spec in graph_spec(32)) {
        let (dir, mut sender, mut receiver) = same_node_env();
        let handles = build(&mut sender, &spec);
        let roots = resolve_roots(&sender, &handles, &spec.roots);

        // Reference run: the ordinary cloning transfer of the same graph
        // in an independent environment.
        let (dir2, mut sender2, mut receiver2) = same_node_env();
        let handles2 = build(&mut sender2, &spec);
        let roots2 = resolve_roots(&sender2, &handles2, &spec.roots);
        let cfg = SendConfig::for_vm(&sender2);
        let (cloned, _, _) = sequential_transfer(
            &sender2, &mut receiver2, &dir2, NodeId(0), NodeId(1), 1, 1, &roots2, None, cfg,
        ).unwrap();

        let store = SegStore::new().with_metrics(Arc::new(obs::Registry::new()));
        let (attached, report) =
            shared_transfer(&store, &sender, &mut receiver, &dir, NodeId(0), &roots).unwrap();

        prop_assert_eq!(report.mode, TransferMode::Shared);
        prop_assert_eq!(report.recv_stats.chunks, 0);
        prop_assert_eq!(report.recv_stats.ref_fixups, 0);
        prop_assert_eq!(report.recv_stats.cards_dirtied, 0);
        prop_assert_eq!(attached.len(), cloned.len());
        for ((a, c), &orig) in attached.iter().zip(&cloned).zip(&roots) {
            let want = canonicalize(&sender, orig);
            prop_assert_eq!(&canonicalize(&receiver, *a), &want);
            prop_assert_eq!(&canonicalize(&receiver2, *c), &want);
        }

        // Owned objects may point INTO the segment (cross-segment refs);
        // the heap must verify clean and survive a full GC with the
        // segment acting as a boundary.
        let k = receiver.load_class("SNode").unwrap();
        let owned = receiver.alloc_instance(k).unwrap();
        let h = receiver.handle(owned);
        let owned = receiver.resolve(h).unwrap();
        receiver.set_ref(owned, "left", attached[0]).unwrap();
        prop_assert_eq!(receiver.verify_heap().unwrap(), vec![]);
        receiver.full_gc().unwrap();
        prop_assert_eq!(receiver.verify_heap().unwrap(), vec![]);
        let owned = receiver.resolve(h).unwrap();
        let through = receiver.get_ref(owned, "left").unwrap();
        prop_assert_eq!(&canonicalize(&receiver, through), &canonicalize(&sender, roots[0]));
    }
}

// A segment stays mapped and readable across minor and full GC of the
// attacher, advance_epoch can never reclaim it while a refcount pins it,
// and detach + one epoch advance reclaims it exactly once.
#[test]
fn detach_under_gc_never_reclaims_attached() {
    let (dir, mut sender, mut receiver) = same_node_env();
    let spec = GraphSpec {
        tags: vec![7, 11, 13, 17],
        lefts: vec![None, Some(0), Some(1), Some(2)],
        rights: vec![None, None, Some(0), Some(1)],
        roots: vec![3],
    };
    let handles = build(&mut sender, &spec);
    let roots = resolve_roots(&sender, &handles, &spec.roots);
    let want = canonicalize(&sender, roots[0]);

    let store = SegStore::new().with_metrics(Arc::new(obs::Registry::new()));
    let seal = store.seal(&sender, &dir, NodeId(0), &roots).unwrap();
    let attached = store.attach(&mut receiver, seal.base).unwrap();
    assert_eq!(store.refcount(seal.base), Some(1));
    assert_eq!(receiver.gen_of(attached[0]).unwrap(), Gen::Segment);

    // Churn the attacher's own heap so both GC flavors actually run.
    let k = receiver.load_class("SNode").unwrap();
    for i in 0..200 {
        let n = receiver.alloc_instance(k).unwrap();
        receiver.set_long(n, "tag", i).unwrap();
    }
    receiver.minor_gc().unwrap();
    receiver.full_gc().unwrap();
    assert_eq!(receiver.verify_heap().unwrap(), vec![]);

    // Epochs may advance arbitrarily while attached: nothing is reclaimed.
    for _ in 0..3 {
        assert_eq!(store.advance_epoch(), 0);
    }
    assert_eq!(store.refcount(seal.base), Some(1));
    assert_eq!(canonicalize(&receiver, attached[0]), want);

    // Detach retires the segment into limbo; it survives the epoch it
    // retired in and is reclaimed by the next advance.
    store.detach(&mut receiver, seal.base).unwrap();
    assert_eq!(store.refcount(seal.base), None);
    assert!(receiver.gen_of(attached[0]).is_err());
    assert_eq!(store.live_segments(), 1);
    assert_eq!(store.advance_epoch(), 1);
    assert_eq!(store.live_segments(), 0);
    assert_eq!(store.advance_epoch(), 0);
}

// Broadcast shape: one seal, N attachers sharing the same physical bytes.
#[test]
fn broadcast_attaches_share_one_segment() {
    let cp = classpath();
    let mut driver =
        Vm::new("driver", &HeapConfig::small().with_capacity(8 << 20), Arc::clone(&cp)).unwrap();
    let dir = Arc::new(TypeDirectory::new(1, NodeId(0)));
    dir.bootstrap_driver(&driver).unwrap();
    let spec = GraphSpec {
        tags: vec![1, 2, 3],
        lefts: vec![None, Some(0), Some(1)],
        rights: vec![None, None, Some(0)],
        roots: vec![2],
    };
    let handles = build(&mut driver, &spec);
    let roots = resolve_roots(&driver, &handles, &spec.roots);
    let want = canonicalize(&driver, roots[0]);

    let registry = Arc::new(obs::Registry::new());
    let store = SegStore::new().with_metrics(Arc::clone(&registry));
    let seal = store.seal(&driver, &dir, NodeId(0), &roots).unwrap();

    const N: usize = 4;
    let mut executors: Vec<Vm> = (0..N)
        .map(|i| Vm::new(format!("exec{i}"), &HeapConfig::small(), Arc::clone(&cp)).unwrap())
        .collect();
    let mut per_vm_roots = Vec::new();
    for vm in &mut executors {
        per_vm_roots.push(store.attach(vm, seal.base).unwrap());
    }
    // One copy, N views.
    assert_eq!(store.refcount(seal.base), Some(N as u32));
    assert_eq!(store.live_segments(), 1);
    let nc = registry.counter(obs::names::SEGSTORE_BYTES_NOT_COPIED).get();
    assert_eq!(nc, seal.bytes * N as u64);
    for (vm, roots) in executors.iter().zip(&per_vm_roots) {
        assert_eq!(canonicalize(vm, roots[0]), want);
        assert_eq!(vm.verify_heap().unwrap(), vec![]);
    }
    // Same base address in every attacher: the roots are literally equal.
    for roots in &per_vm_roots {
        assert_eq!(roots[0], per_vm_roots[0][0]);
    }
    for vm in &mut executors {
        store.detach(vm, seal.base).unwrap();
    }
    assert_eq!(store.advance_epoch(), 1);
    assert_eq!(registry.counter(obs::names::SEGSTORE_RECLAIMED).get(), 1);
}

// Double attach of one segment to one VM must fail cleanly and leave the
// refcount where it was.
#[test]
fn double_attach_rolls_back_refcount() {
    let (dir, mut sender, mut receiver) = same_node_env();
    let spec = GraphSpec {
        tags: vec![5, 6],
        lefts: vec![None, Some(0)],
        rights: vec![None, None],
        roots: vec![1],
    };
    let handles = build(&mut sender, &spec);
    let roots = resolve_roots(&sender, &handles, &spec.roots);
    let store = SegStore::new().with_metrics(Arc::new(obs::Registry::new()));
    let seal = store.seal(&sender, &dir, NodeId(0), &roots).unwrap();
    store.attach(&mut receiver, seal.base).unwrap();
    assert!(store.attach(&mut receiver, seal.base).is_err());
    assert_eq!(store.refcount(seal.base), Some(1));
    assert!(matches!(
        store.attach(&mut receiver, seal.base + 0x5555),
        Err(segstore::Error::UnknownSegment(_))
    ));
}

// The per-node global chunk pool: two fresh engines share it, so the
// second transfer's chunks all come from the first transfer's returns.
#[test]
fn back_to_back_transfers_have_zero_pool_misses() {
    let (dir, mut sender, mut receiver) = same_node_env();
    let spec = GraphSpec {
        tags: (0..24).collect(),
        lefts: (0..24).map(|i| if i > 0 { Some(i - 1) } else { None }).collect(),
        rights: vec![None; 24],
        roots: vec![23],
    };
    let handles = build(&mut sender, &spec);
    let roots = resolve_roots(&sender, &handles, &spec.roots);

    // Both engines are constructed independently — sharing happens only
    // through the process-global pool that `new` defaults to.
    let e1 = PipelineEngine::new(PipelineConfig { chunk_limit: 256, ..Default::default() });
    let e2 = PipelineEngine::new(PipelineConfig { chunk_limit: 256, ..Default::default() });
    assert!(Arc::ptr_eq(e1.pool(), e2.pool()));
    assert!(Arc::ptr_eq(e1.pool(), ChunkPool::global()));

    let (_, r1) = e1
        .transfer(&sender, &mut receiver, &dir, NodeId(0), NodeId(1), 1, 1, &roots, None)
        .unwrap();
    let (_, r2) = e2
        .transfer(&sender, &mut receiver, &dir, NodeId(0), NodeId(1), 1, 2, &roots, None)
        .unwrap();
    // First run may allocate; the second must be served entirely from the
    // chunks the first returned to the shared pool.
    assert!(r1.pool_hits + r1.pool_misses > 0);
    assert_eq!(r2.pool_misses, 0);
    assert!(r2.pool_hits > 0);
}
