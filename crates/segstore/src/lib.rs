//! `segstore` — a node-local store of sealed, immutable, refcounted heap
//! segments for zero-copy same-node transfer.
//!
//! Skyway removes serialization from distributed transfer, but a same-node
//! "transfer" through the pipeline still clones the object graph byte by
//! byte between two co-located heaps — pure waste when sender and receiver
//! share physical memory. This crate adds the missing tier (the
//! vineyard-style immutable object store):
//!
//! * [`SegStore::seal`] runs the normal [`skyway::GraphSender`] traversal
//!   over a root set, but lands the stream in *store-owned* memory and
//!   absolutizes every reference against the segment's global base
//!   ([`mheap::SEGMENT_BASE`]-region addresses are valid in every
//!   attacher). The result is a sealed [`mheap::Segment`]: heap-format
//!   objects, checksummed, never written again.
//! * [`SegStore::attach`] hands a co-located VM the whole graph as a
//!   *metadata-only* operation: the segment's memory is mapped into the
//!   heap's address space, no byte is cloned, no card is dirtied, no
//!   reference is fixed up. N attachers share one copy; the store
//!   refcounts them.
//! * [`SegStore::detach`] drops one attacher. When the last one drops,
//!   the segment retires into a limbo list stamped with the store's
//!   current epoch; [`SegStore::advance_epoch`] reclaims retired segments
//!   from earlier epochs. A segment is therefore freed only after every
//!   attacher has detached *and* a full epoch has passed — the
//!   epoch/refcount scheme that keeps a GC-ing attacher from racing
//!   reclamation.
//!
//! [`shared_transfer`] packages seal + attach as a drop-in fourth
//! transfer mode (reported as [`TransferMode::Shared`]) next to the
//! pipeline engine's inline/pipelined/parallel policy, for callers like
//! `sparklite` that pick it automatically when source and destination are
//! the same node.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mheap::{Addr, KlassKind, Segment, SegmentBuilder, Vm, FILLER_WORD};
use parking_lot::Mutex;
use simnet::NodeId;
use skyway::buffer::{TOP_MARK, TOP_REF};
use skyway::{
    GraphSender, PipelineReport, ReceiveStats, SendConfig, SendStats, Tracking, TransferMode,
    TypeDirectory,
};

/// Errors produced by the segment store.
#[derive(Debug)]
pub enum Error {
    /// Underlying Skyway (sender/registry) error during sealing.
    Core(skyway::Error),
    /// Underlying heap error during attach/detach.
    Heap(mheap::Error),
    /// No live segment with this base is in the store.
    UnknownSegment(u64),
    /// The sealed stream was malformed (truncated or unparseable).
    BadStream(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Core(e) => write!(f, "seal error: {e}"),
            Error::Heap(e) => write!(f, "heap error: {e}"),
            Error::UnknownSegment(base) => {
                write!(f, "no live segment with base {base:#x} in the store")
            }
            Error::BadStream(s) => write!(f, "bad sealed stream: {s}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<skyway::Error> for Error {
    fn from(e: skyway::Error) -> Self {
        Error::Core(e)
    }
}

impl From<mheap::Error> for Error {
    fn from(e: mheap::Error) -> Self {
        Error::Heap(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// What one seal produced.
#[derive(Debug, Clone)]
pub struct SealReport {
    /// Base of the sealed segment (the attach key).
    pub base: u64,
    /// Bytes of store-owned memory the graph occupies.
    pub bytes: u64,
    /// Sender-side composition statistics of the traversal.
    pub stats: SendStats,
    /// Number of graph roots recorded in the segment.
    pub roots: usize,
    /// Wall-clock nanoseconds the seal took (traversal + translation).
    pub seal_ns: u64,
}

/// One live segment: the sealed memory plus its attach refcount.
///
/// The refcount is lock-free on the detach fast path: increments happen
/// under the store's map lock (which doubles as the resurrection guard —
/// an entry reachable through the map cannot be concurrently retired),
/// but decrements touch no lock unless they are the one that drops the
/// count to zero. The decrement/retire edge uses the `Arc`-drop
/// discipline: `fetch_sub(Release)` paired with a `fence(Acquire)` on the
/// zero path, so every attacher's segment reads happen-before the retire
/// that eventually frees the memory.
#[derive(Debug)]
struct Entry {
    seg: Arc<Segment>,
    /// Current number of attachers.
    refs: AtomicU32,
    /// Set once the first attach succeeds; a segment that was never
    /// attached stays attachable at refcount zero instead of retiring.
    ever_attached: AtomicBool,
}

#[derive(Debug, Default)]
struct Inner {
    /// Live (attachable) segments by base.
    segments: HashMap<u64, Arc<Entry>>,
    /// Reclamation epoch; bumped by [`SegStore::advance_epoch`].
    epoch: u64,
    /// Retired segments awaiting reclamation: `(retire_epoch, segment)`.
    limbo: Vec<(u64, Arc<Segment>)>,
}

/// Cached observability handles (`skyway.segstore.*`).
#[derive(Debug)]
struct StoreMetrics {
    registry: Arc<obs::Registry>,
    seals: Arc<obs::Counter>,
    attaches: Arc<obs::Counter>,
    detaches: Arc<obs::Counter>,
    reclaimed: Arc<obs::Counter>,
    bytes_sealed: Arc<obs::Counter>,
    bytes_not_copied: Arc<obs::Counter>,
    segments_live: Arc<obs::Gauge>,
    mode_shared: Arc<obs::Counter>,
}

impl StoreMetrics {
    fn new(registry: Arc<obs::Registry>) -> Self {
        StoreMetrics {
            seals: registry.counter(obs::names::SEGSTORE_SEALS),
            attaches: registry.counter(obs::names::SEGSTORE_ATTACHES),
            detaches: registry.counter(obs::names::SEGSTORE_DETACHES),
            reclaimed: registry.counter(obs::names::SEGSTORE_RECLAIMED),
            bytes_sealed: registry.counter(obs::names::SEGSTORE_BYTES_SEALED),
            bytes_not_copied: registry.counter(obs::names::SEGSTORE_BYTES_NOT_COPIED),
            segments_live: registry.gauge(obs::names::SEGSTORE_SEGMENTS_LIVE),
            mode_shared: registry.counter(obs::names::PIPELINE_MODE_SHARED),
            registry,
        }
    }
}

/// The node-local segment store. One per simulated node; every VM on the
/// node seals into and attaches from the same store.
#[derive(Debug)]
pub struct SegStore {
    inner: Mutex<Inner>,
    metrics: StoreMetrics,
}

impl Default for SegStore {
    fn default() -> Self {
        SegStore::new()
    }
}

impl SegStore {
    /// An empty store reporting to the process-wide metrics registry.
    pub fn new() -> Self {
        SegStore {
            inner: Mutex::new(Inner::default()),
            metrics: StoreMetrics::new(Arc::clone(obs::global())),
        }
    }

    /// Reports into `registry` instead of the process-wide default
    /// (scoped registries keep test assertions exact).
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<obs::Registry>) -> Self {
        self.metrics = StoreMetrics::new(registry);
        self
    }

    /// Seals the object graphs of `roots` from `vm` (running on `node`)
    /// into a new store-owned segment and returns its report. The
    /// traversal is the ordinary Skyway sender with hash-table visited
    /// tracking (sealing must not scribble `baddr` words the concurrent
    /// shuffle machinery owns); the stream is then translated in one
    /// linear pass — markers become filler, klass words keep their global
    /// tIDs, references become absolute segment addresses.
    ///
    /// # Errors
    /// Sender/registry errors; [`Error::BadStream`] on a malformed stream.
    pub fn seal(
        &self,
        vm: &Vm,
        dir: &TypeDirectory,
        node: NodeId,
        roots: &[Addr],
    ) -> Result<SealReport> {
        self.seal_traced(vm, dir, node, roots, obs::TraceCtx::NONE)
    }

    /// [`SegStore::seal`] attributed to trace context `ctx` (emits a
    /// `trace.segstore.seal` span when tracing is on).
    pub fn seal_traced(
        &self,
        vm: &Vm,
        dir: &TypeDirectory,
        node: NodeId,
        roots: &[Addr],
        ctx: obs::TraceCtx,
    ) -> Result<SealReport> {
        let t0 = Instant::now();
        // 1. Traverse: one giant chunk limit keeps the stream in a single
        //    contiguous buffer (the logical address space is gapless, so
        //    multiple chunks would concatenate to the same bytes anyway).
        let cfg = SendConfig {
            chunk_limit: usize::MAX / 2,
            receiver_spec: vm.spec(),
            tracking: Tracking::HashTable,
        };
        let mut gs = GraphSender::new(vm, dir, node, 1, 0, cfg)?;
        for &root in roots {
            gs.write_root(root)?;
        }
        let out = gs.finish();
        let mut bytes: Vec<u8> = Vec::with_capacity(out.stats.total_bytes as usize);
        for c in &out.chunks {
            bytes.extend_from_slice(c);
        }

        // 2. Translate into store-owned memory.
        let mut b = SegmentBuilder::new(bytes.len() as u64)?;
        translate_stream(vm, dir, node, &bytes, &mut b)?;
        let seg = b.seal()?;
        let base = seg.base();
        let len = seg.len();
        let n_roots = seg.roots().len();

        // 3. Publish.
        {
            let mut inner = self.inner.lock();
            inner.segments.insert(
                base,
                Arc::new(Entry {
                    seg,
                    refs: AtomicU32::new(0),
                    ever_attached: AtomicBool::new(false),
                }),
            );
            self.update_live_gauge(&inner);
        }
        self.metrics.seals.inc();
        self.metrics.bytes_sealed.add(len);
        let seal_ns = t0.elapsed().as_nanos() as u64;
        self.metrics.registry.tracer().record_closed(
            obs::names::TRACE_SEGSTORE_SEAL,
            ctx,
            &vm.name,
            seal_ns,
            &[("bytes", len), ("objects", out.stats.objects), ("roots", n_roots as u64)],
        );
        Ok(SealReport { base, bytes: len, stats: out.stats, roots: n_roots, seal_ns })
    }

    /// Attaches the segment at `base` to `vm`: maps the sealed memory into
    /// the heap's address space and returns the graph roots (now ordinary
    /// readable addresses in `vm`). Metadata-only — nothing is cloned, no
    /// card is dirtied, no reference is rewritten.
    ///
    /// # Errors
    /// [`Error::UnknownSegment`]; heap errors (e.g. double attach).
    pub fn attach(&self, vm: &mut Vm, base: u64) -> Result<Vec<Addr>> {
        self.attach_traced(vm, base, obs::TraceCtx::NONE)
    }

    /// [`SegStore::attach`] attributed to trace context `ctx` (emits a
    /// `trace.segstore.attach` span when tracing is on).
    pub fn attach_traced(&self, vm: &mut Vm, base: u64, ctx: obs::TraceCtx) -> Result<Vec<Addr>> {
        let t0 = Instant::now();
        let entry = {
            let inner = self.inner.lock();
            let entry = inner.segments.get(&base).ok_or(Error::UnknownSegment(base))?;
            // ORDER: Relaxed — incremented under the map lock, which both
            // proves the entry live and serializes against the zero-path
            // retire recheck in `release_ref`; the new attacher gets its
            // view of the (immutable, sealed) segment from the lock, not
            // from this RMW. Same rule as `Arc::clone`'s Relaxed increment.
            entry.refs.fetch_add(1, Ordering::Relaxed);
            Arc::clone(entry)
        };
        let seg = Arc::clone(&entry.seg);
        if let Err(e) = vm.heap_mut().attach_segment(Arc::clone(&seg)) {
            // Roll the refcount back — the heap rejected the mapping. Going
            // through the common release path means a concurrent successful
            // attach/detach pair cannot strand a zero-count entry.
            self.release_ref(&entry, base);
            return Err(Error::Heap(e));
        }
        // ORDER: Relaxed — only consulted on the zero path of
        // `release_ref`, after its Acquire fence has synchronized with
        // this attacher's Release decrement (which is program-ordered
        // after this store).
        entry.ever_attached.store(true, Ordering::Relaxed);
        self.metrics.attaches.inc();
        self.metrics.bytes_not_copied.add(seg.len());
        self.metrics.registry.tracer().record_closed(
            obs::names::TRACE_SEGSTORE_ATTACH,
            ctx,
            &vm.name,
            t0.elapsed().as_nanos() as u64,
            &[("base", base), ("bytes_not_copied", seg.len())],
        );
        Ok(seg.roots().to_vec())
    }

    /// Detaches the segment at `base` from `vm` and drops one attacher.
    /// When the last attacher drops, the segment retires into limbo at the
    /// current epoch; its memory survives until a later
    /// [`SegStore::advance_epoch`] reclaims it.
    ///
    /// # Errors
    /// [`Error::UnknownSegment`]; heap errors (not attached to `vm`).
    pub fn detach(&self, vm: &mut Vm, base: u64) -> Result<()> {
        self.detach_traced(vm, base, obs::TraceCtx::NONE)
    }

    /// [`SegStore::detach`] attributed to trace context `ctx` (emits a
    /// `trace.segstore.detach` span when tracing is on).
    pub fn detach_traced(&self, vm: &mut Vm, base: u64, ctx: obs::TraceCtx) -> Result<()> {
        let t0 = Instant::now();
        vm.heap_mut().detach_segment(base)?;
        let entry = {
            let inner = self.inner.lock();
            let entry = inner.segments.get(&base).ok_or(Error::UnknownSegment(base))?;
            Arc::clone(entry)
        };
        let retired = self.release_ref(&entry, base);
        self.metrics.detaches.inc();
        self.metrics.registry.tracer().record_closed(
            obs::names::TRACE_SEGSTORE_DETACH,
            ctx,
            &vm.name,
            t0.elapsed().as_nanos() as u64,
            &[("base", base), ("retired", u64::from(retired))],
        );
        Ok(())
    }

    /// Advances the reclamation epoch and frees every segment that retired
    /// in an earlier epoch (its last attacher detached before this call
    /// began — no attacher can still hold addresses into it). Returns the
    /// number of segments reclaimed.
    pub fn advance_epoch(&self) -> usize {
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        let epoch = inner.epoch;
        let before = inner.limbo.len();
        // Dropping the Arc here is the reclamation: the store holds the
        // last strong reference once every attacher has detached.
        inner.limbo.retain(|(retired, _)| *retired >= epoch);
        let freed = before - inner.limbo.len();
        self.metrics.reclaimed.add(freed as u64);
        self.update_live_gauge(&inner);
        freed
    }

    /// Drops one attacher reference, retiring the segment into limbo when
    /// the last one goes. Lock-free unless this is the decrement that hits
    /// zero; returns whether the segment retired.
    fn release_ref(&self, entry: &Arc<Entry>, base: u64) -> bool {
        // ORDER: Release — pairs with the Acquire fence on the zero path
        // below: every read this attacher made of the segment's memory
        // happens-before the retire (and the eventual free in
        // `advance_epoch`). A Relaxed decrement would let the free race
        // another attacher's in-flight reads.
        if entry.refs.fetch_sub(1, Ordering::Release) != 1 {
            return false;
        }
        // ORDER: Acquire — synchronizes with every other attacher's
        // Release decrement above, so their segment accesses are visible
        // (and over) before we tear the entry out of the attachable set.
        fence(Ordering::Acquire);
        // ORDER: Relaxed — any attacher that set this flag also ran a
        // Release decrement that the fence above synchronized with, so the
        // store is already ordered before this load.
        if !entry.ever_attached.load(Ordering::Relaxed) {
            return false;
        }
        let mut inner = self.inner.lock();
        // Recheck under the map lock: attaches increment under it, so a
        // resurrecting attacher either beat us here (we observe its
        // reference and keep the entry) or finds the entry gone and gets
        // `UnknownSegment` — never a handle to retired memory.
        //
        // ORDER: Acquire — a resurrecting attacher may have incremented,
        // read the segment, and run its own Release decrement entirely
        // *after* our fence above; reading its zero through this load is
        // what orders those reads before the retire (the interleave model
        // `refcount_retire_orders_reads_before_free` catches Relaxed
        // here).
        let still_zero = match inner.segments.get(&base) {
            Some(e) => Arc::ptr_eq(e, entry) && e.refs.load(Ordering::Acquire) == 0,
            None => false,
        };
        if !still_zero {
            return false;
        }
        if let Some(e) = inner.segments.remove(&base) {
            // Refcount reached zero: out of the attachable set, into limbo
            // until the epoch advances past the retirement.
            let epoch = inner.epoch;
            inner.limbo.push((epoch, Arc::clone(&e.seg)));
        }
        self.update_live_gauge(&inner);
        true
    }

    /// Current attach refcount of a live segment (`None` once retired or
    /// never sealed).
    pub fn refcount(&self, base: u64) -> Option<u32> {
        // ORDER: Relaxed — an observability snapshot; the value is stale
        // the moment the lock drops anyway.
        self.inner.lock().segments.get(&base).map(|e| e.refs.load(Ordering::Relaxed))
    }

    /// Segments currently owned by the store (attachable + limbo).
    pub fn live_segments(&self) -> usize {
        let inner = self.inner.lock();
        inner.segments.len() + inner.limbo.len()
    }

    /// The sealed segment at `base`, if still attachable.
    pub fn segment(&self, base: u64) -> Option<Arc<Segment>> {
        self.inner.lock().segments.get(&base).map(|e| Arc::clone(&e.seg))
    }

    /// Bases of every attachable (non-retired) segment.
    pub fn bases(&self) -> Vec<u64> {
        self.inner.lock().segments.keys().copied().collect()
    }

    /// Counts one shared-mode transfer on the engine's mode-policy metric
    /// (`skyway.pipeline.mode_shared`). [`shared_transfer`] calls this
    /// itself; callers that split seal and attach across a stage boundary
    /// (e.g. a map-side seal with a reduce-side attach) call it once per
    /// logical transfer so the mode census stays comparable to the
    /// pipeline engine's inline/pipelined/parallel counters.
    pub fn note_shared_mode(&self) {
        self.metrics.mode_shared.inc();
    }

    fn update_live_gauge(&self, inner: &Inner) {
        self.metrics.segments_live.set((inner.segments.len() + inner.limbo.len()) as i64);
    }
}

/// Rewrites the reference slot at stream offset `off` from the wire's
/// relative-plus-one encoding (0 = null) to an absolute segment address.
fn absolutize_ref(bytes: &[u8], b: &mut SegmentBuilder, base: u64, off: u64) -> Result<()> {
    let v = word_at(bytes, off)?;
    if v != 0 {
        b.store_word(off, base + (v - 1))?;
    }
    Ok(())
}

/// Reads the little-endian word at byte offset `at` of the sealed stream.
fn word_at(bytes: &[u8], at: u64) -> Result<u64> {
    let i = at as usize;
    let s =
        bytes.get(i..i + 8).ok_or_else(|| Error::BadStream(format!("truncated at offset {at}")))?;
    let mut a = [0u8; 8];
    a.copy_from_slice(s);
    Ok(u64::from_le_bytes(a))
}

/// One linear pass over a sealed sender stream, writing the segment image:
///
/// * the raw bytes land at the same offsets (logical address == segment-
///   relative offset — the sender's logical space is gapless),
/// * `TOP_MARK` / `TOP_REF` markers become filler words the heap walkers
///   skip, with the root addresses recorded on the builder,
/// * klass words keep their Skyway global tIDs (recorded in the builder's
///   tid→name map so any attacher can resolve them locally), and
/// * reference slots go from relative-plus-one to absolute global
///   addresses (`base + rel`), valid unchanged in every attacher.
fn translate_stream(
    vm: &Vm,
    dir: &TypeDirectory,
    node: NodeId,
    bytes: &[u8],
    b: &mut SegmentBuilder,
) -> Result<()> {
    if bytes.is_empty() {
        return Ok(());
    }
    b.write_bytes(0, bytes)?;
    let base = b.base();
    let spec = vm.spec();
    let len = bytes.len() as u64;
    let mut at = 0u64;
    // tid → klass, resolved (and recorded on the builder) once per class
    // instead of once per object — name lookups dominate otherwise.
    let mut klass_cache: HashMap<u32, Arc<mheap::Klass>> = HashMap::new();
    while at < len {
        let w = word_at(bytes, at)?;
        if w == TOP_MARK {
            b.store_word(at, FILLER_WORD)?;
            b.push_root(Addr(base + at + 8));
            at += 8;
            continue;
        }
        if w == TOP_REF {
            let rel = word_at(bytes, at + 8)?
                .checked_sub(1)
                .ok_or_else(|| Error::BadStream(format!("null backward ref at {at}")))?;
            b.store_word(at, FILLER_WORD)?;
            b.store_word(at + 8, FILLER_WORD)?;
            b.push_root(Addr(base + rel));
            at += 16;
            continue;
        }
        // An object: `w` is its (sanitized) mark word; the next word is
        // the global tID the sender wrote in place of a local klass id.
        let tid = word_at(bytes, at + spec.klass_off())? as u32;
        let klass = match klass_cache.get(&tid) {
            Some(k) => Arc::clone(k),
            None => {
                let name = dir.name_for_tid(node, tid)?;
                let k = match vm.klasses().by_name(&name) {
                    Some(k) => k,
                    None => {
                        let id = vm.klasses().load(&name, vm.classpath(), spec)?;
                        vm.klasses().get(id)?
                    }
                };
                b.record_tid(tid, &name);
                klass_cache.insert(tid, Arc::clone(&k));
                k
            }
        };
        let size = match klass.kind {
            KlassKind::Instance => {
                for f in &klass.fields {
                    if matches!(f.ty, mheap::FieldType::Ref) {
                        absolutize_ref(bytes, b, base, at + f.offset)?;
                    }
                }
                klass.instance_size
            }
            KlassKind::PrimArray(_) | KlassKind::RefArray => {
                let alen = match spec.array_len_size {
                    8 => word_at(bytes, at + spec.array_len_off())?,
                    4 => {
                        let w =
                            word_at(bytes, at + spec.array_len_off() - (spec.array_len_off() % 8))?;
                        // 4-byte length shares a word; isolate it.
                        let shift = (spec.array_len_off() % 8) * 8;
                        (w >> shift) & 0xffff_ffff
                    }
                    n => return Err(Error::BadStream(format!("array_len_size {n}"))),
                };
                let es = u64::from(klass.elem_size()?);
                if matches!(klass.kind, KlassKind::RefArray) {
                    for i in 0..alen {
                        absolutize_ref(bytes, b, base, at + spec.array_header() + i * 8)?;
                    }
                }
                mheap::layout::align8(spec.array_header() + alen * es)
            }
        };
        if size == 0 {
            return Err(Error::BadStream(format!("zero-sized object at {at}")));
        }
        at += size;
    }
    Ok(())
}

/// Same-node zero-copy transfer: seals `roots` from `sender_vm` into the
/// store and attaches the segment to `receiver_vm`, returning the received
/// roots and a [`PipelineReport`] with [`TransferMode::Shared`] — the
/// fourth mode next to the engine's inline/pipelined/parallel policy.
/// `receive`-side statistics show zero chunks, fixups, and dirtied cards:
/// that absence *is* the mode's win, and `bytes_not_copied` (the segment
/// length) lands on the `skyway.segstore.bytes_not_copied` counter.
///
/// # Errors
/// Seal or attach errors.
pub fn shared_transfer(
    store: &SegStore,
    sender_vm: &Vm,
    receiver_vm: &mut Vm,
    dir: &TypeDirectory,
    node: NodeId,
    roots: &[Addr],
) -> Result<(Vec<Addr>, PipelineReport)> {
    shared_transfer_with_trace(store, sender_vm, receiver_vm, dir, node, roots, obs::TraceCtx::NONE)
}

/// [`shared_transfer`] attributed to a parent trace context.
///
/// # Errors
/// Seal or attach errors.
pub fn shared_transfer_with_trace(
    store: &SegStore,
    sender_vm: &Vm,
    receiver_vm: &mut Vm,
    dir: &TypeDirectory,
    node: NodeId,
    roots: &[Addr],
    parent: obs::TraceCtx,
) -> Result<(Vec<Addr>, PipelineReport)> {
    let t0 = Instant::now();
    let seal = store.seal_traced(sender_vm, dir, node, roots, parent)?;
    let roots_out = store.attach_traced(receiver_vm, seal.base, parent)?;
    store.note_shared_mode();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let recv_stats = ReceiveStats {
        objects: seal.stats.objects,
        bytes: seal.bytes,
        chunks: 0,
        classes_loaded: 0,
        ref_fixups: 0,
        cards_dirtied: 0,
    };
    let report = PipelineReport {
        send_stats: seal.stats,
        recv_stats,
        chunk_bytes: Vec::new(),
        pipelined_ns: wall_ns,
        sequential_ns: wall_ns,
        produce_ns: seal.seal_ns,
        wire_ns: 0,
        absorb_ns: 0,
        sender_stall_ns: 0,
        receiver_stall_ns: 0,
        pool_hits: 0,
        pool_misses: 0,
        max_in_flight: 0,
        mode: TransferMode::Shared,
        workers: 1,
        steals: 0,
        link_utilization_pct: 0.0,
    };
    Ok((roots_out, report))
}
