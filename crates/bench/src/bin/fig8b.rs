//! **E7/E8/E9 — Figure 8(b) + Tables 3 & 4**: Flink queries QA–QE under
//! Flink's built-in serializers vs Skyway.
//!
//! Expected shape: Skyway improves overall time (paper: ~19 % mean), with
//! a smaller deserialization win than on Spark because Flink deserializes
//! lazily (paper: Flink Des is only ~8.7 % of run time vs Ser ~23.5 %).

use flinklite::engine::{boot, FlinkConfig, FlinkSerializer};
use flinklite::queries::{run_query, QueryId};
use flinklite::tpchgen::generate;
use simnet::BreakdownRow;
use skyway_bench::{
    normalize, print_breakdown, print_summary_header, print_summary_row, Normalized,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale_units: usize = args
        .iter()
        .position(|a| a == "--scale-units")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let db = generate(scale_units, 42);
    println!(
        "Figure 8(b): TPC-H-derived queries, {} total rows (scale-units {scale_units})",
        db.total_rows()
    );

    println!("\nTable 3: query descriptions");
    for q in QueryId::ALL {
        println!("  {}  {}", q.label(), q.description());
    }

    let mut norms: Vec<Normalized> = Vec::new();
    let mut all_rows: Vec<(String, Vec<BreakdownRow>)> = Vec::new();
    for q in QueryId::ALL {
        let mut rows = Vec::new();
        let mut profiles = Vec::new();
        for ser in FlinkSerializer::ALL {
            // Median of three runs sheds scheduler noise on these
            // tens-of-milliseconds queries.
            let mut runs = Vec::new();
            for _ in 0..3 {
                let mut sc = boot(
                    &FlinkConfig {
                        serializer: ser,
                        heap_bytes: 256 << 20,
                        ..FlinkConfig::default()
                    },
                    q.schema(),
                )
                .expect("boot");
                run_query(&mut sc, &db, q).expect("query");
                runs.push(sc.aggregate_profile());
            }
            runs.sort_by_key(simnet::Profile::total_ns);
            let p = runs[1];
            rows.push(BreakdownRow::from_profile(ser.label(), &p));
            profiles.push(p);
        }
        print_breakdown(q.label(), &rows);
        all_rows.push((q.label().to_owned(), rows));
        norms.push(normalize(&profiles[1], &profiles[0]));
    }
    skyway_bench::write_json("fig8b", &all_rows);

    print_summary_header("Table 4: Skyway normalized to Flink's built-in serializer");
    print_summary_row("Skyway", &norms);
    let overall = skyway_bench::geomean(&norms.iter().map(|n| n.overall).collect::<Vec<_>>());
    println!("\nmean improvement over built-in: {:.0}% (paper 19%)", (1.0 - overall) * 100.0);
    skyway_bench::dump_metrics();
}
