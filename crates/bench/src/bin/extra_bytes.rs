//! **E11 — §1/§5.1/§5.2 extra-bytes analysis**: how many more bytes Skyway
//! sends than the S/D libraries, and what those extra bytes are made of.
//!
//! The paper reports: ~50 % more bytes than existing serializers on JSBS,
//! ~77 % more than Kryo on Spark (about the same as the Java serializer),
//! with the extra bytes composed of headers 51 %, padding 34 %, pointers
//! 15 % — and argues the trade-off is right because the extra network time
//! is tiny next to the saved CPU time.

use std::sync::Arc;

use mheap::{ClassPath, HeapConfig, LayoutSpec, Vm};
use serlab::jsbs::{build_dataset, define_jsbs_classes, jsbs_class_names};
use serlab::{serialize_profiled, JavaSerializer, KryoRegistry, KryoSerializer};
use simnet::{NodeId, Profile, SimConfig};
use skyway::{ShuffleController, SkywaySerializer, TypeDirectory};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_objects: usize = args
        .iter()
        .position(|a| a == "--objects")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000);

    let cp = ClassPath::new();
    define_jsbs_classes(&cp);
    let mut vm =
        Vm::new("sender", &HeapConfig::default().with_capacity(512 << 20), Arc::clone(&cp))
            .expect("vm");
    let dir = Arc::new(TypeDirectory::new(1, NodeId(0)));
    dir.bootstrap_driver(&vm).expect("bootstrap");
    let handles = build_dataset(&mut vm, n_objects).expect("dataset");
    let roots: Vec<_> = handles.iter().map(|h| vm.resolve(*h).unwrap()).collect();

    let kreg = {
        let r = KryoRegistry::new();
        r.register_all(jsbs_class_names()).expect("registry");
        Arc::new(r)
    };
    let kryo = KryoSerializer::manual(kreg);
    let java = JavaSerializer::new();
    let sky = SkywaySerializer::new(
        Arc::clone(&dir),
        NodeId(0),
        Arc::new(ShuffleController::new()),
        LayoutSpec::SKYWAY,
    );

    let mut p = Profile::new();
    let kryo_bytes = serialize_profiled(&kryo, &mut vm, &roots, &mut p).expect("kryo").len();
    let java_bytes = serialize_profiled(&java, &mut vm, &roots, &mut p).expect("java").len();
    let sky_bytes = serialize_profiled(&sky, &mut vm, &roots, &mut p).expect("sky").len();
    let stats = sky.last_send_stats();

    println!("Extra-bytes analysis over {n_objects} JSBS records");
    println!("\n{:<10} {:>14} {:>14}", "serializer", "bytes", "vs kryo");
    for (name, b) in [("kryo", kryo_bytes), ("java", java_bytes), ("skyway", sky_bytes)] {
        println!("{:<10} {:>14} {:>13.0}%", name, b, (b as f64 / kryo_bytes as f64 - 1.0) * 100.0);
    }

    let extra = sky_bytes.saturating_sub(kryo_bytes) as f64;
    println!("\ncomposition of Skyway's stream (paper's extra-byte culprits):");
    for (name, v) in [
        ("object headers", stats.header_bytes),
        ("padding", stats.padding_bytes),
        ("pointers", stats.pointer_bytes),
        ("primitive data", stats.data_bytes),
        ("top marks", stats.marker_bytes),
    ] {
        println!(
            "  {:<16} {:>12} B  ({:>4.1}% of stream)",
            name,
            v,
            100.0 * v as f64 / stats.total_bytes as f64
        );
    }
    let overhead = stats.header_bytes + stats.padding_bytes + stats.marker_bytes;
    println!(
        "\nheaders+padding vs pointers within overhead: {:.0}% / {:.0}% (paper: 51%+34% vs 15%)",
        100.0 * (stats.header_bytes + stats.padding_bytes) as f64
            / (overhead + stats.pointer_bytes) as f64,
        100.0 * stats.pointer_bytes as f64 / (overhead + stats.pointer_bytes) as f64
    );

    // The §1 trade-off: extra network time vs saved CPU time at 1000 Mb/s.
    let sim = SimConfig::default();
    let extra_net_ms = extra * 1e3 / sim.net_bandwidth_bps as f64;
    println!(
        "\nextra bytes over kryo: {:.0} B → {:.2} ms extra network time at 1000 Mb/s",
        extra, extra_net_ms
    );
    println!("(compare against the S/D CPU time eliminated — see fig7 output)");
    skyway_bench::dump_metrics();
}
