//! **E1/E2 — Figure 3**: Spark S/D cost breakdown (motivation, §2.2).
//!
//! Runs TriangleCounting over the synthetic-LiveJournal graph on 3 workers
//! under the Kryo and Java serializers, printing (a) the five-component
//! time breakdown and (b) the local/remote bytes shuffled.
//!
//! Expected shape: S/D takes ≳30 % of total time under both serializers,
//! and Java's remote bytes far exceed Kryo's (type strings).

use simnet::{BreakdownRow, Category};
use skyway_bench::{print_breakdown, print_bytes, run_cell_with_gc, RunOpts, Workload};
use sparklite::engine::SerializerKind;
use sparklite::graphgen::GraphKind;

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Figure 3: TriangleCounting over synthetic LiveJournal (scale 1/{})",
        opts.scale_divisor
    );

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for kind in [SerializerKind::Kryo, SerializerKind::Java] {
        let (p, gc_ns) = run_cell_with_gc(kind, Workload::Tc, GraphKind::LiveJournal, &opts);
        rows.push(BreakdownRow::from_profile(kind.label(), &p));
        profiles.push((kind, p, gc_ns));
    }

    print_breakdown("Fig 3(a): performance breakdown", &rows);
    print_bytes("Fig 3(b): bytes shuffled", &rows);
    skyway_bench::write_json("fig3", &rows);

    println!("\nS/D share of total execution time (paper: >30% for both):");
    for (kind, p, _) in &profiles {
        println!(
            "  {:<6} ser {:>5.1}%  deser {:>5.1}%  (S/D total {:>5.1}%)",
            kind.label(),
            100.0 * p.ns(Category::Ser) as f64 / p.total_ns() as f64,
            100.0 * p.ns(Category::Deser) as f64 / p.total_ns() as f64,
            100.0 * p.sd_fraction()
        );
    }
    println!("\nGC share (paper: <2%, not shown in the figure):");
    for (kind, p, gc_ns) in &profiles {
        println!(
            "  {:<6} {:>5.2}% of total",
            kind.label(),
            100.0 * *gc_ns as f64 / p.total_ns() as f64
        );
    }
    println!("\nS/D function invocations:");
    for (kind, p, _) in &profiles {
        println!(
            "  {:<6} ser calls {:>10}  deser calls {:>10}",
            kind.label(),
            p.ser_invocations,
            p.deser_invocations
        );
    }
    skyway_bench::dump_metrics();
}
