//! **E4 — Figure 7**: the JSBS serializer ranking (§5.1).
//!
//! Each entrant serializes a media-content dataset, broadcasts the bytes to
//! the four other nodes of a five-node cluster (network time modeled from
//! real byte counts at 1000 Mb/s), and deserializes on each receiver.
//! Entrants are printed fastest-first as in the paper's figure.
//!
//! Expected shape: skyway first, the schema-compiled family (colfer)
//! closest behind, kryo-manual ≈2× slower than skyway, java last by a wide
//! margin.

use std::sync::Arc;

use mheap::{ClassPath, HeapConfig, Vm};
use serlab::jsbs::{build_dataset, define_jsbs_classes, jsbs_class_names};
use serlab::schema::standard_entrants;
use serlab::{
    deserialize_profiled, serialize_profiled, JavaSerializer, KryoRegistry, KryoSerializer,
    SchemaRegistry, Serializer,
};
use simnet::{Category, NodeId, Profile, SimConfig};
use skyway::{ShuffleController, SkywaySerializer, TypeDirectory};

#[derive(serde::Serialize)]
struct Entry {
    name: String,
    ser_ms: f64,
    deser_ms: f64,
    net_ms: f64,
    bytes: usize,
}

fn main() {
    skyway_bench::init_tracing();
    let args: Vec<String> = std::env::args().collect();
    let n_objects: usize = args
        .iter()
        .position(|a| a == "--objects")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let receivers = 4usize; // five-node cluster, broadcast to the other four
    let sim = SimConfig::default();

    let cp = ClassPath::new();
    define_jsbs_classes(&cp);
    let heap = HeapConfig::default().with_capacity(256 << 20);

    println!("Figure 7: JSBS — {n_objects} media-content records, 5-node broadcast");

    // Assemble the entrants.
    let kreg = {
        let r = KryoRegistry::new();
        r.register_all(jsbs_class_names()).expect("registry");
        Arc::new(r)
    };
    let sreg = SchemaRegistry::new(jsbs_class_names());
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));

    let mut entrants: Vec<Box<dyn Serializer>> = Vec::new();
    entrants.push(Box::new(SkywaySerializer::new(
        Arc::clone(&dir),
        NodeId(0),
        Arc::new(ShuffleController::new()),
        mheap::LayoutSpec::SKYWAY,
    )));
    for s in standard_entrants(&sreg) {
        entrants.push(Box::new(s));
    }
    entrants.push(Box::new(KryoSerializer::manual(Arc::clone(&kreg))));
    entrants.push(Box::new(KryoSerializer::opt(Arc::clone(&kreg))));
    entrants.push(Box::new(KryoSerializer::flat(Arc::clone(&kreg))));
    entrants.push(Box::new(JavaSerializer::new()));

    let mut results = Vec::new();
    for s in &entrants {
        // Fresh VMs per entrant keep heap states comparable; best-of-3
        // measurements shed scheduler noise.
        let mut sender = Vm::new("sender", &heap, Arc::clone(&cp)).expect("vm");
        dir.bootstrap_driver(&sender).expect("bootstrap");
        let handles = build_dataset(&mut sender, n_objects).expect("dataset");
        let roots: Vec<_> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();

        let mut ser_ns = u64::MAX;
        let mut bytes = Vec::new();
        for _ in 0..3 {
            let mut p = Profile::new();
            bytes = serialize_profiled(s.as_ref(), &mut sender, &roots, &mut p)
                .unwrap_or_else(|e| panic!("{} serialize: {e}", s.name()));
            ser_ns = ser_ns.min(p.ns(Category::Ser));
        }
        let mut deser_ns = 0u64;
        for r in 0..receivers {
            let mut best = u64::MAX;
            for _ in 0..3 {
                let mut receiver =
                    Vm::new(format!("recv-{r}"), &heap, Arc::clone(&cp)).expect("vm");
                dir.worker_startup(NodeId(1)).expect("startup");
                let mut pr = Profile::new();
                let rebuilt = deserialize_profiled(s.as_ref(), &mut receiver, &bytes, &mut pr)
                    .unwrap_or_else(|e| panic!("{} deserialize: {e}", s.name()));
                assert_eq!(rebuilt.len(), n_objects, "{} lost records", s.name());
                best = best.min(pr.ns(Category::Deser));
            }
            deser_ns += best;
        }
        let net_ns = receivers as u64
            * (sim.net_latency_ns + bytes.len() as u64 * 1_000_000_000 / sim.net_bandwidth_bps);
        results.push(Entry {
            name: s.name().to_owned(),
            ser_ms: ser_ns as f64 / 1e6,
            deser_ms: deser_ns as f64 / 1e6,
            net_ms: net_ns as f64 / 1e6,
            bytes: bytes.len(),
        });
    }

    results.sort_by(|a, b| {
        (a.ser_ms + a.deser_ms + a.net_ms)
            .partial_cmp(&(b.ser_ms + b.deser_ms + b.net_ms))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    println!(
        "\n{:<26} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "serializer", "ser ms", "deser ms", "net ms", "total ms", "bytes"
    );
    for e in &results {
        println!(
            "{:<26} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>12}",
            e.name,
            e.ser_ms,
            e.deser_ms,
            e.net_ms,
            e.ser_ms + e.deser_ms + e.net_ms,
            e.bytes
        );
    }

    skyway_bench::write_json("fig7", &results);

    let total = |n: &str| {
        results
            .iter()
            .find(|e| e.name == n)
            .map(|e| e.ser_ms + e.deser_ms + e.net_ms)
            .unwrap_or(f64::NAN)
    };
    let cpu = |n: &str| {
        results.iter().find(|e| e.name == n).map(|e| e.ser_ms + e.deser_ms).unwrap_or(f64::NAN)
    };
    // The table above is raw measured CPU; the headline also reports the
    // calibrated totals (the same JVM-vs-Rust S/D factor the engine
    // experiments use, see SimConfig::sd_cpu_scale).
    let scale = sim.sd_cpu_scale;
    let calibrated = |n: &str| cpu(n) * scale + (total(n) - cpu(n));
    println!(
        "\nspeedups over skyway (paper: kryo-manual 2.2x, java 67.3x):\n  raw totals:        kryo-manual {:.1}x   java {:.1}x   colfer {:.2}x\n  CPU only:          kryo-manual {:.1}x   java {:.1}x   colfer {:.2}x\n  calibrated totals: kryo-manual {:.1}x   java {:.1}x   colfer {:.2}x   (S/D cpu x{scale})",
        total("kryo-manual") / total("skyway"),
        total("java") / total("skyway"),
        total("colfer") / total("skyway"),
        cpu("kryo-manual") / cpu("skyway"),
        cpu("java") / cpu("skyway"),
        cpu("colfer") / cpu("skyway"),
        calibrated("kryo-manual") / calibrated("skyway"),
        calibrated("java") / calibrated("skyway"),
        calibrated("colfer") / calibrated("skyway"),
    );
    skyway_bench::dump_metrics();
    skyway_bench::dump_trace();
}
