//! **Parallel transfer engine** — worker-count × chunk-size sweep of the
//! work-stealing parallel mode (§4.2 "Support for Threads" end to end:
//! N traversal workers, N concurrent absorbers over the shared receiving
//! heap) against the single-stream pipelined and sequential baselines.
//!
//! Every point moves the identical object graph and must absorb the same
//! objects/bytes/ref-fixups as a sequential reference transfer (the fig7
//! JSBS records share nothing across roots, so parallel-mode duplication
//! cannot inflate the counts). What varies is the schedule: the sweep
//! reports the simulated wall-clock, its produce/wire/absorb components,
//! CAS conflicts and steals from the work-stealing traversal, and the
//! modeled link utilization. `improvement` normalizes each point against
//! the workers=1 pipelined baseline at the default chunk size — the PR-2
//! engine — so ≥1.5 at 4 workers is the headline. The fig8-edges payload
//! at reduced scale is flat and single-chunk: the adaptive policy must
//! pick `inline` there no matter how many workers are configured.
//!
//! Flags: `--objects N` (JSBS records, default 2000), `--scale N`
//! (fig8 graph divisor, default 100000), `--seed N`,
//! `--metrics-out <path>`, `--trace-out <path>` (per-worker lane spans
//! from one traced 4-worker transfer).

use std::sync::Arc;

use mheap::{Addr, ClassPath, HeapConfig, Vm};
use serlab::jsbs::{build_dataset, define_jsbs_classes};
use simnet::{NodeId, SimConfig};
use skyway::{
    pipeline::DEFAULT_PIPELINE_CHUNK, ParallelConfig, PipelineConfig, PipelineEngine, ReceiveStats,
    SendConfig, TypeDirectory,
};
use sparklite::classes::{define_spark_classes, new_edge};
use sparklite::graphgen::{generate, GraphKind};

#[derive(serde::Serialize)]
struct Row {
    workload: String,
    workers: usize,
    chunk_limit: usize,
    /// Strategy the adaptive policy actually took ("inline" /
    /// "pipelined" / "parallel").
    mode: &'static str,
    wall_ns: u64,
    sequential_ns: u64,
    produce_ns: u64,
    net_ns: u64,
    absorb_ns: u64,
    cas_conflicts: u64,
    steals: u64,
    link_utilization_pct: f64,
    /// Receive statistics equal the sequential reference
    /// (objects / bytes / ref_fixups).
    stats_match: bool,
    /// Speedup vs the workers=1 pipelined baseline at the default chunk
    /// size (>1 is faster; the acceptance bar is ≥1.5 at 4 workers on
    /// fig7-jsbs).
    improvement: f64,
}

/// One workload: a sender VM with prebuilt roots plus the sequential
/// reference statistics every sweep point is checked against.
struct Payload {
    sender: Vm,
    dir: TypeDirectory,
    roots: Vec<Addr>,
    reference: ReceiveStats,
    cp: Arc<ClassPath>,
    heap: HeapConfig,
}

impl Payload {
    fn new(cp: Arc<ClassPath>, heap: HeapConfig, build: &dyn Fn(&mut Vm) -> Vec<Addr>) -> Payload {
        let mut sender = Vm::new("par-s", &heap, Arc::clone(&cp)).expect("sender vm");
        let dir = TypeDirectory::new(2, NodeId(0));
        dir.bootstrap_driver(&sender).expect("bootstrap");
        dir.worker_startup(NodeId(1)).expect("worker");
        let roots = build(&mut sender);
        let mut rvm = Vm::new("par-ref", &heap, Arc::clone(&cp)).expect("reference vm");
        let cfg = SendConfig::for_vm(&sender);
        let (_, _, reference) = skyway::sequential_transfer(
            &sender,
            &mut rvm,
            &dir,
            NodeId(0),
            NodeId(1),
            1,
            1,
            &roots,
            None,
            cfg,
        )
        .expect("sequential reference");
        Payload { sender, dir, roots, reference, cp, heap }
    }

    /// Runs one sweep point on a fresh receiver VM and engine.
    #[allow(clippy::too_many_arguments)]
    fn point(
        &self,
        name: &str,
        workers: usize,
        chunk_limit: usize,
        sid: u8,
        sim: &SimConfig,
        trace: bool,
    ) -> Row {
        let engine = PipelineEngine::new(PipelineConfig {
            chunk_limit,
            sim: *sim,
            parallel: (workers >= 2).then(|| ParallelConfig::with_workers(workers)),
            ..PipelineConfig::default()
        });
        let mut rvm =
            Vm::new(format!("par-r{sid}"), &self.heap, Arc::clone(&self.cp)).expect("receiver vm");
        let ctx = if trace { obs::global().tracer().new_trace() } else { obs::TraceCtx::NONE };
        // Worker t sends on stream `base + t`: space the bases out so no
        // two points share a stream id.
        let stream_base = sid as u16 * 64;
        let (_, report) = engine
            .transfer_with_trace(
                &self.sender,
                &mut rvm,
                &self.dir,
                NodeId(0),
                NodeId(1),
                sid,
                stream_base,
                &self.roots,
                None,
                ctx,
            )
            .expect("parallel transfer");
        let stats_match = report.recv_stats.objects == self.reference.objects
            && report.recv_stats.bytes == self.reference.bytes
            && report.recv_stats.ref_fixups == self.reference.ref_fixups;
        Row {
            workload: name.to_owned(),
            workers,
            chunk_limit,
            mode: report.mode.as_str(),
            wall_ns: report.pipelined_ns,
            sequential_ns: report.sequential_ns,
            produce_ns: report.produce_ns,
            net_ns: report.wire_ns,
            absorb_ns: report.absorb_ns,
            cas_conflicts: report.send_stats.cas_conflicts,
            steals: report.steals,
            link_utilization_pct: report.link_utilization_pct,
            stats_match,
            improvement: 0.0, // filled in once the baseline row exists
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n_objects = arg("--objects", 2_000) as usize;
    let scale = arg("--scale", 100_000);
    let seed = arg("--seed", 42);
    // The parallel engine attacks traversal/absorption CPU, so the
    // headline sweep models a 10 Gb/s link where that CPU dominates the
    // schedule. The paper's 1 Gb/s testbed link is kept as a sensitivity
    // series: there the ~3 MB fig7 payload is wire-bound (utilization
    // ≈98%) and no amount of traversal parallelism can beat the link —
    // the rows make that legible instead of hiding it.
    let sim_1g = SimConfig::default();
    let sim_10g = SimConfig { net_bandwidth_bps: 1_250_000_000, ..sim_1g };
    let tracing = skyway_bench::init_tracing();

    println!("Parallel transfer engine: work-stealing workers × chunk size");
    if tracing {
        println!("(tracing enabled)");
    }

    let heap = HeapConfig::default().with_capacity(256 << 20);
    let workers_sweep = [1usize, 2, 4, 8];
    let chunks_sweep = [16usize << 10, DEFAULT_PIPELINE_CHUNK, 256 << 10];

    // fig7 payload: JSBS media-content records — pointer-heavy graphs with
    // no sharing between roots, the paper's serialization workload.
    let jsbs_cp = ClassPath::new();
    define_jsbs_classes(&jsbs_cp);
    let fig7 = Payload::new(jsbs_cp, heap, &|vm: &mut Vm| {
        let handles = build_dataset(vm, n_objects).expect("dataset");
        handles.iter().map(|h| vm.resolve(*h).expect("resolve")).collect()
    });

    let mut rows: Vec<Row> = Vec::new();
    // sid 1 belongs to each payload's sequential reference transfer; its
    // `baddr` claims are still in the sender heap, so reusing the sid
    // would count every object as a (phantom) CAS conflict.
    let mut sid = 2u8;
    for &chunk in &chunks_sweep {
        for &workers in &workers_sweep {
            rows.push(fig7.point("fig7-jsbs", workers, chunk, sid, &sim_10g, false));
            sid += 1;
        }
    }
    for &workers in &workers_sweep {
        rows.push(fig7.point("fig7-jsbs-1g", workers, DEFAULT_PIPELINE_CHUNK, sid, &sim_1g, false));
        sid += 1;
    }

    // fig8-style payload at reduced scale: flat edge records that fit one
    // chunk, so the policy must run inline regardless of the worker knob.
    let spark_cp = ClassPath::new();
    define_spark_classes(&spark_cp);
    let graph = generate(GraphKind::LiveJournal, scale, seed);
    let fig8 = Payload::new(spark_cp, heap, &|vm: &mut Vm| {
        let mut handles = Vec::with_capacity(graph.edges.len());
        for &(s, d) in &graph.edges {
            let e = new_edge(vm, s as i64, d as i64).expect("edge");
            handles.push(vm.handle(e));
        }
        handles.iter().map(|h| vm.resolve(*h).expect("resolve")).collect()
    });
    for &workers in &workers_sweep {
        rows.push(fig8.point("fig8-edges", workers, DEFAULT_PIPELINE_CHUNK, sid, &sim_1g, false));
        sid += 1;
    }

    // One traced 4-worker transfer so `--trace-out` captures the
    // per-worker lane spans (sender chunks, link occupancy, absorbs).
    if tracing {
        let _ = fig7.point("fig7-jsbs-traced", 4, DEFAULT_PIPELINE_CHUNK, sid, &sim_10g, true);
    }

    // Normalize every row against the PR-2 configuration: workers=1
    // (pipelined) at the default chunk size, same workload and link.
    let workloads = ["fig7-jsbs", "fig7-jsbs-1g", "fig8-edges"];
    for w in workloads {
        let base = rows
            .iter()
            .find(|r| r.workload == w && r.workers == 1 && r.chunk_limit == DEFAULT_PIPELINE_CHUNK)
            .map(|r| r.wall_ns)
            .unwrap_or(0);
        for r in rows.iter_mut().filter(|r| r.workload == w) {
            r.improvement = if r.wall_ns > 0 { base as f64 / r.wall_ns as f64 } else { 0.0 };
        }
    }

    println!(
        "\n{:<12} {:>7} {:>9} {:>10} {:>10} {:>6} {:>7} {:>6} {:>6} {:>6}",
        "workload", "workers", "chunk", "mode", "wall ms", "util%", "steals", "cas", "match", "x"
    );
    for r in &rows {
        println!(
            "{:<12} {:>7} {:>9} {:>10} {:>10.2} {:>6.1} {:>7} {:>6} {:>6} {:>6.2}",
            r.workload,
            r.workers,
            r.chunk_limit,
            r.mode,
            r.wall_ns as f64 / 1e6,
            r.link_utilization_pct,
            r.steals,
            r.cas_conflicts,
            r.stats_match,
            r.improvement,
        );
    }

    skyway_bench::write_json("BENCH_parallel", &rows);
    skyway_bench::dump_metrics();
    skyway_bench::dump_trace();
}
