//! **Segment store** — zero-copy same-node transfer against the parallel
//! pipelined engine on identical payloads.
//!
//! The shared path *seals* the object graph into a node-local immutable
//! segment once and *attaches* it metadata-only; the pipelined path clones
//! the same graph byte-by-byte through chunked streams with receive-side
//! absolutization. Both rows of a workload must absorb the same objects
//! and bytes (`parity`), the shared row's `bytes_not_copied` must equal
//! the graph's wire size (the clone that never happened), and the shared
//! wall-clock must beat the pipelined one (`speedup > 1`). Extra attaches
//! of the already-sealed segment are timed separately — that marginal cost
//! is the broadcast story (N views, one copy).
//!
//! Flags: `--objects N` (JSBS records, default 2000), `--scale N`
//! (fig8 graph divisor, default 100000), `--seed N`,
//! `--metrics-out <path>`, `--trace-out <path>`.

use std::sync::Arc;
use std::time::Instant;

use mheap::{Addr, ClassPath, HeapConfig, Vm};
use segstore::{shared_transfer, SegStore};
use serlab::jsbs::{build_dataset, define_jsbs_classes};
use simnet::NodeId;
use skyway::{ParallelConfig, PipelineConfig, PipelineEngine, TypeDirectory};
use sparklite::classes::{define_spark_classes, new_edge};
use sparklite::graphgen::{generate, GraphKind};

#[derive(serde::Serialize)]
struct Row {
    workload: String,
    /// "shared" (seal + attach) or "pipelined" (parallel clone baseline).
    mode: &'static str,
    /// End-to-end wall-clock of the transfer. For the pipelined row this
    /// is the engine's scheduled wall (`report.pipelined_ns`, the same
    /// figure every other bench reports) — it includes the modeled link
    /// time the clone path pays even between co-located VMs. The shared
    /// row is pure measured CPU: seal + attach touch no link at all.
    wall_ns: u64,
    /// Raw measured CPU nanoseconds (no simulated link), both modes.
    cpu_ns: u64,
    objects: u64,
    bytes: u64,
    /// Bytes the receiver gained without copying (segment length; 0 for
    /// the cloning baseline).
    bytes_not_copied: u64,
    /// Marginal cost of one more attacher of the same sealed segment
    /// (shared rows only).
    extra_attach_ns: u64,
    /// Both paths delivered the same objects and bytes.
    parity: bool,
    /// Shared wall-clock over pipelined wall-clock for this workload
    /// (>1 = shared is faster; filled on shared rows).
    speedup: f64,
}

struct Payload {
    sender: Vm,
    dir: TypeDirectory,
    roots: Vec<Addr>,
    cp: Arc<ClassPath>,
    heap: HeapConfig,
}

impl Payload {
    fn new(cp: Arc<ClassPath>, heap: HeapConfig, build: &dyn Fn(&mut Vm) -> Vec<Addr>) -> Payload {
        let mut sender = Vm::new("seg-s", &heap, Arc::clone(&cp)).expect("sender vm");
        let dir = TypeDirectory::new(2, NodeId(0));
        dir.bootstrap_driver(&sender).expect("bootstrap");
        dir.worker_startup(NodeId(1)).expect("worker");
        let roots = build(&mut sender);
        Payload { sender, dir, roots, cp, heap }
    }

    fn receiver(&self, name: &str) -> Vm {
        Vm::new(name, &self.heap, Arc::clone(&self.cp)).expect("receiver vm")
    }

    /// Shared and pipelined rows for this payload, in that order.
    fn run(&self, name: &str, sid: u8) -> Vec<Row> {
        // Baseline: the parallel pipelined engine (PR-8's best path).
        let engine = PipelineEngine::new(PipelineConfig {
            parallel: Some(ParallelConfig::with_workers(4)),
            ..PipelineConfig::default()
        });
        let mut pipe_rx = self.receiver("seg-r-pipe");
        let t0 = Instant::now();
        let (_, report) = engine
            .transfer(
                &self.sender,
                &mut pipe_rx,
                &self.dir,
                NodeId(0),
                NodeId(1),
                sid,
                sid as u16 * 64,
                &self.roots,
                None,
            )
            .expect("pipelined transfer");
        let pipe_wall = t0.elapsed().as_nanos() as u64;

        // The store reports into the process-global registry so
        // `--metrics-out` captures the segstore counters; the per-payload
        // figure is the counter's delta across one transfer. Best-of-3:
        // the first seal in a fresh process pays one-time page faults the
        // steady state doesn't, and every iteration must deliver identical
        // stats anyway.
        let nc_counter = obs::global().counter(obs::names::SEGSTORE_BYTES_NOT_COPIED);
        let mut best: Option<(u64, SegStore, skyway::PipelineReport, u64)> = None;
        for i in 0..3 {
            let nc_before = nc_counter.get();
            let store = SegStore::new();
            let mut shared_rx = self.receiver(&format!("seg-r-shared-{i}"));
            let t0 = Instant::now();
            let (_, sreport) = shared_transfer(
                &store,
                &self.sender,
                &mut shared_rx,
                &self.dir,
                NodeId(0),
                &self.roots,
            )
            .expect("shared transfer");
            let wall = t0.elapsed().as_nanos() as u64;
            let not_copied = nc_counter.get() - nc_before;
            if best.as_ref().is_none_or(|(w, ..)| wall < *w) {
                best = Some((wall, store, sreport, not_copied));
            }
        }
        let (shared_wall, store, sreport, not_copied) = best.expect("three shared iterations");

        // The broadcast margin: one more VM attaching the sealed bytes.
        // The store holds exactly one live segment here.
        let seal_base = *store.bases().first().expect("one sealed segment");
        let mut extra_rx = self.receiver("seg-r-extra");
        let t0 = Instant::now();
        store.attach(&mut extra_rx, seal_base).expect("extra attach");
        let extra_attach_ns = t0.elapsed().as_nanos() as u64;

        // Parallel-mode CAS losses can duplicate shared objects per
        // stream, so the pipelined count may exceed the exact traversal;
        // parity therefore compares shared against the *sender-side*
        // truth the pipelined path also reports.
        let parity = sreport.recv_stats.objects == report.send_stats.objects
            && sreport.recv_stats.bytes == report.send_stats.total_bytes;

        let pipe_sched = report.pipelined_ns;
        vec![
            Row {
                workload: name.to_owned(),
                mode: "shared",
                wall_ns: shared_wall,
                cpu_ns: shared_wall,
                objects: sreport.recv_stats.objects,
                bytes: sreport.recv_stats.bytes,
                bytes_not_copied: not_copied,
                extra_attach_ns,
                parity,
                speedup: if shared_wall > 0 { pipe_sched as f64 / shared_wall as f64 } else { 0.0 },
            },
            Row {
                workload: name.to_owned(),
                mode: "pipelined",
                wall_ns: pipe_sched,
                cpu_ns: pipe_wall,
                objects: report.recv_stats.objects,
                bytes: report.recv_stats.bytes,
                bytes_not_copied: 0,
                extra_attach_ns: 0,
                parity,
                speedup: 1.0,
            },
        ]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n_objects = arg("--objects", 2_000) as usize;
    let scale = arg("--scale", 100_000);
    let seed = arg("--seed", 42);
    let tracing = skyway_bench::init_tracing();

    println!("Segment store: zero-copy attach vs parallel pipelined clone");
    if tracing {
        println!("(tracing enabled)");
    }

    let heap = HeapConfig::default().with_capacity(256 << 20);

    let jsbs_cp = ClassPath::new();
    define_jsbs_classes(&jsbs_cp);
    let fig7 = Payload::new(jsbs_cp, heap, &|vm: &mut Vm| {
        let handles = build_dataset(vm, n_objects).expect("dataset");
        handles.iter().map(|h| vm.resolve(*h).expect("resolve")).collect()
    });

    let spark_cp = ClassPath::new();
    define_spark_classes(&spark_cp);
    let graph = generate(GraphKind::LiveJournal, scale, seed);
    let fig8 = Payload::new(spark_cp, heap, &|vm: &mut Vm| {
        let mut handles = Vec::with_capacity(graph.edges.len());
        for &(s, d) in &graph.edges {
            let e = new_edge(vm, s as i64, d as i64).expect("edge");
            handles.push(vm.handle(e));
        }
        handles.iter().map(|h| vm.resolve(*h).expect("resolve")).collect()
    });

    let mut rows = Vec::new();
    rows.extend(fig7.run("fig7-jsbs", 2));
    rows.extend(fig8.run("fig8-edges", 3));

    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>9} {:>12} {:>11} {:>7} {:>7}",
        "workload",
        "mode",
        "wall ms",
        "cpu ms",
        "objects",
        "not-copied",
        "attach us",
        "parity",
        "x"
    );
    for r in &rows {
        println!(
            "{:<12} {:>10} {:>10.2} {:>10.2} {:>9} {:>12} {:>11.1} {:>7} {:>7.2}",
            r.workload,
            r.mode,
            r.wall_ns as f64 / 1e6,
            r.cpu_ns as f64 / 1e6,
            r.objects,
            r.bytes_not_copied,
            r.extra_attach_ns as f64 / 1e3,
            r.parity,
            r.speedup,
        );
    }

    skyway_bench::write_json("BENCH_segstore", &rows);
    skyway_bench::dump_metrics();
    skyway_bench::dump_trace();
}
