//! **E10 — §5.2 memory overhead**: the cost of the extra `baddr` header
//! word.
//!
//! Runs each Spark workload twice under the Kryo serializer — once on heaps
//! with the Skyway object format (3-word header) and once on stock-format
//! heaps (2-word header) — and compares the peak heap consumption across
//! the workers, the same methodology as the paper's periodic `pmap`
//! sampling. The paper reports 2.1 %–21.8 % (average 15.4 %).

use mheap::LayoutSpec;
use skyway_bench::{geomean, wordcount_lines, RunOpts, Workload};
use sparklite::engine::{SerializerKind, SparkCluster, SparkConfig};
use sparklite::graphgen::{generate, GraphKind};
use sparklite::workloads::{
    run_connected_components, run_pagerank, run_triangle_count, run_wordcount,
};

fn peak_for(spec: LayoutSpec, wl: Workload, opts: &RunOpts) -> u64 {
    let graph = generate(GraphKind::LiveJournal, opts.scale_divisor, opts.seed);
    let mut sc = SparkCluster::new(&SparkConfig {
        n_workers: opts.n_workers,
        serializer: SerializerKind::Kryo,
        heap_bytes: opts.heap_bytes,
        spec,
        ..SparkConfig::default()
    })
    .expect("cluster");
    match wl {
        Workload::Wc => {
            run_wordcount(&mut sc, wordcount_lines(&graph, opts.n_workers)).expect("wc");
        }
        Workload::Pr => {
            run_pagerank(&mut sc, &graph, opts.pr_iters, 10).expect("pr");
        }
        Workload::Cc => {
            run_connected_components(&mut sc, &graph, opts.cc_iters).expect("cc");
        }
        Workload::Tc => {
            run_triangle_count(&mut sc, &graph).expect("tc");
        }
    }
    sc.worker_nodes().into_iter().map(|n| sc.vm(n).heap().peak_used()).sum()
}

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Memory overhead of the baddr header word (synthetic LJ, scale 1/{})",
        opts.scale_divisor
    );
    println!("{:<6} {:>16} {:>16} {:>10}", "run", "stock peak B", "skyway peak B", "overhead");
    let mut ratios = Vec::new();
    for wl in Workload::ALL {
        let stock = peak_for(LayoutSpec::STOCK, wl, &opts);
        let sky = peak_for(LayoutSpec::SKYWAY, wl, &opts);
        let overhead = sky as f64 / stock as f64;
        ratios.push(overhead);
        println!("{:<6} {:>16} {:>16} {:>9.1}%", wl.label(), stock, sky, (overhead - 1.0) * 100.0);
    }
    println!(
        "\naverage overhead: {:.1}% (paper: 2.1%–21.8%, average 15.4%)",
        (geomean(&ratios) - 1.0) * 100.0
    );
    skyway_bench::dump_metrics();
}
