//! **Trace validator** — structural checks over a Chrome trace-event JSON
//! file produced by `--trace-out` (CI's trace-smoke gate).
//!
//! Checks: the document is an object with a `traceEvents` array; every
//! complete (`ph == "X"`) event carries `name`/`ts`/`dur`/`pid`/`tid` and
//! `args` with `trace_id`/`span_id`/`parent`; no span references a parent
//! id that is neither 0 nor another span of the same trace (orphans);
//! within each `(pid, tid)` lane timestamps are monotonically
//! non-decreasing; and every event tagged with a worker lane
//! (`args.lane`, emitted by parallel-transfer workers) sits on its own
//! Perfetto row (`tid == 2 + lane` — tid 1 is the main lane, tid 2 the GC
//! row). Exits non-zero with a description on the first violation.
//!
//! Usage: `tracecheck <trace.json>`

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use serde::Value;

fn field<'a>(map: &'a Value, key: &str) -> Option<&'a Value> {
    match map {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => Some(*u),
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

fn check(text: &str) -> Result<String, String> {
    let doc = serde_json::parse_value(text).map_err(|e| format!("JSON parse error: {e:?}"))?;
    let events = field(&doc, "traceEvents").ok_or("document has no traceEvents field")?;
    let Value::Seq(events) = events else {
        return Err("traceEvents is not an array".into());
    };

    // Pass 1: shape of every complete event; collect span ids per trace.
    let mut spans_by_trace: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let mut complete = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = field(ev, "ph").and_then(|v| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        });
        if ph != Some("X") {
            continue;
        }
        complete += 1;
        for key in ["name", "ts", "dur", "pid", "tid"] {
            if field(ev, key).is_none() {
                return Err(format!("event {i}: complete event missing {key}"));
            }
        }
        let args = field(ev, "args").ok_or(format!("event {i}: missing args"))?;
        let trace_id = field(args, "trace_id")
            .and_then(as_u64)
            .ok_or(format!("event {i}: args.trace_id missing or not a number"))?;
        let span_id = field(args, "span_id")
            .and_then(as_u64)
            .ok_or(format!("event {i}: args.span_id missing or not a number"))?;
        if field(args, "parent").and_then(as_u64).is_none() {
            return Err(format!("event {i}: args.parent missing or not a number"));
        }
        if !spans_by_trace.entry(trace_id).or_default().insert(span_id) {
            return Err(format!("event {i}: duplicate span id {span_id} in trace {trace_id}"));
        }
        // Worker-lane events must render on the lane's own row.
        if let Some(lane) = field(args, "lane").and_then(as_u64) {
            if lane == 0 {
                return Err(format!("event {i}: args.lane present but zero (main lane)"));
            }
            let tid = field(ev, "tid").and_then(as_u64).unwrap_or(0);
            if tid != 2 + lane {
                return Err(format!(
                    "event {i}: worker lane {lane} on tid {tid} (expected {})",
                    2 + lane
                ));
            }
        }
    }
    if complete == 0 {
        return Err("trace has no complete (ph == \"X\") events".into());
    }

    // Pass 2: orphans and per-lane timestamp monotonicity.
    let mut last_ts: BTreeMap<(String, u64), f64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = field(ev, "ph").and_then(|v| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        });
        if ph != Some("X") {
            continue;
        }
        let args = field(ev, "args").ok_or(format!("event {i}: missing args"))?;
        let trace_id = field(args, "trace_id").and_then(as_u64).unwrap_or(0);
        let parent = field(args, "parent").and_then(as_u64).unwrap_or(0);
        if parent != 0 && !spans_by_trace.get(&trace_id).is_some_and(|s| s.contains(&parent)) {
            return Err(format!(
                "event {i}: orphan span — parent {parent} not in trace {trace_id}"
            ));
        }
        let pid = field(ev, "pid")
            .map(|v| match v {
                Value::Str(s) => s.clone(),
                other => format!("{other:?}"),
            })
            .unwrap_or_default();
        let tid = field(ev, "tid").and_then(as_u64).unwrap_or(0);
        let ts =
            field(ev, "ts").and_then(as_f64).ok_or(format!("event {i}: ts is not a number"))?;
        let lane = (pid, tid);
        if let Some(&prev) = last_ts.get(&lane) {
            if ts < prev {
                return Err(format!(
                    "event {i}: ts {ts} goes backwards (lane {lane:?} was at {prev})"
                ));
            }
        }
        last_ts.insert(lane, ts);
    }

    Ok(format!(
        "trace OK: {complete} spans across {} trace(s), {} lane(s), no orphans, monotonic ts",
        spans_by_trace.len(),
        last_ts.len()
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: tracecheck <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&text) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tracecheck: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
