//! **E3 — Table 1**: the graph inputs, paper scale and generated scale.

use skyway_bench::RunOpts;
use sparklite::graphgen::{generate, GraphKind};

fn main() {
    let opts = RunOpts::from_args();
    println!("Table 1: graph inputs (synthetic, scale divisor 1/{})", opts.scale_divisor);
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>12}  Description",
        "Graph", "paper #edges", "paper #verts", "gen #edges", "gen #verts"
    );
    for kind in GraphKind::ALL {
        let (pe, pv) = kind.paper_scale();
        let g = generate(kind, opts.scale_divisor, opts.seed);
        println!(
            "{:<14} {:>14} {:>14} {:>12} {:>12}  {}",
            kind.name(),
            pe,
            pv,
            g.n_edges(),
            g.n_vertices,
            kind.description()
        );
    }
    skyway_bench::dump_metrics();
}
