//! **E5/E6 — Figure 8(a) + Table 2**: Spark under the Java serializer,
//! Kryo, and Skyway across {WC, PR, CC, TC} × {LJ, OR, UK, TW}.
//!
//! Prints the per-run five-component breakdowns (the stacked bars of
//! Fig. 8(a)) and the Table 2 summary: per-metric ranges and geometric
//! means normalized to the Java-serializer baseline.
//!
//! Expected shape: Skyway < Kryo < Java overall (paper: 36 % / 16 % mean
//! speedups); Skyway's deserialization is the big win; Skyway's byte Size
//! ≈ Java's and well above Kryo's.

use simnet::BreakdownRow;
use skyway_bench::{
    normalize, print_breakdown, print_bytes, print_summary_header, print_summary_row, run_cell,
    Normalized, RunOpts, Workload,
};
use sparklite::engine::SerializerKind;
use sparklite::graphgen::GraphKind;

fn main() {
    let opts = RunOpts::from_args();
    skyway_bench::init_tracing();
    println!(
        "Figure 8(a): 4 workloads x 4 graphs x 3 serializers (scale 1/{}, {} PR iters{})",
        opts.scale_divisor,
        opts.pr_iters,
        if opts.pipeline { ", pipelined skyway shuffle" } else { "" }
    );

    let mut kryo_norms: Vec<Normalized> = Vec::new();
    let mut sky_norms: Vec<Normalized> = Vec::new();
    let mut all_rows: Vec<(String, Vec<BreakdownRow>)> = Vec::new();

    for g in GraphKind::ALL {
        for wl in Workload::ALL {
            let mut rows = Vec::new();
            let java = run_cell(SerializerKind::Java, wl, g, &opts);
            rows.push(BreakdownRow::from_profile("java", &java));
            let kryo = run_cell(SerializerKind::Kryo, wl, g, &opts);
            rows.push(BreakdownRow::from_profile("kryo", &kryo));
            let sky = run_cell(SerializerKind::Skyway, wl, g, &opts);
            rows.push(BreakdownRow::from_profile("skyway", &sky));

            let title = format!("{}-{}", g.label(), wl.label());
            print_breakdown(&title, &rows);
            print_bytes(&format!("{title} bytes"), &rows);
            all_rows.push((title, rows));

            kryo_norms.push(normalize(&kryo, &java));
            sky_norms.push(normalize(&sky, &java));
        }
    }

    skyway_bench::write_json("fig8a", &all_rows);
    print_summary_header("Table 2: normalized to the Java serializer — range (geomean)");
    print_summary_row("Kryo", &kryo_norms);
    print_summary_row("Skyway", &sky_norms);

    let overall_sky =
        skyway_bench::geomean(&sky_norms.iter().map(|n| n.overall).collect::<Vec<_>>());
    let overall_kryo =
        skyway_bench::geomean(&kryo_norms.iter().map(|n| n.overall).collect::<Vec<_>>());
    println!(
        "\nmean speedup over java: skyway {:.0}% (paper 36%), kryo {:.0}% (paper 24%)",
        (1.0 - overall_sky) * 100.0,
        (1.0 - overall_kryo) * 100.0
    );
    println!(
        "skyway vs kryo: {:.0}% faster (paper 16%)",
        (1.0 - overall_sky / overall_kryo) * 100.0
    );
    skyway_bench::dump_metrics();
    skyway_bench::dump_trace();
}
