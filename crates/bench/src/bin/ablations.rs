//! **E12 — ablations**: quantifying the design choices called out in
//! DESIGN.md.
//!
//! 1. **Hashcode preservation** (§4.2 Header Update): a transferred
//!    identity-hash map is usable as-is under Skyway; conventional
//!    deserialization must rebuild (rehash) it.
//! 2. **Streaming chunk size** (§3.2): flush-threshold sweep.
//! 3. **Registry batching** (§4.1): `REQUEST_VIEW` batch pull vs per-class
//!    `LOOKUP` traffic vs the Java serializer's strings-per-object regime.
//! 4. **`baddr` vs side-table visited tracking** (§4.2): what the extra
//!    header word buys during the send traversal.

use std::sync::Arc;
use std::time::Instant;

use mheap::{ClassPath, HeapConfig, LayoutSpec, Vm};
use serlab::jsbs::{build_dataset, define_jsbs_classes, jsbs_class_names};
use serlab::{deserialize_profiled, serialize_profiled, KryoRegistry, KryoSerializer, Serializer};
use simnet::{NodeId, Profile};
use skyway::{ShuffleController, SkywaySerializer, Tracking, TypeDirectory};

fn fresh_pair(cp: &Arc<ClassPath>) -> (Vm, Vm, Arc<TypeDirectory>) {
    let heap = HeapConfig::default().with_capacity(256 << 20);
    let sender = Vm::new("s", &heap, Arc::clone(cp)).expect("vm");
    let receiver = Vm::new("r", &heap, Arc::clone(cp)).expect("vm");
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&sender).expect("bootstrap");
    dir.worker_startup(NodeId(1)).expect("startup");
    (sender, receiver, dir)
}

fn skyway_for(dir: &Arc<TypeDirectory>, node: usize) -> SkywaySerializer {
    SkywaySerializer::new(
        Arc::clone(dir),
        NodeId(node),
        Arc::new(ShuffleController::new()),
        LayoutSpec::SKYWAY,
    )
}

fn ablation_hashmap_rehash(cp: &Arc<ClassPath>) {
    println!("\n--- Ablation 1: hashcode preservation (HashMap reuse) ---");
    let entries = 20_000;
    let (mut sender, mut receiver, dir) = fresh_pair(cp);
    let map = sender.new_hash_map(4096).expect("map");
    let mh = sender.handle(map);
    let mut keys = Vec::new();
    for i in 0..entries {
        let k = sender.new_integer(i).expect("key");
        keys.push(sender.handle(k));
        let v = sender.new_integer(i * 2).expect("val");
        let map = sender.resolve(mh).unwrap();
        let k = sender.resolve(*keys.last().unwrap()).unwrap();
        sender.map_put(map, k, v).expect("put");
    }

    // Skyway path: transfer, then measure time-to-usable (zero: the map's
    // bucket layout is consistent on arrival).
    let sky_tx = skyway_for(&dir, 0);
    let sky_rx = skyway_for(&dir, 1);
    let mut p = Profile::new();
    let map = sender.resolve(mh).unwrap();
    let bytes = sky_tx.serialize(&mut sender, &[map], &mut p).expect("ser");
    let roots = sky_rx.deserialize(&mut receiver, &bytes, &mut p).expect("deser");
    let rmap = roots[0];
    assert!(receiver.map_is_consistent(rmap).expect("check"));
    println!("  skyway: map consistent on arrival, rehash needed: none");

    // Conventional path: the deserializer recreates keys with fresh
    // identity hashes, so the map must be rebuilt. We emulate by scrambling
    // the received map's cached hashes and timing the rehash.
    let t = Instant::now();
    let n = receiver.map_rehash(rmap).expect("rehash");
    let rehash_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("  conventional: rehash of {n} entries costs {rehash_ms:.2} ms extra on the receiver");
}

fn ablation_chunk_size(cp: &Arc<ClassPath>) {
    println!("\n--- Ablation 2: streaming chunk size sweep ---");
    println!("  {:>10} {:>10} {:>12} {:>10}", "chunk B", "chunks", "ser ms", "deser ms");
    for chunk in [4 << 10, 64 << 10, 1 << 20, 8 << 20] {
        let (mut sender, mut receiver, dir) = fresh_pair(cp);
        let handles = build_dataset(&mut sender, 3_000).expect("dataset");
        let roots: Vec<_> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
        let sky_tx = skyway_for(&dir, 0).with_chunk_limit(chunk);
        let sky_rx = skyway_for(&dir, 1);
        let mut p = Profile::new();
        let bytes = serialize_profiled(&sky_tx, &mut sender, &roots, &mut p).expect("ser");
        let n_chunks = skyway::buffer::parse_frames(&bytes).expect("frames").1.len();
        deserialize_profiled(&sky_rx, &mut receiver, &bytes, &mut p).expect("deser");
        println!(
            "  {:>10} {:>10} {:>12.2} {:>10.2}",
            chunk,
            n_chunks,
            p.ns(simnet::Category::Ser) as f64 / 1e6,
            p.ns(simnet::Category::Deser) as f64 / 1e6
        );
    }
}

fn ablation_registry(cp: &Arc<ClassPath>) {
    println!("\n--- Ablation 3: type-registry traffic ---");
    let heap = HeapConfig::default().with_capacity(32 << 20);
    let driver = Vm::new("driver", &heap, Arc::clone(cp)).expect("vm");
    for name in jsbs_class_names() {
        driver.load_class(name).expect("load");
    }

    // Batched: one REQUEST_VIEW pulls the whole registry; later class loads
    // on the worker hit the view without further messages.
    let batched = TypeDirectory::new(2, NodeId(0));
    batched.bootstrap_driver(&driver).expect("bootstrap");
    batched.worker_startup(NodeId(1)).expect("startup");
    let worker = Vm::new("worker", &heap, Arc::clone(cp)).expect("vm");
    for name in jsbs_class_names() {
        worker.load_class(name).expect("load");
    }
    for k in worker.klasses().all() {
        batched.tid_for(NodeId(1), &k).expect("tid");
    }
    let b = batched.stats();

    // Unbatched: no view pull; every class load costs a LOOKUP round trip
    // carrying the class-name string.
    let unbatched = TypeDirectory::new(2, NodeId(0));
    unbatched.bootstrap_driver(&driver).expect("bootstrap");
    let worker2 = Vm::new("worker2", &heap, Arc::clone(cp)).expect("vm");
    for name in jsbs_class_names() {
        worker2.load_class(name).expect("load");
    }
    for k in worker2.klasses().all() {
        unbatched.tid_for(NodeId(1), &k).expect("tid");
    }
    let u = unbatched.stats();

    println!(
        "  batched (REQUEST_VIEW): {} messages, {} string bytes, {} lookups",
        b.messages, b.string_bytes, b.lookups
    );
    println!(
        "  per-class LOOKUPs:      {} messages, {} string bytes, {} lookups",
        u.messages, u.string_bytes, u.lookups
    );
    println!("  java-serializer regime: one descriptor string set per ~100 objects per stream");
}

fn ablation_tracking(cp: &Arc<ClassPath>) {
    println!("\n--- Ablation 4: baddr word vs side-table visited tracking ---");
    let (mut sender, _recv, dir) = fresh_pair(cp);
    let handles = build_dataset(&mut sender, 10_000).expect("dataset");
    let roots: Vec<_> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    for (label, tracking) in [("baddr", Tracking::Baddr), ("hash-table", Tracking::HashTable)] {
        let sky = skyway_for(&dir, 0).with_tracking(tracking);
        // Warm, then measure the best of 3.
        let mut best = f64::MAX;
        for _ in 0..3 {
            sky.controller().start_phase();
            let mut p = Profile::new();
            let t = Instant::now();
            serialize_profiled(&sky, &mut sender, &roots, &mut p).expect("ser");
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        println!("  {:<11} traversal of {} roots: {:.2} ms", label, roots.len(), best);
    }
    println!("  (the baddr word costs one header word per object — see mem_overhead)");
}

fn ablation_kryo_comparison(cp: &Arc<ClassPath>) {
    println!("\n--- Context: end-to-end vs kryo on the same dataset ---");
    let (mut sender, mut receiver, dir) = fresh_pair(cp);
    let handles = build_dataset(&mut sender, 10_000).expect("dataset");
    let roots: Vec<_> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let kreg = {
        let r = KryoRegistry::new();
        r.register_all(jsbs_class_names()).expect("reg");
        Arc::new(r)
    };
    for (label, s) in [
        ("skyway", Box::new(skyway_for(&dir, 0)) as Box<dyn Serializer>),
        ("kryo", Box::new(KryoSerializer::manual(kreg)) as Box<dyn Serializer>),
    ] {
        let mut p = Profile::new();
        let bytes = serialize_profiled(s.as_ref(), &mut sender, &roots, &mut p).expect("ser");
        deserialize_profiled(s.as_ref(), &mut receiver, &bytes, &mut p).expect("deser");
        println!(
            "  {:<7} ser {:>8.2} ms  deser {:>8.2} ms  bytes {:>10}",
            label,
            p.ns(simnet::Category::Ser) as f64 / 1e6,
            p.ns(simnet::Category::Deser) as f64 / 1e6,
            bytes.len()
        );
    }
}

fn ablation_wire_compression(cp: &Arc<ClassPath>) {
    println!("\n--- Ablation 5: compressed wire format (paper's future work) ---");
    println!("  {:>12} {:>12} {:>10} {:>10}", "bytes", "vs plain", "ser ms", "deser ms");
    for compressed in [false, true] {
        let (mut sender, mut receiver, dir) = fresh_pair(cp);
        let handles = build_dataset(&mut sender, 5_000).expect("dataset");
        let roots: Vec<_> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
        let tx = skyway_for(&dir, 0).with_wire_compression(compressed);
        let rx = skyway_for(&dir, 1).with_wire_compression(compressed);
        let mut p = Profile::new();
        let bytes = serialize_profiled(&tx, &mut sender, &roots, &mut p).expect("ser");
        deserialize_profiled(&rx, &mut receiver, &bytes, &mut p).expect("deser");
        println!(
            "  {:>12} {:>11} {:>10.2} {:>10.2}   ({})",
            bytes.len(),
            if compressed { "smaller" } else { "baseline" },
            p.ns(simnet::Category::Ser) as f64 / 1e6,
            p.ns(simnet::Category::Deser) as f64 / 1e6,
            if compressed {
                "compressed: no baddr word / 4-byte array lengths on the wire"
            } else {
                "plain: heap format as-is"
            },
        );
    }
    println!("  trade-off: smaller streams vs a per-object expansion copy on receive");
}

fn main() {
    let cp = ClassPath::new();
    define_jsbs_classes(&cp);
    println!("Skyway design-choice ablations");
    ablation_hashmap_rehash(&cp);
    ablation_chunk_size(&cp);
    ablation_registry(&cp);
    ablation_tracking(&cp);
    ablation_wire_compression(&cp);
    ablation_kryo_comparison(&cp);
    skyway_bench::dump_metrics();
}
