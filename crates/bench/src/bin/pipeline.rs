//! **Pipelined shuffle engine** — sequential vs pipelined wall-clock on the
//! fig7 (JSBS media-content) and fig8-style (graph edge records) payloads.
//!
//! Both modes move the identical object graph heap-to-heap and must report
//! identical receive statistics; what differs is *when* work happens. The
//! sequential path is the three-phase barrier (traverse everything, move
//! everything, absolutize everything): its simnet-charged wall-clock is
//! `scaled(produce) + net(total) + scaled(absorb)`. The pipelined path
//! overlaps the phases at chunk granularity and is charged by the
//! overlap-aware link schedule. Expected shape: ≥25% lower wall-clock for
//! the pipeline on the fig7 payload at default scale, `pool_misses == 0`
//! on the steady-state repeat transfer.
//!
//! Flags: `--objects N` (JSBS records, default 2000), `--scale N`,
//! `--seed N`, `--metrics-out <path>`, `--trace-out <path>` (span trace as
//! Chrome trace-event JSON plus a critical-path summary).

use std::sync::Arc;
use std::time::Instant;

use mheap::{Addr, ClassPath, HeapConfig, Vm};
use serlab::jsbs::{build_dataset, define_jsbs_classes};
use simnet::{NodeId, SimConfig};
use skyway::{
    GraphReceiver, GraphSender, PipelineConfig, PipelineEngine, ReceiveStats, SendConfig,
    TypeDirectory,
};
use sparklite::classes::{define_spark_classes, new_edge};
use sparklite::graphgen::{generate, GraphKind};

#[derive(serde::Serialize, Clone, Copy)]
struct ModeResult {
    wall_ns: u64,
    produce_ns: u64,
    net_ns: u64,
    absorb_ns: u64,
    objects: u64,
    bytes: u64,
    ref_fixups: u64,
    chunks: u64,
}

#[derive(serde::Serialize)]
struct RepeatResult {
    wall_ns: u64,
    pool_hits: u64,
    pool_misses: u64,
}

#[derive(serde::Serialize)]
struct Row {
    workload: String,
    receivers: usize,
    sequential: ModeResult,
    pipelined: ModeResult,
    /// Second transfer on the same engine: the steady state.
    repeat: RepeatResult,
    improvement_pct: f64,
    stats_match: bool,
    max_in_flight: u64,
    sender_stall_ns: u64,
    receiver_stall_ns: u64,
    /// p99.9 of `skyway.pipeline.chunk_stall_ns` when this workload
    /// finished (cumulative across the process's workloads so far).
    chunk_stall_p999_ns: u64,
}

fn scale_ns(raw: u64, sim: &SimConfig) -> u64 {
    (raw as f64 * sim.sd_cpu_scale) as u64
}

/// One sequential barrier transfer, charged like the spill-free sequential
/// path: scaled produce, whole-payload network, scaled absorb.
fn sequential_once(
    sender: &Vm,
    receiver: &mut Vm,
    dir: &TypeDirectory,
    roots: &[Addr],
    stream: u16,
    sim: &SimConfig,
) -> (ModeResult, ReceiveStats) {
    let cfg = SendConfig::for_vm(sender);
    let t0 = Instant::now();
    let mut gs = GraphSender::new(sender, dir, NodeId(0), 1, stream, cfg).expect("sender");
    for &r in roots {
        gs.write_root(r).expect("write_root");
    }
    let out = gs.finish();
    let produce_raw = t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    let mut gr = GraphReceiver::new(receiver, dir, NodeId(1));
    for c in &out.chunks {
        gr.push_chunk(c).expect("push_chunk");
    }
    let (_, stats) = gr.finish(None).expect("finish");
    let absorb_raw = t1.elapsed().as_nanos() as u64;
    let produce_ns = scale_ns(produce_raw, sim);
    let absorb_ns = scale_ns(absorb_raw, sim);
    let net_ns = sim.net_ns(out.stats.total_bytes);
    (
        ModeResult {
            wall_ns: produce_ns + net_ns + absorb_ns,
            produce_ns,
            net_ns,
            absorb_ns,
            objects: stats.objects,
            bytes: stats.bytes,
            ref_fixups: stats.ref_fixups,
            chunks: stats.chunks,
        },
        stats,
    )
}

/// Runs one workload: sequential reference, pipelined, and a steady-state
/// repeat on the same engine, across `receivers` destination VMs.
#[allow(clippy::too_many_arguments)]
fn run_workload(
    name: &str,
    receivers: usize,
    cp: &Arc<ClassPath>,
    heap: &HeapConfig,
    build: &dyn Fn(&mut Vm) -> Vec<Addr>,
    sim: &SimConfig,
) -> Row {
    // Sequential reference: fresh sender, one fresh receiver per stream.
    let mut seq_sender = Vm::new("seq-s", heap, Arc::clone(cp)).expect("vm");
    let seq_dir = TypeDirectory::new(receivers + 1, NodeId(0));
    seq_dir.bootstrap_driver(&seq_sender).expect("bootstrap");
    let seq_roots = build(&mut seq_sender);
    let mut seq_total = ModeResult {
        wall_ns: 0,
        produce_ns: 0,
        net_ns: 0,
        absorb_ns: 0,
        objects: 0,
        bytes: 0,
        ref_fixups: 0,
        chunks: 0,
    };
    let mut seq_stats: Vec<ReceiveStats> = Vec::new();
    for i in 0..receivers {
        seq_dir.worker_startup(NodeId(i + 1)).expect("worker");
        let mut rvm = Vm::new(format!("seq-r{i}"), heap, Arc::clone(cp)).expect("vm");
        let (m, stats) =
            sequential_once(&seq_sender, &mut rvm, &seq_dir, &seq_roots, (i + 1) as u16, sim);
        seq_total.wall_ns += m.wall_ns;
        seq_total.produce_ns += m.produce_ns;
        seq_total.net_ns += m.net_ns;
        seq_total.absorb_ns += m.absorb_ns;
        seq_total.objects += m.objects;
        seq_total.bytes += m.bytes;
        seq_total.ref_fixups += m.ref_fixups;
        seq_total.chunks += m.chunks;
        seq_stats.push(stats);
    }

    // Pipelined: same graph, one engine whose pool persists across streams
    // and across the repeat pass.
    let mut pipe_sender = Vm::new("pipe-s", heap, Arc::clone(cp)).expect("vm");
    let pipe_dir = TypeDirectory::new(receivers + 1, NodeId(0));
    pipe_dir.bootstrap_driver(&pipe_sender).expect("bootstrap");
    let pipe_roots = build(&mut pipe_sender);
    let engine = PipelineEngine::new(PipelineConfig { sim: *sim, ..PipelineConfig::default() });
    let mut pipe_total = ModeResult {
        wall_ns: 0,
        produce_ns: 0,
        net_ns: 0,
        absorb_ns: 0,
        objects: 0,
        bytes: 0,
        ref_fixups: 0,
        chunks: 0,
    };
    let mut stats_match = true;
    let mut max_in_flight = 0u64;
    let mut sender_stall_ns = 0u64;
    let mut receiver_stall_ns = 0u64;
    let mut rvms = Vec::new();
    for i in 0..receivers {
        pipe_dir.worker_startup(NodeId(i + 1)).expect("worker");
        rvms.push(Vm::new(format!("pipe-r{i}"), heap, Arc::clone(cp)).expect("vm"));
    }
    for (i, rvm) in rvms.iter_mut().enumerate() {
        let ctx = obs::global().tracer().new_trace();
        let (got, report) = engine
            .transfer_with_trace(
                &pipe_sender,
                rvm,
                &pipe_dir,
                NodeId(0),
                NodeId(i + 1),
                1,
                (i + 1) as u16,
                &pipe_roots,
                None,
                ctx,
            )
            .expect("pipelined transfer");
        // Root the received graph and run a minor collection: the pause
        // lands in the trace attributed to this transfer (the VM keeps the
        // transfer's context). Unconditional, so traced and untraced runs
        // do identical work and stay comparable.
        for &a in &got {
            rvm.handle(a);
        }
        rvm.minor_gc().expect("minor gc");
        pipe_total.wall_ns += report.pipelined_ns;
        pipe_total.produce_ns += report.produce_ns;
        pipe_total.net_ns += report.wire_ns;
        pipe_total.absorb_ns += report.absorb_ns;
        pipe_total.objects += report.recv_stats.objects;
        pipe_total.bytes += report.recv_stats.bytes;
        pipe_total.ref_fixups += report.recv_stats.ref_fixups;
        pipe_total.chunks += report.recv_stats.chunks;
        max_in_flight = max_in_flight.max(report.max_in_flight);
        sender_stall_ns += report.sender_stall_ns;
        receiver_stall_ns += report.receiver_stall_ns;
        let s = &seq_stats[i];
        stats_match &= report.recv_stats.objects == s.objects
            && report.recv_stats.bytes == s.bytes
            && report.recv_stats.ref_fixups == s.ref_fixups;
    }

    // Steady-state repeat: same engine, same receivers (new streams); the
    // pool now holds every backing the first pass used.
    let mut repeat = RepeatResult { wall_ns: 0, pool_hits: 0, pool_misses: 0 };
    for (i, rvm) in rvms.iter_mut().enumerate() {
        let ctx = obs::global().tracer().new_trace();
        let (_, report) = engine
            .transfer_with_trace(
                &pipe_sender,
                rvm,
                &pipe_dir,
                NodeId(0),
                NodeId(i + 1),
                1,
                (receivers + i + 1) as u16,
                &pipe_roots,
                None,
                ctx,
            )
            .expect("repeat transfer");
        repeat.wall_ns += report.pipelined_ns;
        repeat.pool_hits += report.pool_hits;
        repeat.pool_misses += report.pool_misses;
    }

    let improvement_pct = if seq_total.wall_ns > 0 {
        (1.0 - pipe_total.wall_ns as f64 / seq_total.wall_ns as f64) * 100.0
    } else {
        0.0
    };
    let chunk_stall_p999_ns = obs::global()
        .snapshot()
        .histograms
        .get(obs::names::PIPELINE_CHUNK_STALL_NS)
        .map_or(0, |h| h.p999);
    Row {
        workload: name.to_owned(),
        receivers,
        sequential: seq_total,
        pipelined: pipe_total,
        repeat,
        improvement_pct,
        stats_match,
        max_in_flight,
        sender_stall_ns,
        receiver_stall_ns,
        chunk_stall_p999_ns,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n_objects = arg("--objects", 2_000) as usize;
    let scale = arg("--scale", 10_000);
    let seed = arg("--seed", 42);
    let sim = SimConfig::default();
    let tracing = skyway_bench::init_tracing();

    println!("Pipelined shuffle engine: sequential barrier vs chunk-granularity overlap");
    if tracing {
        println!("(tracing enabled)");
    }

    // fig7 payload: JSBS media-content records, 4 receivers (the paper's
    // five-node broadcast).
    let jsbs_cp = ClassPath::new();
    define_jsbs_classes(&jsbs_cp);
    let heap = HeapConfig::default().with_capacity(256 << 20);
    let fig7 = run_workload(
        "fig7-jsbs",
        4,
        &jsbs_cp,
        &heap,
        &|vm: &mut Vm| {
            let handles = build_dataset(vm, n_objects).expect("dataset");
            handles.iter().map(|h| vm.resolve(*h).expect("resolve")).collect()
        },
        &sim,
    );

    // fig8-style payload: graph edge records (what the Spark shuffles
    // actually move), single destination like one map→reduce stream.
    let spark_cp = ClassPath::new();
    define_spark_classes(&spark_cp);
    let graph = generate(GraphKind::LiveJournal, scale, seed);
    let fig8 = run_workload(
        "fig8-edges",
        1,
        &spark_cp,
        &heap,
        &|vm: &mut Vm| {
            let mut handles = Vec::with_capacity(graph.edges.len());
            for &(s, d) in &graph.edges {
                let e = new_edge(vm, s as i64, d as i64).expect("edge");
                handles.push(vm.handle(e));
            }
            handles.iter().map(|h| vm.resolve(*h).expect("resolve")).collect()
        },
        &sim,
    );

    for row in [&fig7, &fig8] {
        println!(
            "\n{} ({} receiver{}):",
            row.workload,
            row.receivers,
            if row.receivers == 1 { "" } else { "s" }
        );
        println!(
            "  sequential {:8.2} ms  (produce {:.2} + net {:.2} + absorb {:.2})",
            row.sequential.wall_ns as f64 / 1e6,
            row.sequential.produce_ns as f64 / 1e6,
            row.sequential.net_ns as f64 / 1e6,
            row.sequential.absorb_ns as f64 / 1e6,
        );
        println!(
            "  pipelined  {:8.2} ms  (wire {:.2}, max {} in flight)",
            row.pipelined.wall_ns as f64 / 1e6,
            row.pipelined.net_ns as f64 / 1e6,
            row.max_in_flight,
        );
        println!(
            "  improvement {:.1}%  stats_match {}  repeat: {:.2} ms, pool {} hits / {} misses",
            row.improvement_pct,
            row.stats_match,
            row.repeat.wall_ns as f64 / 1e6,
            row.repeat.pool_hits,
            row.repeat.pool_misses,
        );
        println!("  chunk stall p99.9 {:.3} ms", row.chunk_stall_p999_ns as f64 / 1e6,);
    }

    skyway_bench::write_json("BENCH_pipeline", &vec![fig7, fig8]);
    skyway_bench::dump_metrics();
    skyway_bench::dump_trace();
}
