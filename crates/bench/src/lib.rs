//! `skyway-bench` — shared plumbing for the figure/table harnesses.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `DESIGN.md`'s per-experiment index); this library holds
//! the common pieces: workload runners, table printers, and summary
//! statistics (geometric means over normalized ratios, as Table 2/4 use).

#![warn(missing_docs)]

use serde::Serialize;
use simnet::{BreakdownRow, Category, Profile};
use sparklite::engine::{SerializerKind, SparkCluster, SparkConfig};
use sparklite::graphgen::{generate, Graph, GraphKind};
use sparklite::workloads::{
    run_connected_components, run_pagerank, run_triangle_count, run_wordcount,
};

/// The four Spark workloads of Fig. 8(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// WordCount (one shuffle round).
    Wc,
    /// PageRank (one shuffle per iteration).
    Pr,
    /// ConnectedComponents (label propagation).
    Cc,
    /// TriangleCounting (three shuffle rounds, heavy messages).
    Tc,
}

impl Workload {
    /// Figure label (`WC`, `PR`, `CC`, `TC`).
    pub fn label(self) -> &'static str {
        match self {
            Workload::Wc => "WC",
            Workload::Pr => "PR",
            Workload::Cc => "CC",
            Workload::Tc => "TC",
        }
    }

    /// All workloads in the paper's order.
    pub const ALL: [Workload; 4] = [Workload::Wc, Workload::Pr, Workload::Cc, Workload::Tc];
}

/// Options of one Spark-experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Graph scale divisor relative to Table 1 (e.g. 10 000 → LJ = 6.9 k
    /// edges).
    pub scale_divisor: u64,
    /// PageRank iterations.
    pub pr_iters: usize,
    /// ConnectedComponents max iterations.
    pub cc_iters: usize,
    /// Worker count.
    pub n_workers: usize,
    /// Per-VM heap bytes.
    pub heap_bytes: usize,
    /// RNG seed.
    pub seed: u64,
    /// Pipelined Skyway shuffle (`--pipeline`): cross-node transfers run
    /// through the chunk-granularity pipeline engine instead of the
    /// serialize → spill → fetch → deserialize barrier. Only affects
    /// Skyway cells.
    pub pipeline: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            scale_divisor: 10_000,
            pr_iters: 5,
            cc_iters: 30,
            n_workers: 3,
            heap_bytes: 448 << 20,
            seed: 42,
            pipeline: false,
        }
    }
}

impl RunOpts {
    /// Reads `--scale N`, `--workers N`, `--iters N`, `--seed N`, and the
    /// valueless `--pipeline` from the process arguments, falling back to
    /// defaults.
    pub fn from_args() -> Self {
        let mut o = RunOpts::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--pipeline" => {
                    o.pipeline = true;
                    i += 1;
                }
                "--scale" if i + 1 < args.len() => {
                    o.scale_divisor = args[i + 1].parse().unwrap_or(o.scale_divisor);
                    i += 2;
                }
                "--workers" if i + 1 < args.len() => {
                    o.n_workers = args[i + 1].parse().unwrap_or(o.n_workers);
                    i += 2;
                }
                "--iters" if i + 1 < args.len() => {
                    o.pr_iters = args[i + 1].parse().unwrap_or(o.pr_iters);
                    i += 2;
                }
                "--seed" if i + 1 < args.len() => {
                    o.seed = args[i + 1].parse().unwrap_or(o.seed);
                    i += 2;
                }
                _ => i += 1,
            }
        }
        o
    }
}

/// Builds a cluster for the experiment.
///
/// # Panics
/// Panics if the cluster cannot boot (fatal for a benchmark binary).
pub fn cluster(kind: SerializerKind, opts: &RunOpts) -> SparkCluster {
    SparkCluster::new(&SparkConfig {
        n_workers: opts.n_workers,
        serializer: kind,
        heap_bytes: opts.heap_bytes,
        pipeline: opts.pipeline,
        ..SparkConfig::default()
    })
    .expect("cluster boot")
}

/// Synthetic word-count input: pseudo-text lines derived from a graph's
/// edge list (so input size tracks the dataset scale).
pub fn wordcount_lines(graph: &Graph, n_workers: usize) -> Vec<Vec<String>> {
    let words = [
        "data", "heap", "object", "shuffle", "spark", "skyway", "buffer", "type", "klass", "graph",
        "rank", "edge", "node", "byte", "stream",
    ];
    let mut parts = vec![Vec::new(); n_workers];
    for (i, &(s, d)) in graph.edges.iter().enumerate() {
        let a = words[(s % words.len() as u64) as usize];
        let b = words[(d % words.len() as u64) as usize];
        let c = words[((s ^ d) % words.len() as u64) as usize];
        parts[i % n_workers].push(format!("{a} {b} {c} {a}"));
    }
    parts
}

/// Runs one (workload, graph, serializer) cell and returns the aggregated
/// profile.
///
/// # Panics
/// Panics on engine errors (fatal for a benchmark binary).
pub fn run_cell(kind: SerializerKind, wl: Workload, g: GraphKind, opts: &RunOpts) -> Profile {
    run_cell_with_gc(kind, wl, g, opts).0
}

/// [`run_cell`] plus the summed worker GC nanoseconds (Fig. 3's "<2%, not
/// shown" check).
///
/// # Panics
/// Panics on engine errors (fatal for a benchmark binary).
pub fn run_cell_with_gc(
    kind: SerializerKind,
    wl: Workload,
    g: GraphKind,
    opts: &RunOpts,
) -> (Profile, u64) {
    let graph = generate(g, opts.scale_divisor, opts.seed);
    let mut sc = cluster(kind, opts);
    match wl {
        Workload::Wc => {
            let lines = wordcount_lines(&graph, opts.n_workers);
            run_wordcount(&mut sc, lines).expect("wordcount");
        }
        Workload::Pr => {
            run_pagerank(&mut sc, &graph, opts.pr_iters, 10).expect("pagerank");
        }
        Workload::Cc => {
            run_connected_components(&mut sc, &graph, opts.cc_iters).expect("concomp");
        }
        Workload::Tc => {
            run_triangle_count(&mut sc, &graph).expect("triangles");
        }
    }
    let gc_ns: u64 = sc.worker_nodes().into_iter().map(|n| sc.vm(n).stats.gc_ns).sum();
    let profile = sc.aggregate_profile();
    // Mirror the cell's aggregate into the observability registry so a
    // `--metrics-out` snapshot carries the Fig. 3 breakdown alongside the
    // counters and the flight recorder.
    obs::global().put_profile(
        &format!("bench.{}.{g:?}.{kind:?}", wl.label()),
        obs::ProfileSection::from(&profile),
    );
    (profile, gc_ns)
}

/// Prints a stacked-breakdown table (the shape of Fig. 3(a)/8 bars).
pub fn print_breakdown(title: &str, rows: &[BreakdownRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "run", "Compute ms", "Ser ms", "Write ms", "Deser ms", "Read ms", "Total ms"
    );
    for r in rows {
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            r.label,
            r.ms[0],
            r.ms[1],
            r.ms[2],
            r.ms[3],
            r.ms[4],
            r.total_ms()
        );
    }
}

/// Prints the bytes panel (the shape of Fig. 3(b)).
pub fn print_bytes(title: &str, rows: &[BreakdownRow]) {
    println!("\n=== {title} ===");
    println!("{:<22} {:>16} {:>16}", "run", "Local Bytes", "Remote Bytes");
    for r in rows {
        println!("{:<22} {:>16} {:>16}", r.label, r.bytes_local, r.bytes_remote);
    }
}

/// Per-run normalized metrics for the Table 2/4 summaries.
#[derive(Debug, Clone, Copy)]
pub struct Normalized {
    /// Overall time ratio.
    pub overall: f64,
    /// Serialization-time ratio.
    pub ser: f64,
    /// Write-I/O ratio.
    pub write: f64,
    /// Deserialization-time ratio.
    pub des: f64,
    /// Read-I/O ratio.
    pub read: f64,
    /// Bytes ratio.
    pub size: f64,
}

/// Normalizes a profile against a baseline (Table 2's "normalized to
/// baseline" cells).
pub fn normalize(p: &Profile, base: &Profile) -> Normalized {
    let r = |a: u64, b: u64| {
        if b == 0 {
            if a == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            a as f64 / b as f64
        }
    };
    Normalized {
        overall: r(p.total_ns(), base.total_ns()),
        ser: r(p.ns(Category::Ser), base.ns(Category::Ser)),
        write: r(p.ns(Category::WriteIo), base.ns(Category::WriteIo)),
        des: r(p.ns(Category::Deser), base.ns(Category::Deser)),
        read: r(p.ns(Category::ReadIo), base.ns(Category::ReadIo)),
        size: r(p.bytes_local + p.bytes_remote, base.bytes_local + base.bytes_remote),
    }
}

/// Geometric mean.
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return f64::NAN;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// Prints one summary row: min ~ max (geomean) per metric.
pub fn print_summary_row(label: &str, rows: &[Normalized]) {
    let col = |f: fn(&Normalized) -> f64| {
        let vals: Vec<f64> = rows.iter().map(f).collect();
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        format!("{min:.2}~{max:.2} ({:.2})", geomean(&vals))
    };
    println!(
        "{:<9} {:>19} {:>19} {:>19} {:>19} {:>19} {:>19}",
        label,
        col(|n| n.overall),
        col(|n| n.ser),
        col(|n| n.write),
        col(|n| n.des),
        col(|n| n.read),
        col(|n| n.size),
    );
}

/// Writes a machine-readable copy of a harness's results next to its text
/// output (`results/<name>.json`), for downstream plotting. Failure to
/// write is reported but non-fatal — the text output is the primary record.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("note: could not create results/; skipping JSON output");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("note: could not write {}: {e}", path.display());
            } else {
                println!("(json written to {})", path.display());
            }
        }
        Err(e) => eprintln!("note: could not serialize {name} results: {e}"),
    }
}

/// Parses `--metrics-out <path>` from the process arguments.
pub fn metrics_out_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == "--metrics-out").map(|w| std::path::PathBuf::from(&w[1]))
}

/// When `--metrics-out <path>` was given, writes the process-wide
/// observability snapshot ([`obs::Registry::snapshot`]) as pretty-printed
/// JSON to that path. Call once at the end of a harness `main`. Failure to
/// write is reported but non-fatal, matching [`write_json`].
pub fn dump_metrics() {
    let Some(path) = metrics_out_from_args() else {
        return;
    };
    let snap = obs::global().snapshot();
    match serde_json::to_string_pretty(&snap) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("note: could not write {}: {e}", path.display());
            } else {
                println!("(metrics snapshot written to {})", path.display());
            }
        }
        Err(e) => eprintln!("note: could not serialize metrics snapshot: {e}"),
    }
}

/// Parses `--trace-out <path>` from the process arguments.
pub fn trace_out_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == "--trace-out").map(|w| std::path::PathBuf::from(&w[1]))
}

/// Enables the process-wide tracer when `--trace-out <path>` was given.
/// Call at the top of a harness `main`, before any transfers run; returns
/// whether tracing is on so harnesses can report overhead mode.
pub fn init_tracing() -> bool {
    let on = trace_out_from_args().is_some();
    if on {
        obs::global().tracer().set_enabled(true);
    }
    on
}

/// When `--trace-out <path>` was given, exports every span recorded so far
/// as Chrome trace-event JSON (open in Perfetto or `chrome://tracing`) and
/// prints the critical-path summary. Call once at the end of a harness
/// `main`. Failure to write is reported but non-fatal, matching
/// [`write_json`].
pub fn dump_trace() {
    let Some(path) = trace_out_from_args() else {
        return;
    };
    let tracer = obs::global().tracer();
    let spans = tracer.spans();
    let dropped = tracer.dropped();
    if dropped > 0 {
        eprintln!("note: span buffer overflowed; {dropped} spans were dropped");
    }
    if let Err(e) = std::fs::write(&path, obs::chrome_trace_json(&spans)) {
        eprintln!("note: could not write {}: {e}", path.display());
    } else {
        println!("(trace written to {} — {} spans)", path.display(), spans.len());
    }
    println!("{}", obs::critical_path_summary(&spans));
}

/// Header matching [`print_summary_row`].
pub fn print_summary_header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:<9} {:>19} {:>19} {:>19} {:>19} {:>19} {:>19}",
        "Sys", "Overall", "Ser", "Write", "Des", "Read", "Size"
    );
}
