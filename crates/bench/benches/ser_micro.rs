//! Criterion micro-benchmarks: per-serializer encode/decode on JSBS
//! media-content records — the engine behind Figure 7.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mheap::{ClassPath, HeapConfig, LayoutSpec, Vm};
use serlab::jsbs::{build_dataset, define_jsbs_classes, jsbs_class_names};
use serlab::schema::standard_entrants;
use serlab::{JavaSerializer, KryoRegistry, KryoSerializer, SchemaRegistry, Serializer};
use simnet::{NodeId, Profile};
use skyway::{ShuffleController, SkywaySerializer, TypeDirectory};

const N_RECORDS: usize = 200;

fn entrants(dir: &Arc<TypeDirectory>) -> Vec<Box<dyn Serializer>> {
    let kreg = {
        let r = KryoRegistry::new();
        r.register_all(jsbs_class_names()).unwrap();
        Arc::new(r)
    };
    let sreg = SchemaRegistry::new(jsbs_class_names());
    let mut v: Vec<Box<dyn Serializer>> = vec![
        Box::new(SkywaySerializer::new(
            Arc::clone(dir),
            NodeId(0),
            Arc::new(ShuffleController::new()),
            LayoutSpec::SKYWAY,
        )),
        Box::new(KryoSerializer::manual(kreg)),
        Box::new(JavaSerializer::new()),
    ];
    // A representative schema entrant (the fastest baseline family).
    let colfer = standard_entrants(&sreg).into_iter().next().unwrap();
    v.push(Box::new(colfer));
    v
}

fn bench_serialize(c: &mut Criterion) {
    let cp = ClassPath::new();
    define_jsbs_classes(&cp);
    let mut vm =
        Vm::new("bench", &HeapConfig::default().with_capacity(128 << 20), Arc::clone(&cp)).unwrap();
    let dir = Arc::new(TypeDirectory::new(1, NodeId(0)));
    dir.bootstrap_driver(&vm).unwrap();
    let handles = build_dataset(&mut vm, N_RECORDS).unwrap();
    let roots: Vec<_> = handles.iter().map(|h| vm.resolve(*h).unwrap()).collect();

    let mut g = c.benchmark_group("serialize_200_jsbs_records");
    for s in entrants(&dir) {
        g.bench_function(s.name().to_owned(), |b| {
            b.iter(|| {
                let mut p = Profile::new();
                s.serialize(&mut vm, &roots, &mut p).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_deserialize(c: &mut Criterion) {
    let cp = ClassPath::new();
    define_jsbs_classes(&cp);
    let mut vm =
        Vm::new("bench", &HeapConfig::default().with_capacity(128 << 20), Arc::clone(&cp)).unwrap();
    let dir = Arc::new(TypeDirectory::new(1, NodeId(0)));
    dir.bootstrap_driver(&vm).unwrap();
    let handles = build_dataset(&mut vm, N_RECORDS).unwrap();
    let roots: Vec<_> = handles.iter().map(|h| vm.resolve(*h).unwrap()).collect();

    let mut g = c.benchmark_group("deserialize_200_jsbs_records");
    for s in entrants(&dir) {
        let mut p = Profile::new();
        let bytes = s.serialize(&mut vm, &roots, &mut p).unwrap();
        g.bench_function(s.name().to_owned(), |b| {
            b.iter_batched(
                || {
                    Vm::new(
                        "recv",
                        &HeapConfig::default().with_capacity(128 << 20),
                        Arc::clone(&cp),
                    )
                    .unwrap()
                },
                |mut recv| {
                    let mut p = Profile::new();
                    s.deserialize(&mut recv, &bytes, &mut p).unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_serialize, bench_deserialize
}
criterion_main!(benches);
