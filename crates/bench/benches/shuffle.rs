//! Criterion benchmark of a full sparklite shuffle round under each
//! serializer — the engine behind the Figure 8(a) runs.

use criterion::{criterion_group, criterion_main, Criterion};
use sparklite::classes::{hash64, new_edge, read_edge};
use sparklite::engine::{SerializerKind, SparkCluster, SparkConfig};

const EDGES_PER_WORKER: usize = 2_000;

fn bench_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("shuffle_6000_edge_records");
    for kind in SerializerKind::ALL {
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut sc = SparkCluster::new(&SparkConfig {
                    n_workers: 3,
                    serializer: kind,
                    heap_bytes: 96 << 20,
                    ..SparkConfig::default()
                })
                .unwrap();
                let seeds: Vec<Vec<i64>> = (0..3)
                    .map(|w| (0..EDGES_PER_WORKER as i64).map(|i| i * 3 + w).collect())
                    .collect();
                let ds = sc.create_dataset(seeds, |vm, &v| new_edge(vm, v, v + 1)).unwrap();
                let shuffled =
                    sc.shuffle(ds, |vm, r| Ok(hash64(read_edge(vm, r)?.1 as u64))).unwrap();
                let n = sc.count(&shuffled).unwrap();
                assert_eq!(n, 3 * EDGES_PER_WORKER as u64);
                sc.release(shuffled).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shuffle
}
criterion_main!(benches);
