//! Criterion micro-benchmarks of Skyway's hot paths: the send traversal
//! (§4.2), absolutization (§4.3), and the parallel sender (§4.2 threads).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mheap::{ClassPath, HeapConfig, LayoutSpec, Vm};
use serlab::jsbs::{build_dataset, define_jsbs_classes};
use serlab::Serializer;
use simnet::{NodeId, Profile};
use skyway::{
    send_roots_parallel, ParallelConfig, SendConfig, ShuffleController, SkywaySerializer, Tracking,
    TypeDirectory,
};

const N_RECORDS: usize = 500;

struct Env {
    cp: Arc<ClassPath>,
    vm: Vm,
    dir: Arc<TypeDirectory>,
    roots: Vec<mheap::Addr>,
}

fn env() -> Env {
    let cp = ClassPath::new();
    define_jsbs_classes(&cp);
    let mut vm =
        Vm::new("bench", &HeapConfig::default().with_capacity(256 << 20), Arc::clone(&cp)).unwrap();
    let dir = Arc::new(TypeDirectory::new(2, NodeId(0)));
    dir.bootstrap_driver(&vm).unwrap();
    dir.worker_startup(NodeId(1)).unwrap();
    let handles = build_dataset(&mut vm, N_RECORDS).unwrap();
    let roots: Vec<_> = handles.iter().map(|h| vm.resolve(*h).unwrap()).collect();
    Env { cp, vm, dir, roots }
}

fn bench_traversal(c: &mut Criterion) {
    let mut e = env();
    let mut g = c.benchmark_group("send_traversal_500_records");
    for (label, tracking) in [("baddr", Tracking::Baddr), ("hashtable", Tracking::HashTable)] {
        let sky = SkywaySerializer::new(
            Arc::clone(&e.dir),
            NodeId(0),
            Arc::new(ShuffleController::new()),
            LayoutSpec::SKYWAY,
        )
        .with_tracking(tracking);
        g.bench_function(label, |b| {
            b.iter(|| {
                sky.controller().start_phase();
                let mut p = Profile::new();
                sky.serialize(&mut e.vm, &e.roots, &mut p).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_absolutization(c: &mut Criterion) {
    let mut e = env();
    let sky = SkywaySerializer::new(
        Arc::clone(&e.dir),
        NodeId(0),
        Arc::new(ShuffleController::new()),
        LayoutSpec::SKYWAY,
    );
    let mut p = Profile::new();
    let bytes = sky.serialize(&mut e.vm, &e.roots, &mut p).unwrap();
    let rx = SkywaySerializer::new(
        Arc::clone(&e.dir),
        NodeId(1),
        Arc::new(ShuffleController::new()),
        LayoutSpec::SKYWAY,
    );
    c.bench_function("absolutize_500_records", |b| {
        b.iter_batched(
            || {
                Vm::new("recv", &HeapConfig::default().with_capacity(256 << 20), Arc::clone(&e.cp))
                    .unwrap()
            },
            |mut recv| {
                let mut p = Profile::new();
                rx.deserialize(&mut recv, &bytes, &mut p).unwrap()
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_parallel_send(c: &mut Criterion) {
    let e = env();
    let controller = ShuffleController::new();
    let mut g = c.benchmark_group("parallel_send_500_records");
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("{threads}_threads"), |b| {
            let par = ParallelConfig::with_workers(threads);
            b.iter(|| {
                controller.start_phase();
                send_roots_parallel(
                    &e.vm,
                    &e.dir,
                    NodeId(0),
                    controller.sid(),
                    controller.next_stream_block(threads as u16),
                    &e.roots,
                    &par,
                    SendConfig::for_vm(&e.vm),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_traversal, bench_absolutization, bench_parallel_send
}
criterion_main!(benches);
