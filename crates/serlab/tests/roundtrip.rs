//! Round-trip correctness for every baseline serializer: build JSBS records
//! in a sender VM, serialize, rebuild in a *different* receiver VM, and
//! verify structure — the setup of the paper's §5.1 experiment, minus the
//! network.

use std::sync::Arc;

use mheap::{Addr, ClassPath, HeapConfig, Vm};
use serlab::jsbs::{build_dataset, define_jsbs_classes, jsbs_class_names, verify_media_content};
use serlab::schema::standard_entrants;
use serlab::{
    deserialize_profiled, serialize_profiled, JavaSerializer, KryoRegistry, KryoSerializer,
    SchemaRegistry, Serializer,
};
use simnet::Profile;

fn setup() -> (Arc<ClassPath>, Vm, Vm) {
    let cp = ClassPath::new();
    define_jsbs_classes(&cp);
    let sender =
        Vm::new("sender", &HeapConfig::default().with_capacity(16 << 20), Arc::clone(&cp)).unwrap();
    let receiver =
        Vm::new("receiver", &HeapConfig::default().with_capacity(16 << 20), Arc::clone(&cp))
            .unwrap();
    (cp, sender, receiver)
}

fn kryo_registry() -> Arc<KryoRegistry> {
    let reg = KryoRegistry::new();
    reg.register_all(jsbs_class_names()).unwrap();
    Arc::new(reg)
}

fn schema_registry() -> Arc<SchemaRegistry> {
    SchemaRegistry::new(jsbs_class_names())
}

fn roundtrip_with(serializer: &dyn Serializer, n: usize) {
    let (_cp, mut sender, mut receiver) = setup();
    let handles = build_dataset(&mut sender, n).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let mut p_send = Profile::new();
    let bytes = serialize_profiled(serializer, &mut sender, &roots, &mut p_send).unwrap();
    assert!(!bytes.is_empty());
    assert!(p_send.ser_invocations > 0, "{} counted no invocations", serializer.name());

    let mut p_recv = Profile::new();
    let rebuilt = deserialize_profiled(serializer, &mut receiver, &bytes, &mut p_recv).unwrap();
    assert_eq!(rebuilt.len(), n, "{} lost roots", serializer.name());
    assert!(p_recv.deser_invocations > 0);
    for (i, &mc) in rebuilt.iter().enumerate() {
        assert!(
            verify_media_content(&receiver, mc, i as u64).unwrap(),
            "{} record {i} corrupted",
            serializer.name()
        );
    }
}

#[test]
fn java_roundtrip() {
    roundtrip_with(&JavaSerializer::new(), 25);
}

#[test]
fn java_roundtrip_across_stream_resets() {
    // More roots than the reset interval → descriptors re-emitted mid-stream.
    roundtrip_with(&JavaSerializer::with_reset_interval(10), 35);
}

#[test]
fn kryo_manual_roundtrip() {
    roundtrip_with(&KryoSerializer::manual(kryo_registry()), 25);
}

#[test]
fn kryo_opt_roundtrip() {
    roundtrip_with(&KryoSerializer::opt(kryo_registry()), 25);
}

#[test]
fn kryo_flat_roundtrip() {
    roundtrip_with(&KryoSerializer::flat(kryo_registry()), 25);
}

#[test]
fn all_schema_entrants_roundtrip() {
    let reg = schema_registry();
    for s in standard_entrants(&reg) {
        roundtrip_with(&s, 10);
    }
}

#[test]
fn kryo_rejects_unregistered_class() {
    let (_cp, mut sender, _) = setup();
    let reg = KryoRegistry::new();
    reg.register("media.MediaContent").unwrap(); // but not Media etc.
    let s = KryoSerializer::manual(Arc::new(reg));
    let h = build_dataset(&mut sender, 1).unwrap().pop().unwrap();
    let root = sender.resolve(h).unwrap();
    let mut p = Profile::new();
    assert!(matches!(
        s.serialize(&mut sender, &[root], &mut p),
        Err(serlab::Error::Unregistered(_))
    ));
}

#[test]
fn kryo_registry_rejects_double_registration() {
    let reg = KryoRegistry::new();
    reg.register("A").unwrap();
    assert!(matches!(reg.register("A"), Err(serlab::Error::AlreadyRegistered(_))));
}

#[test]
fn java_preserves_sharing_kryo_manual_too_but_trees_do_not() {
    let (_cp, mut sender, _) = setup();
    // Two pairs sharing one string.
    let s = sender.new_string("shared").unwrap();
    let sh = sender.handle(s);
    let s2 = sender.resolve(sh).unwrap();
    let a = sender.new_pair(s2, Addr::NULL).unwrap();
    let ah = sender.handle(a);
    let s2 = sender.resolve(sh).unwrap();
    let b = sender.new_pair(s2, Addr::NULL).unwrap();
    let bh = sender.handle(b);

    // Serialize both pairs as one root set; sharing must round-trip (or not)
    // per serializer contract.
    let roots = vec![sender.resolve(ah).unwrap(), sender.resolve(bh).unwrap()];

    // Java: preserves sharing.
    {
        let (_c, _x, mut receiver) = setup();
        let java = JavaSerializer::new();
        let mut p = Profile::new();
        let bytes = java.serialize(&mut sender, &roots, &mut p).unwrap();
        let rebuilt = java.deserialize(&mut receiver, &bytes, &mut p).unwrap();
        let fa = receiver.get_ref(rebuilt[0], "first").unwrap();
        let fb = receiver.get_ref(rebuilt[1], "first").unwrap();
        assert_eq!(fa, fb, "java must preserve aliasing");
        assert!(java.preserves_sharing());
    }

    // Kryo-opt (no reference tracking): duplicates.
    {
        let (_c, _x, mut receiver) = setup();
        let reg = KryoRegistry::new();
        reg.register_all(jsbs_class_names()).unwrap();
        reg.register("util.Pair").unwrap();
        let kryo = KryoSerializer::opt(Arc::new(reg));
        let mut p = Profile::new();
        let bytes = kryo.serialize(&mut sender, &roots, &mut p).unwrap();
        let rebuilt = kryo.deserialize(&mut receiver, &bytes, &mut p).unwrap();
        let fa = receiver.get_ref(rebuilt[0], "first").unwrap();
        let fb = receiver.get_ref(rebuilt[1], "first").unwrap();
        assert_ne!(fa, fb, "kryo-opt must duplicate shared objects");
        assert!(!kryo.preserves_sharing());
        assert_eq!(receiver.read_string(fa).unwrap(), "shared");
        assert_eq!(receiver.read_string(fb).unwrap(), "shared");
    }
}

#[test]
fn byte_sizes_rank_as_expected() {
    // Java (type strings, reset every 100) must emit more bytes than
    // kryo-manual, which must emit more than colfer (positional schema).
    let (_cp, mut sender, _) = setup();
    let handles = build_dataset(&mut sender, 200).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let mut p = Profile::new();

    let java = JavaSerializer::new();
    let java_bytes = java.serialize(&mut sender, &roots, &mut p).unwrap().len();

    let kryo = KryoSerializer::manual(kryo_registry());
    let kryo_bytes = kryo.serialize(&mut sender, &roots, &mut p).unwrap().len();

    let reg = schema_registry();
    let colfer = &standard_entrants(&reg)[0];
    assert_eq!(colfer.name(), "colfer");
    let colfer_bytes = colfer.serialize(&mut sender, &roots, &mut p).unwrap().len();

    assert!(java_bytes > kryo_bytes, "java ({java_bytes}) should out-bloat kryo ({kryo_bytes})");
    assert!(
        kryo_bytes >= colfer_bytes,
        "kryo ({kryo_bytes}) should not be smaller than colfer ({colfer_bytes})"
    );
}

#[test]
fn truncated_stream_is_an_error_not_a_panic() {
    let (_cp, mut sender, mut receiver) = setup();
    let handles = build_dataset(&mut sender, 3).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let mut p = Profile::new();
    let kryo = KryoSerializer::manual(kryo_registry());
    let bytes = kryo.serialize(&mut sender, &roots, &mut p).unwrap();
    let truncated = &bytes[..bytes.len() / 2];
    assert!(kryo.deserialize(&mut receiver, truncated, &mut p).is_err());

    let java = JavaSerializer::new();
    let jbytes = java.serialize(&mut sender, &roots, &mut p).unwrap();
    assert!(java.deserialize(&mut receiver, &jbytes[..jbytes.len() / 2], &mut p).is_err());
}

#[test]
fn garbage_bytes_are_an_error() {
    let (_cp, _sender, mut receiver) = setup();
    let mut p = Profile::new();
    let kryo = KryoSerializer::manual(kryo_registry());
    let garbage = vec![0xABu8; 64];
    assert!(kryo.deserialize(&mut receiver, &garbage, &mut p).is_err());
}

#[test]
fn invocation_counts_scale_with_objects() {
    let (_cp, mut sender, mut receiver) = setup();
    let handles = build_dataset(&mut sender, 10).unwrap();
    let roots: Vec<Addr> = handles.iter().map(|h| sender.resolve(*h).unwrap()).collect();
    let kryo = KryoSerializer::manual(kryo_registry());
    let mut p = Profile::new();
    let bytes = kryo.serialize(&mut sender, &roots, &mut p).unwrap();
    // Each record graph: 1 MediaContent + 1 Media + 3 media strings(+3 char
    // arrays) + persons list(1+1 array+2 strings+2 char arrays) + images
    // array + 2 images(+ 2*2 strings + 2*2 char arrays) ⇒ ~dozens per record.
    assert!(p.ser_invocations >= 10 * 15, "got {}", p.ser_invocations);
    let before = p.deser_invocations;
    kryo.deserialize(&mut receiver, &bytes, &mut p).unwrap();
    assert_eq!(p.deser_invocations - before, p.ser_invocations);
}
