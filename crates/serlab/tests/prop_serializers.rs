//! Property-based serializer tests: random tree-shaped object graphs
//! round-trip identically under every library, and random corruption of
//! the byte streams produces errors, never panics or corrupt heaps.

use std::sync::Arc;

use proptest::prelude::*;

use mheap::stdlib::define_core_classes;
use mheap::{Addr, ClassPath, FieldType, HeapConfig, KlassDef, PrimType, Vm};
use serlab::schema::standard_entrants;
use serlab::{JavaSerializer, KryoRegistry, KryoSerializer, SchemaRegistry, Serializer};
use simnet::Profile;

fn classpath() -> Arc<ClassPath> {
    let cp = ClassPath::new();
    define_core_classes(&cp);
    cp.define(KlassDef::new(
        "TreeNode",
        None,
        vec![
            ("tag", FieldType::Prim(PrimType::Long)),
            ("flag", FieldType::Prim(PrimType::Bool)),
            ("label", FieldType::Ref),
            ("left", FieldType::Ref),
            ("right", FieldType::Ref),
        ],
    ));
    cp
}

const CLASSES: [&str; 5] =
    ["TreeNode", "java.lang.String", "[C", "[Ljava.lang.Object;", "java.util.ArrayList"];

/// A random binary tree with string labels.
#[derive(Debug, Clone)]
enum Tree {
    Leaf,
    Node { tag: i64, flag: bool, label: String, left: Box<Tree>, right: Box<Tree> },
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = Just(Tree::Leaf);
    leaf.prop_recursive(4, 24, 3, |inner| {
        (any::<i64>(), any::<bool>(), "[a-z]{0,12}", inner.clone(), inner).prop_map(
            |(tag, flag, label, l, r)| Tree::Node {
                tag,
                flag,
                label,
                left: Box::new(l),
                right: Box::new(r),
            },
        )
    })
}

fn build(vm: &mut Vm, t: &Tree) -> Addr {
    match t {
        Tree::Leaf => Addr::NULL,
        Tree::Node { tag, flag, label, left, right } => {
            let l = build(vm, left);
            let tl = vm.push_temp_root(l);
            let r = build(vm, right);
            let tr = vm.push_temp_root(r);
            let s = vm.new_string(label).unwrap();
            let ts = vm.push_temp_root(s);
            let k = vm.load_class("TreeNode").unwrap();
            let n = vm.alloc_instance(k).unwrap();
            let s = vm.temp_root(ts);
            let r = vm.temp_root(tr);
            let l = vm.temp_root(tl);
            vm.pop_temp_root();
            vm.pop_temp_root();
            vm.pop_temp_root();
            vm.set_long(n, "tag", *tag).unwrap();
            vm.set_prim(n, "flag", mheap::Value::Bool(*flag)).unwrap();
            vm.set_ref(n, "label", s).unwrap();
            vm.set_ref(n, "left", l).unwrap();
            vm.set_ref(n, "right", r).unwrap();
            n
        }
    }
}

fn read_back(vm: &Vm, a: Addr) -> Tree {
    if a.is_null() {
        return Tree::Leaf;
    }
    let label_ref = vm.get_ref(a, "label").unwrap();
    Tree::Node {
        tag: vm.get_long(a, "tag").unwrap(),
        flag: matches!(vm.get_prim(a, "flag").unwrap(), mheap::Value::Bool(true)),
        label: vm.read_string(label_ref).unwrap(),
        left: Box::new(read_back(vm, vm.get_ref(a, "left").unwrap())),
        right: Box::new(read_back(vm, vm.get_ref(a, "right").unwrap())),
    }
}

fn trees_equal(a: &Tree, b: &Tree) -> bool {
    match (a, b) {
        (Tree::Leaf, Tree::Leaf) => true,
        (
            Tree::Node { tag: t1, flag: f1, label: l1, left: a1, right: b1 },
            Tree::Node { tag: t2, flag: f2, label: l2, left: a2, right: b2 },
        ) => t1 == t2 && f1 == f2 && l1 == l2 && trees_equal(a1, a2) && trees_equal(b1, b2),
        _ => false,
    }
}

fn all_serializers() -> Vec<Box<dyn Serializer>> {
    let kreg = KryoRegistry::new();
    kreg.register_all(CLASSES).unwrap();
    let kreg = Arc::new(kreg);
    let sreg = SchemaRegistry::new(CLASSES);
    let mut v: Vec<Box<dyn Serializer>> = vec![
        Box::new(JavaSerializer::new()),
        Box::new(KryoSerializer::manual(Arc::clone(&kreg))),
        Box::new(KryoSerializer::opt(Arc::clone(&kreg))),
        Box::new(KryoSerializer::flat(kreg)),
    ];
    for s in standard_entrants(&sreg) {
        v.push(Box::new(s));
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_trees_roundtrip_under_every_serializer(t in tree_strategy()) {
        // Skip the all-leaf case (serializers reject null roots by contract).
        prop_assume!(!matches!(t, Tree::Leaf));
        let cp = classpath();
        let mut sender = Vm::new("s", &HeapConfig::small().with_capacity(8 << 20), Arc::clone(&cp)).unwrap();
        let root = build(&mut sender, &t);
        let _h = sender.handle(root);
        for s in all_serializers() {
            let mut receiver = Vm::new("r", &HeapConfig::small().with_capacity(8 << 20), Arc::clone(&cp)).unwrap();
            let mut p = Profile::new();
            let bytes = s.serialize(&mut sender, &[root], &mut p).unwrap();
            let out = s.deserialize(&mut receiver, &bytes, &mut p).unwrap();
            let got = read_back(&receiver, out[0]);
            prop_assert!(trees_equal(&t, &got), "{} corrupted the tree", s.name());
            // The rebuilt heap must be structurally sound.
            let _root = receiver.handle(out[0]);
            prop_assert!(receiver.verify_heap().unwrap().is_empty());
        }
    }

    #[test]
    fn corrupted_streams_error_not_panic(
        t in tree_strategy(),
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..6),
    ) {
        prop_assume!(!matches!(t, Tree::Leaf));
        let cp = classpath();
        let mut sender = Vm::new("s", &HeapConfig::small().with_capacity(8 << 20), Arc::clone(&cp)).unwrap();
        let root = build(&mut sender, &t);
        let _h = sender.handle(root);
        for s in all_serializers() {
            let mut p = Profile::new();
            let mut bytes = s.serialize(&mut sender, &[root], &mut p).unwrap();
            for (pos, val) in &flips {
                let i = *pos as usize % bytes.len();
                bytes[i] ^= *val | 1; // guarantee a real change
            }
            let mut receiver = Vm::new("r", &HeapConfig::small().with_capacity(8 << 20), Arc::clone(&cp)).unwrap();
            // Must not panic; any Ok result must still leave a sound heap.
            if let Ok(roots) = s.deserialize(&mut receiver, &bytes, &mut p) {
                for r in roots {
                    let _ = receiver.handle(r);
                }
                prop_assert!(receiver.verify_heap().unwrap().is_empty(),
                    "{} accepted corruption that broke the heap", s.name());
            }
        }
    }
}
